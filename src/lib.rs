//! # kdchoice — a generalization of multiple choice balls-into-bins
//!
//! This is the umbrella crate for a full reproduction of *"A Generalization
//! of Multiple Choice Balls-into-Bins: Tight Bounds"* (Gahyun Park, PODC 2011
//! brief announcement; full version arXiv:1201.3310).
//!
//! The paper studies the **(k,d)-choice process**: `n` balls are placed into
//! `n` bins over `n/k` rounds; in each round, `k ≤ d` balls are placed into
//! the `k` least loaded out of `d` bins chosen independently and uniformly at
//! random (with replacement), such that a bin sampled `m` times receives at
//! most `m` balls.
//!
//! ## Crates
//!
//! * [`kd`] — the core process ([`kd::KdChoice`]), load-vector state, and run
//!   drivers.
//! * [`baselines`] — single choice, d-choice, always-go-left, (1+β)-choice,
//!   truncated single choice SA_x0, adaptive probing, batched parallel.
//! * [`theory`] — Theorem 1/2 bound calculators and layered-induction
//!   sequences.
//! * [`stats`] — summaries, quantiles, two-sample tests, majorization checks.
//! * [`prng`] — deterministic xoshiro256++ generator, samplers, workload
//!   distributions.
//! * [`sim`] — a small discrete-event simulation engine.
//! * [`expt`] — the experiment layer: the `Scenario` trait, the parallel
//!   `SweepRunner`, mergeable accumulators, grid parsing, and the
//!   JSONL/CSV/table reporters shared by every experiment family.
//! * [`scheduler`] — parallel job scheduling application (§1.3 of the paper).
//! * [`storage`] — distributed storage application (§1.3 of the paper).
//! * [`service`] — the concurrent placement service: sharded lock-striped
//!   `BinStore` plus the (k,d)-choice placement/release frontend.
//!
//! ## Quickstart
//!
//! ```
//! use kdchoice::kd::{KdChoice, RunConfig, run_once};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // (2,3)-choice: 2 balls to the 2 least loaded of 3 sampled bins per round.
//! let mut process = KdChoice::new(2, 3)?;
//! let result = run_once(&mut process, &RunConfig::new(1 << 16, 42));
//! println!("max load = {}", result.max_load);
//! assert!(result.max_load <= 8);
//! # Ok(())
//! # }
//! ```

pub mod cli;

pub use kdchoice_baselines as baselines;
pub use kdchoice_core as kd;
pub use kdchoice_expt as expt;
pub use kdchoice_prng as prng;
pub use kdchoice_scheduler as scheduler;
pub use kdchoice_service as service;
pub use kdchoice_sim as sim;
pub use kdchoice_stats as stats;
pub use kdchoice_storage as storage;
pub use kdchoice_theory as theory;

/// Commonly used items, re-exported for convenience.
///
/// ```
/// use kdchoice::prelude::*;
///
/// let mut p = KdChoice::new(3, 5).unwrap();
/// let r = run_once(&mut p, &RunConfig::new(4096, 7));
/// assert_eq!(r.balls_placed, 4096);
/// ```
pub mod prelude {
    pub use kdchoice_baselines::{DChoice, SingleChoice};
    pub use kdchoice_core::{
        run_once, run_sweep, run_trials, BallsIntoBins, EngineVersion, KdChoice, LoadVector,
        RoundPolicy, RoundProcess, RunConfig, RunResult,
    };
    pub use kdchoice_prng::Xoshiro256PlusPlus;
    pub use kdchoice_theory::bounds::theorem1_prediction;
}
