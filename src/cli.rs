//! A tiny dependency-free command-line parser for the `kdchoice` binary.
//!
//! Supports `--key value` and `--flag` styles; subcommand dispatch lives in
//! the binary. Kept in the library so the parsing logic is unit-testable.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A parsed command line: the subcommand and its `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CliArgs {
    /// The first positional argument (the subcommand), if any.
    pub command: Option<String>,
    /// `--key value` pairs; bare `--flag`s map to `"true"`.
    pub options: BTreeMap<String, String>,
}

/// Error produced when the command line cannot be parsed or a value has the
/// wrong type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCliError {
    message: String,
}

impl ParseCliError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseCliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for ParseCliError {}

impl CliArgs {
    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ParseCliError`] on a stray positional argument after the
    /// subcommand or an option with a missing name.
    ///
    /// ```
    /// use kdchoice::cli::CliArgs;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let args = CliArgs::parse(["run", "--k", "2", "--d", "3", "--fast"])?;
    /// assert_eq!(args.command.as_deref(), Some("run"));
    /// assert_eq!(args.get_usize("k", 1)?, 2);
    /// assert!(args.get_flag("fast"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse<I, S>(args: I) -> Result<Self, ParseCliError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = CliArgs::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let arg = arg.as_ref();
            if let Some(name) = arg.strip_prefix("--") {
                if name.is_empty() {
                    return Err(ParseCliError::new("empty option name '--'"));
                }
                // `--key=value` or `--key value` or bare flag.
                if let Some((k, v)) = name.split_once('=') {
                    out.options.insert(k.to_string(), v.to_string());
                } else {
                    let takes_value = iter
                        .peek()
                        .map(|next| !next.as_ref().starts_with("--"))
                        .unwrap_or(false);
                    if takes_value {
                        let v = iter.next().expect("peeked").as_ref().to_string();
                        out.options.insert(name.to_string(), v);
                    } else {
                        out.options.insert(name.to_string(), "true".to_string());
                    }
                }
            } else if out.command.is_none() {
                out.command = Some(arg.to_string());
            } else {
                return Err(ParseCliError::new(format!(
                    "unexpected positional argument '{arg}'"
                )));
            }
        }
        Ok(out)
    }

    /// Returns option `name` parsed as `usize`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ParseCliError`] when present but not a valid integer.
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, ParseCliError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseCliError::new(format!("--{name} expects an integer, got '{v}'"))),
        }
    }

    /// Returns option `name` parsed as `u64`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ParseCliError`] when present but not a valid integer.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, ParseCliError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseCliError::new(format!("--{name} expects an integer, got '{v}'"))),
        }
    }

    /// Returns option `name` parsed as `f64`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ParseCliError`] when present but not a valid number.
    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, ParseCliError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseCliError::new(format!("--{name} expects a number, got '{v}'"))),
        }
    }

    /// Returns option `name` as a string, or `default` when absent.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.options
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Whether a bare flag (or explicit `--name true`) was given.
    pub fn get_flag(&self, name: &str) -> bool {
        matches!(
            self.options.get(name).map(String::as_str),
            Some("true") | Some("1")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_and_options() {
        let a = CliArgs::parse(["table1", "--trials", "10", "--fast"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("table1"));
        assert_eq!(a.get_usize("trials", 1).unwrap(), 10);
        assert!(a.get_flag("fast"));
        assert!(!a.get_flag("absent"));
    }

    #[test]
    fn parses_equals_style() {
        let a = CliArgs::parse(["run", "--k=3", "--beta=0.5"]).unwrap();
        assert_eq!(a.get_usize("k", 0).unwrap(), 3);
        assert_eq!(a.get_f64("beta", 0.0).unwrap(), 0.5);
    }

    #[test]
    fn empty_args_are_fine() {
        let a = CliArgs::parse(Vec::<String>::new()).unwrap();
        assert_eq!(a.command, None);
        assert_eq!(a.get_usize("k", 7).unwrap(), 7);
        assert_eq!(a.get_str("mode", "def"), "def");
    }

    #[test]
    fn rejects_stray_positionals() {
        assert!(CliArgs::parse(["run", "extra"]).is_err());
    }

    #[test]
    fn rejects_bad_numbers() {
        let a = CliArgs::parse(["run", "--k", "two"]).unwrap();
        let err = a.get_usize("k", 0).unwrap_err();
        assert!(err.to_string().contains("expects an integer"));
    }

    #[test]
    fn rejects_empty_option_name() {
        assert!(CliArgs::parse(["run", "--", "x"]).is_err());
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // A value not starting with -- is consumed as the option's value.
        let a = CliArgs::parse(["run", "--offset", "-5"]).unwrap();
        assert_eq!(a.get_str("offset", ""), "-5");
    }

    #[test]
    fn u64_parsing() {
        let a = CliArgs::parse(["run", "--balls", "4294967296"]).unwrap();
        assert_eq!(a.get_u64("balls", 0).unwrap(), 4_294_967_296);
    }
}
