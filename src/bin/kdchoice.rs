//! The `kdchoice` command-line tool: run (k,d)-choice and friends from the
//! shell.
//!
//! ```sh
//! kdchoice run --k 2 --d 3 --n 65536 --trials 10
//! kdchoice run --k 2 --d 4 --n 4096 --balls 262144       # heavy case
//! kdchoice compare --n 65536 --trials 5                  # vs baselines
//! kdchoice trace --k 2 --d 4 --n 4096 --ratio 32         # gap trajectory
//! kdchoice bounds --k 16 --d 17 --n 196608               # theory only
//! kdchoice scheduler --workers 200 --k 8 --jobs 10000
//! kdchoice storage --servers 500 --k 4 --files 10000
//! ```

use std::error::Error;
use std::process::ExitCode;

use kdchoice::baselines::{AdaptiveProbing, DChoice, OnePlusBeta, SingleChoice};
use kdchoice::cli::CliArgs;
use kdchoice::kd::{run_trials, run_with_trace, BallsIntoBins, KdChoice, RoundPolicy, RunConfig};
use kdchoice::scheduler::{simulate, ClusterConfig, PlacementStrategy};
use kdchoice::storage::{run_workload, PlacementPolicy, WorkloadConfig};
use kdchoice::theory::bounds::{theorem1_prediction, theorem2_gap_band};
use kdchoice::theory::cost::messages_per_ball;

const USAGE: &str = "kdchoice — the (k,d)-choice balls-into-bins toolkit

USAGE:
    kdchoice <command> [--key value ...]

COMMANDS:
    run        run (k,d)-choice        --k --d --n [--balls --seed --trials --unrestricted]
    compare    compare against baselines  --n [--trials --seed]
    trace      heavy-case gap trajectory  --k --d --n --ratio [--seed]
    bounds     print Theorem 1/2 predictions  --k --d --n
    scheduler  cluster scheduling demo  --workers --k --jobs [--util --seed]
    storage    storage cluster demo     --servers --k --files [--d --failures --seed]
    help       print this message
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(raw: &[String]) -> Result<(), Box<dyn Error>> {
    let args = CliArgs::parse(raw.iter().map(String::as_str))?;
    match args.command.as_deref() {
        Some("run") => cmd_run(&args),
        Some("compare") => cmd_compare(&args),
        Some("trace") => cmd_trace(&args),
        Some("bounds") => cmd_bounds(&args),
        Some("scheduler") => cmd_scheduler(&args),
        Some("storage") => cmd_storage(&args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'").into()),
    }
}

fn cmd_run(args: &CliArgs) -> Result<(), Box<dyn Error>> {
    let k = args.get_usize("k", 2)?;
    let d = args.get_usize("d", 3)?;
    let n = args.get_usize("n", 1 << 16)?;
    let balls = args.get_u64("balls", n as u64)?;
    let seed = args.get_u64("seed", 42)?;
    let trials = args.get_usize("trials", 1)?;
    let policy = if args.get_flag("unrestricted") {
        RoundPolicy::Unrestricted
    } else {
        RoundPolicy::Multiplicity
    };
    let cfg = RunConfig::new(n, seed).with_balls(balls);
    // Validate eagerly for a clean error message before any worker thread
    // constructs the process.
    KdChoice::new(k, d)?;
    let set = run_trials(
        move |_| {
            Box::new(
                KdChoice::new(k, d)
                    .expect("validated above")
                    .with_policy(policy),
            )
        },
        &cfg,
        trials.max(1),
    );
    println!("({k},{d})-choice [{policy}]: {balls} balls into {n} bins, {trials} trial(s)");
    println!("  max loads    : {}", set.max_load_set_string());
    println!("  mean max     : {:.3}", set.mean_max_load());
    println!("  mean gap     : {:.3}", set.mean_gap());
    println!("  messages/ball: {:.3}", messages_per_ball(k, d));
    if k < d {
        let p = theorem1_prediction(k, d, n);
        println!(
            "  theory       : {:.2} (layered {:.2} + dk {:.2}, {:?})",
            p.total(),
            p.layered_term,
            p.dk_term,
            p.regime
        );
    }
    Ok(())
}

fn cmd_compare(args: &CliArgs) -> Result<(), Box<dyn Error>> {
    let n = args.get_usize("n", 1 << 16)?;
    let trials = args.get_usize("trials", 5)?;
    let seed = args.get_u64("seed", 42)?;
    let cfg = RunConfig::new(n, seed);
    println!(
        "{:<22} {:>12} {:>10} {:>12}",
        "process", "max loads", "mean max", "msgs/ball"
    );
    type Factory = Box<dyn Fn() -> Box<dyn BallsIntoBins> + Sync>;
    let entries: Vec<(&str, Factory)> = vec![
        ("single-choice", Box::new(|| Box::new(SingleChoice::new()))),
        (
            "greedy[2]",
            Box::new(|| Box::new(DChoice::new(2).expect("valid"))),
        ),
        (
            "(1+0.5)-choice",
            Box::new(|| Box::new(OnePlusBeta::new(0.5).expect("valid"))),
        ),
        (
            "adaptive",
            Box::new(|| Box::new(AdaptiveProbing::new(1, 32).expect("valid"))),
        ),
        (
            "(2,3)-choice",
            Box::new(|| Box::new(KdChoice::new(2, 3).expect("valid"))),
        ),
        (
            "(16,17)-choice",
            Box::new(|| Box::new(KdChoice::new(16, 17).expect("valid"))),
        ),
        (
            "(16,32)-choice",
            Box::new(|| Box::new(KdChoice::new(16, 32).expect("valid"))),
        ),
    ];
    for (name, factory) in entries {
        let set = run_trials(|_| factory(), &cfg, trials);
        let mpb: f64 = set
            .results
            .iter()
            .map(|r| r.messages_per_ball())
            .sum::<f64>()
            / set.results.len() as f64;
        println!(
            "{:<22} {:>12} {:>10.2} {:>12.3}",
            name,
            set.max_load_set_string(),
            set.mean_max_load(),
            mpb
        );
    }
    Ok(())
}

fn cmd_trace(args: &CliArgs) -> Result<(), Box<dyn Error>> {
    let k = args.get_usize("k", 2)?;
    let d = args.get_usize("d", 4)?;
    let n = args.get_usize("n", 1 << 12)?;
    let ratio = args.get_u64("ratio", 16)?;
    let seed = args.get_u64("seed", 42)?;
    let mut p = KdChoice::new(k, d)?;
    let balls = ratio * n as u64;
    let checkpoints: Vec<u64> = (1..ratio).map(|i| i * n as u64).collect();
    let cfg = RunConfig::new(n, seed).with_balls(balls);
    let trace = run_with_trace(&mut p, &cfg, &checkpoints);
    if d >= 2 * k {
        let band = theorem2_gap_band(k, d, n, 2.0);
        println!(
            "Theorem 2 gap band for ({k},{d}) at n = {n}: [{:.1}, {:.1}]",
            band.lo, band.hi
        );
    }
    println!(
        "{:>12} {:>8} {:>8} {:>12}",
        "balls", "max", "gap", "overloaded"
    );
    for pt in trace {
        println!(
            "{:>12} {:>8} {:>8.2} {:>12}",
            pt.balls, pt.max_load, pt.gap, pt.overloaded_bins
        );
    }
    Ok(())
}

fn cmd_bounds(args: &CliArgs) -> Result<(), Box<dyn Error>> {
    let k = args.get_usize("k", 2)?;
    let d = args.get_usize("d", 3)?;
    let n = args.get_usize("n", 3 * (1 << 16))?;
    KdChoice::new(k, d)?;
    let p = theorem1_prediction(k, d, n);
    println!("(k,d) = ({k},{d}), n = {n}");
    println!("  regime        : {:?}", p.regime);
    println!("  layered term  : {:.3}", p.layered_term);
    println!("  dk term       : {:.3}", p.dk_term);
    println!("  prediction    : {:.3} (± O(1))", p.total());
    println!("  messages/ball : {:.3}", messages_per_ball(k, d));
    if k < d && d >= 2 * k {
        let band = theorem2_gap_band(k, d, n, 0.0);
        println!(
            "  heavy-case gap: [{:.2} − O(1), {:.2} + O(1)] (Theorem 2)",
            band.lo, band.hi
        );
    }
    Ok(())
}

fn cmd_scheduler(args: &CliArgs) -> Result<(), Box<dyn Error>> {
    let workers = args.get_usize("workers", 200)?;
    let k = args.get_usize("k", 8)?;
    let jobs = args.get_usize("jobs", 10_000)?;
    let util = args.get_f64("util", 0.85)?;
    let seed = args.get_u64("seed", 42)?;
    let cfg = ClusterConfig::new(workers, k, jobs, seed).with_utilization(util);
    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>12}",
        "strategy", "mean resp", "p50", "p99", "probes/job"
    );
    for strategy in [
        PlacementStrategy::Random,
        PlacementStrategy::PerTaskDChoice { d: 2 },
        PlacementStrategy::BatchSampling { probes_per_task: 2 },
        PlacementStrategy::LateBinding { probes_per_task: 2 },
        PlacementStrategy::KdChoice { d: k + 1 },
        PlacementStrategy::KdChoice { d: 2 * k },
    ] {
        let r = simulate(&cfg, strategy);
        println!(
            "{:<22} {:>10.3} {:>8.3} {:>8.3} {:>12.1}",
            r.strategy,
            r.response.mean(),
            r.response_percentiles[0],
            r.response_percentiles[2],
            r.probes_per_job
        );
    }
    Ok(())
}

fn cmd_storage(args: &CliArgs) -> Result<(), Box<dyn Error>> {
    let servers = args.get_usize("servers", 500)?;
    let k = args.get_usize("k", 4)?;
    let files = args.get_usize("files", servers * 20)?;
    let d = args.get_usize("d", 2 * k)?;
    let failures = args.get_usize("failures", 0)?;
    let seed = args.get_u64("seed", 42)?;
    println!(
        "{:<20} {:>8} {:>10} {:>12} {:>12}",
        "policy", "max", "imbalance", "probes/file", "read msgs"
    );
    for policy in [
        PlacementPolicy::Random,
        PlacementPolicy::PerChunkTwoChoice,
        PlacementPolicy::KdChoice { d },
    ] {
        let mut cfg = WorkloadConfig::new(servers, k, policy)
            .with_seed(seed)
            .with_failures(failures);
        cfg.files = files;
        let r = run_workload(&cfg);
        println!(
            "{:<20} {:>8} {:>10.3} {:>12.1} {:>12.1}",
            r.policy,
            r.stats.max_load,
            r.stats.imbalance,
            r.create_cost_per_file,
            r.read_cost_per_op
        );
    }
    Ok(())
}
