//! Integration tests of the proof-level observables: Lemma 2 (µ_y for
//! single choice drops factorially), Lemma 11 (ν_y is factorially large from
//! below), Lemma 3 (µ of (k,d)-choice is dominated by single choice), and
//! the layered-induction shape ν_{y0+i} ≤ β_i of Theorem 4.

use kdchoice::baselines::SingleChoice;
use kdchoice::kd::{run_once, run_trials, KdChoice, RunConfig};
use kdchoice::theory::dk_ratio;
use kdchoice::theory::sequences::{beta_sequence, y1_from_dk};

const N: usize = 1 << 14;

fn factorial(y: u32) -> f64 {
    (1..=u64::from(y)).map(|i| i as f64).product()
}

#[test]
fn lemma2_mu_upper_bound_for_single_choice() {
    // Pr(µ_y >= 8n/y!) is tiny: check µ_y <= 8n/y! on several runs.
    let set = run_trials(|_| Box::new(SingleChoice::new()), &RunConfig::new(N, 1), 6);
    for r in &set.results {
        for y in 1..=r.max_load {
            let bound = 8.0 * N as f64 / factorial(y);
            assert!(
                (r.mu(y) as f64) <= bound.max(12.0),
                "µ_{y} = {} exceeds Lemma 2 bound {bound:.1}",
                r.mu(y)
            );
        }
    }
}

#[test]
fn lemma11_nu_lower_bound_for_single_choice() {
    // Pr(ν_y <= n/(8·y!)) is tiny for y ≪ √n: check ν_y >= n/(8·y!) for the
    // first few levels.
    let set = run_trials(|_| Box::new(SingleChoice::new()), &RunConfig::new(N, 2), 6);
    for r in &set.results {
        for y in 1..=3u32 {
            let bound = N as f64 / (8.0 * factorial(y));
            assert!(
                (r.nu(y) as f64) >= bound,
                "ν_{y} = {} below Lemma 11 bound {bound:.1}",
                r.nu(y)
            );
        }
    }
}

#[test]
fn lemma3_kd_heights_are_dominated_by_single_choice() {
    // Pr(µ^SA_y >= t) >= Pr(µ^A_y >= t): on means, µ^A_y <= µ^SA_y (+noise).
    let trials = 10;
    let kd = run_trials(
        |_| Box::new(KdChoice::new(3, 6).expect("valid")),
        &RunConfig::new(N, 3),
        trials,
    );
    let sa = run_trials(
        |_| Box::new(SingleChoice::new()),
        &RunConfig::new(N, 4),
        trials,
    );
    let mean_mu = |set: &kdchoice::kd::TrialSet, y: u32| -> f64 {
        set.results.iter().map(|r| r.mu(y) as f64).sum::<f64>() / set.results.len() as f64
    };
    for y in 2..=6u32 {
        let a = mean_mu(&kd, y);
        let s = mean_mu(&sa, y);
        assert!(
            a <= s * 1.05 + 5.0,
            "µ_{y}: (3,6)-choice {a} not dominated by single choice {s}"
        );
    }
}

#[test]
fn theorem4_layered_induction_shape_holds_empirically() {
    // ν_{y0+i} <= β_i for the β-sequence of Theorem 4 (with y0 from
    // Theorem 3). The constants are generous at finite n, so check with a
    // 2x slack factor.
    for &(k, d) in &[(1usize, 2usize), (2, 3), (4, 8)] {
        let mut p = KdChoice::new(k, d).expect("valid");
        let r = run_once(&mut p, &RunConfig::new(N, 5));
        let y0 = y1_from_dk(dk_ratio(k, d)) + 1;
        let seq = beta_sequence(N, k, d);
        for (i, &beta_i) in seq.values.iter().enumerate() {
            let nu = r.nu(y0 + i as u32) as f64;
            assert!(
                nu <= 2.0 * beta_i,
                "({k},{d}): ν_{{y0+{i}}} = {nu} exceeds 2·β_{i} = {:.1}",
                2.0 * beta_i
            );
        }
        // And the end of the induction: nothing above y0 + i* + 2.
        let top = y0 + seq.i_star as u32 + 2;
        assert!(
            r.nu(top + 1) <= 1,
            "({k},{d}): load above y0+i*+2 = {top} should be (almost) empty"
        );
    }
}

#[test]
fn nu_mu_bridge_inequality() {
    // ν_y ≤ µ_y for every process and level (used in Theorem 3's proof).
    let mut p = KdChoice::new(2, 5).expect("valid");
    let r = run_once(&mut p, &RunConfig::new(N, 6));
    for y in 0..=r.max_load {
        assert!(r.nu(y) <= r.mu(y));
    }
}
