//! Integration tests: measured maximum loads sit inside the Theorem 1 and
//! Theorem 2 bands, and the classical baselines behave per their citations.

use kdchoice::baselines::{AdaptiveProbing, DChoice, SingleChoice};
use kdchoice::kd::{run_trials, KdChoice, RunConfig};
use kdchoice::theory::bounds::{
    d_choice_prediction, single_choice_prediction, theorem1_band, theorem2_gap_band,
};

const N: usize = 1 << 14;
const TRIALS: usize = 8;

#[test]
fn theorem1_band_holds_across_regimes() {
    for &(k, d) in &[
        (1usize, 2usize), // classic two-choice
        (1, 8),           // d-choice
        (2, 4),           // dk = 2
        (8, 16),          // dk = 2, larger round
        (4, 5),           // dk → ∞ family
        (16, 17),
        (64, 65),
        (16, 32),
    ] {
        let set = run_trials(
            move |_| Box::new(KdChoice::new(k, d).expect("valid")),
            &RunConfig::new(N, 31 + (k * 100 + d) as u64),
            TRIALS,
        );
        let band = theorem1_band(k, d, N, 3.0);
        let mean = set.mean_max_load();
        assert!(
            band.contains(mean),
            "({k},{d}): mean max {mean} outside [{:.2}, {:.2}]",
            band.lo,
            band.hi
        );
    }
}

#[test]
fn theorem2_gap_is_bounded_and_flat_for_d_at_least_2k() {
    for &(k, d) in &[(1usize, 2usize), (2, 4), (4, 8)] {
        let band = theorem2_gap_band(k, d, N, 2.0);
        let mut gaps = Vec::new();
        for ratio in [1u64, 8, 32] {
            let set = run_trials(
                move |_| Box::new(KdChoice::new(k, d).expect("valid")),
                &RunConfig::new(N, 77 + ratio).with_balls(ratio * N as u64),
                4,
            );
            gaps.push(set.mean_gap());
        }
        for &g in &gaps {
            assert!(
                g <= band.hi + 1.0,
                "({k},{d}): gap {g} exceeds band hi {}",
                band.hi
            );
        }
        assert!(
            gaps[2] <= gaps[0] + 2.0,
            "({k},{d}): gap must not grow with m: {gaps:?}"
        );
    }
}

#[test]
fn single_choice_matches_raab_steger_shape() {
    let set = run_trials(
        |_| Box::new(SingleChoice::new()),
        &RunConfig::new(N, 5),
        TRIALS,
    );
    let predicted = single_choice_prediction(N);
    let mean = set.mean_max_load();
    // ln n/lnln n times a modest constant window.
    assert!(
        mean > predicted && mean < 3.0 * predicted,
        "single choice mean {mean} vs prediction {predicted}"
    );
}

#[test]
fn d_choice_matches_azar_et_al_shape() {
    for d in [2usize, 4, 8] {
        let set = run_trials(
            move |_| Box::new(DChoice::new(d).expect("valid")),
            &RunConfig::new(N, 6 + d as u64),
            TRIALS,
        );
        let predicted = d_choice_prediction(N, d);
        let mean = set.mean_max_load();
        assert!(
            mean >= predicted - 1.0 && mean <= predicted + 3.0,
            "greedy[{d}]: mean {mean} vs prediction {predicted}"
        );
    }
}

#[test]
fn kd_choice_equals_d_choice_when_k_is_1() {
    // A(1,d) IS d-choice; distributions must agree closely.
    let kd = run_trials(
        |_| Box::new(KdChoice::new(1, 3).expect("valid")),
        &RunConfig::new(N, 8),
        TRIALS,
    );
    let dc = run_trials(
        |_| Box::new(DChoice::new(3).expect("valid")),
        &RunConfig::new(N, 9),
        TRIALS,
    );
    assert!(
        (kd.mean_max_load() - dc.mean_max_load()).abs() <= 0.5,
        "A(1,3) {} vs greedy[3] {}",
        kd.mean_max_load(),
        dc.mean_max_load()
    );
}

#[test]
fn kd_choice_with_k_equal_d_is_single_choice() {
    let kd = run_trials(
        |_| Box::new(KdChoice::new(4, 4).expect("valid")),
        &RunConfig::new(N, 10),
        TRIALS,
    );
    let sc = run_trials(
        |_| Box::new(SingleChoice::new()),
        &RunConfig::new(N, 11),
        TRIALS,
    );
    assert!(
        (kd.mean_max_load() - sc.mean_max_load()).abs() <= 1.2,
        "SA(4,4) {} vs single choice {}",
        kd.mean_max_load(),
        sc.mean_max_load()
    );
}

#[test]
fn adaptive_scheme_hits_its_cited_tradeoff() {
    // Czumaj–Stemann-style: lnln-grade load with (1+o(1))n messages.
    let set = run_trials(
        |_| Box::new(AdaptiveProbing::new(1, 32).expect("valid")),
        &RunConfig::new(N, 12),
        TRIALS,
    );
    assert!(set.mean_max_load() <= 4.0);
    let mpb: f64 = set
        .results
        .iter()
        .map(|r| r.messages_per_ball())
        .sum::<f64>()
        / set.results.len() as f64;
    assert!(mpb < 1.4, "messages per ball {mpb}");
}

#[test]
fn message_accounting_matches_cost_model() {
    use kdchoice::theory::cost::total_messages;
    for &(k, d) in &[(1usize, 2usize), (2, 3), (16, 32)] {
        let set = run_trials(
            move |_| Box::new(KdChoice::new(k, d).expect("valid")),
            &RunConfig::new(N, 13),
            2,
        );
        for r in &set.results {
            assert_eq!(r.messages, total_messages(k, d, N as u64));
        }
    }
}
