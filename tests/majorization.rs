//! Integration tests for Properties (ii)–(v) of §3: the majorization
//! relations between (k,d)-choice processes, checked on trial-averaged
//! prefix sums of sorted load vectors.

use kdchoice::kd::{run_trials, KdChoice, RunConfig, TrialSet};
use kdchoice::stats::order::empirical_majorization;

const N: usize = 1 << 11;
const TRIALS: usize = 50;

fn trials(k: usize, d: usize, seed: u64) -> TrialSet {
    run_trials(
        move |_| Box::new(KdChoice::new(k, d).expect("valid")),
        &RunConfig::new(N, seed),
        TRIALS,
    )
}

/// Sampling tolerance for mean prefix-sum comparisons.
const TOL: f64 = 0.012;

fn assert_majorized(label: &str, a: &TrialSet, b: &TrialSet) {
    let report = empirical_majorization(&a.sorted_load_vectors(), &b.sorted_load_vectors());
    assert!(
        report.max_relative_violation <= TOL,
        "{label}: violation {} at prefix {} (fraction {})",
        report.max_relative_violation,
        report.argmax_prefix,
        report.violated_fraction
    );
}

#[test]
fn property_ii_more_probes_majorized_by_fewer() {
    // A(k, d+α) ≤mj A(k, d).
    let more = trials(2, 6, 11);
    let fewer = trials(2, 4, 12);
    assert_majorized("A(2,6) ≤mj A(2,4)", &more, &fewer);
}

#[test]
fn property_iii_fewer_balls_majorized_by_more() {
    // A(k−α, d) ≤mj A(k, d).
    let fewer_balls = trials(1, 4, 13);
    let more_balls = trials(3, 4, 14);
    assert_majorized("A(1,4) ≤mj A(3,4)", &fewer_balls, &more_balls);
}

#[test]
fn property_iv_scaled_rounds_majorized_by_unscaled() {
    // A(αk, αd) ≤mj A(k, d).
    let scaled = trials(4, 8, 15);
    let unscaled = trials(2, 4, 16);
    assert_majorized("A(4,8) ≤mj A(2,4)", &scaled, &unscaled);
    let scaled = trials(6, 9, 17);
    let unscaled = trials(2, 3, 18);
    assert_majorized("A(6,9) ≤mj A(2,3)", &scaled, &unscaled);
}

#[test]
fn property_v_diagonal_moves_toward_single_choice() {
    // A(k, d) ≤mj A(k+α, d+α).
    let tight = trials(1, 2, 19);
    let diagonal = trials(3, 4, 20);
    assert_majorized("A(1,2) ≤mj A(3,4)", &tight, &diagonal);
    let tight = trials(2, 4, 21);
    let diagonal = trials(4, 6, 22);
    assert_majorized("A(2,4) ≤mj A(4,6)", &tight, &diagonal);
}

#[test]
fn majorization_chain_of_theorem2_coupling() {
    // The §3.2 chain: A(1, d−k+1) ≤mj A(k,d) ≤mj A(1, ⌊d/k⌋).
    let (k, d) = (2usize, 6usize);
    let lower = trials(1, d - k + 1, 23); // A(1,5)
    let mid = trials(k, d, 24);
    let upper = trials(1, d / k, 25); // A(1,3)
    assert_majorized("A(1,d−k+1) ≤mj A(k,d)", &lower, &mid);
    assert_majorized("A(k,d) ≤mj A(1,⌊d/k⌋)", &mid, &upper);
}

#[test]
fn single_choice_majorizes_every_kd_choice() {
    // A(k,d) with k<d is always at least as balanced as single choice
    // (k = d degenerate), the coarsest sanity check of the family ordering.
    let kd = trials(3, 6, 26);
    let single = trials(2, 2, 27);
    assert_majorized("A(3,6) ≤mj SA", &kd, &single);
}
