//! End-to-end integration tests for the two §1.3 applications.

use kdchoice::scheduler::{simulate, ClusterConfig, PlacementStrategy, ServiceDistribution};
use kdchoice::storage::{run_workload, PlacementPolicy, WorkloadConfig};

#[test]
fn scheduler_end_to_end_determinism_and_accounting() {
    let cfg = ClusterConfig::new(64, 4, 500, 42).with_utilization(0.75);
    let a = simulate(&cfg, PlacementStrategy::KdChoice { d: 8 });
    let b = simulate(&cfg, PlacementStrategy::KdChoice { d: 8 });
    assert_eq!(a.response.count(), b.response.count());
    assert_eq!(a.response.mean(), b.response.mean());
    assert_eq!(a.probe_messages, 500 * 8);
    assert!(a.response_percentiles[0] <= a.response_percentiles[1]);
    assert!(a.response_percentiles[1] <= a.response_percentiles[2]);
}

#[test]
fn scheduler_shared_probes_beat_per_task_probing_tail() {
    let cfg = ClusterConfig::new(128, 8, 3000, 43)
        .with_utilization(0.85)
        .with_service(ServiceDistribution::Exponential { mean: 1.0 });
    let per_task = simulate(&cfg, PlacementStrategy::PerTaskDChoice { d: 2 });
    let batch = simulate(
        &cfg,
        PlacementStrategy::BatchSampling { probes_per_task: 2 },
    );
    // Same message budget; the shared-information scheme must not lose on
    // the tail (the §1.3 argument).
    assert_eq!(per_task.probe_messages, batch.probe_messages);
    assert!(batch.response_percentiles[2] <= per_task.response_percentiles[2] * 1.1);
}

#[test]
fn scheduler_heavy_tailed_service_still_works() {
    let cfg = ClusterConfig::new(64, 4, 1000, 44)
        .with_service(ServiceDistribution::Pareto {
            alpha: 1.5,
            lo: 0.1,
            hi: 50.0,
        })
        .with_utilization(0.6);
    let r = simulate(&cfg, PlacementStrategy::KdChoice { d: 8 });
    assert!(r.jobs_measured > 0);
    assert!(r.response.mean().is_finite());
}

#[test]
fn storage_end_to_end_with_failures() {
    let cfg = WorkloadConfig::new(100, 4, PlacementPolicy::KdChoice { d: 8 })
        .with_failures(10)
        .with_seed(45);
    let r = run_workload(&cfg);
    assert_eq!(r.stats.alive_servers, 90);
    assert_eq!(r.stats.total_chunks, (cfg.files * 4) as u64);
    assert!(r.stats.recovered_chunks > 0);
    assert!(r.stats.imbalance >= 1.0);
}

#[test]
fn storage_kd_read_cost_is_half_of_two_choice() {
    let kd = run_workload(
        &WorkloadConfig::new(100, 6, PlacementPolicy::KdChoice { d: 7 }).with_seed(46),
    );
    let two = run_workload(
        &WorkloadConfig::new(100, 6, PlacementPolicy::PerChunkTwoChoice).with_seed(46),
    );
    // §1.3: k+1 = 7 vs 2k = 12 — "approximately half".
    assert_eq!(kd.read_cost_per_op, 7.0);
    assert_eq!(two.read_cost_per_op, 12.0);
    // Placement probes likewise: d = k+1 vs 2k.
    assert_eq!(kd.create_cost_per_file, 7.0);
    assert_eq!(two.create_cost_per_file, 12.0);
}

#[test]
fn storage_balance_ordering_random_vs_kd() {
    let kd = run_workload(
        &WorkloadConfig::new(200, 3, PlacementPolicy::KdChoice { d: 6 }).with_seed(47),
    );
    let rnd = run_workload(&WorkloadConfig::new(200, 3, PlacementPolicy::Random).with_seed(47));
    assert!(kd.stats.max_load <= rnd.stats.max_load);
}
