//! Smoke tests of the umbrella crate's public surface: the prelude, the
//! cross-crate wiring, and the theory/simulation agreement at a glance.

use kdchoice::prelude::*;

#[test]
fn prelude_supports_the_quickstart_flow() {
    let mut p = KdChoice::new(2, 3).expect("valid");
    let r = run_once(&mut p, &RunConfig::new(4096, 1));
    assert_eq!(r.balls_placed, 4096);
    let pred = theorem1_prediction(2, 3, 4096);
    assert!((f64::from(r.max_load) - pred.total()).abs() < 4.0);
}

#[test]
fn prelude_exposes_baselines_and_rng() {
    let mut rng = Xoshiro256PlusPlus::from_u64(1);
    use rand::Rng;
    let _: u64 = rng.gen();
    let mut sc = SingleChoice::new();
    let mut dc = DChoice::new(2).expect("valid");
    let a = run_once(&mut sc, &RunConfig::new(4096, 2));
    let b = run_once(&mut dc, &RunConfig::new(4096, 3));
    assert!(b.max_load <= a.max_load);
}

#[test]
fn namespaced_modules_are_reachable() {
    // One item per re-exported crate, to catch wiring regressions.
    let _ = kdchoice::theory::dk_ratio(1, 2);
    let _ = kdchoice::stats::Summary::new();
    let _ = kdchoice::prng::derive_seed(1, 2);
    let _ = kdchoice::sim::Clock::new();
    let _ = kdchoice::kd::LoadVector::new(4);
    let _ = kdchoice::baselines::AlwaysGoLeft::new(2).expect("valid");
    let _ = kdchoice::scheduler::ClusterConfig::new(4, 2, 10, 0);
    let _ =
        kdchoice::storage::WorkloadConfig::new(4, 2, kdchoice::storage::PlacementPolicy::Random);
    let _ = kdchoice::baselines::BatchedParallel::new(2, 2).expect("valid");
    let _ = kdchoice::baselines::TruncatedSingleChoice::new(1);
    let _ = kdchoice::baselines::OnePlusBeta::new(0.5).expect("valid");
}

#[test]
fn run_trials_is_deterministic_across_thread_counts() {
    // The per-trial seed derivation must make results independent of the
    // machine's parallelism.
    let a = run_trials(
        |_| Box::new(KdChoice::new(2, 4).expect("valid")),
        &RunConfig::new(2048, 9),
        7,
    );
    let b = run_trials(
        |_| Box::new(KdChoice::new(2, 4).expect("valid")),
        &RunConfig::new(2048, 9),
        7,
    );
    let loads_a: Vec<u32> = a.results.iter().map(|r| r.max_load).collect();
    let loads_b: Vec<u32> = b.results.iter().map(|r| r.max_load).collect();
    assert_eq!(loads_a, loads_b);
}
