//! Integration test for Property (i) of §3: the serialized process Aσ(k,d)
//! is equivalent in distribution to the round process A(k,d), for any σ.

use kdchoice::kd::{
    run_trials, EngineVersion, KdChoice, RunConfig, SerializedKdChoice, SigmaSchedule,
};
use kdchoice::stats::tests::mann_whitney_u;

const N: usize = 1 << 12;
const TRIALS: usize = 40;

fn round_trials(k: usize, d: usize, seed: u64) -> kdchoice::kd::TrialSet {
    run_trials(
        move |_| Box::new(KdChoice::new(k, d).expect("valid")),
        &RunConfig::new(N, seed),
        TRIALS,
    )
}

fn serialized_trials(
    k: usize,
    d: usize,
    schedule: SigmaSchedule,
    seed: u64,
) -> kdchoice::kd::TrialSet {
    run_trials(
        move |_| Box::new(SerializedKdChoice::new(k, d, schedule).expect("valid")),
        &RunConfig::new(N, seed),
        TRIALS,
    )
}

#[test]
fn serialization_matches_round_process_distribution() {
    for &(k, d) in &[(2usize, 3usize), (4, 6), (8, 9)] {
        let base = round_trials(k, d, 100);
        for schedule in [
            SigmaSchedule::Identity,
            SigmaSchedule::Reverse,
            SigmaSchedule::UniformRandom,
        ] {
            let ser = serialized_trials(k, d, schedule, 200);
            let diff = (base.mean_max_load() - ser.mean_max_load()).abs();
            assert!(
                diff < 0.5,
                "({k},{d}) {schedule:?}: mean max loads differ by {diff}"
            );
            let test = mann_whitney_u(&base.max_loads_f64(), &ser.max_loads_f64());
            assert!(
                test.p_value > 0.005,
                "({k},{d}) {schedule:?}: distribution mismatch (p = {})",
                test.p_value
            );
        }
    }
}

#[test]
fn sigma_does_not_change_the_coupled_load_vector() {
    // The strongest form of Property (i): under the natural coupling (same
    // seed => same samples and keys), every σ yields the identical final
    // sorted load vector.
    use kdchoice::kd::run_once_with_state;
    for seed in [1u64, 2, 3] {
        let states: Vec<Vec<u32>> = [SigmaSchedule::Identity, SigmaSchedule::Reverse]
            .iter()
            .map(|&s| {
                let mut p = SerializedKdChoice::new(3, 7, s).expect("valid");
                let (_, st) = run_once_with_state(&mut p, &RunConfig::new(N, seed));
                st.sorted_descending()
            })
            .collect();
        assert_eq!(states[0], states[1], "seed {seed}");
    }
}

#[test]
fn serialized_and_round_process_agree_exactly_on_shared_stream() {
    // Identity serialization consumes the RNG identically to the *legacy*
    // round engine (d samples + d eager tie keys per round), so whole runs
    // coincide exactly, not just in distribution. The batched engine draws
    // tie keys lazily and is covered by the distributional test above.
    use kdchoice::kd::run_once;
    for seed in [7u64, 8, 9] {
        let a = {
            let mut p = KdChoice::new(2, 5)
                .expect("valid")
                .with_engine(EngineVersion::Legacy);
            run_once(&mut p, &RunConfig::new(N, seed))
        };
        let b = {
            let mut p = SerializedKdChoice::new(2, 5, SigmaSchedule::Identity).expect("valid");
            run_once(&mut p, &RunConfig::new(N, seed))
        };
        assert_eq!(a.max_load, b.max_load);
        assert_eq!(a.load_histogram, b.load_histogram);
        assert_eq!(a.height_histogram, b.height_histogram);
    }
}
