//! Spot checks of the paper's Table 1 and its §1.2 narrative.
//!
//! The fast tests run at a reduced n (shapes are stable); the `full_` test
//! reproduces exact cells at the paper's n = 3·2¹⁶ and is `#[ignore]`d by
//! default (run with `cargo test --release -- --ignored`).

use kdchoice::baselines::SingleChoice;
use kdchoice::kd::{run_trials, KdChoice, RunConfig, TrialSet};

fn cell(n: usize, k: usize, d: usize, trials: usize, seed: u64) -> TrialSet {
    run_trials(
        move |_| Box::new(KdChoice::new(k, d).expect("valid")),
        &RunConfig::new(n, seed),
        trials,
    )
}

const N_FAST: usize = 3 * (1 << 12);

#[test]
fn two_choice_cell_shape() {
    // Paper (1,2): 3, 4 at n = 3·2^16; at reduced n it stays in 3..=4.
    let set = cell(N_FAST, 1, 2, 10, 1);
    for r in &set.results {
        assert!(
            (3..=4).contains(&r.max_load),
            "two-choice max {}",
            r.max_load
        );
    }
}

#[test]
fn large_d_cells_reach_two() {
    // All d ≥ 9 columns with small k report 2 in the paper.
    for &(k, d) in &[(1usize, 9usize), (2, 17), (3, 25), (8, 65), (12, 193)] {
        let set = cell(N_FAST, k, d, 10, 2);
        assert_eq!(
            set.max_load_set_string(),
            "2",
            "({k},{d}) should reach the optimal max load 2"
        );
    }
}

#[test]
fn k_198_style_diagonal_cells_are_large() {
    // (k, k+1) with large k pays the ln dk/lnln dk term: max load ≥ 4.
    let set = cell(N_FAST, 192, 193, 10, 3);
    assert!(
        set.mean_max_load() >= 4.0,
        "diagonal cell too small: {}",
        set.mean_max_load()
    );
}

#[test]
fn section_1_2_observation_8_9_close_to_two_choice() {
    let a = cell(N_FAST, 8, 9, 10, 4);
    let b = cell(N_FAST, 1, 2, 10, 5);
    assert!(
        (a.mean_max_load() - b.mean_max_load()).abs() <= 1.0,
        "(8,9) {} vs two-choice {}",
        a.mean_max_load(),
        b.mean_max_load()
    );
}

#[test]
fn section_1_2_observation_128_193_beats_two_choice() {
    let big = cell(N_FAST, 128, 193, 10, 6);
    let two = cell(N_FAST, 1, 2, 10, 7);
    assert!(
        big.mean_max_load() < two.mean_max_load(),
        "(128,193) {} should beat two-choice {}",
        big.mean_max_load(),
        two.mean_max_load()
    );
    // And it matches (1,193).
    let pure = cell(N_FAST, 1, 193, 10, 8);
    assert_eq!(big.max_load_set_string(), pure.max_load_set_string());
}

#[test]
fn section_1_2_observation_64_65_beats_single_choice() {
    let kd = cell(N_FAST, 64, 65, 10, 9);
    let sc = run_trials(
        |_| Box::new(SingleChoice::new()),
        &RunConfig::new(N_FAST, 10),
        10,
    );
    assert!(
        kd.mean_max_load() + 1.0 < sc.mean_max_load(),
        "(64,65) {} vs single choice {}",
        kd.mean_max_load(),
        sc.mean_max_load()
    );
}

/// Exact Table 1 cells at the paper's n. Slow; run with `-- --ignored`.
#[test]
#[ignore = "full paper-scale check; run with cargo test --release -- --ignored"]
fn full_table1_headline_cells() {
    let n = 3 * (1 << 16);
    let expectations: [(usize, usize, &[u32]); 6] = [
        (1, 2, &[3, 4]),
        (1, 3, &[3]),
        (2, 3, &[4]),
        (1, 9, &[2]),
        (8, 9, &[4]),
        (128, 193, &[2]),
    ];
    for (k, d, allowed) in expectations {
        let set = cell(n, k, d, 10, 11);
        for r in &set.results {
            assert!(
                allowed.contains(&r.max_load),
                "({k},{d}): observed {} outside paper set {allowed:?}",
                r.max_load
            );
        }
    }
}
