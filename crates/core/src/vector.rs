//! Multidimensional (vector) loads: the Narang–Dutta generalization.
//!
//! Balls carry D-dimensional resource demands (cpu/mem/net), bins
//! accumulate per-dimension loads, and probe comparison happens through a
//! [`PlacementObjective`] norm instead of the raw scalar count. Three
//! pieces live here:
//!
//! * [`VectorLoad`] — the vector-load store: flat strided per-bin
//!   dimension loads with the same cached-histogram discipline as
//!   [`LoadVector`] (O(1) add, per-dimension max/ν/gap observables), plus
//!   an embedded scalar [`LoadVector`] tracking ball counts so every
//!   scalar observable ([`BinStore`] included) stays exact.
//! * [`PlacementObjective`] — the comparison-key seam: `Scalar` (sum of
//!   dimensions — the paper's process), `MaxNorm` (L∞), `WeightedNorm`,
//!   and `NormalizedByCapacity` (max dimension utilization).
//! * [`decide_k_least_vector`] / [`run_once_vector`] — the vector probe
//!   kernel and static-fill driver mirroring `decide_k_least` /
//!   `run_once_compact` exactly: one tie-break draw per tentative slot in
//!   sorted-probe run order, `select_nth_unstable_by` on `(key, tie)`.
//!
//! ## Determinism contract
//!
//! With `dims = 1`, `objective = scalar`, and unit demands, the vector
//! path is **bit-identical** to the scalar path: unit demand sampling
//! consumes zero generator outputs, an integer-valued `f64` key under
//! `total_cmp` orders exactly like the `u32` height it equals, and the
//! kernel draws the same one tie per slot — so RNG streams, winners, and
//! histograms all coincide (locked by the `vector_equivalence` tests).

use rand::RngCore;

use kdchoice_prng::demand::DemandDistribution;
use kdchoice_prng::Xoshiro256PlusPlus;

use crate::driver::{HeightHistogram, RunConfig, RunResult};
use crate::probes::ProbeDistribution;
use crate::process::HeightSink;
use crate::state::LoadVector;
use crate::store::BinStore;

/// The largest supported demand-vector dimensionality. Eight covers every
/// realistic resource model (cpu/mem/net/disk/...) while keeping per-slot
/// key evaluation a short unrollable loop.
pub const MAX_DIMS: usize = 8;

/// How probe comparison keys are computed from a bin's load vector — the
/// objective seam of the multidimensional extension.
///
/// `Scalar` on `dims = 1` unit-demand state reproduces the paper's
/// process bit-exactly; the other objectives are the Narang–Dutta
/// variants for genuinely multidimensional demands.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementObjective {
    /// Sum of dimension loads (equals the ball count under unit demand) —
    /// the scalar process.
    Scalar,
    /// The L∞ norm `max_j load_j`: balance the worst dimension.
    MaxNorm,
    /// A weighted sum `Σ_j w_j · load_j`; weights must have one entry per
    /// dimension.
    WeightedNorm(Vec<f64>),
    /// The maximum dimension *utilization* `max_j load_j / c_j` against
    /// the bin's per-dimension capacities (1 when the store has none).
    NormalizedByCapacity,
}

impl PlacementObjective {
    /// Parses a grid-axis value (`scalar | max_norm | weighted |
    /// capacity`). `weighted` builds the default decaying weights
    /// `w_j = 1/(j+1)` over `dims` dimensions (dimension 0 matters most).
    pub fn parse(name: &str, dims: usize) -> Option<Self> {
        match name {
            "scalar" => Some(Self::Scalar),
            "max_norm" | "max" => Some(Self::MaxNorm),
            "weighted" | "weighted_norm" => Some(Self::WeightedNorm(
                (0..dims).map(|j| 1.0 / (j + 1) as f64).collect(),
            )),
            "capacity" | "by_capacity" => Some(Self::NormalizedByCapacity),
            _ => None,
        }
    }

    /// The grid-axis name of this objective.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::MaxNorm => "max_norm",
            Self::WeightedNorm(_) => "weighted",
            Self::NormalizedByCapacity => "capacity",
        }
    }

    /// Whether this objective over `dims` dimensions is well-formed
    /// (weighted norms need exactly one finite weight per dimension).
    pub fn validate(&self, dims: usize) -> bool {
        match self {
            Self::WeightedNorm(w) => w.len() == dims && w.iter().all(|x| x.is_finite()),
            _ => dims >= 1,
        }
    }

    /// The comparison key of the tentative load `load + occ · demand`
    /// without materializing the sum: the key the `occ`-th tentative ball
    /// of a probed bin competes with (`occ = 0` keys the resting state).
    ///
    /// `caps` are the bin's per-dimension capacities (`None` = all 1),
    /// used only by [`PlacementObjective::NormalizedByCapacity`].
    ///
    /// Keys are `f64` but **integer-valued** for `Scalar` and `MaxNorm`
    /// (loads are `u32`, sums stay below 2^53), so `total_cmp` on them
    /// orders exactly like the underlying integers — the property the
    /// dims=1 bit-identity rests on.
    #[inline]
    pub fn tentative_key(
        &self,
        load: &[u32],
        demand: &[u32],
        occ: u32,
        caps: Option<&[u32]>,
    ) -> f64 {
        debug_assert_eq!(load.len(), demand.len());
        match self {
            Self::Scalar => {
                let mut sum = 0u64;
                for j in 0..load.len() {
                    sum += u64::from(load[j]) + u64::from(occ) * u64::from(demand[j]);
                }
                sum as f64
            }
            Self::MaxNorm => {
                let mut max = 0u64;
                for j in 0..load.len() {
                    max = max.max(u64::from(load[j]) + u64::from(occ) * u64::from(demand[j]));
                }
                max as f64
            }
            Self::WeightedNorm(w) => {
                debug_assert_eq!(w.len(), load.len());
                let mut sum = 0.0f64;
                for j in 0..load.len() {
                    sum += w[j] * (f64::from(load[j]) + f64::from(occ) * f64::from(demand[j]));
                }
                sum
            }
            Self::NormalizedByCapacity => {
                let mut max = 0.0f64;
                for j in 0..load.len() {
                    let tentative = f64::from(load[j]) + f64::from(occ) * f64::from(demand[j]);
                    let c = caps.map_or(1.0, |c| f64::from(c[j]));
                    max = max.max(tentative / c);
                }
                max
            }
        }
    }

    /// The comparison key of a resting load vector.
    #[inline]
    pub fn key(&self, load: &[u32], caps: Option<&[u32]>) -> f64 {
        self.tentative_key(load, load, 0, caps)
    }
}

/// The vector-load store: `n` bins × `dims` dimensions of accumulated
/// demand, with the same cached-observable discipline as [`LoadVector`]
/// applied per dimension, plus an embedded scalar [`LoadVector`] counting
/// balls so the scalar observables (max load, ν_y, gap, utilization) stay
/// exact and cheap.
///
/// Layout is flat strided (`loads[bin * dims + j]`) — one contiguous
/// allocation, cache-friendly probes. Per-dimension histograms keep
/// `hist[j].len() == dim_max[j] + 1` (the [`LoadVector`] truncation
/// discipline), so add-then-remove round-trips bit-exactly.
///
/// ```
/// use kdchoice_core::VectorLoad;
///
/// let mut store = VectorLoad::new(2, 4);
/// store.add(1, &[3, 1]); // one ball demanding (3, 1)
/// assert_eq!(store.load_vec(1), &[3, 1]);
/// assert_eq!(store.dim_max(0), 3);
/// assert_eq!(store.dim_max(1), 1);
/// use kdchoice_core::BinStore;
/// assert_eq!(store.max_load(), 1); // one *ball*
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VectorLoad {
    dims: usize,
    /// `loads[bin * dims + j]` = accumulated demand of bin `bin` in
    /// dimension `j`.
    loads: Vec<u32>,
    /// Per-dimension maximum load.
    dim_max: Vec<u32>,
    /// `dim_hist[j][l]` = bins whose dimension-`j` load is exactly `l`;
    /// always `dim_max[j] + 1` entries.
    dim_hist: Vec<Vec<u64>>,
    /// Per-dimension total demand `Σ_bin loads[bin][j]`.
    dim_total: Vec<u64>,
    /// Per-bin per-dimension capacities, strided like `loads`; `None`
    /// when every capacity is 1.
    capacities: Option<Vec<u32>>,
    /// Scalar ball counts (with scalar capacities when the store was
    /// built from a heterogeneous capacity map).
    balls: LoadVector,
}

impl VectorLoad {
    /// Creates `n` empty bins of `dims` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `dims` is outside `1..=MAX_DIMS`.
    pub fn new(dims: usize, n: usize) -> Self {
        assert!(n > 0, "need at least one bin");
        assert!(
            (1..=MAX_DIMS).contains(&dims),
            "dims must be in 1..={MAX_DIMS} (got {dims})"
        );
        Self {
            dims,
            loads: vec![0; n * dims],
            dim_max: vec![0; dims],
            dim_hist: vec![vec![n as u64]; dims],
            dim_total: vec![0; dims],
            capacities: None,
            balls: LoadVector::new(n),
        }
    }

    /// Creates empty bins from a **scalar** per-bin capacity map,
    /// replicated across every dimension (a 4× server is 4× in cpu and
    /// mem alike) — the `hetero` scenario's construction. The embedded
    /// ball counter carries the same capacities, so the scalar
    /// utilization observables work unchanged.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`LoadVector::with_capacities`]
    /// and [`VectorLoad::new`].
    pub fn with_capacities(dims: usize, capacities: &[u32]) -> Self {
        let mut state = Self::new(dims, capacities.len().max(1));
        state.balls = LoadVector::with_capacities(capacities);
        if capacities.iter().any(|&c| c != 1) {
            let mut strided = Vec::with_capacity(capacities.len() * dims);
            for &c in capacities {
                strided.resize(strided.len() + dims, c);
            }
            state.capacities = Some(strided);
        }
        state
    }

    /// Creates empty bins from a full **strided** per-bin per-dimension
    /// capacity map (`caps[bin * dims + j]`) — the scheduler's
    /// vector-capacity workers. Scalar utilization observables use
    /// dimension 0 as the scalar capacity.
    ///
    /// # Panics
    ///
    /// Panics if `strided.len()` is not a positive multiple of `dims`, or
    /// any capacity is 0.
    pub fn with_vector_capacities(dims: usize, strided: &[u32]) -> Self {
        assert!(
            !strided.is_empty() && strided.len().is_multiple_of(dims),
            "capacity map must be a positive multiple of dims"
        );
        assert!(
            strided.iter().all(|&c| c > 0),
            "every capacity must be >= 1"
        );
        let n = strided.len() / dims;
        let mut state = Self::new(dims, n);
        if strided.iter().any(|&c| c != 1) {
            let scalar: Vec<u32> = (0..n).map(|b| strided[b * dims]).collect();
            state.balls = LoadVector::with_capacities(&scalar);
            state.capacities = Some(strided.to_vec());
        }
        state
    }

    /// The dimensionality `D`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The number of bins.
    #[inline]
    pub fn n(&self) -> usize {
        self.loads.len() / self.dims
    }

    /// The load vector of `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n`.
    #[inline]
    pub fn load_vec(&self, bin: usize) -> &[u32] {
        &self.loads[bin * self.dims..(bin + 1) * self.dims]
    }

    /// The full strided load table (`loads[bin * dims + j]`).
    pub fn loads_strided(&self) -> &[u32] {
        &self.loads
    }

    /// The capacity vector of `bin`, or `None` when every capacity is 1.
    #[inline]
    pub fn capacity_vec(&self, bin: usize) -> Option<&[u32]> {
        self.capacities
            .as_ref()
            .map(|c| &c[bin * self.dims..(bin + 1) * self.dims])
    }

    /// The embedded scalar ball counter (exact ball-count observables).
    pub fn balls(&self) -> &LoadVector {
        &self.balls
    }

    /// The maximum load of dimension `j`.
    #[inline]
    pub fn dim_max(&self, j: usize) -> u32 {
        self.dim_max[j]
    }

    /// The total demand accumulated in dimension `j`.
    #[inline]
    pub fn dim_total(&self, j: usize) -> u64 {
        self.dim_total[j]
    }

    /// The average load of dimension `j`.
    pub fn dim_average(&self, j: usize) -> f64 {
        self.dim_total[j] as f64 / self.n() as f64
    }

    /// The gap `max_j − average_j` of dimension `j` — the per-dimension
    /// analogue of Theorem 2's observable.
    pub fn dim_gap(&self, j: usize) -> f64 {
        f64::from(self.dim_max[j]) - self.dim_average(j)
    }

    /// All per-dimension gaps, indexed by dimension.
    pub fn dim_gaps(&self) -> Vec<f64> {
        (0..self.dims).map(|j| self.dim_gap(j)).collect()
    }

    /// The count-by-load histogram of dimension `j`.
    pub fn dim_histogram(&self, j: usize) -> &[u64] {
        &self.dim_hist[j]
    }

    /// Places one ball of demand vector `demand` into `bin`; returns the
    /// ball's **scalar height** (the bin's ball count after placement —
    /// the quantity the paper's height histograms record).
    ///
    /// O(dims) with the same per-dimension histogram bookkeeping as
    /// [`LoadVector::add_ball`].
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n` or `demand.len() != dims`.
    pub fn add(&mut self, bin: usize, demand: &[u32]) -> u32 {
        assert_eq!(demand.len(), self.dims, "demand/dims mismatch");
        let base = bin * self.dims;
        for (j, &delta) in demand.iter().enumerate() {
            if delta == 0 {
                continue;
            }
            let old = self.loads[base + j];
            let new = old + delta;
            self.loads[base + j] = new;
            let hist = &mut self.dim_hist[j];
            hist[old as usize] -= 1;
            if new as usize >= hist.len() {
                hist.resize(new as usize + 1, 0);
            }
            hist[new as usize] += 1;
            if new > self.dim_max[j] {
                self.dim_max[j] = new;
            }
            self.dim_total[j] += u64::from(delta);
        }
        self.balls.add_ball(bin)
    }

    /// Removes one ball of demand vector `demand` from `bin`; returns the
    /// removed ball's scalar height. Inverse of [`VectorLoad::add`]:
    /// add-then-remove round-trips the store bit-exactly (histograms
    /// truncate emptied top levels like [`LoadVector::remove_ball`]).
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n`, `demand.len() != dims`, the bin holds no
    /// ball, or any dimension would go negative.
    pub fn remove(&mut self, bin: usize, demand: &[u32]) -> u32 {
        assert_eq!(demand.len(), self.dims, "demand/dims mismatch");
        let base = bin * self.dims;
        for (j, &delta) in demand.iter().enumerate() {
            if delta == 0 {
                continue;
            }
            let old = self.loads[base + j];
            assert!(
                old >= delta,
                "removing demand {delta} from bin {bin} dim {j} holding {old}"
            );
            let new = old - delta;
            self.loads[base + j] = new;
            let hist = &mut self.dim_hist[j];
            hist[old as usize] -= 1;
            hist[new as usize] += 1;
            if old == self.dim_max[j] && hist[old as usize] == 0 {
                // The top level emptied; scan down for the highest
                // remaining occupied level (the scan terminates at `new`
                // at the latest, where this bin now sits). Truncate so
                // add-then-remove is a bit-exact round trip.
                let mut m = old - 1;
                while hist[m as usize] == 0 {
                    m -= 1;
                }
                self.dim_max[j] = m;
                hist.truncate(m as usize + 1);
            }
            self.dim_total[j] -= u64::from(delta);
        }
        self.balls.remove_ball(bin)
    }

    /// Verifies every cached observable against a from-scratch recount
    /// (per-dimension histograms/max/total, embedded ball counter).
    /// O(n · dims); tests and debug assertions only.
    pub fn check_invariants(&self) -> bool {
        let n = self.n();
        for j in 0..self.dims {
            let mut hist = vec![0u64; self.dim_hist[j].len()];
            let mut max = 0u32;
            let mut total = 0u64;
            for bin in 0..n {
                let l = self.loads[bin * self.dims + j];
                if (l as usize) >= hist.len() {
                    return false;
                }
                hist[l as usize] += 1;
                max = max.max(l);
                total += u64::from(l);
            }
            if hist != self.dim_hist[j]
                || max != self.dim_max[j]
                || total != self.dim_total[j]
                || self.dim_hist[j].len() != self.dim_max[j] as usize + 1
            {
                return false;
            }
        }
        self.balls.check_invariants()
    }
}

/// Scalar ball-count view: a [`VectorLoad`] behind the [`BinStore`] seam
/// counts *balls* (unit demand per [`BinStore::add_ball`]), so every
/// scalar consumer (schedulers probing queue lengths, observable
/// renderers) works unchanged.
impl BinStore for VectorLoad {
    #[inline]
    fn n(&self) -> usize {
        VectorLoad::n(self)
    }

    #[inline]
    fn load(&self, bin: usize) -> u32 {
        self.balls.load(bin)
    }

    fn add_ball(&mut self, bin: usize) -> u32 {
        let base = bin * self.dims;
        for j in 0..self.dims {
            let old = self.loads[base + j];
            let new = old + 1;
            self.loads[base + j] = new;
            let hist = &mut self.dim_hist[j];
            hist[old as usize] -= 1;
            if new as usize >= hist.len() {
                hist.resize(new as usize + 1, 0);
            }
            hist[new as usize] += 1;
            if new > self.dim_max[j] {
                self.dim_max[j] = new;
            }
            self.dim_total[j] += 1;
        }
        self.balls.add_ball(bin)
    }

    fn remove_ball(&mut self, bin: usize) -> u32 {
        let unit = [1u32; MAX_DIMS];
        let height = self.balls.load(bin); // height before removal
        let _ = VectorLoad::remove(self, bin, &unit[..self.dims]);
        height
    }

    #[inline]
    fn max_load(&self) -> u32 {
        self.balls.max_load()
    }

    #[inline]
    fn total_balls(&self) -> u64 {
        self.balls.total_balls()
    }

    #[inline]
    fn nu(&self, y: u32) -> u64 {
        self.balls.nu(y)
    }

    #[inline]
    fn capacity(&self, bin: usize) -> u32 {
        self.balls.capacity(bin)
    }

    #[inline]
    fn total_capacity(&self) -> u64 {
        self.balls.total_capacity()
    }

    #[inline]
    fn max_utilization(&self) -> f64 {
        self.balls.max_utilization()
    }

    #[inline]
    fn utilization_gap(&self) -> f64 {
        self.balls.utilization_gap()
    }

    fn copy_loads_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(self.balls.loads());
    }

    fn histogram(&self) -> Vec<u64> {
        self.balls.load_histogram().to_vec()
    }
}

/// One tentative slot of the vector kernel: `(objective key, random
/// tie-break, scalar ball height, bin index)`.
pub type VectorSlot = (f64, u64, u32, usize);

/// The vector analogue of `decide_k_least`: selects the `k` tentative
/// slots with the smallest `(objective key, tie)` among the (multiset of)
/// `sorted_probes`, where the `occ`-th tentative ball of a probed bin is
/// keyed at `objective(load + occ · demand)`.
///
/// The RNG contract is **identical** to the scalar kernel: exactly one
/// `rng.next_u64()` tie-break per tentative slot, drawn in sorted-probe
/// run order; comparison is `total_cmp` on the key then integer on the
/// tie. With `dims = 1`, `objective = Scalar`, and unit `demand`, keys
/// are the scalar heights as integer `f64`s, so the selected winners,
/// their order in `slots[..k]`, and their recorded heights coincide
/// bit-exactly with the scalar kernel's.
///
/// Appends the winning bins to `bins_out` and returns the maximum scalar
/// height among the winners.
///
/// # Panics
///
/// Panics unless `1 <= k <= sorted_probes.len()` and `demand.len()`
/// matches the store's dimensionality.
#[allow(clippy::too_many_arguments)]
pub fn decide_k_least_vector<R: RngCore + ?Sized>(
    store: &VectorLoad,
    sorted_probes: &[usize],
    k: usize,
    demand: &[u32],
    objective: &PlacementObjective,
    rng: &mut R,
    slots: &mut Vec<VectorSlot>,
    bins_out: &mut Vec<usize>,
) -> u32 {
    assert!(
        k >= 1 && k <= sorted_probes.len(),
        "need 1 <= k <= probes (k={k}, probes={})",
        sorted_probes.len()
    );
    assert_eq!(demand.len(), store.dims(), "demand/dims mismatch");
    slots.clear();
    let mut i = 0;
    while i < sorted_probes.len() {
        let bin = sorted_probes[i];
        let load = store.load_vec(bin);
        let caps = store.capacity_vec(bin);
        let base_balls = store.balls().load(bin);
        let mut occ = 0u32;
        while i < sorted_probes.len() && sorted_probes[i] == bin {
            occ += 1;
            let key = objective.tentative_key(load, demand, occ, caps);
            slots.push((key, rng.next_u64(), base_balls + occ, bin));
            i += 1;
        }
    }
    if k < slots.len() {
        slots.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    }
    let mut max_height = 0;
    for &(_, _, height, bin) in &slots[..k] {
        max_height = max_height.max(height);
        bins_out.push(bin);
    }
    max_height
}

/// Runs a static (k,d)-choice fill over a [`VectorLoad`] store — the
/// vector analogue of `run_once_compact`, and the driver behind the
/// `dims=`/`objective=`/`demand=` axes of the `static`/`hetero`
/// scenarios and the `vector_loads` bench section.
///
/// Each round: sample `d` probes (uniform draws batched exactly like the
/// scalar driver, weighted through [`ProbeDistribution::fill`]), sort,
/// sample **one demand vector** shared by the round's `k` balls (jobs
/// whose `k` tasks share a demand, matching the scheduler model), then
/// commit the winners of [`decide_k_least_vector`]. Demand is drawn
/// *after* the probes and *before* the tie-breaks — part of the stream
/// contract ([`DemandDistribution::Unit`] draws nothing, keeping the
/// dims=1 stream bit-identical to the scalar driver's).
///
/// `capacities` is the scalar per-bin map of the `hetero` scenario,
/// replicated across dimensions (see [`VectorLoad::with_capacities`]).
///
/// The returned [`RunResult`] reports scalar *ball* observables (same
/// meaning as every other driver); per-dimension gaps come from the
/// returned store's [`VectorLoad::dim_gaps`].
///
/// # Panics
///
/// Panics unless `1 <= k <= d`, `config.n > 0`, `objective.validate(dims)`
/// holds, and any capacity map has length `config.n`.
#[allow(clippy::too_many_arguments)]
pub fn run_once_vector(
    k: usize,
    d: usize,
    dims: usize,
    objective: &PlacementObjective,
    demand: &DemandDistribution,
    probes: &ProbeDistribution,
    capacities: Option<&[u32]>,
    config: &RunConfig,
) -> (RunResult, VectorLoad) {
    assert!(k >= 1 && k <= d, "need 1 <= k <= d (k={k}, d={d})");
    let n = config.n;
    assert!(n > 0, "need at least one bin");
    assert!(
        objective.validate(dims),
        "objective {} is not valid for dims={dims}",
        objective.name()
    );
    let mut store = match capacities {
        None => VectorLoad::new(dims, n),
        Some(caps) => {
            assert_eq!(caps.len(), n, "capacity map/bin-count mismatch");
            VectorLoad::with_capacities(dims, caps)
        }
    };
    let mut rng = Xoshiro256PlusPlus::from_u64(config.seed);
    let mut heights = HeightHistogram::new();
    let mut samples: Vec<usize> = Vec::with_capacity(d);
    let mut slots: Vec<VectorSlot> = Vec::with_capacity(d);
    let mut winners: Vec<usize> = Vec::with_capacity(k);
    let mut demand_buf: Vec<u32> = Vec::with_capacity(dims);
    let uniform = probes.is_uniform();
    let mut thrown = 0u64;
    let mut rounds = 0u64;
    let mut messages = 0u64;
    while thrown < config.balls {
        let balls = (config.balls - thrown).min(k as u64) as usize;
        if uniform {
            kdchoice_prng::sample::fill_with_replacement(&mut rng, n, d, &mut samples);
        } else {
            probes.fill(&mut rng, n, d, &mut samples);
        }
        samples.sort_unstable();
        demand.sample_into(&mut rng, dims, &mut demand_buf);
        winners.clear();
        decide_k_least_vector(
            &store,
            &samples,
            balls,
            &demand_buf,
            objective,
            &mut rng,
            &mut slots,
            &mut winners,
        );
        for &(_, _, height, bin) in &slots[..balls] {
            heights.record(height);
            store.add(bin, &demand_buf);
        }
        thrown += balls as u64;
        messages += d as u64;
        rounds += 1;
    }
    debug_assert!(store.check_invariants());
    let result = RunResult {
        name: format!("({k},{d})-choice@vec{dims}:{}", objective.name()),
        n,
        balls_thrown: thrown,
        balls_placed: thrown,
        max_load: store.balls().max_load(),
        gap: store.balls().max_load() as f64 - thrown as f64 / n as f64,
        messages,
        rounds,
        load_histogram: store.balls().load_histogram().to_vec(),
        height_histogram: heights.into_counts(),
        seed: config.seed,
    };
    (result, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::StoreKind;
    use crate::driver::run_once_compact;
    use crate::snapshot::decide_k_least;

    #[test]
    fn new_store_is_empty_and_invariant() {
        let s = VectorLoad::new(3, 8);
        assert_eq!(s.dims(), 3);
        assert_eq!(VectorLoad::n(&s), 8);
        assert_eq!(s.load_vec(5), &[0, 0, 0]);
        assert_eq!(s.dim_gaps(), vec![0.0, 0.0, 0.0]);
        assert!(s.check_invariants());
    }

    #[test]
    #[should_panic(expected = "dims must be in")]
    fn oversized_dims_rejected() {
        let _ = VectorLoad::new(MAX_DIMS + 1, 4);
    }

    #[test]
    fn add_and_remove_round_trip_exactly() {
        let mut s = VectorLoad::new(2, 4);
        s.add(0, &[2, 5]);
        s.add(1, &[1, 1]);
        let snapshot = s.clone();
        assert_eq!(s.add(0, &[4, 1]), 2); // second ball in bin 0
        assert_eq!(s.dim_max(0), 6);
        assert_eq!(s.dim_max(1), 6);
        assert_eq!(s.remove(0, &[4, 1]), 2);
        assert_eq!(s, snapshot, "add then remove must round-trip exactly");
        assert!(s.check_invariants());
    }

    #[test]
    fn per_dim_observables_track_independently() {
        let mut s = VectorLoad::new(2, 4);
        s.add(0, &[3, 1]);
        s.add(1, &[1, 2]);
        assert_eq!(s.dim_max(0), 3);
        assert_eq!(s.dim_max(1), 2);
        assert_eq!(s.dim_total(0), 4);
        assert_eq!(s.dim_total(1), 3);
        assert!((s.dim_gap(0) - 2.0).abs() < 1e-12);
        assert!((s.dim_gap(1) - 1.25).abs() < 1e-12);
        assert_eq!(s.dim_histogram(0), &[2, 1, 0, 1]);
        // Scalar view counts balls, not demand.
        assert_eq!(s.max_load(), 1);
        assert_eq!(s.total_balls(), 2);
        assert!(s.check_invariants());
    }

    #[test]
    fn remove_rescans_max_across_gap_levels() {
        // Bin 0 jumps to 10, bin 1 sits at 3; removing bin 0's ball must
        // land the max back on 3, not 9.
        let mut s = VectorLoad::new(1, 2);
        s.add(0, &[10]);
        s.add(1, &[3]);
        s.remove(0, &[10]);
        assert_eq!(s.dim_max(0), 3);
        assert_eq!(s.dim_histogram(0).len(), 4);
        assert!(s.check_invariants());
    }

    #[test]
    fn vector_churn_keeps_invariants() {
        use rand::Rng;
        let mut s = VectorLoad::new(3, 16);
        let mut rng = Xoshiro256PlusPlus::from_u64(77);
        let mut live: Vec<(usize, [u32; 3])> = Vec::new();
        for step in 0..8000 {
            if live.is_empty() || rng.gen_bool(0.6) {
                let bin = rng.gen_range(0..16);
                let demand = [
                    rng.gen_range(0..5),
                    rng.gen_range(1..4),
                    rng.gen_range(0..8),
                ];
                s.add(bin, &demand);
                live.push((bin, demand));
            } else {
                let i = rng.gen_range(0..live.len());
                let (bin, demand) = live.swap_remove(i);
                s.remove(bin, &demand);
            }
            if step % 1024 == 0 {
                assert!(s.check_invariants(), "corrupted at step {step}");
            }
        }
        assert_eq!(s.total_balls(), live.len() as u64);
        assert!(s.check_invariants());
    }

    #[test]
    fn bin_store_view_counts_balls() {
        let mut s = VectorLoad::new(2, 4);
        assert_eq!(BinStore::add_ball(&mut s, 1), 1);
        assert_eq!(BinStore::add_ball(&mut s, 1), 2);
        assert_eq!(s.load_vec(1), &[2, 2]);
        assert_eq!(BinStore::load(&s, 1), 2);
        assert_eq!(BinStore::remove_ball(&mut s, 1), 2);
        assert_eq!(s.load_vec(1), &[1, 1]);
        assert_eq!(s.nu(1), 1);
        let mut loads = Vec::new();
        s.copy_loads_into(&mut loads);
        assert_eq!(loads, vec![0, 1, 0, 0]);
        assert!(s.check_invariants());
    }

    #[test]
    fn scalar_capacities_replicate_and_normalize() {
        let s = VectorLoad::with_capacities(2, &[4, 1, 1]);
        assert_eq!(s.capacity_vec(0), Some(&[4, 4][..]));
        assert_eq!(s.capacity_vec(1), Some(&[1, 1][..]));
        assert_eq!(s.capacity(0), 4);
        assert_eq!(s.total_capacity(), 6);
        // Uniform map stays capacity-free.
        let u = VectorLoad::with_capacities(2, &[1, 1, 1]);
        assert!(u.capacity_vec(0).is_none());
    }

    #[test]
    fn vector_capacities_take_strided_maps() {
        let s = VectorLoad::with_vector_capacities(2, &[4, 2, 1, 1]);
        assert_eq!(VectorLoad::n(&s), 2);
        assert_eq!(s.capacity_vec(0), Some(&[4, 2][..]));
        assert_eq!(s.capacity(0), 4); // dim-0 scalar capacity
    }

    #[test]
    fn objective_keys_match_hand_computation() {
        let load = [3u32, 1];
        let demand = [2u32, 4];
        assert_eq!(
            PlacementObjective::Scalar.tentative_key(&load, &demand, 1, None),
            10.0
        );
        assert_eq!(
            PlacementObjective::MaxNorm.tentative_key(&load, &demand, 1, None),
            5.0
        );
        let w = PlacementObjective::WeightedNorm(vec![1.0, 0.5]);
        assert!((w.tentative_key(&load, &demand, 1, None) - (5.0 + 0.5 * 5.0)).abs() < 1e-12);
        let caps = [10u32, 2];
        assert!(
            (PlacementObjective::NormalizedByCapacity.tentative_key(
                &load,
                &demand,
                1,
                Some(&caps)
            ) - 2.5)
                .abs()
                < 1e-12
        );
        // occ = 0 keys the resting state.
        assert_eq!(PlacementObjective::Scalar.key(&load, None), 4.0);
        assert_eq!(PlacementObjective::MaxNorm.key(&load, None), 3.0);
    }

    #[test]
    fn objective_parse_and_validate() {
        assert_eq!(
            PlacementObjective::parse("scalar", 2),
            Some(PlacementObjective::Scalar)
        );
        assert_eq!(
            PlacementObjective::parse("max_norm", 2),
            Some(PlacementObjective::MaxNorm)
        );
        let w = PlacementObjective::parse("weighted", 3).unwrap();
        assert!(w.validate(3));
        assert!(!w.validate(2));
        assert_eq!(
            PlacementObjective::parse("capacity", 2),
            Some(PlacementObjective::NormalizedByCapacity)
        );
        assert_eq!(PlacementObjective::parse("psychic", 2), None);
    }

    #[test]
    fn vector_kernel_is_bit_identical_to_scalar_kernel_at_dims_1() {
        // The heart of the determinism contract: same probes, same RNG,
        // same winners, same heights, same generator state afterward.
        let n = 64;
        let mut scalar = LoadVector::new(n);
        let mut vector = VectorLoad::new(1, n);
        let mut rng_a = Xoshiro256PlusPlus::from_u64(0xABCDE);
        let mut rng_b = Xoshiro256PlusPlus::from_u64(0xABCDE);
        let mut probe_rng = Xoshiro256PlusPlus::from_u64(7);
        let mut slots_a: Vec<(u32, u64, usize)> = Vec::new();
        let mut slots_b: Vec<VectorSlot> = Vec::new();
        for round in 0..500 {
            let d = 2 + round % 5;
            let k = 1 + round % d.min(3);
            let mut probes = Vec::new();
            kdchoice_prng::sample::fill_with_replacement(&mut probe_rng, n, d, &mut probes);
            probes.sort_unstable();
            let mut win_a = Vec::new();
            let mut win_b = Vec::new();
            let ha = decide_k_least(&scalar, &probes, k, &mut rng_a, &mut slots_a, &mut win_a);
            let hb = decide_k_least_vector(
                &vector,
                &probes,
                k,
                &[1],
                &PlacementObjective::Scalar,
                &mut rng_b,
                &mut slots_b,
                &mut win_b,
            );
            assert_eq!(win_a, win_b, "winners diverged in round {round}");
            assert_eq!(ha, hb, "max heights diverged in round {round}");
            assert_eq!(rng_a, rng_b, "generator states diverged in round {round}");
            for ((sh, _, sb), vs) in slots_a[..k].iter().zip(&slots_b[..k]) {
                assert_eq!(*sh, vs.2);
                assert_eq!(*sb, vs.3);
            }
            for &bin in &win_a {
                scalar.add_ball(bin);
                vector.add(bin, &[1]);
            }
        }
        assert_eq!(scalar.loads(), vector.loads_strided());
    }

    #[test]
    fn run_once_vector_dims_1_scalar_matches_run_once_compact() {
        for (k, d, n, balls) in [(1, 2, 256, 1024u64), (2, 4, 512, 512), (3, 7, 128, 999)] {
            let cfg = RunConfig::new(n, 0x5EED ^ (k as u64)).with_balls(balls);
            let (scalar, _) = run_once_compact(
                StoreKind::Exact,
                k,
                d,
                &ProbeDistribution::Uniform,
                None,
                &cfg,
            );
            let (vector, store) = run_once_vector(
                k,
                d,
                1,
                &PlacementObjective::Scalar,
                &DemandDistribution::Unit,
                &ProbeDistribution::Uniform,
                None,
                &cfg,
            );
            assert_eq!(scalar.max_load, vector.max_load);
            assert_eq!(scalar.gap, vector.gap);
            assert_eq!(scalar.load_histogram, vector.load_histogram);
            assert_eq!(scalar.height_histogram, vector.height_histogram);
            assert_eq!(scalar.messages, vector.messages);
            assert_eq!(scalar.rounds, vector.rounds);
            // dim-0 gap IS the scalar gap at dims=1.
            assert!((store.dim_gap(0) - scalar.gap).abs() < 1e-12);
        }
    }

    #[test]
    fn max_norm_beats_scalar_on_anti_correlated_demands() {
        // Anti-correlated demands are the adversarial case for the scalar
        // objective: summing dimensions hides which dimension is hot. The
        // max-norm objective must not do *worse* on the worst dimension.
        let cfg = RunConfig::new(256, 99).with_balls(4096);
        let demand = DemandDistribution::anti_correlated(4).unwrap();
        let (_, scalar_store) = run_once_vector(
            1,
            2,
            2,
            &PlacementObjective::Scalar,
            &demand,
            &ProbeDistribution::Uniform,
            None,
            &cfg,
        );
        let (_, max_store) = run_once_vector(
            1,
            2,
            2,
            &PlacementObjective::MaxNorm,
            &demand,
            &ProbeDistribution::Uniform,
            None,
            &cfg,
        );
        let worst_scalar = scalar_store.dim_gaps().into_iter().fold(0.0, f64::max);
        let worst_max = max_store.dim_gaps().into_iter().fold(0.0, f64::max);
        assert!(
            worst_max <= worst_scalar + 2.0,
            "max-norm per-dim gap {worst_max} vs scalar {worst_scalar}"
        );
    }

    #[test]
    fn d_choice_collapses_per_dim_gap_vs_single_choice() {
        // The Narang–Dutta headline at dims=2: two choices shrink every
        // dimension's gap dramatically vs random placement.
        let cfg = RunConfig::new(512, 4242).with_balls(8 * 512);
        let demand = DemandDistribution::uniform(4).unwrap();
        let (_, one) = run_once_vector(
            1,
            1,
            2,
            &PlacementObjective::MaxNorm,
            &demand,
            &ProbeDistribution::Uniform,
            None,
            &cfg,
        );
        let (_, two) = run_once_vector(
            1,
            2,
            2,
            &PlacementObjective::MaxNorm,
            &demand,
            &ProbeDistribution::Uniform,
            None,
            &cfg,
        );
        for j in 0..2 {
            assert!(
                two.dim_gap(j) < one.dim_gap(j),
                "dim {j}: d=2 gap {} !< d=1 gap {}",
                two.dim_gap(j),
                one.dim_gap(j)
            );
        }
    }

    #[test]
    fn capacity_objective_prefers_big_bins() {
        // One 8×-capacity bin among unit bins: under the capacity
        // objective it should absorb far more than 1/n of the demand.
        let mut caps = vec![1u32; 32];
        caps[0] = 8;
        let cfg = RunConfig::new(32, 5).with_balls(2048);
        let (_, store) = run_once_vector(
            1,
            4,
            2,
            &PlacementObjective::NormalizedByCapacity,
            &DemandDistribution::Unit,
            &ProbeDistribution::Uniform,
            Some(&caps),
            &cfg,
        );
        let big = store.balls().load(0) as f64;
        let avg = 2048.0 / 32.0;
        assert!(big > 3.0 * avg, "big bin took {big} vs average {avg}");
        assert!(store.check_invariants());
    }

    #[test]
    #[should_panic(expected = "not valid for dims")]
    fn mismatched_weighted_norm_rejected() {
        let _ = run_once_vector(
            1,
            2,
            3,
            &PlacementObjective::WeightedNorm(vec![1.0]),
            &DemandDistribution::Unit,
            &ProbeDistribution::Uniform,
            None,
            &RunConfig::new(8, 1),
        );
    }
}
