//! The (k,d)-choice balls-into-bins process — core library.
//!
//! This crate implements the primary contribution of *"A Generalization of
//! Multiple Choice Balls-into-Bins: Tight Bounds"* (Park, PODC 2011 /
//! arXiv:1201.3310):
//!
//! > **The (k,d)-choice process.** In each round, `k ≤ d` balls are placed
//! > into the `k` least loaded (ties broken randomly) out of `d` bins chosen
//! > independently and uniformly at random **with replacement**, such that a
//! > bin sampled `m ≥ 1` times receives at most `m` balls.
//!
//! The multiplicity rule is realized through the paper's equivalent
//! formulation: place one tentative ball in each of the `d` sampled slots
//! (heights `L+1, …, L+c` for a bin of load `L` sampled `c` times), then
//! discard the `d − k` tentative balls of maximal height.
//!
//! ## Entry points
//!
//! * [`KdChoice`] — the round-based process, with the paper's
//!   [`RoundPolicy::Multiplicity`] rule or the §7 future-work
//!   [`RoundPolicy::Unrestricted`] relaxation.
//! * [`SerializedKdChoice`] — the serialization Aσ of Definition 1, used to
//!   validate Property (i) (`Aσ ≡ A` in distribution).
//! * [`LoadVector`] — the bin-state substrate with O(1) max-load and ν_y
//!   queries, including [`LoadVector::remove_ball`] departures for the §7
//!   dynamic process.
//! * [`BinStore`] — the substrate trait naming that observable surface,
//!   shared by the scheduler, storage, and concurrent-service layers.
//! * [`run_once`] / [`run_trials`] / [`run_sweep`] — deterministic,
//!   seedable drivers; trials and sweep grids run in parallel threads with
//!   per-trial derived seeds, histogramming ball heights inline.
//! * [`RoundProcess`] — the monomorphized engine trait every process
//!   implements; [`BallsIntoBins`] is its object-safe shim for
//!   `Box<dyn BallsIntoBins>` harnesses. [`EngineVersion`] selects the
//!   batched (default) or legacy (k,d)-choice round engine.
//! * [`StaticScenario`] / [`DynamicScenario`] — the core experiment
//!   families plugged into the workspace experiment layer
//!   (`kdchoice-expt`), runnable by name from the `kdchoice-bench` CLI.
//!
//! ```
//! use kdchoice_core::{KdChoice, RunConfig, run_once};
//!
//! # fn main() -> Result<(), kdchoice_core::ConfigError> {
//! let mut process = KdChoice::new(2, 3)?;
//! let result = run_once(&mut process, &RunConfig::new(1 << 14, 7));
//! assert_eq!(result.balls_placed, 1 << 14);
//! assert!(result.max_load >= 2 && result.max_load <= 8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the one `#[allow(unsafe_code)]` carve-out is the
// software-prefetch intrinsic in `snapshot::prefetch_read` (a hint with
// no memory-safety obligations); everything else stays safe Rust.
#![deny(unsafe_code)]

mod compact;
mod driver;
mod dynamic;
mod error;
mod kd;
mod policy;
pub mod probes;
mod process;
pub mod scenario;
mod serialized;
mod snapshot;
mod state;
mod store;
mod trace;
mod vector;

pub use compact::{BinSlab, LoadSnapshot, PackedLoadSnapshot, PackedStore, SketchStore, StoreKind};
pub use driver::{
    run_once, run_once_compact, run_once_on, run_once_with_state, run_sweep, run_trials,
    HeightHistogram, RunConfig, RunResult, TrialSet,
};
pub use dynamic::DynamicKChoice;
pub use error::ConfigError;
pub use kd::{EngineVersion, KdChoice};
pub use policy::RoundPolicy;
pub use probes::{two_tier_capacities, ProbeDistribution};
pub use process::{BallsIntoBins, HeightSink, RoundProcess, RoundStats};
pub use scenario::{DynamicScenario, HeteroScenario, StaticScenario};
pub use serialized::{SerializedKdChoice, SigmaSchedule};
pub use snapshot::{decide_k_least, LoadView, SharedLoadSnapshot};
pub use state::LoadVector;
pub use store::BinStore;
pub use trace::{run_with_trace, TracePoint};
pub use vector::{
    decide_k_least_vector, run_once_vector, PlacementObjective, VectorLoad, VectorSlot, MAX_DIMS,
};
