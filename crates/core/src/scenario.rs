//! The core experiment families as [`kdchoice_expt::Scenario`]s: static
//! (k,d)-choice trials and the §7 dynamic-k variant.
//!
//! These plug the round engines into the workspace experiment layer —
//! the `kdchoice-bench` CLI runs them by name (`static`, `dynamic`) over
//! a parameter grid, in parallel, with the shared report format.

use kdchoice_expt::{Axis, Fields, GridError, GridSpec, Params, Scenario, Value};
use kdchoice_prng::demand::DemandDistribution;

use crate::compact::StoreKind;
use crate::driver::{run_once, run_once_compact, run_once_on, RunConfig, RunResult};
use crate::dynamic::DynamicKChoice;
use crate::kd::{EngineVersion, KdChoice};
use crate::probes::{two_tier_capacities, ProbeDistribution};
use crate::state::LoadVector;
use crate::vector::{run_once_vector, PlacementObjective, MAX_DIMS};

/// Parses the shared `dims=` / `objective=` / `demand=` / `demand_max=`
/// axes of the vector-load extension and validates their combination.
///
/// Returns `(dims, objective, demand)`; `(1, Scalar, Unit)` — the
/// defaults — selects the locked scalar path.
fn vector_params_from(
    params: &Params,
) -> Result<(usize, PlacementObjective, DemandDistribution), GridError> {
    let dims = params.get_usize("dims", 1)?;
    if dims == 0 || dims > MAX_DIMS {
        return Err(params.bad_value("dims", &format!("1 <= dims <= {MAX_DIMS}")));
    }
    let objective =
        PlacementObjective::parse(params.get_raw("objective").unwrap_or("scalar"), dims)
            .ok_or_else(|| {
                params.bad_value("objective", "scalar | max_norm | weighted | capacity")
            })?;
    let demand_max = params.get_u32("demand_max", 4)?;
    if demand_max == 0 {
        return Err(params.bad_value("demand_max", "a per-dimension demand of at least 1"));
    }
    let demand = DemandDistribution::parse(params.get_raw("demand").unwrap_or("unit"), demand_max)
        .map_err(|_| params.bad_value("demand", "unit | uniform | correlated | anti"))?;
    Ok((dims, objective, demand))
}

/// Whether a `(dims, objective, demand)` triple leaves the locked scalar
/// path — anything but `(1, Scalar, Unit)` routes through
/// [`run_once_vector`] and requires `store=exact`.
fn is_vector_cell(
    dims: usize,
    objective: &PlacementObjective,
    demand: &DemandDistribution,
) -> bool {
    dims != 1 || *objective != PlacementObjective::Scalar || *demand != DemandDistribution::Unit
}

/// The report fields shared by every [`RunResult`]-producing scenario.
fn run_result_fields(r: &RunResult) -> Fields {
    vec![
        ("process", Value::Str(r.name.clone().into())),
        ("max_load", Value::U64(u64::from(r.max_load))),
        ("gap", Value::F64(r.gap)),
        ("balls_placed", Value::U64(r.balls_placed)),
        ("messages", Value::U64(r.messages)),
        ("messages_per_ball", Value::F64(r.messages_per_ball())),
        ("rounds", Value::U64(r.rounds)),
        ("nu_2", Value::U64(r.nu(2))),
        ("mu_2", Value::U64(r.mu(2))),
    ]
}

/// Config of one static (k,d)-choice cell: process parameters plus the
/// run shape.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticConfig {
    /// Balls per round, `k`.
    pub k: usize,
    /// Probes per round, `d ≥ k`.
    pub d: usize,
    /// Which round engine to run.
    pub engine: EngineVersion,
    /// Which bin-store representation holds the loads. `Exact` runs the
    /// locked engine path over a [`LoadVector`]; the memory-bounded
    /// kinds run the compact decide-kernel fill ([`run_once_compact`]).
    pub store: StoreKind,
    /// Demand-vector dimensionality (1 = the scalar paper process).
    pub dims: usize,
    /// How probe comparison keys are computed from a load vector.
    pub objective: PlacementObjective,
    /// How per-round demand vectors are drawn.
    pub demand: DemandDistribution,
    /// Bins, balls, and master seed.
    pub run: RunConfig,
}

impl StaticConfig {
    /// Whether this cell routes through the vector driver.
    pub fn is_vector(&self) -> bool {
        is_vector_cell(self.dims, &self.objective, &self.demand)
    }
}

/// Static (k,d)-choice trials — the paper's Table 1 / Theorem 1 setting,
/// as a registry scenario named `static`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticScenario;

impl Scenario for StaticScenario {
    type Config = StaticConfig;
    type Record = RunResult;

    fn name(&self) -> &'static str {
        "static"
    }

    fn description(&self) -> &'static str {
        "static (k,d)-choice balls-into-bins trials (Table 1 / Theorems 1-2)"
    }

    fn run(&self, config: &Self::Config, seed: u64) -> RunResult {
        if config.is_vector() {
            return run_once_vector(
                config.k,
                config.d,
                config.dims,
                &config.objective,
                &config.demand,
                &ProbeDistribution::Uniform,
                None,
                &config.run.with_seed(seed),
            )
            .0;
        }
        if !config.store.is_exact() {
            return run_once_compact(
                config.store,
                config.k,
                config.d,
                &ProbeDistribution::Uniform,
                None,
                &config.run.with_seed(seed),
            )
            .0;
        }
        let mut process = KdChoice::new(config.k, config.d)
            .expect("validated at config construction")
            .with_engine(config.engine);
        run_once(&mut process, &config.run.with_seed(seed))
    }

    fn base_seed(&self, config: &Self::Config) -> u64 {
        config.run.seed
    }

    fn config_fields(&self, config: &Self::Config) -> Fields {
        vec![
            ("k", Value::U64(config.k as u64)),
            ("d", Value::U64(config.d as u64)),
            ("n", Value::U64(config.run.n as u64)),
            ("balls", Value::U64(config.run.balls)),
            ("engine", Value::Str(config.engine.label().into())),
            ("store", Value::Str(config.store.name().into())),
            ("dims", Value::U64(config.dims as u64)),
            ("objective", Value::Str(config.objective.name().into())),
            ("demand", Value::Str(config.demand.name().into())),
        ]
    }

    fn record_fields(&self, record: &Self::Record) -> Fields {
        run_result_fields(record)
    }

    fn axes(&self) -> &'static [Axis] {
        const AXES: &[Axis] = &[
            Axis::new("k", "balls per round (default 2)"),
            Axis::new("d", "probes per round, d >= k (default k+1)"),
            Axis::new("n", "bins (default 2^16; accepts 2^k)"),
            Axis::new("balls", "balls to throw (default n)"),
            Axis::new("engine", "round engine: batched | legacy (default batched)"),
            Axis::new(
                "store",
                "bin store: exact | packed4 | packed8 | sketch (default exact; non-exact kinds use the compact fill)",
            ),
            Axis::new(
                "dims",
                "demand-vector dimensionality, 1..=8 (default 1 = the scalar paper process)",
            ),
            Axis::new(
                "objective",
                "probe comparison key: scalar | max_norm | weighted | capacity (default scalar)",
            ),
            Axis::new(
                "demand",
                "ball demand distribution: unit | uniform | correlated | anti (default unit)",
            ),
            Axis::new(
                "demand_max",
                "largest per-dimension demand of non-unit distributions (default 4)",
            ),
            Axis::new("seed", "master seed (default: --seed)"),
        ];
        AXES
    }

    fn config_from_params(&self, params: &Params) -> Result<Self::Config, GridError> {
        let k = params.get_usize("k", 2)?;
        let d = params.get_usize("d", k + 1)?;
        if k == 0 || k > d {
            return Err(params.bad_value("d", &format!("1 <= k <= d (got k={k}, d={d})")));
        }
        let n = params.get_usize("n", 1 << 16)?;
        if n == 0 {
            return Err(params.bad_value("n", "at least one bin"));
        }
        let engine = match params.get_raw("engine").unwrap_or("batched") {
            "batched" => EngineVersion::Batched,
            "legacy" => EngineVersion::Legacy,
            _ => return Err(params.bad_value("engine", "batched | legacy")),
        };
        let store = StoreKind::parse(params.get_raw("store").unwrap_or("exact"))
            .ok_or_else(|| params.bad_value("store", "exact | packed4 | packed8 | sketch"))?;
        let (dims, objective, demand) = vector_params_from(params)?;
        if is_vector_cell(dims, &objective, &demand) && store != StoreKind::Exact {
            return Err(params.bad_value(
                "store",
                "exact (vector loads — dims > 1, non-scalar objective, or non-unit demand — need the exact store)",
            ));
        }
        let seed = params.get_u64("seed", 0)?;
        let balls = params.get_u64("balls", n as u64)?;
        Ok(StaticConfig {
            k,
            d,
            engine,
            store,
            dims,
            objective,
            demand,
            run: RunConfig::new(n, seed).with_balls(balls),
        })
    }

    fn smoke_grid(&self) -> GridSpec {
        GridSpec::parse_str("k=1,2 d=3 n=512 store=exact,packed4").expect("static smoke grid")
    }

    fn throughput_unit(&self) -> &'static str {
        "balls/sec"
    }
}

/// Config of one dynamic-k cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicConfig {
    /// Probe budget per round.
    pub d: usize,
    /// Acceptance slack above the running average.
    pub slack: u32,
    /// Bins, balls, and master seed.
    pub run: RunConfig,
}

/// Dynamic-k (k,d)-choice (§7 future work) as a registry scenario named
/// `dynamic`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicScenario;

impl Scenario for DynamicScenario {
    type Config = DynamicConfig;
    type Record = RunResult;

    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn description(&self) -> &'static str {
        "dynamic-k (k,d)-choice: per-round k adapts to the sampled loads (section 7)"
    }

    fn run(&self, config: &Self::Config, seed: u64) -> RunResult {
        let mut process =
            DynamicKChoice::new(config.d, config.slack).expect("validated at config construction");
        run_once(&mut process, &config.run.with_seed(seed))
    }

    fn base_seed(&self, config: &Self::Config) -> u64 {
        config.run.seed
    }

    fn config_fields(&self, config: &Self::Config) -> Fields {
        vec![
            ("d", Value::U64(config.d as u64)),
            ("slack", Value::U64(u64::from(config.slack))),
            ("n", Value::U64(config.run.n as u64)),
            ("balls", Value::U64(config.run.balls)),
        ]
    }

    fn record_fields(&self, record: &Self::Record) -> Fields {
        run_result_fields(record)
    }

    fn axes(&self) -> &'static [Axis] {
        const AXES: &[Axis] = &[
            Axis::new("d", "probes per round (default 8)"),
            Axis::new("slack", "acceptance slack above average load (default 1)"),
            Axis::new("n", "bins (default 2^16; accepts 2^k)"),
            Axis::new("balls", "balls to throw (default n)"),
            Axis::new("seed", "master seed (default: --seed)"),
        ];
        AXES
    }

    fn config_from_params(&self, params: &Params) -> Result<Self::Config, GridError> {
        let d = params.get_usize("d", 8)?;
        if d == 0 {
            return Err(params.bad_value("d", "at least one probe per round"));
        }
        let slack = params.get_u32("slack", 1)?;
        let n = params.get_usize("n", 1 << 16)?;
        if n == 0 {
            return Err(params.bad_value("n", "at least one bin"));
        }
        let seed = params.get_u64("seed", 0)?;
        let balls = params.get_u64("balls", n as u64)?;
        Ok(DynamicConfig {
            d,
            slack,
            run: RunConfig::new(n, seed).with_balls(balls),
        })
    }

    fn smoke_grid(&self) -> GridSpec {
        GridSpec::parse_str("d=4,8 n=512").expect("dynamic smoke grid")
    }

    fn throughput_unit(&self) -> &'static str {
        "balls/sec"
    }
}

/// The probe skew of one `hetero` cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeSkew {
    /// Uniform probing — the paper's model (and the bit-identical
    /// baseline the equivalence test pins).
    Uniform,
    /// Zipf(s) probing, `P(bin i) ∝ 1/(i+1)^s`.
    Zipf(f64),
    /// Two-tier probing: every `every`-th bin is probed `ratio×` as
    /// often.
    TwoTier,
    /// Capacity-proportional probing `P(bin) ∝ c_bin` (uniform when the
    /// capacity spread is flat).
    Capacity,
}

impl ProbeSkew {
    /// The report label.
    pub fn label(&self) -> &'static str {
        match self {
            ProbeSkew::Uniform => "uniform",
            ProbeSkew::Zipf(_) => "zipf",
            ProbeSkew::TwoTier => "two_tier",
            ProbeSkew::Capacity => "capacity",
        }
    }
}

/// The capacity spread of one `hetero` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacitySpread {
    /// Every bin has capacity 1 (homogeneous — the paper's model).
    One,
    /// Every `every`-th bin has capacity `ratio`, the rest capacity 1
    /// (the "two-tier 10×" cluster).
    TwoTier,
}

impl CapacitySpread {
    /// The report label.
    pub fn label(&self) -> &'static str {
        match self {
            CapacitySpread::One => "one",
            CapacitySpread::TwoTier => "two_tier",
        }
    }
}

/// Config of one heterogeneous cell: probe skew × capacity spread ×
/// (k, d) × offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroConfig {
    /// Balls per round, `k`.
    pub k: usize,
    /// Probes per round, `d ≥ k`.
    pub d: usize,
    /// Number of bins.
    pub n: usize,
    /// How probes are skewed across bins.
    pub skew: ProbeSkew,
    /// How capacities are spread across bins.
    pub spread: CapacitySpread,
    /// The two-tier boost: probe weight and/or capacity of the hot/fat
    /// bins.
    pub ratio: u32,
    /// The two-tier stride: bins `≡ 0 mod every` are hot/fat.
    pub every: usize,
    /// Offered load in balls **per unit capacity**: the run throws
    /// `round(lambda × total_capacity)` balls, so `lambda = 1` fills the
    /// cluster to one ball per capacity unit regardless of the spread.
    pub lambda: f64,
    /// Which bin-store representation holds the loads (`sketch` is
    /// rejected at parse time — it cannot carry capacities).
    pub store: StoreKind,
    /// Demand-vector dimensionality (1 = the scalar process).
    pub dims: usize,
    /// How probe comparison keys are computed from a load vector.
    pub objective: PlacementObjective,
    /// How per-round demand vectors are drawn.
    pub demand: DemandDistribution,
    /// Master seed.
    pub seed: u64,
}

impl HeteroConfig {
    /// The per-bin capacity map of this cell (`None` = all 1).
    pub fn capacities(&self) -> Option<Vec<u32>> {
        match self.spread {
            CapacitySpread::One => None,
            CapacitySpread::TwoTier => Some(two_tier_capacities(self.n, self.every, self.ratio)),
        }
    }

    /// The probe distribution of this cell.
    pub fn probe_distribution(&self) -> ProbeDistribution {
        match self.skew {
            ProbeSkew::Uniform => ProbeDistribution::Uniform,
            ProbeSkew::Zipf(s) => {
                ProbeDistribution::zipf(self.n, s).expect("validated at config construction")
            }
            ProbeSkew::TwoTier => ProbeDistribution::two_tier(self.n, self.every, self.ratio)
                .expect("validated at config construction"),
            ProbeSkew::Capacity => match self.capacities() {
                Some(caps) => ProbeDistribution::proportional_to(&caps)
                    .expect("validated at config construction"),
                None => ProbeDistribution::Uniform,
            },
        }
    }

    /// `Σ c_bin` of this cell.
    pub fn total_capacity(&self) -> u64 {
        self.capacities()
            .map_or(self.n as u64, |c| c.iter().map(|&x| u64::from(x)).sum())
    }

    /// Balls thrown by this cell: `round(lambda × total_capacity)`, at
    /// least 1.
    pub fn balls(&self) -> u64 {
        ((self.lambda * self.total_capacity() as f64).round() as u64).max(1)
    }

    /// Whether this cell routes through the vector driver.
    pub fn is_vector(&self) -> bool {
        is_vector_cell(self.dims, &self.objective, &self.demand)
    }
}

/// The record of one heterogeneous run: the usual [`RunResult`] plus the
/// capacity-normalized observables read off the final state.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroRecord {
    /// The standard run observables (max load, load gap, histograms, …).
    pub result: RunResult,
    /// Final `max_bin load_bin / c_bin`.
    pub max_utilization: f64,
    /// Final capacity-normalized gap `max utilization − balls /
    /// total_capacity`.
    pub utilization_gap: f64,
    /// `Σ c_bin` of the cell.
    pub total_capacity: u64,
    /// Per-dimension gaps `max_j − mean_j` of the final state. One entry
    /// per dimension; on the scalar path this is `[result.gap]`.
    pub dim_gaps: Vec<f64>,
}

/// Heterogeneous bins & weighted probing as a registry scenario named
/// `hetero`: (k,d)-choice under skewed probe distributions (Zipf,
/// two-tier, capacity-proportional) over unequal-capacity bins, reporting
/// both the raw load observables and their capacity-normalized analogues.
///
/// With `skew=uniform` and `spread=one` the cell runs the **identical
/// generator stream** as the `static` scenario at the same `(k, d, n,
/// balls, seed)` — locked bit-for-bit by test — so the heterogeneous
/// family is a strict superset of the paper's setting, not a parallel
/// implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeteroScenario;

impl Scenario for HeteroScenario {
    type Config = HeteroConfig;
    type Record = HeteroRecord;

    fn name(&self) -> &'static str {
        "hetero"
    }

    fn description(&self) -> &'static str {
        "heterogeneous bins: weighted/Zipf/two-tier probing over unequal capacities, capacity-normalized gap"
    }

    fn run(&self, config: &Self::Config, seed: u64) -> HeteroRecord {
        let run = RunConfig::new(config.n, seed).with_balls(config.balls());
        if config.is_vector() {
            let (result, store) = run_once_vector(
                config.k,
                config.d,
                config.dims,
                &config.objective,
                &config.demand,
                &config.probe_distribution(),
                config.capacities().as_deref(),
                &run,
            );
            return HeteroRecord {
                max_utilization: store.balls().max_utilization(),
                utilization_gap: store.balls().utilization_gap(),
                total_capacity: store.balls().total_capacity(),
                dim_gaps: store.dim_gaps(),
                result,
            };
        }
        if !config.store.is_exact() {
            let (result, slab) = run_once_compact(
                config.store,
                config.k,
                config.d,
                &config.probe_distribution(),
                config.capacities().as_deref(),
                &run,
            );
            return HeteroRecord {
                max_utilization: slab.max_utilization(),
                utilization_gap: slab.utilization_gap(),
                total_capacity: slab.total_capacity(),
                dim_gaps: vec![result.gap],
                result,
            };
        }
        let state = match config.capacities() {
            None => LoadVector::new(config.n),
            Some(caps) => LoadVector::with_capacities(&caps),
        };
        let mut process = KdChoice::new(config.k, config.d)
            .expect("validated at config construction")
            .with_probes(config.probe_distribution());
        let (result, final_state) = run_once_on(&mut process, &run, state);
        HeteroRecord {
            max_utilization: final_state.max_utilization(),
            utilization_gap: final_state.utilization_gap(),
            total_capacity: final_state.total_capacity(),
            dim_gaps: vec![result.gap],
            result,
        }
    }

    fn base_seed(&self, config: &Self::Config) -> u64 {
        config.seed
    }

    fn config_fields(&self, config: &Self::Config) -> Fields {
        let s = match config.skew {
            ProbeSkew::Zipf(s) => s,
            _ => 0.0,
        };
        vec![
            ("k", Value::U64(config.k as u64)),
            ("d", Value::U64(config.d as u64)),
            ("n", Value::U64(config.n as u64)),
            ("skew", Value::Str(config.skew.label().into())),
            ("s", Value::F64(s)),
            ("spread", Value::Str(config.spread.label().into())),
            ("ratio", Value::U64(u64::from(config.ratio))),
            ("every", Value::U64(config.every as u64)),
            ("lambda", Value::F64(config.lambda)),
            ("balls", Value::U64(config.balls())),
            ("store", Value::Str(config.store.name().into())),
            ("dims", Value::U64(config.dims as u64)),
            ("objective", Value::Str(config.objective.name().into())),
            ("demand", Value::Str(config.demand.name().into())),
        ]
    }

    fn record_fields(&self, record: &Self::Record) -> Fields {
        let mut fields = run_result_fields(&record.result);
        fields.push(("max_util", Value::F64(record.max_utilization)));
        fields.push(("util_gap", Value::F64(record.utilization_gap)));
        fields.push(("capacity", Value::U64(record.total_capacity)));
        let max_dim_gap = record.dim_gaps.iter().cloned().fold(0.0f64, f64::max);
        fields.push(("max_dim_gap", Value::F64(max_dim_gap)));
        fields
    }

    fn axes(&self) -> &'static [Axis] {
        const AXES: &[Axis] = &[
            Axis::new(
                "skew",
                "probe skew: uniform | zipf | two_tier | capacity (default uniform)",
            ),
            Axis::new("s", "zipf exponent, skew=zipf only (default 1.0)"),
            Axis::new(
                "spread",
                "capacity spread: one | two_tier (default one = all capacities 1)",
            ),
            Axis::new(
                "ratio",
                "two-tier boost: hot-bin probe weight / fat-bin capacity (default 10)",
            ),
            Axis::new(
                "every",
                "two-tier stride: bins = 0 mod every are hot/fat (default 10)",
            ),
            Axis::new("k", "balls per round (default 2)"),
            Axis::new("d", "probes per round, d >= k (default 4)"),
            Axis::new("n", "bins (default 2^12; accepts 2^k)"),
            Axis::new(
                "lambda",
                "balls per unit capacity; throws round(lambda * total capacity) balls (default 1.0)",
            ),
            Axis::new(
                "store",
                "bin store: exact | packed4 | packed8 (default exact; sketch cannot carry capacities)",
            ),
            Axis::new(
                "dims",
                "demand-vector dimensionality, 1..=8 (default 1 = the scalar process)",
            ),
            Axis::new(
                "objective",
                "probe comparison key: scalar | max_norm | weighted | capacity (default scalar)",
            ),
            Axis::new(
                "demand",
                "ball demand distribution: unit | uniform | correlated | anti (default unit)",
            ),
            Axis::new(
                "demand_max",
                "largest per-dimension demand of non-unit distributions (default 4)",
            ),
            Axis::new("seed", "master seed (default: --seed)"),
        ];
        AXES
    }

    fn config_from_params(&self, params: &Params) -> Result<Self::Config, GridError> {
        let k = params.get_usize("k", 2)?;
        let d = params.get_usize("d", 4)?;
        if k == 0 || k > d {
            return Err(params.bad_value("d", &format!("1 <= k <= d (got k={k}, d={d})")));
        }
        let n = params.get_usize("n", 1 << 12)?;
        if n == 0 {
            return Err(params.bad_value("n", "at least one bin"));
        }
        let s = params.get_f64("s", 1.0)?;
        if !(s.is_finite() && s >= 0.0) {
            return Err(params.bad_value("s", "a finite zipf exponent >= 0"));
        }
        let skew = match params.get_raw("skew").unwrap_or("uniform") {
            "uniform" => ProbeSkew::Uniform,
            "zipf" => ProbeSkew::Zipf(s),
            "two_tier" => ProbeSkew::TwoTier,
            "capacity" => ProbeSkew::Capacity,
            _ => {
                return Err(params.bad_value("skew", "uniform | zipf | two_tier | capacity"));
            }
        };
        let spread = match params.get_raw("spread").unwrap_or("one") {
            "one" => CapacitySpread::One,
            "two_tier" => CapacitySpread::TwoTier,
            _ => return Err(params.bad_value("spread", "one | two_tier")),
        };
        let ratio = params.get_u32("ratio", 10)?;
        if ratio == 0 {
            return Err(params.bad_value("ratio", "a boost of at least 1"));
        }
        let every = params.get_usize("every", 10)?;
        if every == 0 {
            return Err(params.bad_value("every", "a stride of at least 1"));
        }
        let lambda = params.get_f64("lambda", 1.0)?;
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(params.bad_value("lambda", "a positive load factor"));
        }
        let store = StoreKind::parse(params.get_raw("store").unwrap_or("exact"))
            .ok_or_else(|| params.bad_value("store", "exact | packed4 | packed8"))?;
        if store == StoreKind::Sketch {
            return Err(params.bad_value(
                "store",
                "exact | packed4 | packed8 (sketch cannot carry capacities)",
            ));
        }
        let (dims, objective, demand) = vector_params_from(params)?;
        if is_vector_cell(dims, &objective, &demand) && store != StoreKind::Exact {
            return Err(params.bad_value(
                "store",
                "exact (vector loads — dims > 1, non-scalar objective, or non-unit demand — need the exact store)",
            ));
        }
        Ok(HeteroConfig {
            k,
            d,
            n,
            skew,
            spread,
            ratio,
            every,
            lambda,
            store,
            dims,
            objective,
            demand,
            seed: params.get_u64("seed", 0)?,
        })
    }

    fn smoke_grid(&self) -> GridSpec {
        GridSpec::parse_str(
            "n=2^8 k=2 d=4 skew=uniform,zipf,two_tier,capacity spread=one,two_tier lambda=1 every=8",
        )
        .expect("hetero smoke grid")
    }

    fn throughput_unit(&self) -> &'static str {
        "balls/sec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_expt::{configs_from_grid, SweepReport, SweepRunner};
    use kdchoice_prng::derive_seed;

    #[test]
    fn static_sweep_is_bit_identical_to_serial_run_once() {
        // The acceptance criterion: the scenario path through the shared
        // SweepRunner reproduces the pre-refactor serial loop bit for bit.
        let grid = GridSpec::parse_str("k=1,2 d=3 n=256 seed=9").unwrap();
        let configs = configs_from_grid(&StaticScenario, &grid, 9).unwrap();
        assert_eq!(configs.len(), 2);
        let trials = 4;
        let cells = SweepRunner::new().run_scenario(&StaticScenario, &configs, trials);
        for (cell, config) in cells.iter().zip(&configs) {
            for run in &cell.runs {
                // Pre-refactor serial path: run_once with the derived seed.
                let mut p = KdChoice::new(config.k, config.d).unwrap();
                let seed = derive_seed(config.run.seed, run.trial as u64);
                let serial = run_once(&mut p, &config.run.with_seed(seed));
                assert_eq!(run.record, serial, "k={} trial={}", config.k, run.trial);
            }
        }
    }

    #[test]
    fn dynamic_sweep_is_bit_identical_to_serial_run_once() {
        let grid = GridSpec::parse_str("d=6 n=256").unwrap();
        let configs = configs_from_grid(&DynamicScenario, &grid, 3).unwrap();
        let cells = SweepRunner::new().run_scenario(&DynamicScenario, &configs, 3);
        for (cell, config) in cells.iter().zip(&configs) {
            for run in &cell.runs {
                let mut p = DynamicKChoice::new(config.d, config.slack).unwrap();
                let seed = derive_seed(config.run.seed, run.trial as u64);
                let serial = run_once(&mut p, &config.run.with_seed(seed));
                assert_eq!(run.record, serial);
            }
        }
    }

    #[test]
    fn static_grid_validates_parameters() {
        let bad = GridSpec::parse_str("k=4 d=2").unwrap();
        assert!(configs_from_grid(&StaticScenario, &bad, 0).is_err());
        let unknown = GridSpec::parse_str("q=1").unwrap();
        assert!(matches!(
            configs_from_grid(&StaticScenario, &unknown, 0),
            Err(GridError::UnknownAxis { .. })
        ));
        let engines = GridSpec::parse_str("engine=legacy,batched n=64").unwrap();
        let configs = configs_from_grid(&StaticScenario, &engines, 0).unwrap();
        assert_eq!(configs[0].engine, EngineVersion::Legacy);
        assert_eq!(configs[1].engine, EngineVersion::Batched);
        let bad_engine = GridSpec::parse_str("engine=vroom").unwrap();
        assert!(configs_from_grid(&StaticScenario, &bad_engine, 0).is_err());
        let bad_store = GridSpec::parse_str("store=psychic").unwrap();
        assert!(configs_from_grid(&StaticScenario, &bad_store, 0).is_err());
        let stores = GridSpec::parse_str("store=exact,packed4,packed8,sketch n=64").unwrap();
        let configs = configs_from_grid(&StaticScenario, &stores, 0).unwrap();
        assert_eq!(configs[1].store, StoreKind::Packed4);
        assert_eq!(configs[3].store, StoreKind::Sketch);
    }

    /// The `store=` axis of the static scenario: a packed4 cell runs the
    /// identical decide-kernel stream as an exact compact fill (the slab
    /// stays lossless at n balls into n bins), and a sketch cell can only
    /// over-estimate the exact max load.
    #[test]
    fn static_store_axis_matches_exact_compact_fill() {
        use crate::driver::run_once_compact;
        let grid =
            GridSpec::parse_str("k=2 d=4 n=256 store=packed4,packed8,sketch seed=21").unwrap();
        let configs = configs_from_grid(&StaticScenario, &grid, 21).unwrap();
        let run = RunConfig::new(256, 21);
        let (exact, slab) = run_once_compact(
            StoreKind::Exact,
            2,
            4,
            &ProbeDistribution::Uniform,
            None,
            &run,
        );
        assert!(slab.check_invariants());
        for cfg in &configs[..2] {
            let got = StaticScenario.run(cfg, 21);
            assert_eq!(got.max_load, exact.max_load, "{}", cfg.store);
            assert_eq!(got.load_histogram, exact.load_histogram, "{}", cfg.store);
            assert_eq!(
                got.height_histogram, exact.height_histogram,
                "{}",
                cfg.store
            );
        }
        let sketch = StaticScenario.run(&configs[2], 21);
        assert_eq!(sketch.balls_placed, 256);
        assert!(
            sketch.max_load >= exact.max_load,
            "sketch never underestimates"
        );
    }

    #[test]
    fn reports_render_valid_json() {
        let grid = GridSpec::parse_str("k=2 d=4 n=128").unwrap();
        let configs = configs_from_grid(&StaticScenario, &grid, 1).unwrap();
        let cells = SweepRunner::new().run_scenario(&StaticScenario, &configs, 2);
        let report = SweepReport::from_cells(&StaticScenario, &configs, &cells);
        assert_eq!(report.rows.len(), 2);
        for line in report.to_jsonl().lines() {
            kdchoice_expt::validate_json(line).unwrap();
            assert!(line.contains("\"scenario\": \"static\""));
            assert!(line.contains("\"max_load\""));
        }
    }

    #[test]
    fn smoke_grids_are_tiny_and_runnable() {
        for scenario in [
            &StaticScenario as &dyn kdchoice_expt::RunnableScenario,
            &DynamicScenario,
            &HeteroScenario,
        ] {
            let report = scenario
                .run_grid(&scenario.smoke_grid(), 1, 0, &SweepRunner::new())
                .unwrap();
            assert!(!report.rows.is_empty());
            assert!(report.rows.len() <= 8, "smoke grid too large");
        }
    }

    /// The acceptance criterion of the heterogeneous tentpole: with all
    /// weights equal and all capacities 1, the `hetero` cell's event
    /// stream — and therefore its entire result, histograms included —
    /// is **bit-identical** to the pre-existing uniform `static` path.
    #[test]
    fn hetero_uniform_is_bit_identical_to_static() {
        let grid = GridSpec::parse_str("k=1,2 d=2,4 n=256 lambda=1 seed=13").unwrap();
        let hetero_configs = configs_from_grid(&HeteroScenario, &grid, 13).unwrap();
        assert_eq!(hetero_configs.len(), 4);
        for cfg in &hetero_configs {
            assert_eq!(cfg.balls(), 256);
            for trial in 0..3u64 {
                let seed = derive_seed(cfg.seed, trial);
                let hetero = HeteroScenario.run(cfg, seed);
                let static_cfg = StaticConfig {
                    k: cfg.k,
                    d: cfg.d,
                    engine: EngineVersion::Batched,
                    store: StoreKind::Exact,
                    dims: 1,
                    objective: PlacementObjective::Scalar,
                    demand: DemandDistribution::Unit,
                    run: RunConfig::new(cfg.n, 13).with_balls(256),
                };
                let uniform = StaticScenario.run(&static_cfg, seed);
                assert_eq!(
                    hetero.result, uniform,
                    "k={} d={} trial={trial}",
                    cfg.k, cfg.d
                );
                // Homogeneous capacities: the normalized observables
                // coincide with the raw ones.
                assert_eq!(hetero.total_capacity, 256);
                assert_eq!(hetero.max_utilization, f64::from(uniform.max_load));
                assert!((hetero.utilization_gap - uniform.gap).abs() < 1e-12);
            }
        }
    }

    /// An equal-weight `Weighted` distribution degenerates to the same
    /// stream: the seam itself cannot perturb uniform results.
    #[test]
    fn equal_weight_process_matches_uniform_process() {
        use crate::driver::run_once;
        let cfg = RunConfig::new(512, 77).with_balls(1024);
        let mut uniform = KdChoice::new(2, 4).unwrap();
        let want = run_once(&mut uniform, &cfg);
        let mut weighted = KdChoice::new(2, 4)
            .unwrap()
            .with_probes(ProbeDistribution::weighted(&vec![5.0; 512]).unwrap());
        let mut got = run_once(&mut weighted, &cfg);
        // The name advertises the declared distribution ("@weighted");
        // everything observable is identical.
        assert_eq!(got.name, "(2,4)-choice@weighted");
        got.name = want.name.clone();
        assert_eq!(got, want);
    }

    #[test]
    fn hetero_grid_validates_parameters() {
        for bad in [
            "skew=psychic",
            "spread=lumpy",
            "s=-1",
            "ratio=0",
            "every=0",
            "lambda=0",
            "lambda=-2",
            "k=3 d=2",
            "n=0",
            "store=psychic",
            "store=sketch",
        ] {
            let grid = GridSpec::parse_str(bad).unwrap();
            assert!(
                configs_from_grid(&HeteroScenario, &grid, 0).is_err(),
                "{bad} should be rejected"
            );
        }
        let grid = GridSpec::parse_str("skew=zipf s=1.5 spread=two_tier n=100").unwrap();
        let cfg = &configs_from_grid(&HeteroScenario, &grid, 0).unwrap()[0];
        assert_eq!(cfg.skew, ProbeSkew::Zipf(1.5));
        assert_eq!(cfg.spread, CapacitySpread::TwoTier);
        // 10 fat bins of capacity 10 + 90 of capacity 1.
        assert_eq!(cfg.total_capacity(), 190);
        assert_eq!(cfg.balls(), 190);
    }

    /// A packed slab carries the capacity seam end to end: the `hetero`
    /// `store=packed4` cell reports the same capacity totals as its
    /// config and sane normalized observables.
    #[test]
    fn hetero_packed_store_carries_capacities() {
        let grid = GridSpec::parse_str(
            "skew=capacity spread=two_tier n=128 every=8 lambda=2 store=packed4",
        )
        .unwrap();
        let cfg = &configs_from_grid(&HeteroScenario, &grid, 4).unwrap()[0];
        let rec = HeteroScenario.run(cfg, 4);
        assert_eq!(rec.total_capacity, cfg.total_capacity());
        assert_eq!(rec.result.balls_placed, cfg.balls());
        assert!(rec.max_utilization > 0.0);
        assert!(rec.result.name.contains("packed4"), "{}", rec.result.name);
    }

    /// Zipf probing concentrates load: the head bin must end far above
    /// average, and the capacity-normalized gap must exceed the uniform
    /// cell's.
    #[test]
    fn zipf_skew_produces_a_worse_gap_than_uniform() {
        let grid = GridSpec::parse_str("skew=uniform,zipf s=1.0 n=2^10 d=4 lambda=4").unwrap();
        let configs = configs_from_grid(&HeteroScenario, &grid, 3).unwrap();
        let uniform = HeteroScenario.run(&configs[0], 3);
        let zipf = HeteroScenario.run(&configs[1], 3);
        assert_eq!(uniform.result.balls_placed, zipf.result.balls_placed);
        assert!(
            zipf.utilization_gap > uniform.utilization_gap + 1.0,
            "zipf gap {} vs uniform gap {}",
            zipf.utilization_gap,
            uniform.utilization_gap
        );
        assert!(zipf.result.name.contains("zipf"), "{}", zipf.result.name);
    }

    /// Capacity-proportional probing over a two-tier cluster keeps
    /// utilization far more balanced than probing it uniformly. Single
    /// choice (k = d = 1) isolates the sampling effect: with d > 1 the
    /// least-loaded rule compares **raw** loads, which actively steers
    /// balls away from fat bins and cancels much of the capacity skew.
    #[test]
    fn capacity_proportional_probing_balances_utilization() {
        let grid = GridSpec::parse_str(
            "skew=uniform,capacity spread=two_tier ratio=10 every=4 n=2^10 k=1 d=1 lambda=8",
        )
        .unwrap();
        let configs = configs_from_grid(&HeteroScenario, &grid, 5).unwrap();
        let blind = HeteroScenario.run(&configs[0], 5);
        let matched = HeteroScenario.run(&configs[1], 5);
        assert_eq!(blind.total_capacity, matched.total_capacity);
        assert!(
            matched.utilization_gap < blind.utilization_gap,
            "capacity-aware {} vs capacity-blind {}",
            matched.utilization_gap,
            blind.utilization_gap
        );
    }

    /// The `dims=`/`objective=`/`demand=` axes: explicit scalar defaults
    /// stay on the locked path (bit-identical records), vector cells
    /// route through the vector driver, and invalid combinations are
    /// rejected at parse time.
    #[test]
    fn static_vector_axes_route_and_validate() {
        // Explicit defaults == omitted axes, bit for bit.
        let explicit =
            GridSpec::parse_str("k=2 d=4 n=256 dims=1 objective=scalar demand=unit seed=5")
                .unwrap();
        let implicit = GridSpec::parse_str("k=2 d=4 n=256 seed=5").unwrap();
        let e = &configs_from_grid(&StaticScenario, &explicit, 5).unwrap()[0];
        let i = &configs_from_grid(&StaticScenario, &implicit, 5).unwrap()[0];
        assert!(!e.is_vector());
        assert_eq!(StaticScenario.run(e, 5), StaticScenario.run(i, 5));

        // A vector cell runs the vector driver and places every ball.
        let vec_grid =
            GridSpec::parse_str("k=2 d=4 n=256 dims=2 objective=max_norm demand=uniform seed=5")
                .unwrap();
        let v = &configs_from_grid(&StaticScenario, &vec_grid, 5).unwrap()[0];
        assert!(v.is_vector());
        let rec = StaticScenario.run(v, 5);
        assert_eq!(rec.balls_placed, 256);
        assert!(rec.name.contains("vec2:max_norm"), "{}", rec.name);

        // Invalid combinations are parse errors, not panics.
        for bad in [
            "dims=0",
            "dims=9",
            "objective=psychic",
            "demand=psychic",
            "demand_max=0",
            "dims=2 store=packed4",
            "demand=uniform store=packed8",
            "objective=max_norm store=sketch",
        ] {
            let grid = GridSpec::parse_str(bad).unwrap();
            assert!(
                configs_from_grid(&StaticScenario, &grid, 0).is_err(),
                "{bad} should be rejected"
            );
        }
    }

    /// A heterogeneous vector cell carries capacities into the vector
    /// store and reports one gap per dimension.
    #[test]
    fn hetero_vector_cell_reports_per_dim_gaps() {
        let grid = GridSpec::parse_str(
            "skew=capacity spread=two_tier n=128 every=8 lambda=2 dims=2 objective=capacity demand=anti demand_max=3",
        )
        .unwrap();
        let cfg = &configs_from_grid(&HeteroScenario, &grid, 11).unwrap()[0];
        assert!(cfg.is_vector());
        let rec = HeteroScenario.run(cfg, 11);
        assert_eq!(rec.dim_gaps.len(), 2);
        assert!(rec.dim_gaps.iter().all(|g| g.is_finite() && *g >= 0.0));
        assert_eq!(rec.total_capacity, cfg.total_capacity());
        assert_eq!(rec.result.balls_placed, cfg.balls());
        // Scalar cells report exactly the scalar gap.
        let scalar_grid = GridSpec::parse_str("n=128 lambda=1").unwrap();
        let scalar_cfg = &configs_from_grid(&HeteroScenario, &scalar_grid, 11).unwrap()[0];
        let scalar_rec = HeteroScenario.run(scalar_cfg, 11);
        assert_eq!(scalar_rec.dim_gaps, vec![scalar_rec.result.gap]);
        // Vector cells also reject non-exact stores at parse time.
        let bad = GridSpec::parse_str("dims=2 store=packed4").unwrap();
        assert!(configs_from_grid(&HeteroScenario, &bad, 0).is_err());
    }

    #[test]
    fn hetero_reports_render_valid_json() {
        let grid = GridSpec::parse_str("skew=two_tier spread=two_tier n=128 every=8").unwrap();
        let configs = configs_from_grid(&HeteroScenario, &grid, 1).unwrap();
        let cells = SweepRunner::new().run_scenario(&HeteroScenario, &configs, 2);
        let report = SweepReport::from_cells(&HeteroScenario, &configs, &cells);
        assert_eq!(report.rows.len(), 2);
        for line in report.to_jsonl().lines() {
            kdchoice_expt::validate_json(line).unwrap();
            assert!(line.contains("\"scenario\": \"hetero\""));
            assert!(line.contains("\"util_gap\""));
            assert!(line.contains("\"max_util\""));
        }
    }
}
