//! The core experiment families as [`kdchoice_expt::Scenario`]s: static
//! (k,d)-choice trials and the §7 dynamic-k variant.
//!
//! These plug the round engines into the workspace experiment layer —
//! the `kdchoice-bench` CLI runs them by name (`static`, `dynamic`) over
//! a parameter grid, in parallel, with the shared report format.

use kdchoice_expt::{Axis, Fields, GridError, GridSpec, Params, Scenario, Value};

use crate::driver::{run_once, RunConfig, RunResult};
use crate::dynamic::DynamicKChoice;
use crate::kd::{EngineVersion, KdChoice};

/// The report fields shared by every [`RunResult`]-producing scenario.
fn run_result_fields(r: &RunResult) -> Fields {
    vec![
        ("process", Value::Str(r.name.clone().into())),
        ("max_load", Value::U64(u64::from(r.max_load))),
        ("gap", Value::F64(r.gap)),
        ("balls_placed", Value::U64(r.balls_placed)),
        ("messages", Value::U64(r.messages)),
        ("messages_per_ball", Value::F64(r.messages_per_ball())),
        ("rounds", Value::U64(r.rounds)),
        ("nu_2", Value::U64(r.nu(2))),
        ("mu_2", Value::U64(r.mu(2))),
    ]
}

/// Config of one static (k,d)-choice cell: process parameters plus the
/// run shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticConfig {
    /// Balls per round, `k`.
    pub k: usize,
    /// Probes per round, `d ≥ k`.
    pub d: usize,
    /// Which round engine to run.
    pub engine: EngineVersion,
    /// Bins, balls, and master seed.
    pub run: RunConfig,
}

/// Static (k,d)-choice trials — the paper's Table 1 / Theorem 1 setting,
/// as a registry scenario named `static`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticScenario;

impl Scenario for StaticScenario {
    type Config = StaticConfig;
    type Record = RunResult;

    fn name(&self) -> &'static str {
        "static"
    }

    fn description(&self) -> &'static str {
        "static (k,d)-choice balls-into-bins trials (Table 1 / Theorems 1-2)"
    }

    fn run(&self, config: &Self::Config, seed: u64) -> RunResult {
        let mut process = KdChoice::new(config.k, config.d)
            .expect("validated at config construction")
            .with_engine(config.engine);
        run_once(&mut process, &config.run.with_seed(seed))
    }

    fn base_seed(&self, config: &Self::Config) -> u64 {
        config.run.seed
    }

    fn config_fields(&self, config: &Self::Config) -> Fields {
        vec![
            ("k", Value::U64(config.k as u64)),
            ("d", Value::U64(config.d as u64)),
            ("n", Value::U64(config.run.n as u64)),
            ("balls", Value::U64(config.run.balls)),
            ("engine", Value::Str(config.engine.label().into())),
        ]
    }

    fn record_fields(&self, record: &Self::Record) -> Fields {
        run_result_fields(record)
    }

    fn axes(&self) -> &'static [Axis] {
        const AXES: &[Axis] = &[
            Axis::new("k", "balls per round (default 2)"),
            Axis::new("d", "probes per round, d >= k (default k+1)"),
            Axis::new("n", "bins (default 2^16; accepts 2^k)"),
            Axis::new("balls", "balls to throw (default n)"),
            Axis::new("engine", "round engine: batched | legacy (default batched)"),
            Axis::new("seed", "master seed (default: --seed)"),
        ];
        AXES
    }

    fn config_from_params(&self, params: &Params) -> Result<Self::Config, GridError> {
        let k = params.get_usize("k", 2)?;
        let d = params.get_usize("d", k + 1)?;
        if k == 0 || k > d {
            return Err(params.bad_value("d", &format!("1 <= k <= d (got k={k}, d={d})")));
        }
        let n = params.get_usize("n", 1 << 16)?;
        if n == 0 {
            return Err(params.bad_value("n", "at least one bin"));
        }
        let engine = match params.get_raw("engine").unwrap_or("batched") {
            "batched" => EngineVersion::Batched,
            "legacy" => EngineVersion::Legacy,
            _ => return Err(params.bad_value("engine", "batched | legacy")),
        };
        let seed = params.get_u64("seed", 0)?;
        let balls = params.get_u64("balls", n as u64)?;
        Ok(StaticConfig {
            k,
            d,
            engine,
            run: RunConfig::new(n, seed).with_balls(balls),
        })
    }

    fn smoke_grid(&self) -> GridSpec {
        GridSpec::parse_str("k=1,2 d=3 n=512").expect("static smoke grid")
    }

    fn throughput_unit(&self) -> &'static str {
        "balls/sec"
    }
}

/// Config of one dynamic-k cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicConfig {
    /// Probe budget per round.
    pub d: usize,
    /// Acceptance slack above the running average.
    pub slack: u32,
    /// Bins, balls, and master seed.
    pub run: RunConfig,
}

/// Dynamic-k (k,d)-choice (§7 future work) as a registry scenario named
/// `dynamic`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicScenario;

impl Scenario for DynamicScenario {
    type Config = DynamicConfig;
    type Record = RunResult;

    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn description(&self) -> &'static str {
        "dynamic-k (k,d)-choice: per-round k adapts to the sampled loads (section 7)"
    }

    fn run(&self, config: &Self::Config, seed: u64) -> RunResult {
        let mut process =
            DynamicKChoice::new(config.d, config.slack).expect("validated at config construction");
        run_once(&mut process, &config.run.with_seed(seed))
    }

    fn base_seed(&self, config: &Self::Config) -> u64 {
        config.run.seed
    }

    fn config_fields(&self, config: &Self::Config) -> Fields {
        vec![
            ("d", Value::U64(config.d as u64)),
            ("slack", Value::U64(u64::from(config.slack))),
            ("n", Value::U64(config.run.n as u64)),
            ("balls", Value::U64(config.run.balls)),
        ]
    }

    fn record_fields(&self, record: &Self::Record) -> Fields {
        run_result_fields(record)
    }

    fn axes(&self) -> &'static [Axis] {
        const AXES: &[Axis] = &[
            Axis::new("d", "probes per round (default 8)"),
            Axis::new("slack", "acceptance slack above average load (default 1)"),
            Axis::new("n", "bins (default 2^16; accepts 2^k)"),
            Axis::new("balls", "balls to throw (default n)"),
            Axis::new("seed", "master seed (default: --seed)"),
        ];
        AXES
    }

    fn config_from_params(&self, params: &Params) -> Result<Self::Config, GridError> {
        let d = params.get_usize("d", 8)?;
        if d == 0 {
            return Err(params.bad_value("d", "at least one probe per round"));
        }
        let slack = params.get_u32("slack", 1)?;
        let n = params.get_usize("n", 1 << 16)?;
        if n == 0 {
            return Err(params.bad_value("n", "at least one bin"));
        }
        let seed = params.get_u64("seed", 0)?;
        let balls = params.get_u64("balls", n as u64)?;
        Ok(DynamicConfig {
            d,
            slack,
            run: RunConfig::new(n, seed).with_balls(balls),
        })
    }

    fn smoke_grid(&self) -> GridSpec {
        GridSpec::parse_str("d=4,8 n=512").expect("dynamic smoke grid")
    }

    fn throughput_unit(&self) -> &'static str {
        "balls/sec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_expt::{configs_from_grid, SweepReport, SweepRunner};
    use kdchoice_prng::derive_seed;

    #[test]
    fn static_sweep_is_bit_identical_to_serial_run_once() {
        // The acceptance criterion: the scenario path through the shared
        // SweepRunner reproduces the pre-refactor serial loop bit for bit.
        let grid = GridSpec::parse_str("k=1,2 d=3 n=256 seed=9").unwrap();
        let configs = configs_from_grid(&StaticScenario, &grid, 9).unwrap();
        assert_eq!(configs.len(), 2);
        let trials = 4;
        let cells = SweepRunner::new().run_scenario(&StaticScenario, &configs, trials);
        for (cell, config) in cells.iter().zip(&configs) {
            for run in &cell.runs {
                // Pre-refactor serial path: run_once with the derived seed.
                let mut p = KdChoice::new(config.k, config.d).unwrap();
                let seed = derive_seed(config.run.seed, run.trial as u64);
                let serial = run_once(&mut p, &config.run.with_seed(seed));
                assert_eq!(run.record, serial, "k={} trial={}", config.k, run.trial);
            }
        }
    }

    #[test]
    fn dynamic_sweep_is_bit_identical_to_serial_run_once() {
        let grid = GridSpec::parse_str("d=6 n=256").unwrap();
        let configs = configs_from_grid(&DynamicScenario, &grid, 3).unwrap();
        let cells = SweepRunner::new().run_scenario(&DynamicScenario, &configs, 3);
        for (cell, config) in cells.iter().zip(&configs) {
            for run in &cell.runs {
                let mut p = DynamicKChoice::new(config.d, config.slack).unwrap();
                let seed = derive_seed(config.run.seed, run.trial as u64);
                let serial = run_once(&mut p, &config.run.with_seed(seed));
                assert_eq!(run.record, serial);
            }
        }
    }

    #[test]
    fn static_grid_validates_parameters() {
        let bad = GridSpec::parse_str("k=4 d=2").unwrap();
        assert!(configs_from_grid(&StaticScenario, &bad, 0).is_err());
        let unknown = GridSpec::parse_str("q=1").unwrap();
        assert!(matches!(
            configs_from_grid(&StaticScenario, &unknown, 0),
            Err(GridError::UnknownAxis { .. })
        ));
        let engines = GridSpec::parse_str("engine=legacy,batched n=64").unwrap();
        let configs = configs_from_grid(&StaticScenario, &engines, 0).unwrap();
        assert_eq!(configs[0].engine, EngineVersion::Legacy);
        assert_eq!(configs[1].engine, EngineVersion::Batched);
        let bad_engine = GridSpec::parse_str("engine=vroom").unwrap();
        assert!(configs_from_grid(&StaticScenario, &bad_engine, 0).is_err());
    }

    #[test]
    fn reports_render_valid_json() {
        let grid = GridSpec::parse_str("k=2 d=4 n=128").unwrap();
        let configs = configs_from_grid(&StaticScenario, &grid, 1).unwrap();
        let cells = SweepRunner::new().run_scenario(&StaticScenario, &configs, 2);
        let report = SweepReport::from_cells(&StaticScenario, &configs, &cells);
        assert_eq!(report.rows.len(), 2);
        for line in report.to_jsonl().lines() {
            kdchoice_expt::validate_json(line).unwrap();
            assert!(line.contains("\"scenario\": \"static\""));
            assert!(line.contains("\"max_load\""));
        }
    }

    #[test]
    fn smoke_grids_are_tiny_and_runnable() {
        for scenario in [
            &StaticScenario as &dyn kdchoice_expt::RunnableScenario,
            &DynamicScenario,
        ] {
            let report = scenario
                .run_grid(&scenario.smoke_grid(), 1, 0, &SweepRunner::new())
                .unwrap();
            assert!(!report.rows.is_empty());
            assert!(report.rows.len() <= 8, "smoke grid too large");
        }
    }
}
