//! Dynamic-k (k,d)-choice — the other §7 future-work direction.
//!
//! > "The performance of (k,d)-choice can be further improved by adjusting
//! > the parameter k dynamically in each round…" (§7)
//!
//! [`DynamicKChoice`] keeps the probe budget `d` fixed but lets each round
//! decide how many balls to commit: it accepts every tentative slot whose
//! height is at most `⌈average load⌉ + slack` (at least one ball per round,
//! at most `k_max`). Rounds that sample only crowded bins place few balls
//! (spending their probes as reconnaissance); rounds that find empty bins
//! fill them. The `ablation` bench measures the effect.

use rand::RngCore;

use crate::error::ConfigError;
use crate::process::{HeightSink, RoundProcess, RoundStats};
use crate::state::LoadVector;

/// One tentative ball of a round.
#[derive(Debug, Clone, Copy)]
struct Tentative {
    height: u32,
    key: u64,
    bin: u32,
}

/// (k,d)-choice with a per-round dynamic `k` (§7 future work).
///
/// Each round samples `d` bins with replacement and commits the tentative
/// slots of height ≤ `⌈(placed+1)/n⌉ + slack`, clamped to `[1, k_max]` balls.
/// The multiplicity rule is inherited from the slot construction (a bin
/// sampled `m` times contributes `m` slots).
///
/// ```
/// use kdchoice_core::{DynamicKChoice, RunConfig, run_once};
///
/// # fn main() -> Result<(), kdchoice_core::ConfigError> {
/// let mut p = DynamicKChoice::new(8, 1)?;
/// let r = run_once(&mut p, &RunConfig::new(1 << 12, 3));
/// assert_eq!(r.balls_placed, 1 << 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DynamicKChoice {
    d: usize,
    slack: u32,
    samples: Vec<usize>,
    tentative: Vec<Tentative>,
}

impl DynamicKChoice {
    /// Creates the process with probe budget `d` and acceptance threshold
    /// `⌈average⌉ + slack`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `d == 0`.
    pub fn new(d: usize, slack: u32) -> Result<Self, ConfigError> {
        if d == 0 {
            return Err(ConfigError::ZeroParameter("d"));
        }
        Ok(Self {
            d,
            slack,
            samples: Vec::with_capacity(d),
            tentative: Vec::with_capacity(d),
        })
    }

    /// The probe budget per round.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The threshold slack above the running average.
    pub fn slack(&self) -> u32 {
        self.slack
    }
}

impl RoundProcess for DynamicKChoice {
    fn name(&self) -> String {
        format!("dynamic-k({},+{})", self.d, self.slack)
    }

    fn run_round<R, S>(
        &mut self,
        state: &mut LoadVector,
        rng: &mut R,
        heights_out: &mut S,
        balls_remaining: u64,
    ) -> RoundStats
    where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        let n = state.n();
        kdchoice_prng::sample::fill_with_replacement(rng, n, self.d, &mut self.samples);
        self.samples.sort_unstable();
        self.tentative.clear();
        let mut i = 0;
        while i < self.samples.len() {
            let bin = self.samples[i];
            let base = state.load(bin);
            let mut occ = 0u32;
            while i < self.samples.len() && self.samples[i] == bin {
                occ += 1;
                self.tentative.push(Tentative {
                    height: base + occ,
                    key: rng.next_u64(),
                    bin: bin as u32,
                });
                i += 1;
            }
        }
        let threshold = ((state.total_balls() + 1).div_ceil(n as u64)) as u32 + self.slack;
        // Dynamic k: accept slots under the threshold; at least 1 (the
        // globally least loaded slot), at most what the driver still wants.
        let under = self
            .tentative
            .iter()
            .filter(|t| t.height <= threshold)
            .count();
        let k_max =
            usize::try_from(balls_remaining.max(1).min(self.d as u64)).expect("bounded by d");
        let balls = under.clamp(1, k_max);
        if balls < self.tentative.len() {
            self.tentative.select_nth_unstable_by(balls - 1, |a, b| {
                (a.height, a.key).cmp(&(b.height, b.key))
            });
        }
        let kept = &mut self.tentative[..balls];
        kept.sort_unstable_by_key(|a| (a.bin, a.height));
        for t in kept.iter() {
            let h = state.add_ball(t.bin as usize);
            debug_assert_eq!(h, t.height);
            heights_out.record(h);
        }
        RoundStats {
            thrown: balls as u32,
            placed: balls as u32,
            probes: self.d as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_once, run_trials, RunConfig};
    use crate::kd::KdChoice;

    #[test]
    fn constructor_validates() {
        assert!(DynamicKChoice::new(0, 1).is_err());
        assert!(DynamicKChoice::new(4, 0).is_ok());
    }

    #[test]
    fn places_exactly_the_requested_balls() {
        let mut p = DynamicKChoice::new(6, 1).unwrap();
        let r = run_once(&mut p, &RunConfig::new(1 << 10, 1));
        assert_eq!(r.balls_placed, 1 << 10);
        // Never more than d balls per round.
        assert!(r.rounds >= (1u64 << 10) / 6);
    }

    #[test]
    fn committed_heights_respect_threshold_mostly() {
        // With slack 1 and n balls into n bins (average <= 1), committed
        // heights beyond 2 only occur through forced single placements.
        let mut p = DynamicKChoice::new(8, 1).unwrap();
        let r = run_once(&mut p, &RunConfig::new(1 << 12, 2));
        let above: u64 = r.mu(4);
        assert!(
            above <= r.balls_placed / 100,
            "too many balls above height 3: {above}"
        );
    }

    #[test]
    fn beats_fixed_k_on_max_load_at_same_probe_budget() {
        // Same d; dynamic k should match or beat fixed k = d/2 on max load
        // (it can refuse bad rounds), at the cost of more rounds/messages.
        let n = 1 << 13;
        let trials = 8;
        let dynamic = run_trials(
            |_| Box::new(DynamicKChoice::new(8, 0).unwrap()),
            &RunConfig::new(n, 3),
            trials,
        );
        let fixed = run_trials(
            |_| Box::new(KdChoice::new(4, 8).unwrap()),
            &RunConfig::new(n, 4),
            trials,
        );
        assert!(
            dynamic.mean_max_load() <= fixed.mean_max_load() + 0.25,
            "dynamic {} vs fixed {}",
            dynamic.mean_max_load(),
            fixed.mean_max_load()
        );
    }

    #[test]
    fn heavy_case_gap_stays_small() {
        let n = 1024usize;
        let mut p = DynamicKChoice::new(8, 1).unwrap();
        let r = run_once(&mut p, &RunConfig::new(n, 5).with_balls(16 * n as u64));
        assert!(r.gap <= 4.0, "gap {}", r.gap);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut p = DynamicKChoice::new(5, 1).unwrap();
            run_once(&mut p, &RunConfig::new(512, seed)).max_load
        };
        assert_eq!(run(9), run(9));
    }
}
