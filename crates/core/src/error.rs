//! Configuration errors for process construction.

use std::error::Error;
use std::fmt;

/// Error returned when an allocation process is constructed with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `k` must satisfy `1 ≤ k`.
    ZeroK,
    /// `d` must satisfy `k ≤ d`.
    KExceedsD {
        /// The offending `k`.
        k: usize,
        /// The offending `d`.
        d: usize,
    },
    /// A parameter that must be positive was zero.
    ZeroParameter(&'static str),
    /// A probability parameter was outside `[0, 1]`.
    BadProbability(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroK => write!(f, "k must be at least 1"),
            ConfigError::KExceedsD { k, d } => {
                write!(f, "k must not exceed d (got k={k}, d={d})")
            }
            ConfigError::ZeroParameter(name) => write!(f, "{name} must be positive"),
            ConfigError::BadProbability(name) => {
                write!(f, "{name} must lie in [0, 1]")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        assert_eq!(ConfigError::ZeroK.to_string(), "k must be at least 1");
        let e = ConfigError::KExceedsD { k: 5, d: 3 };
        assert!(e.to_string().contains("k=5"));
        assert!(e.to_string().contains("d=3"));
        assert!(ConfigError::ZeroParameter("beta")
            .to_string()
            .contains("beta"));
        assert!(ConfigError::BadProbability("beta")
            .to_string()
            .contains("[0, 1]"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ConfigError>();
    }
}
