//! The serialized (k,d)-choice process Aσ of Definition 1.

use rand::RngCore;

use crate::error::ConfigError;
use crate::process::{HeightSink, RoundProcess, RoundStats};
use crate::state::LoadVector;

/// How the per-round permutations σᵣ of Definition 1 are chosen.
///
/// Property (i) of the paper states `Aσ(k,d) ≡ A(k,d)` for **any** choice of
/// σ, proved by the natural coupling: give both processes the same `d`
/// sampled bins each round, and the number of balls in the `x` most loaded
/// bins coincides for every `x`. The implementation realizes exactly that
/// coupling — σ permutes which *ball* claims which rank among the round's
/// tentative slots, which provably cannot change the sorted load vector —
/// and the `properties` bench confirms the distributional equivalence
/// empirically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SigmaSchedule {
    /// σᵣ = (1, 2, …, k): ball s claims the s-th least loaded slot.
    #[default]
    Identity,
    /// σᵣ = (k, k−1, …, 1): ball s claims the (k−s+1)-th least loaded slot.
    Reverse,
    /// A fresh uniformly random permutation of {1,…,k} each round.
    UniformRandom,
}

impl SigmaSchedule {
    /// A short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            SigmaSchedule::Identity => "identity",
            SigmaSchedule::Reverse => "reverse",
            SigmaSchedule::UniformRandom => "random",
        }
    }
}

/// One tentative slot of the current round.
#[derive(Debug, Clone, Copy)]
struct Slot {
    height: u32,
    key: u64,
    bin: u32,
}

/// The serialized (k,d)-choice process Aσ (Definition 1).
///
/// Each round draws `d` slots i.u.r. with replacement; a bin of load `L`
/// sampled `c` times contributes tentative slots of heights `L+1, …, L+c`
/// (the paper's §2 convention that co-located balls of one round have
/// distinct heights). The slots are ranked once by `(height, random key)` —
/// "the i-th least loaded bin in S_r" with ties broken randomly — and ball
/// `s` is placed into the slot of rank `σᵣ(s)`. Since the permutation only
/// reorders which ball claims which slot, the resulting load vector is
/// *identical* to the round process A(k,d) under the shared-samples
/// coupling, which is precisely how the paper proves Property (i).
///
/// ```
/// use kdchoice_core::{SerializedKdChoice, SigmaSchedule, RunConfig, run_once};
///
/// # fn main() -> Result<(), kdchoice_core::ConfigError> {
/// let mut p = SerializedKdChoice::new(2, 3, SigmaSchedule::UniformRandom)?;
/// let r = run_once(&mut p, &RunConfig::new(1 << 12, 5))
/// ;
/// assert_eq!(r.balls_placed, 1 << 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SerializedKdChoice {
    k: usize,
    d: usize,
    schedule: SigmaSchedule,
    slots: Vec<Slot>,
    samples: Vec<usize>,
    perm: Vec<usize>,
}

impl SerializedKdChoice {
    /// Creates the serialized process.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] unless `1 ≤ k ≤ d`.
    pub fn new(k: usize, d: usize, schedule: SigmaSchedule) -> Result<Self, ConfigError> {
        if k == 0 {
            return Err(ConfigError::ZeroK);
        }
        if k > d {
            return Err(ConfigError::KExceedsD { k, d });
        }
        Ok(Self {
            k,
            d,
            schedule,
            slots: Vec::with_capacity(d),
            samples: Vec::with_capacity(d),
            perm: Vec::with_capacity(k),
        })
    }

    /// The balls per round, `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The sampled bins per round, `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The σ schedule in use.
    pub fn schedule(&self) -> SigmaSchedule {
        self.schedule
    }
}

impl RoundProcess for SerializedKdChoice {
    fn name(&self) -> String {
        format!(
            "serialized({},{})-choice[{}]",
            self.k,
            self.d,
            self.schedule.label()
        )
    }

    fn run_round<R, S>(
        &mut self,
        state: &mut LoadVector,
        rng: &mut R,
        heights_out: &mut S,
        balls_remaining: u64,
    ) -> RoundStats
    where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        let balls = (self.k as u64).min(balls_remaining.max(1)) as usize;
        let n = state.n();
        // Sample the round's d bins (batched, divisionless; consumes the
        // generator exactly like d successive bounded draws) and build
        // tentative slots with multiplicity-consistent heights.
        kdchoice_prng::sample::fill_with_replacement(rng, n, self.d, &mut self.samples);
        self.samples.sort_unstable();
        self.slots.clear();
        let mut i = 0;
        while i < self.samples.len() {
            let bin = self.samples[i];
            let base = state.load(bin);
            let mut occ = 0u32;
            while i < self.samples.len() && self.samples[i] == bin {
                occ += 1;
                self.slots.push(Slot {
                    height: base + occ,
                    key: rng.next_u64(),
                    bin: bin as u32,
                });
                i += 1;
            }
        }
        // Rank all d slots once: "the i-th least loaded bin in S_r".
        self.slots.sort_unstable_by_key(|a| (a.height, a.key));
        // σ determines the order in which balls claim ranks 1..=balls.
        let sigma: &[usize] = match self.schedule {
            SigmaSchedule::Identity => {
                self.perm.clear();
                self.perm.extend(0..balls);
                &self.perm
            }
            SigmaSchedule::Reverse => {
                self.perm.clear();
                self.perm.extend((0..balls).rev());
                &self.perm
            }
            SigmaSchedule::UniformRandom => {
                self.perm = kdchoice_prng::sample::random_permutation(rng, balls);
                &self.perm
            }
        };
        // Place ball s into the slot of rank σ(s). Heights recorded are the
        // tentative slot heights — the paper's §2 convention assigns
        // co-located round balls distinct ascending heights no matter the
        // placement order.
        for &rank in sigma.iter().take(balls) {
            let slot = self.slots[rank];
            state.add_ball(slot.bin as usize);
            heights_out.record(slot.height);
        }
        RoundStats {
            thrown: balls as u32,
            placed: balls as u32,
            probes: self.d as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_once, RunConfig};
    use crate::kd::{EngineVersion, KdChoice};
    use crate::process::BallsIntoBins;
    use kdchoice_prng::Xoshiro256PlusPlus;

    #[test]
    fn constructor_validates() {
        assert!(SerializedKdChoice::new(0, 3, SigmaSchedule::Identity).is_err());
        assert!(SerializedKdChoice::new(4, 3, SigmaSchedule::Identity).is_err());
        assert!(SerializedKdChoice::new(2, 3, SigmaSchedule::Identity).is_ok());
    }

    #[test]
    fn name_mentions_schedule() {
        let p = SerializedKdChoice::new(2, 3, SigmaSchedule::Reverse).unwrap();
        let name = RoundProcess::name(&p);
        assert!(name.contains("reverse"));
        assert!(name.contains("(2,3)"));
    }

    #[test]
    fn places_exactly_the_requested_balls() {
        for schedule in [
            SigmaSchedule::Identity,
            SigmaSchedule::Reverse,
            SigmaSchedule::UniformRandom,
        ] {
            let mut p = SerializedKdChoice::new(3, 5, schedule).unwrap();
            let r = run_once(&mut p, &RunConfig::new(3 * 256, 7));
            assert_eq!(r.balls_placed, 3 * 256, "{schedule:?}");
            assert_eq!(r.balls_thrown, 3 * 256);
            // d probes per round of k balls.
            assert_eq!(r.messages, (3 * 256 / 3) * 5);
        }
    }

    /// Property (i) in its strongest executable form: under the natural
    /// coupling (same RNG stream => same sampled bins and tie-break keys),
    /// identity- and reverse-scheduled serializations produce *identical*
    /// final sorted load vectors.
    #[test]
    fn coupled_schedules_produce_identical_vectors() {
        let run = |schedule| {
            let mut p = SerializedKdChoice::new(3, 7, schedule).unwrap();
            let (_, state) =
                crate::driver::run_once_with_state(&mut p, &RunConfig::new(1 << 10, 99));
            state.sorted_descending()
        };
        assert_eq!(
            run(SigmaSchedule::Identity),
            run(SigmaSchedule::Reverse),
            "σ must not change the load vector under the shared-sample coupling"
        );
    }

    /// The serialization coincides with the round process on the same
    /// samples: compare whole-run mean max loads across seeds.
    #[test]
    fn matches_round_process_mean_max_load() {
        let n = 1 << 10;
        let trials = 60;
        let mean_max = |mk: &mut dyn FnMut() -> Box<dyn BallsIntoBins>| -> f64 {
            let mut sum = 0.0;
            for t in 0..trials {
                let mut p = mk();
                let r = run_once(&mut *p, &RunConfig::new(n, 2000 + t));
                sum += r.max_load as f64;
            }
            sum / trials as f64
        };
        let a = mean_max(&mut || Box::new(KdChoice::new(2, 3).unwrap()));

        let b = mean_max(&mut || {
            Box::new(SerializedKdChoice::new(2, 3, SigmaSchedule::Identity).unwrap())
        });
        let c = mean_max(&mut || {
            Box::new(SerializedKdChoice::new(2, 3, SigmaSchedule::UniformRandom).unwrap())
        });
        assert!(
            (a - b).abs() < 0.5,
            "round {a} vs identity serialization {b}"
        );
        assert!((a - c).abs() < 0.5, "round {a} vs random serialization {c}");
    }

    #[test]
    fn heights_match_round_process_heights_on_same_stream() {
        // With the same seed, the serialized process consumes the RNG the
        // same way as the *legacy* KdChoice engine (d samples + d keys per
        // round) when the schedule draws no extra randomness, so even the
        // height *histogram* coincides with the round process run. (The
        // batched engine draws tie keys lazily, so it shares only the
        // distribution, not the stream.)
        let n = 512;
        let mut a = KdChoice::new(2, 5)
            .unwrap()
            .with_engine(EngineVersion::Legacy);
        let ra = run_once(&mut a, &RunConfig::new(n, 123));
        let mut b = SerializedKdChoice::new(2, 5, SigmaSchedule::Identity).unwrap();
        let rb = run_once(&mut b, &RunConfig::new(n, 123));
        assert_eq!(ra.load_histogram, rb.load_histogram);
        assert_eq!(ra.height_histogram, rb.height_histogram);
        assert_eq!(ra.max_load, rb.max_load);
    }

    #[test]
    fn slot_multiplicity_rule_holds() {
        let mut p = SerializedKdChoice::new(3, 4, SigmaSchedule::Reverse).unwrap();
        let mut state = LoadVector::new(2);
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let mut heights = Vec::new();
        for _ in 0..50 {
            let before: Vec<u32> = state.loads().to_vec();
            let occ_before = state.total_balls();
            RoundProcess::run_round(&mut p, &mut state, &mut rng, &mut heights, u64::MAX);
            let gained: u32 = state.loads().iter().zip(&before).map(|(a, b)| a - b).sum();
            assert_eq!(gained, 3);
            assert_eq!(state.total_balls(), occ_before + 3);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut p = SerializedKdChoice::new(2, 4, SigmaSchedule::UniformRandom).unwrap();
            run_once(&mut p, &RunConfig::new(1 << 10, seed)).max_load
        };
        assert_eq!(run(5), run(5));
    }
}
