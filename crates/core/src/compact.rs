//! Cache-compact, memory-bounded bin stores: packed few-bit load
//! counters and count-min sketches behind the [`BinStore`] seam.
//!
//! The exact [`LoadVector`] spends 4 bytes per bin on loads alone; at
//! n = 2^20 the decision path already spills to DRAM, and n = 10^8 is
//! out of reach for a cache-resident front-end. Two papers justify
//! spending *less* than exact state on the placement decision:
//!
//! * the choice-memory tradeoff (Alon, Gurel-Gurevich, Lubetzky) shows
//!   which gap is achievable when the placer keeps only o(n) memory;
//! * the 1-2-3-Toolkit line shows that coarse, quantized load
//!   information is enough for near-optimal multiple-choice decisions.
//!
//! This module provides the two memory-bounded stores and the
//! [`StoreKind`] axis that selects between them everywhere a
//! [`LoadVector`] used to be hard-wired:
//!
//! * [`PackedStore`] — b-bit (b ∈ {4, 8}) saturating per-bin load
//!   *offsets* packed 64/b to a `u64` word against a shared base level.
//!   Quantized loads track true loads **exactly** until a bin climbs
//!   more than `2^b − 1` above the base (the lossless window); the
//!   paper's O(log log n) gap is what makes a 4-bit window realistic.
//! * [`SketchStore`] — a count-min sketch over bins (sub-linear
//!   counters, loads estimated as the minimum over hashed rows) for the
//!   true o(n)-memory regime, with [`SketchStore::bytes_per_bin`] as a
//!   first-class observable.
//! * [`BinSlab`] — the enum the service layer's shards hold, dispatching
//!   to exact / packed / sketch state with zero overhead for the exact
//!   variant (all existing bit-identity contracts survive).
//!
//! ## Quantization contract
//!
//! A [`PackedStore`] bin's quantized load lives in `[base, base + 2^b −
//! 1]`. `add_ball` on a counter already pinned at the top first
//! **renormalizes** (subtracts the minimum offset over all bins from
//! every lane and adds it to the base — a pure re-encoding that changes
//! no quantized load); if the minimum offset was 0 the increment is
//! absorbed by the pin and the quantized load under-reports the true
//! load from then on. `remove_ball` at offset 0 similarly clamps.
//! While no clamp has ever fired ([`PackedStore::is_lossless`]), every
//! observable — loads, `count_by_load`, `max_load`, `ν_y`, gap — is
//! **bit-identical** to [`LoadVector`], which the equivalence proptests
//! lock.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::snapshot::{LoadView, SharedLoadSnapshot};
use crate::state::LoadVector;
use crate::store::BinStore;

/// Which bin-store representation backs a run: the exact
/// [`LoadVector`], a [`PackedStore`] at 4 or 8 bits per bin, or the
/// sub-linear [`SketchStore`]. The axis value every scenario grid and
/// service config carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Exact 32-bit loads ([`LoadVector`]) — the pre-compact default;
    /// every existing seeded golden and bit-identity test runs here.
    #[default]
    Exact,
    /// Packed 4-bit saturating offsets: 16 bins per `u64` word,
    /// 0.5 bytes/bin on the decision path.
    Packed4,
    /// Packed 8-bit saturating offsets: 8 bins per word, 1 byte/bin.
    Packed8,
    /// Count-min sketch over bins: sub-linear counter memory, loads
    /// estimated (never under true load) instead of tracked.
    Sketch,
}

impl StoreKind {
    /// The report/axis label (`exact | packed4 | packed8 | sketch`).
    pub fn name(&self) -> &'static str {
        match self {
            StoreKind::Exact => "exact",
            StoreKind::Packed4 => "packed4",
            StoreKind::Packed8 => "packed8",
            StoreKind::Sketch => "sketch",
        }
    }

    /// Parses an axis value; `None` for anything unrecognized.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "exact" => Some(StoreKind::Exact),
            "packed4" => Some(StoreKind::Packed4),
            "packed8" => Some(StoreKind::Packed8),
            "sketch" => Some(StoreKind::Sketch),
            _ => None,
        }
    }

    /// Counter width in bits for the packed kinds, `None` otherwise.
    pub fn bits(&self) -> Option<u32> {
        match self {
            StoreKind::Packed4 => Some(4),
            StoreKind::Packed8 => Some(8),
            _ => None,
        }
    }

    /// Whether this is the exact (pre-compact) representation.
    pub fn is_exact(&self) -> bool {
        *self == StoreKind::Exact
    }

    /// Builds an empty homogeneous slab of this kind over `n` bins.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new_slab(&self, n: usize) -> BinSlab {
        match self {
            StoreKind::Exact => BinSlab::Exact(LoadVector::new(n)),
            StoreKind::Packed4 => BinSlab::Packed(PackedStore::new(n, 4)),
            StoreKind::Packed8 => BinSlab::Packed(PackedStore::new(n, 8)),
            StoreKind::Sketch => BinSlab::Sketch(SketchStore::new(n)),
        }
    }

    /// Builds an empty slab with per-bin capacities. The packed kinds
    /// attach an exact side-table (capacity observables need true
    /// loads); [`StoreKind::Sketch`] rejects capacities — a sketch
    /// cannot answer per-class utilization without the exact state it
    /// exists to avoid.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty, any capacity is 0, or the kind
    /// is [`StoreKind::Sketch`] with a non-uniform capacity vector.
    pub fn slab_with_capacities(&self, capacities: &[u32]) -> BinSlab {
        match self {
            StoreKind::Exact => BinSlab::Exact(LoadVector::with_capacities(capacities)),
            StoreKind::Packed4 => BinSlab::Packed(PackedStore::with_capacities(capacities, 4)),
            StoreKind::Packed8 => BinSlab::Packed(PackedStore::with_capacities(capacities, 8)),
            StoreKind::Sketch => {
                assert!(
                    capacities.iter().all(|&c| c == 1),
                    "sketch store does not support heterogeneous capacities"
                );
                BinSlab::Sketch(SketchStore::new(capacities.len()))
            }
        }
    }

    /// Non-panicking [`StoreKind::slab_with_capacities`]: validates the
    /// capacity map (non-empty, every capacity ≥ 1) and the
    /// kind/capacity pairing up front, returning a diagnostic instead
    /// of panicking — the construction entry point for user-facing
    /// config paths (grid parsing, CLI flags).
    ///
    /// A sketch with non-uniform capacities is rejected here with the
    /// reason: count-min counters cannot answer per-class utilization
    /// without the exact state the sketch exists to avoid, so the
    /// fallback observables would silently be wrong.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on any invalid combination.
    pub fn try_slab_with_capacities(&self, capacities: &[u32]) -> Result<BinSlab, String> {
        if capacities.is_empty() {
            return Err("capacity map must not be empty".to_string());
        }
        if capacities.contains(&0) {
            return Err("every bin needs capacity >= 1".to_string());
        }
        if *self == StoreKind::Sketch && capacities.iter().any(|&c| c != 1) {
            return Err(format!(
                "store=sketch does not support heterogeneous capacities \
                 (count-min counters cannot answer per-class utilization); \
                 use one of {}",
                "exact|packed4|packed8"
            ));
        }
        Ok(self.slab_with_capacities(capacities))
    }
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// b-bit packed saturating load offsets against a shared base level.
///
/// Each bin's *offset* (`load − base`, clamped to `[0, 2^b − 1]`) lives
/// in a b-bit lane of a `u64` word — 16 bins per word at b = 4 versus 2
/// bins per cache line of exact `u32` loads. The count-by-load
/// histogram, `max_load`, `ν_1`/`ν_2`, and `total_balls` are maintained
/// incrementally **on the quantized values** with exactly
/// [`LoadVector`]'s update discipline (including top-level truncation
/// on remove), so below saturation the two stores are bit-identical.
///
/// See the module docs for the full quantization contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedStore {
    n: usize,
    /// Lane width in bits (4 or 8).
    bits: u32,
    /// `2^bits − 1`: the saturation value and lane mask.
    mask: u32,
    /// log2(lanes per word): 4 at b=4, 3 at b=8.
    lane_shift: u32,
    /// `u64` with a 1 in the lowest bit of every lane (renormalization
    /// subtracts `min_offset * lane_ones` word-parallel).
    lane_ones: u64,
    /// The packed offset lanes; unused padding lanes in the last word
    /// are pinned at `mask` so word-parallel subtraction never borrows.
    words: Vec<u64>,
    /// The shared base level: quantized load = base + offset.
    base: u32,
    /// `count_by_load[l]` = bins at quantized load exactly `l`
    /// (absolute, not base-relative — renormalization is invisible).
    count_by_load: Vec<u64>,
    max_load: u32,
    total_balls: u64,
    nu1: u64,
    nu2: u64,
    /// Adds absorbed by a pinned counter (quantized < true from there).
    clamped_adds: u64,
    /// Removes absorbed at offset 0 (quantized > true from there).
    clamped_removes: u64,
    /// Renormalizations performed (base-level bumps).
    renormalizations: u64,
    /// Exact side-table, present **only** when capacities demand it:
    /// heterogeneous utilization observables need true per-class loads.
    exact: Option<Box<LoadVector>>,
}

impl PackedStore {
    /// Creates `n` empty bins with `bits`-wide lanes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `bits` is not 4 or 8.
    pub fn new(n: usize, bits: u32) -> Self {
        assert!(n > 0, "need at least one bin");
        assert!(
            bits == 4 || bits == 8,
            "packed store supports 4 or 8 bit lanes"
        );
        let mask = (1u32 << bits) - 1;
        let lane_shift = if bits == 4 { 4 } else { 3 };
        let per_word = 64 / bits as usize;
        // MAX / mask = 0x1111… at b=4 and 0x0101… at b=8: one 1 in the
        // lowest bit of every lane.
        let lane_ones = u64::MAX / u64::from(mask);
        let n_words = n.div_ceil(per_word);
        let mut words = vec![0u64; n_words];
        // Pin padding lanes at `mask` (see `words` field docs).
        for lane in n..n_words * per_word {
            let w = lane >> lane_shift;
            let shift = ((lane & (per_word - 1)) as u32) * bits;
            words[w] |= u64::from(mask) << shift;
        }
        Self {
            n,
            bits,
            mask,
            lane_shift,
            lane_ones,
            words,
            base: 0,
            count_by_load: vec![n as u64],
            max_load: 0,
            total_balls: 0,
            nu1: 0,
            nu2: 0,
            clamped_adds: 0,
            clamped_removes: 0,
            renormalizations: 0,
            exact: None,
        }
    }

    /// Creates empty bins with per-bin capacities. A non-uniform vector
    /// attaches an exact [`LoadVector`] side-table for the utilization
    /// observables (the quantized lanes still drive placement); all-1
    /// capacities construct the plain homogeneous store.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty, any capacity is 0, or `bits` is
    /// not 4 or 8.
    pub fn with_capacities(capacities: &[u32], bits: u32) -> Self {
        let mut store = Self::new(capacities.len(), bits);
        if capacities.iter().any(|&c| c != 1) {
            store.exact = Some(Box::new(LoadVector::with_capacities(capacities)));
        }
        store
    }

    /// The number of bins.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Lane width in bits (4 or 8).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The shared base level quantized offsets are measured against.
    #[inline]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// How many renormalizations (base-level bumps) have run.
    #[inline]
    pub fn renormalizations(&self) -> u64 {
        self.renormalizations
    }

    /// Whether no counter has ever clamped: while true, every
    /// observable is bit-identical to an exact [`LoadVector`] fed the
    /// same operations.
    #[inline]
    pub fn is_lossless(&self) -> bool {
        self.clamped_adds == 0 && self.clamped_removes == 0
    }

    /// Adds absorbed by a saturated counter so far.
    #[inline]
    pub fn clamped_adds(&self) -> u64 {
        self.clamped_adds
    }

    /// Removes absorbed at offset 0 so far.
    #[inline]
    pub fn clamped_removes(&self) -> u64 {
        self.clamped_removes
    }

    /// Resident bytes per bin: the packed words **plus** the exact
    /// side-table when capacities force one ([`LoadVector::store_bytes`]
    /// — loads, capacities, and class indices). The histogram is
    /// O(max load), not O(n), and excluded. A capacity-free store pays
    /// for its words alone; a store with capacities honestly reports
    /// that the side-table dominates its footprint.
    pub fn bytes_per_bin(&self) -> f64 {
        let words = (self.words.len() * 8) as u64;
        let side = self.exact.as_ref().map_or(0, |e| e.store_bytes());
        (words + side) as f64 / self.n as f64
    }

    /// Whether a heterogeneous side-table is attached.
    #[inline]
    pub fn has_exact_side(&self) -> bool {
        self.exact.is_some()
    }

    #[inline]
    fn lane_pos(&self, bin: usize) -> (usize, u32) {
        let per_word_mask = (1usize << self.lane_shift) - 1;
        (
            bin >> self.lane_shift,
            ((bin & per_word_mask) as u32) * self.bits,
        )
    }

    /// The raw offset lane of `bin`.
    #[inline]
    fn offset(&self, bin: usize) -> u32 {
        let (w, shift) = self.lane_pos(bin);
        ((self.words[w] >> shift) as u32) & self.mask
    }

    #[inline]
    fn set_offset(&mut self, bin: usize, value: u32) {
        let (w, shift) = self.lane_pos(bin);
        let cleared = self.words[w] & !(u64::from(self.mask) << shift);
        self.words[w] = cleared | (u64::from(value) << shift);
    }

    /// The quantized load of `bin` (`base + offset`).
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n`.
    #[inline]
    pub fn load(&self, bin: usize) -> u32 {
        assert!(bin < self.n, "bin {bin} out of range");
        self.base + self.offset(bin)
    }

    /// Subtracts the minimum offset from every lane and adds it to the
    /// base — a pure re-encoding (no quantized load changes) that opens
    /// headroom above saturated counters. Returns the amount gained.
    fn renormalize(&mut self) -> u32 {
        // The minimum offset is read off the histogram in O(2^b): the
        // first occupied quantized level at or above the base.
        let mut level = self.base as usize;
        while self.count_by_load.get(level) == Some(&0) {
            level += 1;
        }
        let min_off = (level as u32).saturating_sub(self.base).min(self.mask);
        if min_off == 0 {
            return 0;
        }
        // Every real lane is >= min_off and padding lanes are >= the
        // real minimum too (they sit at mask), so the word-parallel
        // subtraction never borrows across lanes.
        let sub = self.lane_ones * u64::from(min_off);
        for w in &mut self.words {
            *w -= sub;
        }
        self.base += min_off;
        self.renormalizations += 1;
        // Re-pin the padding lanes at mask.
        let per_word = 1usize << self.lane_shift;
        for lane in self.n..self.words.len() * per_word {
            let w = lane >> self.lane_shift;
            let shift = ((lane & (per_word - 1)) as u32) * self.bits;
            self.words[w] |= u64::from(self.mask) << shift;
        }
        min_off
    }

    /// Places one ball into `bin`; returns the ball's quantized height.
    /// On a counter pinned at `2^b − 1` this first renormalizes; if the
    /// window is genuinely exhausted the increment is absorbed
    /// (`clamped_adds`) and the quantized load stays pinned.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n`.
    #[inline]
    pub fn add_ball(&mut self, bin: usize) -> u32 {
        assert!(bin < self.n, "bin {bin} out of range");
        if let Some(exact) = &mut self.exact {
            exact.add_ball(bin);
        }
        let mut off = self.offset(bin);
        if off == self.mask {
            self.renormalize();
            off = self.offset(bin);
        }
        self.total_balls += 1;
        if off == self.mask {
            self.clamped_adds += 1;
            return self.base + self.mask;
        }
        let old = self.base + off;
        let new = old + 1;
        self.set_offset(bin, off + 1);
        self.count_by_load[old as usize] -= 1;
        if new as usize >= self.count_by_load.len() {
            self.count_by_load.push(0);
        }
        self.count_by_load[new as usize] += 1;
        if new > self.max_load {
            self.max_load = new;
        }
        self.nu1 += u64::from(new == 1);
        self.nu2 += u64::from(new == 2);
        new
    }

    /// Removes one ball from `bin`; returns the removed ball's
    /// quantized height. At offset 0 the decrement is absorbed
    /// (`clamped_removes`) — the quantized load cannot drop below the
    /// base.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n`, the store holds no balls, or — in the
    /// lossless regime — the bin is quantized-empty (mirroring
    /// [`LoadVector::remove_ball`]).
    #[inline]
    pub fn remove_ball(&mut self, bin: usize) -> u32 {
        assert!(bin < self.n, "bin {bin} out of range");
        assert!(self.total_balls > 0, "cannot remove from an empty store");
        if let Some(exact) = &mut self.exact {
            exact.remove_ball(bin);
        }
        let off = self.offset(bin);
        if off == 0 {
            assert!(
                self.base > 0 || self.clamped_adds > 0,
                "cannot remove a ball from empty bin {bin}"
            );
            self.total_balls -= 1;
            self.clamped_removes += 1;
            return self.base;
        }
        self.total_balls -= 1;
        let old = self.base + off;
        let new = old - 1;
        self.set_offset(bin, off - 1);
        self.count_by_load[old as usize] -= 1;
        self.count_by_load[new as usize] += 1;
        if old == self.max_load && self.count_by_load[old as usize] == 0 {
            self.max_load = new;
            self.count_by_load.truncate(old as usize);
        }
        self.nu1 -= u64::from(old == 1);
        self.nu2 -= u64::from(old == 2);
        old
    }

    /// The current maximum quantized load.
    #[inline]
    pub fn max_load(&self) -> u32 {
        self.max_load
    }

    /// The exact number of balls currently stored (never quantized).
    #[inline]
    pub fn total_balls(&self) -> u64 {
        self.total_balls
    }

    /// `ν_y` over quantized loads (O(1) for `y ≤ 2`).
    #[inline]
    pub fn nu(&self, y: u32) -> u64 {
        match y {
            0 => self.n as u64,
            1 => self.nu1,
            2 => self.nu2,
            _ => {
                let from = (y as usize).min(self.count_by_load.len());
                self.count_by_load[from..].iter().sum()
            }
        }
    }

    /// The count-by-quantized-load histogram.
    pub fn load_histogram(&self) -> &[u64] {
        &self.count_by_load
    }

    /// Verifies internal consistency (histogram vs lanes, max load, ν
    /// caches, padding pins, side-table invariants); O(n).
    pub fn check_invariants(&self) -> bool {
        let mut hist = vec![0u64; self.count_by_load.len()];
        let mut max = 0u32;
        for bin in 0..self.n {
            let l = self.load(bin);
            if l as usize >= hist.len() {
                return false;
            }
            hist[l as usize] += 1;
            max = max.max(l);
        }
        let ge1: u64 = hist[1..].iter().sum();
        let ge2: u64 = hist.get(2..).map(|t| t.iter().sum()).unwrap_or(0);
        let per_word = 1usize << self.lane_shift;
        let padding_ok = (self.n..self.words.len() * per_word).all(|lane| {
            let w = lane >> self.lane_shift;
            let shift = ((lane & (per_word - 1)) as u32) * self.bits;
            ((self.words[w] >> shift) as u32) & self.mask == self.mask
        });
        let lossless_ok = !self.is_lossless()
            || hist
                .iter()
                .enumerate()
                .map(|(l, &c)| l as u64 * c)
                .sum::<u64>()
                == self.total_balls;
        let exact_ok = self.exact.as_ref().is_none_or(|e| {
            e.check_invariants() && e.total_balls() == self.total_balls && e.n() == self.n
        });
        hist == self.count_by_load
            && max == self.max_load
            && ge1 == self.nu1
            && ge2 == self.nu2
            && hist.iter().sum::<u64>() == self.n as u64
            && padding_ok
            && lossless_ok
            && exact_ok
    }

    fn exact_side(&self) -> Option<&LoadVector> {
        self.exact.as_deref()
    }
}

impl BinStore for PackedStore {
    #[inline]
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn load(&self, bin: usize) -> u32 {
        PackedStore::load(self, bin)
    }

    #[inline]
    fn add_ball(&mut self, bin: usize) -> u32 {
        PackedStore::add_ball(self, bin)
    }

    #[inline]
    fn remove_ball(&mut self, bin: usize) -> u32 {
        PackedStore::remove_ball(self, bin)
    }

    #[inline]
    fn max_load(&self) -> u32 {
        PackedStore::max_load(self)
    }

    #[inline]
    fn total_balls(&self) -> u64 {
        PackedStore::total_balls(self)
    }

    #[inline]
    fn nu(&self, y: u32) -> u64 {
        PackedStore::nu(self, y)
    }

    #[inline]
    fn capacity(&self, bin: usize) -> u32 {
        match self.exact_side() {
            Some(e) => e.capacity(bin),
            None => {
                assert!(bin < self.n, "bin {bin} out of range");
                1
            }
        }
    }

    #[inline]
    fn total_capacity(&self) -> u64 {
        self.exact_side()
            .map_or(self.n as u64, LoadVector::total_capacity)
    }

    #[inline]
    fn max_utilization(&self) -> f64 {
        self.exact_side()
            .map_or(f64::from(self.max_load), LoadVector::max_utilization)
    }

    #[inline]
    fn utilization_gap(&self) -> f64 {
        self.exact_side().map_or_else(
            || f64::from(self.max_load) - self.total_balls as f64 / self.n as f64,
            LoadVector::utilization_gap,
        )
    }

    fn copy_loads_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend((0..self.n).map(|bin| self.load(bin)));
    }

    fn histogram(&self) -> Vec<u64> {
        self.count_by_load.clone()
    }
}

impl LoadView for PackedStore {
    #[inline]
    fn view_n(&self) -> usize {
        self.n
    }

    #[inline]
    fn view_load(&self, bin: usize) -> u32 {
        self.load(bin)
    }

    #[inline]
    fn prefetch(&self, bin: usize) {
        crate::snapshot::prefetch_read(&self.words[bin >> self.lane_shift]);
    }
}

/// Count-min rows of the sketch (two independent hashed rows: the
/// estimate is their minimum).
const SKETCH_DEPTH: usize = 2;

/// Per-row hash seeds (arbitrary odd constants, fixed so sketch runs
/// are deterministic in the operation stream alone).
const SKETCH_SEEDS: [u64; SKETCH_DEPTH] = [0x9E37_79B9_7F4A_7C15, 0xC2B2_AE3D_27D4_EB4F];

/// splitmix64 finalizer: the per-row bin hash.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A count-min sketch over bins: o(n) counter memory, per-bin loads
/// *estimated* as the minimum counter over `SKETCH_DEPTH` hashed
/// rows. With matched add/remove streams every counter is the exact
/// sum of the loads hashing into it, so estimates never fall below the
/// true load (a bin can look fuller than it is, never emptier — the
/// safe direction for least-loaded placement).
///
/// Global observables (`max_load`, `ν_y`, histogram) are answered by an
/// O(n · depth) scan of per-bin estimates — callers at huge n should
/// sample them sparsely. [`SketchStore::total_balls`] stays exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchStore {
    n: usize,
    /// Row width (power of two); `counters` holds `depth` rows of it.
    width: usize,
    counters: Vec<u32>,
    total_balls: u64,
}

impl SketchStore {
    /// Creates a sketch over `n` bins at the default width
    /// (`(n / 16).next_power_of_two()`, floor 16 — ½ byte/bin at scale).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::with_width(n, (n / 16).next_power_of_two().max(16))
    }

    /// Creates a sketch with an explicit row width (rounded up to a
    /// power of two).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `width == 0`.
    pub fn with_width(n: usize, width: usize) -> Self {
        assert!(n > 0, "need at least one bin");
        assert!(width > 0, "need at least one counter per row");
        let width = width.next_power_of_two();
        Self {
            n,
            width,
            counters: vec![0; width * SKETCH_DEPTH],
            total_balls: 0,
        }
    }

    /// The number of bins.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Counter bytes per bin — the sub-linear headline observable.
    pub fn bytes_per_bin(&self) -> f64 {
        (self.counters.len() * 4) as f64 / self.n as f64
    }

    #[inline]
    fn slot(&self, row: usize, bin: usize) -> usize {
        row * self.width + (mix64(SKETCH_SEEDS[row] ^ bin as u64) as usize & (self.width - 1))
    }

    /// The estimated load of `bin`: the minimum counter over the hashed
    /// rows — never below the true load.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n`.
    #[inline]
    pub fn load(&self, bin: usize) -> u32 {
        assert!(bin < self.n, "bin {bin} out of range");
        (0..SKETCH_DEPTH)
            .map(|row| self.counters[self.slot(row, bin)])
            .min()
            .expect("depth >= 1")
    }

    /// Adds one ball to `bin`; returns the estimated height.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n`.
    #[inline]
    pub fn add_ball(&mut self, bin: usize) -> u32 {
        assert!(bin < self.n, "bin {bin} out of range");
        self.total_balls += 1;
        let mut est = u32::MAX;
        for row in 0..SKETCH_DEPTH {
            let slot = self.slot(row, bin);
            self.counters[slot] += 1;
            est = est.min(self.counters[slot]);
        }
        est
    }

    /// Removes one ball from `bin`; returns the estimated height
    /// before removal. Callers must only remove balls they placed (the
    /// service-layer contract) — unmatched removes corrupt the sketch.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n` or the estimate is already 0.
    #[inline]
    pub fn remove_ball(&mut self, bin: usize) -> u32 {
        assert!(bin < self.n, "bin {bin} out of range");
        let before = self.load(bin);
        assert!(before > 0, "cannot remove a ball from empty bin {bin}");
        self.total_balls -= 1;
        for row in 0..SKETCH_DEPTH {
            let slot = self.slot(row, bin);
            self.counters[slot] -= 1;
        }
        before
    }

    /// The exact number of balls currently stored.
    #[inline]
    pub fn total_balls(&self) -> u64 {
        self.total_balls
    }

    /// The maximum estimated load — O(n · depth) scan.
    pub fn max_load(&self) -> u32 {
        (0..self.n).map(|bin| self.load(bin)).max().unwrap_or(0)
    }

    /// `ν_y` over estimated loads — O(n · depth) scan.
    pub fn nu(&self, y: u32) -> u64 {
        if y == 0 {
            return self.n as u64;
        }
        (0..self.n).filter(|&bin| self.load(bin) >= y).count() as u64
    }

    /// Verifies internal consistency: each row's counters sum to the
    /// exact ball count; O(counters).
    pub fn check_invariants(&self) -> bool {
        (0..SKETCH_DEPTH).all(|row| {
            self.counters[row * self.width..(row + 1) * self.width]
                .iter()
                .map(|&c| u64::from(c))
                .sum::<u64>()
                == self.total_balls
        })
    }
}

impl BinStore for SketchStore {
    #[inline]
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn load(&self, bin: usize) -> u32 {
        SketchStore::load(self, bin)
    }

    #[inline]
    fn add_ball(&mut self, bin: usize) -> u32 {
        SketchStore::add_ball(self, bin)
    }

    #[inline]
    fn remove_ball(&mut self, bin: usize) -> u32 {
        SketchStore::remove_ball(self, bin)
    }

    #[inline]
    fn max_load(&self) -> u32 {
        SketchStore::max_load(self)
    }

    #[inline]
    fn total_balls(&self) -> u64 {
        SketchStore::total_balls(self)
    }

    #[inline]
    fn nu(&self, y: u32) -> u64 {
        SketchStore::nu(self, y)
    }

    fn copy_loads_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend((0..self.n).map(|bin| self.load(bin)));
    }

    fn histogram(&self) -> Vec<u64> {
        let mut hist = vec![0u64; self.max_load() as usize + 1];
        for bin in 0..self.n {
            hist[self.load(bin) as usize] += 1;
        }
        hist
    }
}

impl LoadView for SketchStore {
    #[inline]
    fn view_n(&self) -> usize {
        self.n
    }

    #[inline]
    fn view_load(&self, bin: usize) -> u32 {
        self.load(bin)
    }

    #[inline]
    fn prefetch(&self, bin: usize) {
        // Prefetch the row-0 counter; row 1 follows the dependent read.
        crate::snapshot::prefetch_read(&self.counters[self.slot(0, bin)]);
    }
}

/// One shard's bin state, dispatched by [`StoreKind`]: the enum the
/// service layer's striped shards and shared-nothing owners hold where
/// a bare [`LoadVector`] used to be hard-wired. The `Exact` variant
/// delegates 1:1, so every pre-compact bit-identity contract (striped
/// vs shared-nothing, batched vs per-request, hetero-uniform vs
/// static) survives unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum BinSlab {
    /// Exact 32-bit loads.
    Exact(LoadVector),
    /// Packed b-bit quantized loads.
    Packed(PackedStore),
    /// Count-min estimated loads.
    Sketch(SketchStore),
}

/// Delegates a method call to whichever variant the slab holds.
macro_rules! slab_dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            BinSlab::Exact($inner) => $body,
            BinSlab::Packed($inner) => $body,
            BinSlab::Sketch($inner) => $body,
        }
    };
}

impl BinSlab {
    /// Which representation this slab runs.
    pub fn kind(&self) -> StoreKind {
        match self {
            BinSlab::Exact(_) => StoreKind::Exact,
            BinSlab::Packed(p) if p.bits() == 4 => StoreKind::Packed4,
            BinSlab::Packed(_) => StoreKind::Packed8,
            BinSlab::Sketch(_) => StoreKind::Sketch,
        }
    }

    /// The number of bins.
    #[inline]
    pub fn n(&self) -> usize {
        slab_dispatch!(self, s => s.n())
    }

    /// The (exact / quantized / estimated) load of `bin`.
    #[inline]
    pub fn load(&self, bin: usize) -> u32 {
        slab_dispatch!(self, s => s.load(bin))
    }

    /// Places one ball; returns its height under the slab's semantics.
    #[inline]
    pub fn add_ball(&mut self, bin: usize) -> u32 {
        slab_dispatch!(self, s => s.add_ball(bin))
    }

    /// Removes one ball; returns its height under the slab's semantics.
    #[inline]
    pub fn remove_ball(&mut self, bin: usize) -> u32 {
        slab_dispatch!(self, s => s.remove_ball(bin))
    }

    /// The maximum (exact / quantized / estimated) load.
    #[inline]
    pub fn max_load(&self) -> u32 {
        slab_dispatch!(self, s => BinStore::max_load(s))
    }

    /// The exact ball count (exact for every variant).
    #[inline]
    pub fn total_balls(&self) -> u64 {
        slab_dispatch!(self, s => BinStore::total_balls(s))
    }

    /// `ν_y` under the slab's load semantics.
    #[inline]
    pub fn nu(&self, y: u32) -> u64 {
        slab_dispatch!(self, s => BinStore::nu(s, y))
    }

    /// The capacity of `bin`.
    #[inline]
    pub fn capacity(&self, bin: usize) -> u32 {
        slab_dispatch!(self, s => BinStore::capacity(s, bin))
    }

    /// The total capacity `Σ c_bin`.
    #[inline]
    pub fn total_capacity(&self) -> u64 {
        slab_dispatch!(self, s => BinStore::total_capacity(s))
    }

    /// The maximum utilization.
    #[inline]
    pub fn max_utilization(&self) -> f64 {
        slab_dispatch!(self, s => BinStore::max_utilization(s))
    }

    /// The capacity-normalized gap.
    #[inline]
    pub fn utilization_gap(&self) -> f64 {
        slab_dispatch!(self, s => BinStore::utilization_gap(s))
    }

    /// Overwrites `out` with per-bin loads in index order.
    pub fn copy_loads_into(&self, out: &mut Vec<u32>) {
        slab_dispatch!(self, s => BinStore::copy_loads_into(s, out))
    }

    /// The count-by-load histogram.
    pub fn histogram(&self) -> Vec<u64> {
        slab_dispatch!(self, s => BinStore::histogram(s))
    }

    /// Adds this slab's histogram into `merged` (which the caller has
    /// already reserved to the merged max load — the allocation-churn
    /// fix for huge-n merges). Exact and packed slabs accumulate
    /// straight from their incrementally-maintained `count_by_load`
    /// slices, no per-shard allocation.
    pub fn accumulate_histogram(&self, merged: &mut Vec<u64>) {
        fn add(merged: &mut Vec<u64>, hist: &[u64]) {
            if merged.len() < hist.len() {
                merged.resize(hist.len(), 0);
            }
            for (m, &h) in merged.iter_mut().zip(hist) {
                *m += h;
            }
        }
        match self {
            BinSlab::Exact(s) => add(merged, s.load_histogram()),
            BinSlab::Packed(p) => add(merged, p.load_histogram()),
            BinSlab::Sketch(s) => add(merged, &BinStore::histogram(s)),
        }
    }

    /// Verifies the variant's internal invariants; O(n).
    pub fn check_invariants(&self) -> bool {
        match self {
            BinSlab::Exact(s) => s.check_invariants(),
            BinSlab::Packed(s) => s.check_invariants(),
            BinSlab::Sketch(s) => s.check_invariants(),
        }
    }

    /// Resident bytes per bin (loads/words/counters, including every
    /// per-bin side table): 4.0 for a homogeneous exact store, 12.0 for
    /// a heterogeneous one (capacity + class-index tables), and the
    /// packed kinds delegate to [`PackedStore::bytes_per_bin`], which
    /// already charges its exact side-table in full. A sketch never
    /// carries capacities, so its counters are the whole story.
    pub fn bytes_per_bin(&self) -> f64 {
        match self {
            BinSlab::Exact(s) => s.store_bytes() as f64 / s.n() as f64,
            BinSlab::Packed(p) => p.bytes_per_bin(),
            BinSlab::Sketch(s) => s.bytes_per_bin(),
        }
    }

    /// The exact store inside an `Exact` slab (None otherwise) — lets
    /// pre-compact call sites keep borrowing a `LoadVector`.
    pub fn as_exact(&self) -> Option<&LoadVector> {
        match self {
            BinSlab::Exact(s) => Some(s),
            _ => None,
        }
    }
}

impl BinStore for BinSlab {
    #[inline]
    fn n(&self) -> usize {
        BinSlab::n(self)
    }

    #[inline]
    fn load(&self, bin: usize) -> u32 {
        BinSlab::load(self, bin)
    }

    #[inline]
    fn add_ball(&mut self, bin: usize) -> u32 {
        BinSlab::add_ball(self, bin)
    }

    #[inline]
    fn remove_ball(&mut self, bin: usize) -> u32 {
        BinSlab::remove_ball(self, bin)
    }

    #[inline]
    fn max_load(&self) -> u32 {
        BinSlab::max_load(self)
    }

    #[inline]
    fn total_balls(&self) -> u64 {
        BinSlab::total_balls(self)
    }

    #[inline]
    fn nu(&self, y: u32) -> u64 {
        BinSlab::nu(self, y)
    }

    #[inline]
    fn capacity(&self, bin: usize) -> u32 {
        BinSlab::capacity(self, bin)
    }

    #[inline]
    fn total_capacity(&self) -> u64 {
        BinSlab::total_capacity(self)
    }

    #[inline]
    fn max_utilization(&self) -> f64 {
        BinSlab::max_utilization(self)
    }

    #[inline]
    fn utilization_gap(&self) -> f64 {
        BinSlab::utilization_gap(self)
    }

    fn copy_loads_into(&self, out: &mut Vec<u32>) {
        BinSlab::copy_loads_into(self, out)
    }

    fn histogram(&self) -> Vec<u64> {
        BinSlab::histogram(self)
    }
}

impl LoadView for BinSlab {
    #[inline]
    fn view_n(&self) -> usize {
        self.n()
    }

    #[inline]
    fn view_load(&self, bin: usize) -> u32 {
        self.load(bin)
    }

    #[inline]
    fn prefetch(&self, bin: usize) {
        match self {
            BinSlab::Exact(s) => LoadView::prefetch(s, bin),
            BinSlab::Packed(s) => LoadView::prefetch(s, bin),
            BinSlab::Sketch(s) => LoadView::prefetch(s, bin),
        }
    }
}

/// A lock-free **packed** snapshot of published per-bin loads: b-bit
/// saturating lanes in `AtomicU64` words — 16 bins per word at b = 4
/// against 2 bins per 64-byte line of exact `AtomicU32`s, so an owner's
/// periodic republish touches ~8× fewer cache lines.
///
/// Published values are **absolute** `min(load, 2^b − 1)`. There is no
/// shared base here: owners publish concurrently, and a coordinated
/// renormalization would need exactly the cross-shard synchronization
/// the shared-nothing engine exists to avoid. The decision kernel
/// therefore cannot distinguish bins at or above the ceiling; at stable
/// open-loop load factors (λ < 1) loads sit far below it and decisions
/// are unaffected (the compact-envelope regression locks that).
///
/// Lanes are written with a CAS loop ([`AtomicU64::fetch_update`]): each
/// *bin* has exactly one writer, but one *word*'s lanes can span two
/// owners at a partition boundary, so a plain read-modify-write of the
/// word would race.
#[derive(Debug)]
pub struct PackedLoadSnapshot {
    words: Vec<AtomicU64>,
    n: usize,
    bits: u32,
    /// `2^bits − 1`: the per-lane value mask and publish ceiling.
    mask: u32,
    /// `log2(64 / bits)`: word of `bin` is `bin >> lane_shift`.
    lane_shift: u32,
}

impl PackedLoadSnapshot {
    /// Creates an all-zero packed snapshot over `n` bins with b-bit
    /// lanes (`bits ∈ {4, 8}`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `bits` is not 4 or 8.
    pub fn new(n: usize, bits: u32) -> Self {
        assert!(n > 0, "snapshot needs at least one bin");
        assert!(bits == 4 || bits == 8, "lane width must be 4 or 8 bits");
        let lane_shift = if bits == 4 { 4 } else { 3 };
        let words = n.div_ceil(1 << lane_shift);
        Self {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            n,
            bits,
            mask: (1u32 << bits) - 1,
            lane_shift,
        }
    }

    /// The number of bins.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the snapshot has zero bins (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The lane width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The publish ceiling `2^b − 1`: loads at or above it all read back
    /// as the ceiling.
    pub fn ceiling(&self) -> u32 {
        self.mask
    }

    /// What a publish of `load` reads back as: `min(load, ceiling)`.
    #[inline]
    pub fn published(&self, load: u32) -> u32 {
        load.min(self.mask)
    }

    #[inline]
    fn lane_pos(&self, bin: usize) -> (usize, u32) {
        let per_word_mask = (1usize << self.lane_shift) - 1;
        (
            bin >> self.lane_shift,
            ((bin & per_word_mask) as u32) * self.bits,
        )
    }

    /// Reads the published (saturated) load of `bin` (`Relaxed`).
    #[inline]
    pub fn get(&self, bin: usize) -> u32 {
        assert!(bin < self.n, "bin {bin} out of range (n = {})", self.n);
        let (word, shift) = self.lane_pos(bin);
        ((self.words[word].load(Ordering::Relaxed) >> shift) as u32) & self.mask
    }

    /// Publishes `min(load, ceiling)` as the load of `bin`. Only the
    /// bin's owner may call this in the shared-nothing engine.
    #[inline]
    pub fn set(&self, bin: usize, load: u32) {
        assert!(bin < self.n, "bin {bin} out of range (n = {})", self.n);
        let (word, shift) = self.lane_pos(bin);
        let lane = u64::from(self.published(load)) << shift;
        let lane_mask = u64::from(self.mask) << shift;
        // CAS loop: neighbouring lanes may belong to another owner.
        self.words[word]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |w| {
                Some((w & !lane_mask) | lane)
            })
            .expect("fetch_update closure never fails");
    }
}

impl LoadView for PackedLoadSnapshot {
    #[inline]
    fn view_n(&self) -> usize {
        self.n
    }

    #[inline]
    fn view_load(&self, bin: usize) -> u32 {
        self.get(bin)
    }

    #[inline]
    fn prefetch(&self, bin: usize) {
        crate::snapshot::prefetch_read(&self.words[bin >> self.lane_shift]);
    }
}

/// The published-load surface a shared-nothing engine decides against:
/// exact `u32` lanes or packed b-bit lanes, selected by the run's
/// [`StoreKind`] ([`StoreKind::Sketch`] publishes its estimates through
/// the exact variant — the sketch compresses the *truth* side, not the
/// snapshot).
#[derive(Debug)]
pub enum LoadSnapshot {
    /// One `AtomicU32` per bin (the pre-compact representation).
    Exact(SharedLoadSnapshot),
    /// b-bit saturating lanes packed into `AtomicU64` words.
    Packed(PackedLoadSnapshot),
}

impl LoadSnapshot {
    /// Builds the snapshot representation matching `kind` over `n` bins.
    pub fn for_kind(kind: StoreKind, n: usize) -> Self {
        match kind.bits() {
            Some(bits) => LoadSnapshot::Packed(PackedLoadSnapshot::new(n, bits)),
            None => LoadSnapshot::Exact(SharedLoadSnapshot::new(n)),
        }
    }

    /// The number of bins.
    pub fn len(&self) -> usize {
        match self {
            LoadSnapshot::Exact(s) => s.len(),
            LoadSnapshot::Packed(s) => s.len(),
        }
    }

    /// Whether the snapshot has zero bins (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads the published load of `bin`.
    #[inline]
    pub fn get(&self, bin: usize) -> u32 {
        match self {
            LoadSnapshot::Exact(s) => s.get(bin),
            LoadSnapshot::Packed(s) => s.get(bin),
        }
    }

    /// Publishes `load` as the load of `bin` (saturated at the packed
    /// ceiling when packed).
    #[inline]
    pub fn set(&self, bin: usize, load: u32) {
        match self {
            LoadSnapshot::Exact(s) => s.set(bin, load),
            LoadSnapshot::Packed(s) => s.set(bin, load),
        }
    }

    /// What a publish of `load` reads back as — `load` itself for the
    /// exact variant, `min(load, ceiling)` for the packed one. The
    /// snapshot-equals-truth invariant checks compare against this.
    #[inline]
    pub fn published(&self, load: u32) -> u32 {
        match self {
            LoadSnapshot::Exact(_) => load,
            LoadSnapshot::Packed(s) => s.published(load),
        }
    }
}

impl LoadView for LoadSnapshot {
    #[inline]
    fn view_n(&self) -> usize {
        self.len()
    }

    #[inline]
    fn view_load(&self, bin: usize) -> u32 {
        self.get(bin)
    }

    #[inline]
    fn prefetch(&self, bin: usize) {
        match self {
            LoadSnapshot::Exact(s) => LoadView::prefetch(s, bin),
            LoadSnapshot::Packed(s) => LoadView::prefetch(s, bin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_prng::Xoshiro256PlusPlus;
    use rand::Rng;

    #[test]
    fn packed_snapshot_publishes_and_saturates() {
        for bits in [4u32, 8] {
            let snap = PackedLoadSnapshot::new(19, bits);
            assert_eq!(snap.len(), 19);
            assert!(!snap.is_empty());
            assert_eq!(snap.bits(), bits);
            let top = (1u32 << bits) - 1;
            assert_eq!(snap.ceiling(), top);
            for bin in 0..19 {
                assert_eq!(snap.get(bin), 0);
            }
            snap.set(3, 7);
            snap.set(4, 2);
            snap.set(18, top + 100);
            assert_eq!(snap.get(3), 7, "neighbour lanes stay intact");
            assert_eq!(snap.get(4), 2);
            assert_eq!(snap.get(18), top, "publishes saturate at the ceiling");
            assert_eq!(snap.published(top + 100), top);
            assert_eq!(snap.published(1), 1);
            assert_eq!(snap.view_load(3), 7);
            assert_eq!(snap.view_n(), 19);
            snap.set(3, 0);
            assert_eq!(snap.get(3), 0, "lanes can be cleared");
            assert_eq!(snap.get(4), 2);
        }
    }

    #[test]
    fn packed_snapshot_boundary_word_survives_two_writers() {
        // Lanes 14..18 of a packed4 snapshot straddle the word boundary
        // at bin 16; concurrent writers on both sides must not clobber
        // each other's lanes (the reason `set` is a CAS loop).
        let snap = PackedLoadSnapshot::new(32, 4);
        std::thread::scope(|scope| {
            let left = scope.spawn(|| {
                for v in 0..1000u32 {
                    snap.set(14, v % 16);
                    snap.set(15, 9);
                }
            });
            let right = scope.spawn(|| {
                for v in 0..1000u32 {
                    snap.set(16, v % 16);
                    snap.set(17, 5);
                }
            });
            left.join().unwrap();
            right.join().unwrap();
        });
        assert_eq!(snap.get(15), 9);
        assert_eq!(snap.get(17), 5);
    }

    #[test]
    fn load_snapshot_matches_kind() {
        for kind in [StoreKind::Exact, StoreKind::Sketch] {
            let snap = LoadSnapshot::for_kind(kind, 9);
            assert!(matches!(snap, LoadSnapshot::Exact(_)), "{kind}");
            assert_eq!(snap.published(1_000_000), 1_000_000);
        }
        for (kind, top) in [(StoreKind::Packed4, 15), (StoreKind::Packed8, 255)] {
            let snap = LoadSnapshot::for_kind(kind, 9);
            assert!(matches!(snap, LoadSnapshot::Packed(_)), "{kind}");
            assert_eq!(snap.published(1_000_000), top);
            snap.set(8, 3);
            assert_eq!(snap.get(8), 3);
            assert_eq!(snap.view_load(8), 3);
            assert_eq!(snap.view_n(), 9);
            assert_eq!(snap.len(), 9);
            assert!(!snap.is_empty());
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            StoreKind::Exact,
            StoreKind::Packed4,
            StoreKind::Packed8,
            StoreKind::Sketch,
        ] {
            assert_eq!(StoreKind::parse(kind.name()), Some(kind));
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert_eq!(StoreKind::parse("psychic"), None);
        assert_eq!(StoreKind::Packed4.bits(), Some(4));
        assert_eq!(StoreKind::Packed8.bits(), Some(8));
        assert_eq!(StoreKind::Sketch.bits(), None);
        assert!(StoreKind::Exact.is_exact() && !StoreKind::Sketch.is_exact());
    }

    #[test]
    fn packed_matches_load_vector_below_saturation() {
        for bits in [4, 8] {
            let mut packed = PackedStore::new(37, bits);
            let mut exact = LoadVector::new(37);
            let mut rng = Xoshiro256PlusPlus::from_u64(7);
            let mut live: Vec<usize> = Vec::new();
            for _ in 0..4000 {
                if live.is_empty() || rng.gen_bool(0.55) {
                    let bin = rng.gen_range(0..37);
                    // Keep every load inside the b-bit window so the
                    // stream stays lossless.
                    if exact.load(bin) < (1 << bits) - 1 {
                        assert_eq!(packed.add_ball(bin), exact.add_ball(bin));
                        live.push(bin);
                    }
                } else {
                    let i = rng.gen_range(0..live.len());
                    let bin = live.swap_remove(i);
                    assert_eq!(packed.remove_ball(bin), exact.remove_ball(bin));
                }
            }
            assert!(packed.is_lossless());
            assert_eq!(packed.load_histogram(), exact.load_histogram());
            assert_eq!(BinStore::max_load(&packed), exact.max_load());
            assert_eq!(packed.nu(1), exact.nu(1));
            assert_eq!(packed.nu(2), exact.nu(2));
            assert_eq!(packed.nu(5), exact.nu(5));
            assert_eq!(packed.total_balls(), exact.total_balls());
            for bin in 0..37 {
                assert_eq!(packed.load(bin), exact.load(bin));
            }
            assert!(packed.check_invariants());
        }
    }

    #[test]
    fn packed_renormalizes_on_saturation() {
        // Two bins, 4-bit window. Fill both to 15, then push on: the
        // shared minimum rises, so renormalization opens headroom and
        // counting stays exact far beyond 15.
        let mut packed = PackedStore::new(2, 4);
        for _ in 0..15 {
            packed.add_ball(0);
            packed.add_ball(1);
        }
        assert_eq!(packed.base(), 0);
        for level in 16..40 {
            assert_eq!(packed.add_ball(0), level);
            assert_eq!(packed.add_ball(1), level);
        }
        assert!(packed.renormalizations() > 0);
        assert!(packed.base() > 0);
        assert!(packed.is_lossless());
        assert_eq!(packed.load(0), 39);
        assert_eq!(BinStore::max_load(&packed), 39);
        assert!(packed.check_invariants());
    }

    #[test]
    fn packed_pins_a_runaway_bin_and_reports_the_loss() {
        // Bin 0 races ahead while bin 1 stays empty: the minimum offset
        // is stuck at 0, so the window genuinely exhausts and the
        // counter pins at base + 15.
        let mut packed = PackedStore::new(2, 4);
        for _ in 0..40 {
            packed.add_ball(0);
        }
        assert_eq!(packed.load(0), 15, "pinned at the window top");
        assert!(!packed.is_lossless());
        assert_eq!(packed.clamped_adds(), 25);
        assert_eq!(packed.total_balls(), 40, "ball count stays exact");
        assert!(packed.check_invariants());
        // Removes walk the counter back down; once the quantized load
        // reaches the true load the stream is exact again (though the
        // lossless flag stays down).
        for _ in 0..15 {
            packed.remove_ball(0);
        }
        assert_eq!(packed.load(0), 0);
        assert_eq!(packed.total_balls(), 25);
        // 25 more true balls remain; further removes clamp at 0.
        assert_eq!(packed.remove_ball(0), 0);
        assert_eq!(packed.clamped_removes(), 1);
        assert!(packed.check_invariants());
    }

    #[test]
    fn packed_remove_across_renormalization_boundary() {
        // Push the base up, then remove back down across it. Quantized
        // loads are absolute, so removes that stay at or above the base
        // track the exact store bit for bit; only below the base do
        // they clamp.
        let mut packed = PackedStore::new(3, 4);
        let mut exact = LoadVector::new(3);
        for _ in 0..20 {
            for bin in 0..3 {
                assert_eq!(packed.add_ball(bin), exact.add_ball(bin));
            }
        }
        let base = packed.base();
        assert!(base > 0, "renormalization must have run");
        assert!(packed.is_lossless());
        // Loads are 20 each; removes down to the base stay exact even
        // though each crosses the renormalization boundary's history.
        for level in 0..(20 - base) {
            for bin in 0..3 {
                assert_eq!(packed.remove_ball(bin), exact.remove_ball(bin));
                assert_eq!(packed.load(bin), exact.load(bin), "level {level}");
            }
        }
        assert!(packed.is_lossless());
        assert_eq!(packed.load_histogram(), exact.load_histogram());
        // One more remove per bin goes below the base: the quantized
        // load floors there while the exact store keeps dropping.
        for bin in 0..3 {
            assert_eq!(packed.remove_ball(bin), base);
            assert_eq!(packed.load(bin), base);
        }
        assert_eq!(packed.clamped_removes(), 3);
        assert_eq!(packed.total_balls(), exact.total_balls() - 3);
        assert!(packed.check_invariants());
    }

    #[test]
    #[should_panic(expected = "empty bin")]
    fn packed_lossless_remove_from_empty_bin_panics() {
        let mut packed = PackedStore::new(2, 4);
        packed.add_ball(0);
        let _ = packed.remove_ball(1);
    }

    #[test]
    fn packed_padding_lanes_survive_renormalization() {
        // n = 17 leaves 15 padding lanes in the second word at b=4.
        let mut packed = PackedStore::new(17, 4);
        for _ in 0..25 {
            for bin in 0..17 {
                packed.add_ball(bin);
            }
        }
        assert!(packed.renormalizations() > 0);
        assert!(packed.is_lossless());
        assert!(packed.check_invariants());
        assert_eq!(packed.load(16), 25);
    }

    #[test]
    fn packed_capacities_attach_exact_side_table() {
        let caps = [4u32, 1, 1, 1];
        let mut packed = PackedStore::with_capacities(&caps, 4);
        assert!(packed.has_exact_side());
        for _ in 0..4 {
            packed.add_ball(0);
        }
        packed.add_ball(1);
        packed.add_ball(1);
        assert_eq!(BinStore::capacity(&packed, 0), 4);
        assert_eq!(BinStore::total_capacity(&packed), 7);
        assert_eq!(BinStore::max_utilization(&packed), 2.0);
        assert!(packed.check_invariants());
        // Uniform capacities stay homogeneous (no side table).
        assert!(!PackedStore::with_capacities(&[1; 5], 4).has_exact_side());
    }

    #[test]
    fn packed_bytes_per_bin_is_sub_byte_at_4_bits() {
        let packed = PackedStore::new(1 << 10, 4);
        assert!((packed.bytes_per_bin() - 0.5).abs() < 1e-9);
        let packed8 = PackedStore::new(1 << 10, 8);
        assert!((packed8.bytes_per_bin() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sketch_estimates_dominate_true_loads() {
        let mut sketch = SketchStore::new(256);
        let mut exact = LoadVector::new(256);
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let mut live: Vec<usize> = Vec::new();
        for _ in 0..6000 {
            if live.is_empty() || rng.gen_bool(0.55) {
                let bin = rng.gen_range(0..256);
                sketch.add_ball(bin);
                exact.add_ball(bin);
                live.push(bin);
            } else {
                let i = rng.gen_range(0..live.len());
                let bin = live.swap_remove(i);
                sketch.remove_ball(bin);
                exact.remove_ball(bin);
            }
        }
        assert_eq!(sketch.total_balls(), exact.total_balls());
        for bin in 0..256 {
            assert!(
                sketch.load(bin) >= exact.load(bin),
                "estimate below truth at bin {bin}"
            );
        }
        assert!(SketchStore::max_load(&sketch) >= exact.max_load());
        assert!(sketch.check_invariants());
        assert!(sketch.bytes_per_bin() < 4.0);
    }

    #[test]
    fn sketch_exact_when_collision_free() {
        // Far fewer occupied bins than counters: estimates are exact.
        let mut sketch = SketchStore::with_width(8, 1 << 10);
        assert_eq!(sketch.add_ball(3), 1);
        assert_eq!(sketch.add_ball(3), 2);
        assert_eq!(sketch.add_ball(5), 1);
        assert_eq!(sketch.load(3), 2);
        assert_eq!(sketch.load(0), 0);
        assert_eq!(sketch.remove_ball(3), 2);
        assert_eq!(sketch.load(3), 1);
        assert_eq!(SketchStore::nu(&sketch, 1), 2);
        assert_eq!(BinStore::histogram(&sketch), vec![6, 2]);
        assert!(sketch.check_invariants());
    }

    #[test]
    #[should_panic(expected = "empty bin")]
    fn sketch_remove_from_empty_bin_panics() {
        let mut sketch = SketchStore::new(16);
        let _ = sketch.remove_ball(2);
    }

    #[test]
    fn slab_dispatches_every_kind() {
        for kind in [
            StoreKind::Exact,
            StoreKind::Packed4,
            StoreKind::Packed8,
            StoreKind::Sketch,
        ] {
            let mut slab = kind.new_slab(8);
            assert_eq!(slab.kind(), kind);
            assert_eq!(slab.n(), 8);
            assert_eq!(slab.add_ball(2), 1);
            assert_eq!(slab.add_ball(2), 2);
            assert_eq!(slab.load(2), 2);
            assert_eq!(slab.max_load(), 2);
            assert_eq!(slab.total_balls(), 2);
            assert_eq!(slab.nu(1), 1);
            assert_eq!(slab.remove_ball(2), 2);
            assert_eq!(slab.total_balls(), 1);
            assert!(slab.check_invariants());
            assert!(slab.bytes_per_bin() > 0.0);
            let mut merged = Vec::new();
            slab.accumulate_histogram(&mut merged);
            assert_eq!(merged[1], 1);
            let mut loads = Vec::new();
            slab.copy_loads_into(&mut loads);
            assert_eq!(loads[2], 1);
            assert_eq!(slab.view_load(2), 1);
            assert_eq!(slab.view_n(), 8);
            slab.prefetch(2);
        }
    }

    #[test]
    fn exact_slab_is_the_load_vector_bit_for_bit() {
        let mut slab = StoreKind::Exact.new_slab(6);
        let mut reference = LoadVector::new(6);
        let mut rng = Xoshiro256PlusPlus::from_u64(11);
        for _ in 0..500 {
            let bin = rng.gen_range(0..6);
            assert_eq!(slab.add_ball(bin), reference.add_ball(bin));
        }
        assert_eq!(slab.as_exact(), Some(&reference));
        assert_eq!(slab.histogram(), BinStore::histogram(&reference));
    }

    #[test]
    fn slab_with_capacities_routes_hetero() {
        let caps = [2u32, 1, 1];
        for kind in [StoreKind::Exact, StoreKind::Packed4, StoreKind::Packed8] {
            let slab = kind.slab_with_capacities(&caps);
            assert_eq!(slab.total_capacity(), 4);
            assert_eq!(slab.capacity(0), 2);
        }
        let uniform = StoreKind::Sketch.slab_with_capacities(&[1; 4]);
        assert_eq!(uniform.total_capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "heterogeneous capacities")]
    fn sketch_slab_rejects_capacities() {
        let _ = StoreKind::Sketch.slab_with_capacities(&[2, 1]);
    }

    #[test]
    fn try_slab_with_capacities_validates_without_panicking() {
        // Sketch + hetero: a diagnostic, not a panic.
        let err = StoreKind::Sketch
            .try_slab_with_capacities(&[2, 1])
            .unwrap_err();
        assert!(err.contains("sketch"), "{err}");
        assert!(err.contains("heterogeneous"), "{err}");
        // Invalid maps are caught for every kind.
        for kind in [
            StoreKind::Exact,
            StoreKind::Packed4,
            StoreKind::Packed8,
            StoreKind::Sketch,
        ] {
            assert!(kind.try_slab_with_capacities(&[]).is_err());
            assert!(kind.try_slab_with_capacities(&[1, 0]).is_err());
            assert!(kind.try_slab_with_capacities(&[1, 1]).is_ok());
        }
        // Valid hetero maps construct the same slab as the panicking path.
        let slab = StoreKind::Packed4
            .try_slab_with_capacities(&[2, 1])
            .unwrap();
        assert_eq!(slab.total_capacity(), 3);
    }

    #[test]
    fn bytes_per_bin_includes_capacity_side_tables() {
        // The memory-accounting pin (the `gap_vs_bytes` honesty fix):
        // a packed store that spills capacities into an exact side-table
        // must charge that side-table — loads + capacities + class
        // indices at 4 B each — instead of reporting its words alone.
        let n = 1 << 10;
        let mut caps = vec![1u32; n];
        caps[0] = 8;
        let hetero4 = PackedStore::with_capacities(&caps, 4);
        assert!((hetero4.bytes_per_bin() - (0.5 + 12.0)).abs() < 1e-9);
        let hetero8 = PackedStore::with_capacities(&caps, 8);
        assert!((hetero8.bytes_per_bin() - (1.0 + 12.0)).abs() < 1e-9);
        // Capacity-free stores still pay for their words alone (the
        // committed gap_vs_bytes rows all run without capacities, so
        // this fix does not move them).
        assert!((PackedStore::new(n, 4).bytes_per_bin() - 0.5).abs() < 1e-9);
        // Slab view: homogeneous exact = 4 B/bin, heterogeneous = 12.
        assert!((StoreKind::Exact.new_slab(n).bytes_per_bin() - 4.0).abs() < 1e-9);
        let exact_hetero = StoreKind::Exact.slab_with_capacities(&caps);
        assert!((exact_hetero.bytes_per_bin() - 12.0).abs() < 1e-9);
        let packed_hetero = StoreKind::Packed4.slab_with_capacities(&caps);
        assert!((packed_hetero.bytes_per_bin() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_free_fallback_observables_are_exact() {
        // Satellite audit: a PackedStore *without* a side-table is
        // provably uniform-capacity (the constructor attaches the side
        // the moment any capacity ≠ 1), so the fallback
        // `max_utilization`/`utilization_gap` — computed from the
        // quantized max load — must equal the exact store's values on
        // an identical lossless fill.
        let mut packed = PackedStore::new(64, 8);
        let mut exact = LoadVector::new(64);
        let mut rng = Xoshiro256PlusPlus::from_u64(31);
        for _ in 0..600 {
            let bin = rng.gen_range(0..64);
            packed.add_ball(bin);
            exact.add_ball(bin);
        }
        assert!(!packed.has_exact_side());
        assert!(packed.is_lossless());
        assert_eq!(BinStore::max_utilization(&packed), exact.max_utilization());
        assert!((BinStore::utilization_gap(&packed) - exact.utilization_gap()).abs() < 1e-12);
        assert_eq!(BinStore::capacity(&packed, 7), 1);
        assert_eq!(BinStore::total_capacity(&packed), 64);
    }
}
