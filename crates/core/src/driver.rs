//! Deterministic run drivers: single runs, parallel multi-trial sets, and
//! the parallel (config × seed) sweep runner.
//!
//! Every driver is generic over [`RoundProcess`], so driving a concrete
//! process monomorphizes the whole round loop (no dynamic dispatch per
//! probe); `Box<dyn BallsIntoBins>` still works through the shim impl of
//! [`RoundProcess`] for `dyn BallsIntoBins`.

use std::collections::BTreeMap;

use kdchoice_expt::SweepRunner;
use kdchoice_prng::{derive_seed, Xoshiro256PlusPlus};

use crate::compact::{BinSlab, StoreKind};
use crate::probes::ProbeDistribution;
use crate::process::{HeightSink, RoundProcess};
use crate::snapshot::decide_k_least;
use crate::state::LoadVector;

/// Configuration of one simulation run.
///
/// ```
/// use kdchoice_core::RunConfig;
///
/// // n balls into n bins (the paper's standard case)...
/// let cfg = RunConfig::new(1024, 42);
/// assert_eq!(cfg.balls, 1024);
/// // ...or the heavily loaded case m > n (Theorem 2).
/// let heavy = RunConfig::new(1024, 42).with_balls(8 * 1024);
/// assert_eq!(heavy.balls, 8192);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunConfig {
    /// Number of bins `n`.
    pub n: usize,
    /// Number of balls to throw (defaults to `n`).
    pub balls: u64,
    /// Master seed; every run is a pure function of `(process, config)`.
    pub seed: u64,
}

impl RunConfig {
    /// `n` balls into `n` bins with the given seed.
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            n,
            balls: n as u64,
            seed,
        }
    }

    /// Overrides the number of balls (the heavily loaded case when
    /// `balls > n`).
    #[must_use]
    pub fn with_balls(mut self, balls: u64) -> Self {
        self.balls = balls;
        self
    }

    /// Overrides the seed (convenient when sweeping a config across seeds).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// An inline ball-height histogram: the [`HeightSink`] the drivers pass to
/// [`RoundProcess::run_round`], accumulating `height_histogram[h]` counts
/// without materializing a per-round `Vec` of heights.
#[derive(Debug, Clone, Default)]
pub struct HeightHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl HeightHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts indexed by height; entry `h` is the number of recorded balls
    /// of height `h`.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded heights.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Consumes the histogram, returning the counts vector.
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }
}

impl HeightSink for HeightHistogram {
    #[inline]
    fn record(&mut self, height: u32) {
        let idx = height as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }
}

/// The outcome of one run: the paper's observables plus accounting.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunResult {
    /// The process's self-reported name.
    pub name: String,
    /// Number of bins.
    pub n: usize,
    /// Balls thrown (= `config.balls`).
    pub balls_thrown: u64,
    /// Balls actually placed (smaller only for discarding processes).
    pub balls_placed: u64,
    /// The maximum bin load `M`.
    pub max_load: u32,
    /// `max_load − balls_placed/n`, the heavily-loaded-case gap.
    pub gap: f64,
    /// Total probe messages (footnote 1 of the paper).
    pub messages: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// `load_histogram[l]` = number of bins that ended with exactly `l`
    /// balls; suffix sums give ν_y.
    pub load_histogram: Vec<u64>,
    /// `height_histogram[h]` = number of placed balls with height `h`;
    /// suffix sums give µ_y.
    pub height_histogram: Vec<u64>,
    /// The seed this run used.
    pub seed: u64,
}

impl RunResult {
    /// `ν_y`: bins that ended with at least `y` balls.
    pub fn nu(&self, y: u32) -> u64 {
        let from = (y as usize).min(self.load_histogram.len());
        self.load_histogram[from..].iter().sum()
    }

    /// `µ_y`: placed balls with height at least `y`.
    pub fn mu(&self, y: u32) -> u64 {
        let from = (y as usize).min(self.height_histogram.len());
        self.height_histogram[from..].iter().sum()
    }

    /// Messages per placed ball.
    pub fn messages_per_ball(&self) -> f64 {
        if self.balls_placed == 0 {
            0.0
        } else {
            self.messages as f64 / self.balls_placed as f64
        }
    }
}

/// Runs `process` until `config.balls` balls have been thrown, returning the
/// result. See [`run_once_with_state`] to also keep the final bin state.
pub fn run_once<P: RoundProcess + ?Sized>(process: &mut P, config: &RunConfig) -> RunResult {
    run_once_with_state(process, config).0
}

/// Like [`run_once`], additionally returning the final [`LoadVector`]
/// (needed by the figure benches, which plot the full sorted load vector).
///
/// Heights are histogrammed inline through a [`HeightHistogram`] sink — the
/// non-coupling path allocates no per-round height buffer.
///
/// # Panics
///
/// Panics if the process reports a round with zero thrown balls (no
/// progress), or throws more balls than requested.
pub fn run_once_with_state<P: RoundProcess + ?Sized>(
    process: &mut P,
    config: &RunConfig,
) -> (RunResult, LoadVector) {
    run_once_on(process, config, LoadVector::new(config.n))
}

/// Like [`run_once_with_state`], but runs on a caller-supplied **empty**
/// state — the hook the heterogeneous scenarios use to drive a process
/// over [`LoadVector::with_capacities`] bins while keeping every driver
/// invariant (per-round progress, inline height histogramming, the
/// determinism contract) in one place.
///
/// # Panics
///
/// Panics if `state.n() != config.n` or `state` already holds balls, and
/// under the same conditions as [`run_once_with_state`].
pub fn run_once_on<P: RoundProcess + ?Sized>(
    process: &mut P,
    config: &RunConfig,
    mut state: LoadVector,
) -> (RunResult, LoadVector) {
    assert_eq!(state.n(), config.n, "state/config bin-count mismatch");
    assert_eq!(state.total_balls(), 0, "state must start empty");
    process.reset();
    let mut rng = Xoshiro256PlusPlus::from_u64(config.seed);
    let mut heights = HeightHistogram::new();
    let mut thrown = 0u64;
    let mut placed = 0u64;
    let mut messages = 0u64;
    let mut rounds = 0u64;
    while thrown < config.balls {
        let stats = process.run_round(&mut state, &mut rng, &mut heights, config.balls - thrown);
        assert!(stats.thrown > 0, "process made no progress in a round");
        thrown += u64::from(stats.thrown);
        assert!(thrown <= config.balls, "process overshot the ball budget");
        placed += u64::from(stats.placed);
        messages += stats.probes;
        rounds += 1;
        debug_assert_eq!(heights.total(), placed);
    }
    debug_assert!(state.check_invariants());
    debug_assert_eq!(state.total_balls(), placed);
    let result = RunResult {
        name: process.name(),
        n: config.n,
        balls_thrown: thrown,
        balls_placed: placed,
        max_load: state.max_load(),
        gap: state.max_load() as f64 - placed as f64 / config.n as f64,
        messages,
        rounds,
        load_histogram: state.load_histogram().to_vec(),
        height_histogram: heights.into_counts(),
        seed: config.seed,
    };
    (result, state)
}

/// Runs a static (k,d)-choice fill over a **memory-bounded** [`BinSlab`]
/// instead of an exact [`LoadVector`] — the driver behind the `store=`
/// axis of the `static`/`hetero` scenarios and the 10^8-bin frontier
/// rows of the `gap_vs_bytes` bench.
///
/// Each round samples `d` probes (uniform draws consume the generator
/// exactly like the batched engine; weighted draws go through
/// [`ProbeDistribution::fill`]), sorts them, and commits the winners of
/// [`decide_k_least`] over the slab's own load view. With
/// `kind = StoreKind::Exact` the decision stream is the exact
/// decide-kernel stream; with a packed slab it stays **bit-identical**
/// to that stream as long as the slab reports lossless (locked by the
/// `packed_equivalence` proptests). Heights are the tentative heights
/// the kernel selected, i.e. quantized heights for a packed slab (exact
/// below saturation) and estimates for a sketch.
///
/// Returns the final slab alongside the result so callers can read the
/// normalized observables (`max_utilization`, `bytes_per_bin`, ...).
///
/// # Panics
///
/// Panics unless `1 <= k <= d`, `config.n > 0`, and any capacity map
/// has length `config.n` (a sketch slab additionally rejects
/// non-uniform capacities).
pub fn run_once_compact(
    kind: StoreKind,
    k: usize,
    d: usize,
    probes: &ProbeDistribution,
    capacities: Option<&[u32]>,
    config: &RunConfig,
) -> (RunResult, BinSlab) {
    assert!(k >= 1 && k <= d, "need 1 <= k <= d (k={k}, d={d})");
    let n = config.n;
    assert!(n > 0, "need at least one bin");
    let mut slab = match capacities {
        None => kind.new_slab(n),
        Some(caps) => {
            assert_eq!(caps.len(), n, "capacity map/bin-count mismatch");
            kind.slab_with_capacities(caps)
        }
    };
    let mut rng = Xoshiro256PlusPlus::from_u64(config.seed);
    let mut heights = HeightHistogram::new();
    let mut samples: Vec<usize> = Vec::with_capacity(d);
    let mut slots: Vec<(u32, u64, usize)> = Vec::with_capacity(d);
    let mut winners: Vec<usize> = Vec::with_capacity(k);
    let uniform = probes.is_uniform();
    let mut thrown = 0u64;
    let mut rounds = 0u64;
    let mut messages = 0u64;
    while thrown < config.balls {
        let balls = (config.balls - thrown).min(k as u64) as usize;
        if uniform {
            kdchoice_prng::sample::fill_with_replacement(&mut rng, n, d, &mut samples);
        } else {
            probes.fill(&mut rng, n, d, &mut samples);
        }
        samples.sort_unstable();
        winners.clear();
        decide_k_least(&slab, &samples, balls, &mut rng, &mut slots, &mut winners);
        for &(height, _, bin) in &slots[..balls] {
            heights.record(height);
            slab.add_ball(bin);
        }
        thrown += balls as u64;
        messages += d as u64;
        rounds += 1;
    }
    debug_assert!(slab.check_invariants());
    let result = RunResult {
        name: format!("({k},{d})-choice@{}", kind.name()),
        n,
        balls_thrown: thrown,
        balls_placed: thrown,
        max_load: slab.max_load(),
        gap: slab.max_load() as f64 - thrown as f64 / n as f64,
        messages,
        rounds,
        load_histogram: slab.histogram(),
        height_histogram: heights.into_counts(),
        seed: config.seed,
    };
    (result, slab)
}

/// A collection of independent trials of the same process configuration.
#[derive(Debug, Clone)]
pub struct TrialSet {
    /// Per-trial results, ordered by trial index.
    pub results: Vec<RunResult>,
}

impl TrialSet {
    /// Frequency map of observed maximum loads, e.g. `{3: 7, 4: 3}` for
    /// Table 1's "3, 4" cells.
    pub fn max_load_counts(&self) -> BTreeMap<u32, usize> {
        let mut map = BTreeMap::new();
        for r in &self.results {
            *map.entry(r.max_load).or_insert(0) += 1;
        }
        map
    }

    /// The distinct observed maximum loads formatted the way the paper's
    /// Table 1 reports them: `"3, 4"`.
    pub fn max_load_set_string(&self) -> String {
        self.max_load_counts()
            .keys()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Observed max loads as f64 samples (for the statistical tests).
    pub fn max_loads_f64(&self) -> Vec<f64> {
        self.results.iter().map(|r| f64::from(r.max_load)).collect()
    }

    /// Mean of the per-trial maximum loads.
    pub fn mean_max_load(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results
            .iter()
            .map(|r| f64::from(r.max_load))
            .sum::<f64>()
            / self.results.len() as f64
    }

    /// Mean of the per-trial gaps (heavy-case observable).
    pub fn mean_gap(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results.iter().map(|r| r.gap).sum::<f64>() / self.results.len() as f64
    }

    /// The final sorted load vectors of every trial (descending), for the
    /// majorization experiments.
    pub fn sorted_load_vectors(&self) -> Vec<Vec<u32>> {
        self.results
            .iter()
            .map(|r| {
                let mut v = Vec::with_capacity(r.n);
                for (load, &count) in r.load_histogram.iter().enumerate() {
                    for _ in 0..count {
                        v.push(load as u32);
                    }
                }
                v.sort_unstable_by(|a, b| b.cmp(a));
                v
            })
            .collect()
    }
}

/// Runs `trials` independent trials in parallel threads.
///
/// Trial `i` uses the derived seed `derive_seed(config.seed, i)`, so the
/// result set is deterministic regardless of thread count, and
/// `factory(i)` builds a fresh process per trial.
///
/// The factory returns `Box<P>` for any `P: RoundProcess + ?Sized`:
/// returning a concrete process type monomorphizes the whole trial loop,
/// while `Box<dyn BallsIntoBins>` factories keep working through the
/// dynamic shim.
///
/// ```
/// use kdchoice_core::{run_trials, KdChoice, RunConfig};
///
/// let set = run_trials(
///     |_| Box::new(KdChoice::new(2, 3).expect("valid")),
///     &RunConfig::new(1 << 10, 99),
///     10,
/// );
/// assert_eq!(set.results.len(), 10);
/// // Deterministic: same seed, same outcome set.
/// let again = run_trials(
///     |_| Box::new(KdChoice::new(2, 3).expect("valid")),
///     &RunConfig::new(1 << 10, 99),
///     10,
/// );
/// assert_eq!(set.max_load_counts(), again.max_load_counts());
/// ```
pub fn run_trials<P, F>(factory: F, config: &RunConfig, trials: usize) -> TrialSet
where
    P: RoundProcess + ?Sized,
    F: Fn(usize) -> Box<P> + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(trials.max(1));
    let mut results: Vec<Option<RunResult>> = vec![None; trials];
    let chunk = trials.div_ceil(threads.max(1));
    std::thread::scope(|scope| {
        for (t, slot_chunk) in results.chunks_mut(chunk.max(1)).enumerate() {
            let factory = &factory;
            let base = t * chunk.max(1);
            scope.spawn(move || {
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    let trial = base + off;
                    let mut process = factory(trial);
                    let cfg = RunConfig {
                        seed: derive_seed(config.seed, trial as u64),
                        ..*config
                    };
                    *slot = Some(run_once(&mut *process, &cfg));
                }
            });
        }
    });
    TrialSet {
        results: results
            .into_iter()
            .map(|r| r.expect("all trials completed"))
            .collect(),
    }
}

/// Runs a (config × trial) grid across threads, returning one [`TrialSet`]
/// per config, in config order.
///
/// `factory(config_index, trial_index)` builds a fresh process **by
/// value** — the grid is fully monomorphized, with no boxing anywhere.
/// Trial `t` of config `c` uses the derived seed
/// `derive_seed(configs[c].seed, t)`, identical to what [`run_trials`]
/// would use for that config alone, so sweep cells are reproducible in
/// isolation. Scheduling is delegated to `kdchoice_expt::SweepRunner` —
/// the workspace-wide work-stealing grid executor — so heterogeneous
/// configs (say n = 2¹⁰ next to n = 2²⁰) still keep all cores busy.
/// Heights are histogrammed inline; no per-round buffers.
///
/// ```
/// use kdchoice_core::{run_sweep, run_trials, KdChoice, RunConfig};
///
/// let configs = [RunConfig::new(512, 7), RunConfig::new(1024, 8)];
/// let sweep = run_sweep(|_c, _t| KdChoice::new(2, 3).expect("valid"), &configs, 5);
/// assert_eq!(sweep.len(), 2);
/// // Cell (0) reproduces a standalone run_trials of the same config.
/// let alone = run_trials(
///     |_| Box::new(KdChoice::new(2, 3).expect("valid")),
///     &configs[0],
///     5,
/// );
/// assert_eq!(sweep[0].max_load_counts(), alone.max_load_counts());
/// ```
pub fn run_sweep<P, F>(factory: F, configs: &[RunConfig], trials: usize) -> Vec<TrialSet>
where
    P: RoundProcess,
    F: Fn(usize, usize) -> P + Sync,
{
    SweepRunner::new()
        .run_grid(configs, trials, |config, config_idx, trial| {
            let mut process = factory(config_idx, trial);
            let cfg = RunConfig {
                seed: derive_seed(config.seed, trial as u64),
                ..*config
            };
            run_once(&mut process, &cfg)
        })
        .into_iter()
        .map(|results| TrialSet { results })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kd::KdChoice;
    use crate::process::{HeightSink, RoundProcess, RoundStats};
    use rand::RngCore;

    #[test]
    fn run_once_conserves_balls_and_messages() {
        let mut p = KdChoice::new(2, 3).unwrap();
        let cfg = RunConfig::new(1 << 12, 11);
        let r = run_once(&mut p, &cfg);
        assert_eq!(r.balls_thrown, 1 << 12);
        assert_eq!(r.balls_placed, 1 << 12);
        assert_eq!(r.rounds, (1 << 12) / 2);
        assert_eq!(r.messages, r.rounds * 3);
        assert_eq!(r.nu(0), 1 << 12);
        assert_eq!(r.mu(1), r.balls_placed);
        assert_eq!(r.mu(0), r.balls_placed); // no ball has height 0
        assert!((r.messages_per_ball() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histograms_are_consistent_with_max_load() {
        let mut p = KdChoice::new(1, 2).unwrap();
        let cfg = RunConfig::new(1 << 12, 3);
        let r = run_once(&mut p, &cfg);
        assert_eq!(r.nu(r.max_load), r.load_histogram[r.max_load as usize]);
        assert_eq!(r.nu(r.max_load + 1), 0);
        // Ball heights cannot exceed max load.
        assert_eq!(r.mu(r.max_load + 1), 0);
        assert!(r.mu(r.max_load) >= 1);
        // Sum of load histogram = n; weighted sum = balls.
        let bins: u64 = r.load_histogram.iter().sum();
        assert_eq!(bins, r.n as u64);
        let balls: u64 = r
            .load_histogram
            .iter()
            .enumerate()
            .map(|(l, &c)| l as u64 * c)
            .sum();
        assert_eq!(balls, r.balls_placed);
    }

    #[test]
    fn mu_equals_nu_relationship() {
        // For any y: ν_y ≤ µ_y (each bin with ≥ y balls contributes at least
        // one ball of height ≥ y) — the inequality used in Theorem 3.
        let mut p = KdChoice::new(4, 6).unwrap();
        let cfg = RunConfig::new(1 << 12, 17);
        let r = run_once(&mut p, &cfg);
        for y in 0..=r.max_load {
            assert!(r.nu(y) <= r.mu(y), "nu > mu at y={y}");
        }
    }

    #[test]
    fn heavy_case_runs_m_over_k_rounds() {
        let mut p = KdChoice::new(2, 4).unwrap();
        let cfg = RunConfig::new(256, 5).with_balls(4 * 256);
        let r = run_once(&mut p, &cfg);
        assert_eq!(r.balls_placed, 1024);
        assert_eq!(r.rounds, 512);
        assert!(r.gap >= 0.0);
        assert!((r.gap - (r.max_load as f64 - 4.0)).abs() < 1e-12);
    }

    #[test]
    fn run_with_state_returns_matching_state() {
        let mut p = KdChoice::new(2, 3).unwrap();
        let cfg = RunConfig::new(512, 8);
        let (r, state) = run_once_with_state(&mut p, &cfg);
        assert_eq!(state.max_load(), r.max_load);
        assert_eq!(state.total_balls(), r.balls_placed);
        assert_eq!(state.load_histogram(), &r.load_histogram[..]);
    }

    #[test]
    fn height_histogram_records_and_resizes() {
        let mut h = HeightHistogram::new();
        h.record(3);
        h.record(1);
        h.record(3);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts(), &[0, 1, 0, 2]);
        assert_eq!(h.into_counts(), vec![0, 1, 0, 2]);
    }

    #[test]
    fn trials_are_deterministic_and_ordered() {
        let cfg = RunConfig::new(512, 100);
        let a = run_trials(|_| Box::new(KdChoice::new(2, 3).unwrap()), &cfg, 8);
        let b = run_trials(|_| Box::new(KdChoice::new(2, 3).unwrap()), &cfg, 8);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.max_load, y.max_load);
            assert_eq!(x.seed, y.seed);
        }
        // Different trials use different seeds.
        assert_ne!(a.results[0].seed, a.results[1].seed);
    }

    #[test]
    fn trial_set_aggregations() {
        let cfg = RunConfig::new(1 << 12, 7);
        let set = run_trials(|_| Box::new(KdChoice::new(1, 2).unwrap()), &cfg, 10);
        let counts = set.max_load_counts();
        let total: usize = counts.values().sum();
        assert_eq!(total, 10);
        assert!(!set.max_load_set_string().is_empty());
        assert!(set.mean_max_load() >= 2.0);
        assert!(set.mean_gap() > 0.0);
        assert_eq!(set.max_loads_f64().len(), 10);
        // Two-choice at n=4096: max load should be small.
        assert!(set.mean_max_load() <= 6.0);
    }

    #[test]
    fn sorted_load_vectors_reconstruct_n_entries() {
        let cfg = RunConfig::new(256, 9);
        let set = run_trials(|_| Box::new(KdChoice::new(2, 3).unwrap()), &cfg, 3);
        for v in set.sorted_load_vectors() {
            assert_eq!(v.len(), 256);
            assert!(v.windows(2).all(|w| w[0] >= w[1]), "must be descending");
            assert_eq!(v.iter().map(|&x| u64::from(x)).sum::<u64>(), 256);
        }
    }

    #[test]
    fn sweep_matches_run_trials_cell_by_cell() {
        let configs = [
            RunConfig::new(256, 5),
            RunConfig::new(512, 6),
            RunConfig::new(256, 7).with_balls(1024),
        ];
        let sweep = run_sweep(|_, _| KdChoice::new(2, 4).unwrap(), &configs, 4);
        assert_eq!(sweep.len(), 3);
        for (cell, cfg) in sweep.iter().zip(&configs) {
            let alone = run_trials(|_| Box::new(KdChoice::new(2, 4).unwrap()), cfg, 4);
            assert_eq!(cell.results.len(), 4);
            for (a, b) in cell.results.iter().zip(&alone.results) {
                assert_eq!(a.max_load, b.max_load);
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.load_histogram, b.load_histogram);
                assert_eq!(a.height_histogram, b.height_histogram);
            }
        }
    }

    #[test]
    fn sweep_with_zero_trials_yields_empty_cells() {
        let configs = [RunConfig::new(64, 1)];
        let sweep = run_sweep(|_, _| KdChoice::new(1, 2).unwrap(), &configs, 0);
        assert_eq!(sweep.len(), 1);
        assert!(sweep[0].results.is_empty());
    }

    #[test]
    fn sweep_factory_sees_grid_coordinates() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        let configs = [RunConfig::new(64, 1), RunConfig::new(64, 2)];
        let _ = run_sweep(
            |c, t| {
                assert!(c < 2 && t < 3);
                hits.fetch_add(1, Ordering::Relaxed);
                KdChoice::new(1, 2).unwrap()
            },
            &configs,
            3,
        );
        assert_eq!(hits.load(Ordering::Relaxed), 6);
    }

    /// A process that lies about progress must be caught.
    struct Stuck;
    impl RoundProcess for Stuck {
        fn name(&self) -> String {
            "stuck".into()
        }
        fn run_round<R, S>(
            &mut self,
            _state: &mut LoadVector,
            _rng: &mut R,
            _heights: &mut S,
            _balls_remaining: u64,
        ) -> RoundStats
        where
            R: RngCore + ?Sized,
            S: HeightSink + ?Sized,
        {
            RoundStats::default()
        }
    }

    #[test]
    #[should_panic(expected = "no progress")]
    fn stuck_process_panics() {
        let mut p = Stuck;
        let _ = run_once(&mut p, &RunConfig::new(4, 1));
    }
}
