//! The (k,d)-choice process.

use rand::{Rng, RngCore};

use crate::error::ConfigError;
use crate::policy::RoundPolicy;
use crate::process::{BallsIntoBins, RoundStats};
use crate::state::LoadVector;

/// One tentative ball: the height it would have, a random tie-breaking key
/// (the paper's "ties broken randomly"), and the bin it would land in.
#[derive(Debug, Clone, Copy)]
struct Tentative {
    height: u32,
    key: u64,
    bin: u32,
}

/// A candidate bin for the water-filling (unrestricted) policy.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    bin: u32,
    load: u32,
}

/// The (k,d)-choice allocation process (§1.1 of the paper).
///
/// In each round, `d` bins are sampled i.u.r. **with replacement** and `k`
/// balls are placed into the `k` least loaded of them, a bin sampled `m`
/// times receiving at most `m` balls ([`RoundPolicy::Multiplicity`]); the
/// [`RoundPolicy::Unrestricted`] variant instead water-fills the distinct
/// sampled bins (§7 future work).
///
/// `k = d` is allowed and degenerates to the classical single-choice process
/// SA(k,k): every sampled slot keeps its ball. `k = d = 1` is plain single
/// choice, matching the paper's Table 1 column `d = 1`.
///
/// ```
/// use kdchoice_core::{KdChoice, RunConfig, run_once};
///
/// # fn main() -> Result<(), kdchoice_core::ConfigError> {
/// let mut p = KdChoice::new(3, 5)?;
/// assert_eq!(p.k(), 3);
/// assert_eq!(p.d(), 5);
/// let r = run_once(&mut p, &RunConfig::new(3 * (1 << 10), 1));
/// assert_eq!(r.messages, (3 * (1 << 10) / 3) * 5); // d probes per round
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KdChoice {
    k: usize,
    d: usize,
    policy: RoundPolicy,
    // Reusable scratch buffers (hot path: billions of rounds in benches).
    samples: Vec<usize>,
    tentative: Vec<Tentative>,
    candidates: Vec<Candidate>,
}

impl KdChoice {
    /// Creates a (k,d)-choice process with the paper's multiplicity policy.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] unless `1 ≤ k ≤ d`.
    pub fn new(k: usize, d: usize) -> Result<Self, ConfigError> {
        if k == 0 {
            return Err(ConfigError::ZeroK);
        }
        if k > d {
            return Err(ConfigError::KExceedsD { k, d });
        }
        Ok(Self {
            k,
            d,
            policy: RoundPolicy::Multiplicity,
            samples: Vec::with_capacity(d),
            tentative: Vec::with_capacity(d),
            candidates: Vec::with_capacity(d),
        })
    }

    /// Switches the allocation policy (builder style).
    ///
    /// ```
    /// use kdchoice_core::{KdChoice, RoundPolicy};
    /// # fn main() -> Result<(), kdchoice_core::ConfigError> {
    /// let p = KdChoice::new(2, 3)?.with_policy(RoundPolicy::Unrestricted);
    /// assert_eq!(p.policy(), RoundPolicy::Unrestricted);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn with_policy(mut self, policy: RoundPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The number of balls per round, `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of sampled bins per round, `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The active round policy.
    pub fn policy(&self) -> RoundPolicy {
        self.policy
    }

    /// Runs one round with **externally chosen** samples instead of drawing
    /// them from the RNG. `balls` balls are placed (`balls ≤ samples.len()`).
    ///
    /// This is the coupling hook: the majorization experiments for
    /// Properties (ii)–(v) and the paper's scenario walk-throughs feed both
    /// processes the same sample sets. The RNG is still used for random
    /// tie-breaking.
    ///
    /// Returns the heights of the placed balls via `heights_out` (appended).
    ///
    /// # Panics
    ///
    /// Panics if `balls > samples.len()`, or if any sample is out of range.
    pub fn place_round_with_samples(
        &mut self,
        state: &mut LoadVector,
        samples: &[usize],
        balls: usize,
        rng: &mut dyn RngCore,
        heights_out: &mut Vec<u32>,
    ) {
        assert!(
            balls <= samples.len(),
            "cannot place {balls} balls from {} samples",
            samples.len()
        );
        self.samples.clear();
        self.samples.extend_from_slice(samples);
        match self.policy {
            RoundPolicy::Multiplicity => {
                self.commit_multiplicity(state, balls, rng, heights_out)
            }
            RoundPolicy::Unrestricted => {
                self.commit_unrestricted(state, balls, rng, heights_out)
            }
        }
    }

    /// The paper's policy: place `d` tentative balls (a bin of load `L`
    /// sampled `c` times holds tentative heights `L+1..=L+c`), then keep the
    /// `balls` tentative balls of *smallest* height — identical to removing
    /// the `d − k` of maximal height.
    fn commit_multiplicity(
        &mut self,
        state: &mut LoadVector,
        balls: usize,
        rng: &mut dyn RngCore,
        heights_out: &mut Vec<u32>,
    ) {
        // Group identical bins to assign tentative heights L+1..L+c.
        self.samples.sort_unstable();
        self.tentative.clear();
        let mut i = 0;
        while i < self.samples.len() {
            let bin = self.samples[i];
            let base = state.load(bin);
            let mut occ = 0u32;
            while i < self.samples.len() && self.samples[i] == bin {
                occ += 1;
                self.tentative.push(Tentative {
                    height: base + occ,
                    key: rng.next_u64(),
                    bin: bin as u32,
                });
                i += 1;
            }
        }
        // Keep the `balls` smallest (height, key). Keeping the smallest
        // heights is downward-closed within a bin (its heights are distinct
        // and ascending), so the per-bin multiplicity cap is automatic.
        if balls < self.tentative.len() {
            self.tentative
                .select_nth_unstable_by(balls - 1, |a, b| {
                    (a.height, a.key).cmp(&(b.height, b.key))
                });
        }
        let kept = &mut self.tentative[..balls];
        // Commit in (bin, height) order so add_ball's returned heights match
        // the tentative heights exactly.
        kept.sort_unstable_by(|a, b| (a.bin, a.height).cmp(&(b.bin, b.height)));
        for t in kept.iter() {
            let h = state.add_ball(t.bin as usize);
            debug_assert_eq!(h, t.height, "tentative height mismatch");
            heights_out.push(h);
        }
    }

    /// The §7 relaxation: water-fill the distinct sampled bins.
    fn commit_unrestricted(
        &mut self,
        state: &mut LoadVector,
        balls: usize,
        rng: &mut dyn RngCore,
        heights_out: &mut Vec<u32>,
    ) {
        self.samples.sort_unstable();
        self.samples.dedup();
        self.candidates.clear();
        for &bin in self.samples.iter() {
            self.candidates.push(Candidate {
                bin: bin as u32,
                load: state.load(bin),
            });
        }
        for _ in 0..balls {
            let idx = kdchoice_prng::sample::random_argmin(rng, &self.candidates, |c| c.load)
                .expect("candidates non-empty");
            let bin = self.candidates[idx].bin as usize;
            let h = state.add_ball(bin);
            self.candidates[idx].load = h;
            heights_out.push(h);
        }
    }
}

impl BallsIntoBins for KdChoice {
    fn name(&self) -> String {
        match self.policy {
            RoundPolicy::Multiplicity => format!("({},{})-choice", self.k, self.d),
            RoundPolicy::Unrestricted => {
                format!("({},{})-choice[unrestricted]", self.k, self.d)
            }
        }
    }

    fn run_round(
        &mut self,
        state: &mut LoadVector,
        rng: &mut dyn RngCore,
        heights_out: &mut Vec<u32>,
        balls_remaining: u64,
    ) -> RoundStats {
        // Truncate the final round if fewer than k balls remain (the paper
        // assumes k | n; this keeps the driver total-ball-exact anyway).
        let balls = (self.k as u64).min(balls_remaining.max(1)) as usize;
        let n = state.n();
        self.samples.clear();
        for _ in 0..self.d {
            self.samples.push(rng.gen_range(0..n));
        }
        match self.policy {
            RoundPolicy::Multiplicity => {
                self.commit_multiplicity(state, balls, rng, heights_out)
            }
            RoundPolicy::Unrestricted => {
                self.commit_unrestricted(state, balls, rng, heights_out)
            }
        }
        RoundStats {
            thrown: balls as u32,
            placed: balls as u32,
            probes: self.d as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_prng::Xoshiro256PlusPlus;

    fn state_with_loads(loads: &[u32]) -> LoadVector {
        let mut s = LoadVector::new(loads.len());
        for (bin, &l) in loads.iter().enumerate() {
            for _ in 0..l {
                s.add_ball(bin);
            }
        }
        s
    }

    #[test]
    fn constructor_validates() {
        assert_eq!(KdChoice::new(0, 3).unwrap_err(), ConfigError::ZeroK);
        assert_eq!(
            KdChoice::new(4, 3).unwrap_err(),
            ConfigError::KExceedsD { k: 4, d: 3 }
        );
        assert!(KdChoice::new(3, 3).is_ok(), "k = d is the SA(k,k) degenerate");
        assert!(KdChoice::new(1, 1).is_ok());
    }

    #[test]
    fn name_reflects_parameters_and_policy() {
        let p = KdChoice::new(2, 3).unwrap();
        assert_eq!(p.name(), "(2,3)-choice");
        let p = p.with_policy(RoundPolicy::Unrestricted);
        assert_eq!(p.name(), "(2,3)-choice[unrestricted]");
    }

    /// Paper §1, scenario (a): (3,4)-choice, bins with loads (3,2,1,0), each
    /// sampled once. Each of bin2, bin3, bin4 receives a ball.
    #[test]
    fn paper_scenario_a() {
        let mut p = KdChoice::new(3, 4).unwrap();
        let mut state = state_with_loads(&[3, 2, 1, 0]);
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        let mut heights = Vec::new();
        p.place_round_with_samples(&mut state, &[0, 1, 2, 3], 3, &mut rng, &mut heights);
        assert_eq!(state.loads(), &[3, 3, 2, 1]);
        let mut h = heights.clone();
        h.sort_unstable();
        assert_eq!(h, vec![1, 2, 3]);
    }

    /// Paper §1, scenario (b): bin2 and bin3 sampled once, bin4 twice.
    /// "bin3 receives a ball and bin4 receives two balls".
    #[test]
    fn paper_scenario_b() {
        let mut p = KdChoice::new(3, 4).unwrap();
        let mut state = state_with_loads(&[3, 2, 1, 0]);
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        let mut heights = Vec::new();
        p.place_round_with_samples(&mut state, &[1, 2, 3, 3], 3, &mut rng, &mut heights);
        assert_eq!(state.loads(), &[3, 2, 2, 2]);
    }

    /// Paper §1, scenario (c): bin1 sampled twice, bin4 sampled twice.
    /// "bin1 receives one ball and bin4 receives two".
    #[test]
    fn paper_scenario_c() {
        let mut p = KdChoice::new(3, 4).unwrap();
        let mut state = state_with_loads(&[3, 2, 1, 0]);
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let mut heights = Vec::new();
        p.place_round_with_samples(&mut state, &[0, 0, 3, 3], 3, &mut rng, &mut heights);
        assert_eq!(state.loads(), &[4, 2, 1, 2]);
    }

    /// §7: under the unrestricted policy in (2,3)-choice with loads
    /// (0, 2, 3), both balls go into the empty bin.
    #[test]
    fn paper_section7_unrestricted_example() {
        let mut p = KdChoice::new(2, 3)
            .unwrap()
            .with_policy(RoundPolicy::Unrestricted);
        let mut state = state_with_loads(&[0, 2, 3]);
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        let mut heights = Vec::new();
        p.place_round_with_samples(&mut state, &[0, 1, 2], 2, &mut rng, &mut heights);
        assert_eq!(state.loads(), &[2, 2, 3]);
        assert_eq!(heights, vec![1, 2]);
    }

    /// Under the multiplicity policy the same configuration splits the
    /// balls: one to the empty bin, one to the load-2 bin.
    #[test]
    fn multiplicity_policy_on_section7_example() {
        let mut p = KdChoice::new(2, 3).unwrap();
        let mut state = state_with_loads(&[0, 2, 3]);
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let mut heights = Vec::new();
        p.place_round_with_samples(&mut state, &[0, 1, 2], 2, &mut rng, &mut heights);
        assert_eq!(state.loads(), &[1, 3, 3]);
    }

    /// Reference implementation of the paper's removal formulation: place
    /// one ball per sampled slot sequentially, then remove the d−k balls of
    /// maximal height. Checked equivalent to `commit_multiplicity` on random
    /// instances.
    fn removal_reference(loads: &[u32], samples: &[usize], k: usize) -> Vec<u32> {
        let mut loads = loads.to_vec();
        let mut placed: Vec<(u32, usize)> = Vec::new(); // (height, bin)
        for &s in samples {
            loads[s] += 1;
            placed.push((loads[s], s));
        }
        // Remove the d-k of maximal height.
        placed.sort_unstable(); // ascending by height
        for &(_, bin) in placed.iter().skip(k) {
            loads[bin] -= 1;
        }
        loads
    }

    #[test]
    fn multiplicity_matches_removal_formulation_on_random_instances() {
        use rand::Rng;
        let mut rng = Xoshiro256PlusPlus::from_u64(6);
        for trial in 0..500 {
            let n = rng.gen_range(2..12);
            let d = rng.gen_range(1..=8usize);
            let k = rng.gen_range(1..=d);
            let loads: Vec<u32> = (0..n).map(|_| rng.gen_range(0..5)).collect();
            let samples: Vec<usize> = (0..d).map(|_| rng.gen_range(0..n)).collect();

            let mut p = KdChoice::new(k, d).unwrap();
            let mut state = state_with_loads(&loads);
            let mut heights = Vec::new();
            p.place_round_with_samples(&mut state, &samples, k, &mut rng, &mut heights);

            let mut got: Vec<u32> = state.loads().to_vec();
            let mut want = removal_reference(&loads, &samples, k);
            // Compare as multisets of loads: tie-breaking may route a ball
            // to a different bin of equal height, but the sorted load vector
            // must be identical (this is the paper's state space).
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "trial {trial}: k={k} d={d} samples {samples:?}");
        }
    }

    #[test]
    fn multiplicity_cap_is_respected() {
        use rand::Rng;
        let mut rng = Xoshiro256PlusPlus::from_u64(7);
        for _ in 0..300 {
            let n = 6;
            let d = rng.gen_range(2..=10usize);
            let k = rng.gen_range(1..=d);
            let loads: Vec<u32> = (0..n).map(|_| rng.gen_range(0..4)).collect();
            let samples: Vec<usize> = (0..d).map(|_| rng.gen_range(0..n)).collect();
            let mut occurrences = vec![0u32; n];
            for &s in &samples {
                occurrences[s] += 1;
            }
            let mut p = KdChoice::new(k, d).unwrap();
            let mut state = state_with_loads(&loads);
            let mut heights = Vec::new();
            p.place_round_with_samples(&mut state, &samples, k, &mut rng, &mut heights);
            for bin in 0..n {
                let gained = state.load(bin) - loads[bin];
                assert!(
                    gained <= occurrences[bin],
                    "bin {bin} sampled {} times but gained {gained}",
                    occurrences[bin]
                );
            }
            assert_eq!(state.total_balls() as usize, loads.iter().sum::<u32>() as usize + k);
        }
    }

    #[test]
    fn k_equals_d_places_every_sample() {
        let mut p = KdChoice::new(4, 4).unwrap();
        let mut state = state_with_loads(&[9, 0, 0, 0]);
        let mut rng = Xoshiro256PlusPlus::from_u64(8);
        let mut heights = Vec::new();
        // All four samples on the most loaded bin: all four balls stay.
        p.place_round_with_samples(&mut state, &[0, 0, 0, 0], 4, &mut rng, &mut heights);
        assert_eq!(state.load(0), 13);
        assert_eq!(heights, vec![10, 11, 12, 13]);
    }

    #[test]
    fn run_round_throws_k_and_probes_d() {
        let mut p = KdChoice::new(3, 7).unwrap();
        let mut state = LoadVector::new(100);
        let mut rng = Xoshiro256PlusPlus::from_u64(9);
        let mut heights = Vec::new();
        let stats = p.run_round(&mut state, &mut rng, &mut heights, 1000);
        assert_eq!(stats.thrown, 3);
        assert_eq!(stats.placed, 3);
        assert_eq!(stats.probes, 7);
        assert_eq!(heights.len(), 3);
        assert_eq!(state.total_balls(), 3);
    }

    #[test]
    fn final_round_truncates_to_remaining() {
        let mut p = KdChoice::new(4, 6).unwrap();
        let mut state = LoadVector::new(50);
        let mut rng = Xoshiro256PlusPlus::from_u64(10);
        let mut heights = Vec::new();
        let stats = p.run_round(&mut state, &mut rng, &mut heights, 2);
        assert_eq!(stats.thrown, 2);
        assert_eq!(state.total_balls(), 2);
    }

    #[test]
    fn unrestricted_places_all_balls_even_with_one_distinct_candidate() {
        let mut p = KdChoice::new(3, 4)
            .unwrap()
            .with_policy(RoundPolicy::Unrestricted);
        let mut state = LoadVector::new(5);
        let mut rng = Xoshiro256PlusPlus::from_u64(11);
        let mut heights = Vec::new();
        p.place_round_with_samples(&mut state, &[2, 2, 2, 2], 3, &mut rng, &mut heights);
        assert_eq!(state.load(2), 3);
        assert_eq!(heights, vec![1, 2, 3]);
    }

    #[test]
    fn unrestricted_prefers_least_loaded() {
        let mut p = KdChoice::new(2, 4)
            .unwrap()
            .with_policy(RoundPolicy::Unrestricted);
        let mut state = state_with_loads(&[5, 0, 5, 5]);
        let mut rng = Xoshiro256PlusPlus::from_u64(12);
        let mut heights = Vec::new();
        p.place_round_with_samples(&mut state, &[0, 1, 2, 3], 2, &mut rng, &mut heights);
        // Both balls water-fill bin 1 (loads 1 then 2 < 5).
        assert_eq!(state.load(1), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut p = KdChoice::new(2, 5).unwrap();
            let mut state = LoadVector::new(64);
            let mut rng = Xoshiro256PlusPlus::from_u64(seed);
            let mut heights = Vec::new();
            for _ in 0..32 {
                p.run_round(&mut state, &mut rng, &mut heights, u64::MAX);
            }
            (state.sorted_descending(), heights)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1);
    }

    #[test]
    fn ties_between_bins_are_randomized() {
        // (1,2)-choice, two empty bins sampled: the ball should land on
        // either bin with roughly equal probability.
        let mut counts = [0u32; 2];
        let mut rng = Xoshiro256PlusPlus::from_u64(13);
        for _ in 0..4000 {
            let mut p = KdChoice::new(1, 2).unwrap();
            let mut state = LoadVector::new(2);
            let mut heights = Vec::new();
            p.place_round_with_samples(&mut state, &[0, 1], 1, &mut rng, &mut heights);
            if state.load(0) == 1 {
                counts[0] += 1;
            } else {
                counts[1] += 1;
            }
        }
        let f = counts[0] as f64 / 4000.0;
        assert!((f - 0.5).abs() < 0.05, "tie frequency {f}");
    }
}
