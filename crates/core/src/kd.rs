//! The (k,d)-choice process and its monomorphized round engines.

use kdchoice_prng::sample::UniformBin;
use rand::{Rng, RngCore};

use crate::error::ConfigError;
use crate::policy::RoundPolicy;
use crate::probes::ProbeDistribution;
use crate::process::{HeightSink, RoundProcess, RoundStats};
use crate::state::LoadVector;

/// Largest `d` served by the fixed-array fast path of the batched engine.
/// The paper's experiments use `d ≤ 17` only for the (16,17) cell; every
/// other configuration fits comfortably.
const SMALL_D: usize = 16;

/// Which round engine a [`KdChoice`] instance runs.
///
/// Both engines realize the same process — for any fixed engine the run is
/// a pure function of the seed, and the two engines agree **in
/// distribution** — but they consume the RNG stream differently, so
/// results are reproducible only *within* an engine version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineVersion {
    /// The original engine: one bounded draw per probe and one eager
    /// tie-break key per tentative ball, committed through a
    /// `(height, key)` selection. This is the stream the serialized
    /// process Aσ mirrors, so exact-stream coupling experiments pin it.
    Legacy,
    /// The batched engine (default): generator outputs are pulled in
    /// blocks and widened-multiplied into bin indices (no division), small
    /// rounds run on fixed stack arrays ordered by a branchless sorting
    /// network (insertion sort on the rare bin-collision path), and
    /// tie-break randomness is drawn **lazily** — only for tentative balls
    /// straddling the selection boundary. Identical distribution, fewer
    /// draws, no heap traffic.
    #[default]
    Batched,
}

impl EngineVersion {
    /// A short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            EngineVersion::Legacy => "legacy",
            EngineVersion::Batched => "batched",
        }
    }
}

/// One tentative ball: the height it would have, an (eager-engine only)
/// random tie-breaking key, and the bin it would land in.
#[derive(Debug, Clone, Copy)]
struct Tentative {
    height: u32,
    key: u64,
    bin: u32,
}

/// A candidate bin for the water-filling (unrestricted) policy.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    bin: u32,
    load: u32,
}

/// The (k,d)-choice allocation process (§1.1 of the paper).
///
/// In each round, `d` bins are sampled i.u.r. **with replacement** and `k`
/// balls are placed into the `k` least loaded of them, a bin sampled `m`
/// times receiving at most `m` balls ([`RoundPolicy::Multiplicity`]); the
/// [`RoundPolicy::Unrestricted`] variant instead water-fills the distinct
/// sampled bins (§7 future work).
///
/// `k = d` is allowed and degenerates to the classical single-choice process
/// SA(k,k): every sampled slot keeps its ball. `k = d = 1` is plain single
/// choice, matching the paper's Table 1 column `d = 1`.
///
/// ```
/// use kdchoice_core::{KdChoice, RunConfig, run_once};
///
/// # fn main() -> Result<(), kdchoice_core::ConfigError> {
/// let mut p = KdChoice::new(3, 5)?;
/// assert_eq!(p.k(), 3);
/// assert_eq!(p.d(), 5);
/// let r = run_once(&mut p, &RunConfig::new(3 * (1 << 10), 1));
/// assert_eq!(r.messages, (3 * (1 << 10) / 3) * 5); // d probes per round
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KdChoice {
    k: usize,
    d: usize,
    policy: RoundPolicy,
    engine: EngineVersion,
    probes: ProbeDistribution,
    // Reusable scratch buffers for the d > SMALL_D paths (hot path:
    // billions of rounds in benches).
    samples: Vec<usize>,
    tentative: Vec<Tentative>,
    candidates: Vec<Candidate>,
}

impl KdChoice {
    /// Creates a (k,d)-choice process with the paper's multiplicity policy
    /// and the [`EngineVersion::Batched`] engine.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] unless `1 ≤ k ≤ d`.
    pub fn new(k: usize, d: usize) -> Result<Self, ConfigError> {
        if k == 0 {
            return Err(ConfigError::ZeroK);
        }
        if k > d {
            return Err(ConfigError::KExceedsD { k, d });
        }
        Ok(Self {
            k,
            d,
            policy: RoundPolicy::Multiplicity,
            engine: EngineVersion::default(),
            probes: ProbeDistribution::Uniform,
            samples: Vec::with_capacity(d),
            tentative: Vec::with_capacity(d),
            candidates: Vec::with_capacity(d),
        })
    }

    /// Switches the allocation policy (builder style).
    ///
    /// ```
    /// use kdchoice_core::{KdChoice, RoundPolicy};
    /// # fn main() -> Result<(), kdchoice_core::ConfigError> {
    /// let p = KdChoice::new(2, 3)?.with_policy(RoundPolicy::Unrestricted);
    /// assert_eq!(p.policy(), RoundPolicy::Unrestricted);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn with_policy(mut self, policy: RoundPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Switches the round engine (builder style).
    ///
    /// ```
    /// use kdchoice_core::{EngineVersion, KdChoice};
    /// # fn main() -> Result<(), kdchoice_core::ConfigError> {
    /// let p = KdChoice::new(2, 3)?.with_engine(EngineVersion::Legacy);
    /// assert_eq!(p.engine(), EngineVersion::Legacy);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn with_engine(mut self, engine: EngineVersion) -> Self {
        self.engine = engine;
        self
    }

    /// Switches the probe distribution (builder style) — the weighted /
    /// heterogeneous seam. Uniform (the default) and any distribution
    /// whose weights degenerate to equal keep the engines on their
    /// uniform fast paths, drawing the **identical** generator stream as
    /// before this seam existed.
    ///
    /// ```
    /// use kdchoice_core::{KdChoice, ProbeDistribution, RoundProcess};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let p = KdChoice::new(2, 3)?.with_probes(ProbeDistribution::zipf(64, 1.0)?);
    /// assert_eq!(p.name(), "(2,3)-choice@zipf(1)");
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn with_probes(mut self, probes: ProbeDistribution) -> Self {
        self.probes = probes;
        self
    }

    /// The active probe distribution.
    pub fn probes(&self) -> &ProbeDistribution {
        &self.probes
    }

    /// The number of balls per round, `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of sampled bins per round, `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The active round policy.
    pub fn policy(&self) -> RoundPolicy {
        self.policy
    }

    /// The active round engine.
    pub fn engine(&self) -> EngineVersion {
        self.engine
    }

    /// Runs one round with **externally chosen** samples instead of drawing
    /// them from the RNG. `balls` balls are placed (`balls ≤ samples.len()`).
    ///
    /// This is the coupling hook: the majorization experiments for
    /// Properties (ii)–(v) and the paper's scenario walk-throughs feed both
    /// processes the same sample sets. The RNG is still used for random
    /// tie-breaking (eagerly or lazily, per the engine).
    ///
    /// Returns the heights of the placed balls via `heights_out` (appended).
    ///
    /// # Panics
    ///
    /// Panics if `balls > samples.len()`, or if any sample is out of range.
    pub fn place_round_with_samples<R: RngCore + ?Sized>(
        &mut self,
        state: &mut LoadVector,
        samples: &[usize],
        balls: usize,
        rng: &mut R,
        heights_out: &mut Vec<u32>,
    ) {
        assert!(
            balls <= samples.len(),
            "cannot place {balls} balls from {} samples",
            samples.len()
        );
        self.samples.clear();
        self.samples.extend_from_slice(samples);
        match (self.policy, self.engine) {
            (RoundPolicy::Multiplicity, EngineVersion::Legacy) => {
                self.commit_multiplicity_eager(state, balls, rng, heights_out)
            }
            (RoundPolicy::Multiplicity, EngineVersion::Batched) => {
                self.commit_multiplicity_lazy(state, balls, rng, heights_out)
            }
            (RoundPolicy::Unrestricted, _) => {
                self.commit_unrestricted(state, balls, rng, heights_out)
            }
        }
    }

    /// The paper's policy, eager-key variant (legacy engine): place `d`
    /// tentative balls (a bin of load `L` sampled `c` times holds tentative
    /// heights `L+1..=L+c`), draw a random key per tentative ball, then
    /// keep the `balls` smallest `(height, key)` — identical to removing
    /// the `d − k` of maximal height with uniform tie-breaking.
    fn commit_multiplicity_eager<R, S>(
        &mut self,
        state: &mut LoadVector,
        balls: usize,
        rng: &mut R,
        heights_out: &mut S,
    ) where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        // Group identical bins to assign tentative heights L+1..L+c.
        self.samples.sort_unstable();
        self.tentative.clear();
        let mut i = 0;
        while i < self.samples.len() {
            let bin = self.samples[i];
            let base = state.load(bin);
            let mut occ = 0u32;
            while i < self.samples.len() && self.samples[i] == bin {
                occ += 1;
                self.tentative.push(Tentative {
                    height: base + occ,
                    key: rng.next_u64(),
                    bin: bin as u32,
                });
                i += 1;
            }
        }
        // Keep the `balls` smallest (height, key). Keeping the smallest
        // heights is downward-closed within a bin (its heights are distinct
        // and ascending), so the per-bin multiplicity cap is automatic.
        if balls < self.tentative.len() {
            self.tentative.select_nth_unstable_by(balls - 1, |a, b| {
                (a.height, a.key).cmp(&(b.height, b.key))
            });
        }
        let kept = &mut self.tentative[..balls];
        // Commit in (bin, height) order so add_ball's returned heights match
        // the tentative heights exactly.
        kept.sort_unstable_by_key(|a| (a.bin, a.height));
        for t in kept.iter() {
            let h = state.add_ball(t.bin as usize);
            debug_assert_eq!(h, t.height, "tentative height mismatch");
            heights_out.record(h);
        }
    }

    /// The paper's policy, lazy-key variant (batched engine, `Vec` path for
    /// `d > SMALL_D` and for externally supplied samples): selection is by
    /// height alone; randomness is drawn only for the tentative balls whose
    /// height equals the selection boundary, of which a uniform subset is
    /// kept. Distributionally identical to the eager variant — every
    /// tentative ball strictly below the boundary is kept either way, and
    /// eager keys induce exactly a uniform choice among boundary balls.
    fn commit_multiplicity_lazy<R, S>(
        &mut self,
        state: &mut LoadVector,
        balls: usize,
        rng: &mut R,
        heights_out: &mut S,
    ) where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        self.samples.sort_unstable();
        self.tentative.clear();
        let mut i = 0;
        while i < self.samples.len() {
            let bin = self.samples[i];
            let base = state.load(bin);
            let mut occ = 0u32;
            while i < self.samples.len() && self.samples[i] == bin {
                occ += 1;
                self.tentative.push(Tentative {
                    height: base + occ,
                    key: 0,
                    bin: bin as u32,
                });
                i += 1;
            }
        }
        let len = self.tentative.len();
        if balls < len {
            // Boundary height: the `balls`-th smallest tentative height.
            let (_, pivot, _) = self
                .tentative
                .select_nth_unstable_by_key(balls - 1, |t| t.height);
            let hb = pivot.height;
            // Partition into [h < hb][h == hb][h ≥ hb] and pick a uniform
            // subset of the boundary band.
            let mut lt_end = 0;
            for j in 0..len {
                if self.tentative[j].height < hb {
                    self.tentative.swap(lt_end, j);
                    lt_end += 1;
                }
            }
            let mut eq_end = lt_end;
            for j in lt_end..len {
                if self.tentative[j].height == hb {
                    self.tentative.swap(eq_end, j);
                    eq_end += 1;
                }
            }
            shuffle_boundary_ties(&mut self.tentative, balls, |t| t.height, rng);
        }
        // Within any bin the kept heights are exactly L+1..=L+j, so
        // committing in slice order reproduces the kept height multiset
        // regardless of slot order.
        for t in self.tentative[..balls].iter() {
            let h = state.add_ball(t.bin as usize);
            heights_out.record(h);
        }
    }

    /// The §7 relaxation: water-fill the distinct sampled bins.
    fn commit_unrestricted<R, S>(
        &mut self,
        state: &mut LoadVector,
        balls: usize,
        rng: &mut R,
        heights_out: &mut S,
    ) where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        self.samples.sort_unstable();
        self.samples.dedup();
        self.candidates.clear();
        for &bin in self.samples.iter() {
            self.candidates.push(Candidate {
                bin: bin as u32,
                load: state.load(bin),
            });
        }
        for _ in 0..balls {
            let idx = kdchoice_prng::sample::random_argmin(rng, &self.candidates, |c| c.load)
                .expect("candidates non-empty");
            let bin = self.candidates[idx].bin as usize;
            let h = state.add_ball(bin);
            self.candidates[idx].load = h;
            heights_out.record(h);
        }
    }

    /// The batched engine's fast path: `d ≤ SMALL_D`, multiplicity policy,
    /// everything on fixed stack arrays.
    ///
    /// Dispatches the runtime `d` onto a const-generic round body so the
    /// per-round loops fully unroll and the scratch arrays live in
    /// registers for the small `d` the paper actually uses.
    fn round_batched_small<R, S>(
        &mut self,
        state: &mut LoadVector,
        rng: &mut R,
        heights_out: &mut S,
        balls: usize,
    ) where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        match self.d {
            1 => round_small::<1, R, S>(state, rng, heights_out, balls),
            2 => round_small::<2, R, S>(state, rng, heights_out, balls),
            3 => round_small::<3, R, S>(state, rng, heights_out, balls),
            4 => round_small::<4, R, S>(state, rng, heights_out, balls),
            5 => round_small::<5, R, S>(state, rng, heights_out, balls),
            6 => round_small::<6, R, S>(state, rng, heights_out, balls),
            7 => round_small::<7, R, S>(state, rng, heights_out, balls),
            8 => round_small::<8, R, S>(state, rng, heights_out, balls),
            9 => round_small::<9, R, S>(state, rng, heights_out, balls),
            10 => round_small::<10, R, S>(state, rng, heights_out, balls),
            11 => round_small::<11, R, S>(state, rng, heights_out, balls),
            12 => round_small::<12, R, S>(state, rng, heights_out, balls),
            13 => round_small::<13, R, S>(state, rng, heights_out, balls),
            14 => round_small::<14, R, S>(state, rng, heights_out, balls),
            15 => round_small::<15, R, S>(state, rng, heights_out, balls),
            16 => round_small::<16, R, S>(state, rng, heights_out, balls),
            _ => unreachable!("small path requires d <= SMALL_D"),
        }
    }
}

/// Uniform lazy tie-breaking at the selection boundary, shared by every
/// lazy commit path (`Vec`, packed-key, and grouped-array).
///
/// `slots[..balls]` must already hold the `balls` smallest heights, with
/// the boundary-height band contiguous around the cut (true after a full
/// sort or after the `[< hb][== hb][> hb]` partition). If the boundary
/// height spans the cut, a partial Fisher–Yates over the band leaves a
/// uniform subset of the tied slots in the kept prefix — consuming one
/// bounded draw per chosen tied slot instead of one key per tentative
/// ball, and none at all when no tie straddles the boundary.
#[inline]
fn shuffle_boundary_ties<T, R, F>(slots: &mut [T], balls: usize, height_of: F, rng: &mut R)
where
    R: RngCore + ?Sized,
    F: Fn(&T) -> u32,
{
    if balls >= slots.len() || height_of(&slots[balls]) != height_of(&slots[balls - 1]) {
        return;
    }
    let hb = height_of(&slots[balls - 1]);
    let mut lo = balls - 1;
    while lo > 0 && height_of(&slots[lo - 1]) == hb {
        lo -= 1;
    }
    let mut hi = balls;
    while hi + 1 < slots.len() && height_of(&slots[hi + 1]) == hb {
        hi += 1;
    }
    let ties = hi - lo + 1;
    let chosen = balls - lo;
    debug_assert!(chosen < ties, "the band spans the cut, so ties > chosen");
    for t in 0..chosen {
        let j = t + rand::lemire_u64(rng, (ties - t) as u64) as usize;
        slots.swap(lo + t, lo + j);
    }
}

/// One batched-engine round at compile-time-known `D` (multiplicity
/// policy): `D` generator outputs pulled in a block, widened-multiplied
/// into bin indices (no division), a branchless sorting network over
/// packed `(height, bin)` keys, and tie-break draws only when tentative
/// balls straddle the selection boundary.
///
/// `inline(always)`: the per-`D` instantiations are selected by a runtime
/// match; inlining them into the caller removes a call per round on the
/// hottest path in the workspace.
#[inline(always)]
fn round_small<const D: usize, R, S>(
    state: &mut LoadVector,
    rng: &mut R,
    heights_out: &mut S,
    balls: usize,
) where
    R: RngCore + ?Sized,
    S: HeightSink + ?Sized,
{
    debug_assert!(0 < balls && balls <= D);
    let bins_dist = UniformBin::new(state.n());

    // 1. Block-pull the round's raw randomness, then map to bins.
    let mut raw = [0u64; D];
    for slot in raw.iter_mut() {
        *slot = rng.next_u64();
    }
    let mut bins = [0u32; D];
    for i in 0..D {
        bins[i] = bins_dist.map_raw(raw[i], rng) as u32;
    }

    // Distinctness check (O(D²) unrolled compares). With n ≫ d² a round
    // repeats a bin with probability ≈ d²/2n, so the grouped path is cold.
    let mut distinct = true;
    for i in 1..D {
        for j in 0..i {
            distinct &= bins[i] != bins[j];
        }
    }
    if !distinct {
        return round_small_grouped::<D, R, S>(state, rng, heights_out, balls, bins);
    }

    // 2. Each sampled bin holds one tentative ball at height load + 1.
    //    Keys pack (height << 32 | bin) so a u64 compare orders by height
    //    first; the loads issue back-to-back, overlapping cache misses.
    let mut key = [0u64; D];
    for i in 0..D {
        key[i] = ((u64::from(state.load(bins[i] as usize)) + 1) << 32) | u64::from(bins[i]);
    }

    // 3. Odd-even transposition network: D unrolled passes of branchless
    //    compare-exchanges (min/max compile to cmov, no mispredictions).
    for pass in 0..D {
        let mut j = pass & 1;
        while j + 1 < D {
            let (a, b) = (key[j], key[j + 1]);
            key[j] = a.min(b);
            key[j + 1] = a.max(b);
            j += 2;
        }
    }

    // 4. Lazy tie-breaking: randomness only if the boundary height is
    //    shared between kept and discarded slots. (Keys ordered ties by
    //    bin index; the uniform boundary shuffle erases that bias.)
    shuffle_boundary_ties(&mut key, balls, |&x| (x >> 32) as u32, rng);

    // 5. Commit the balls of smallest height.
    for &k in &key[..balls] {
        let h = state.add_ball((k & 0xFFFF_FFFF) as usize);
        heights_out.record(h);
    }
}

/// The collision continuation of [`round_small`]: some bin was sampled
/// more than once, so tentative heights need the multiplicity walk
/// (heights L+1..=L+c for a bin of load L sampled c times). Probability
/// ≈ d²/2n per round — kept out of line so the hot path stays small.
#[cold]
#[inline(never)]
fn round_small_grouped<const D: usize, R, S>(
    state: &mut LoadVector,
    rng: &mut R,
    heights_out: &mut S,
    balls: usize,
    mut bins: [u32; D],
) where
    R: RngCore + ?Sized,
    S: HeightSink + ?Sized,
{
    // Group multiplicities: insertion sort of D bin indices.
    for i in 1..D {
        let mut j = i;
        while j > 0 && bins[j - 1] > bins[j] {
            bins.swap(j - 1, j);
            j -= 1;
        }
    }
    let mut tent = [(0u32, 0u32); D]; // (height, bin)
    let mut i = 0;
    while i < D {
        let bin = bins[i];
        let base = state.load(bin as usize);
        let mut occ = 0u32;
        while i < D && bins[i] == bin {
            occ += 1;
            tent[i] = (base + occ, bin);
            i += 1;
        }
    }

    // Order by height (stable insertion sort keeps each bin's heights
    // ascending).
    for i in 1..D {
        let mut j = i;
        while j > 0 && tent[j - 1].0 > tent[j].0 {
            tent.swap(j - 1, j);
            j -= 1;
        }
    }

    // Lazy tie-breaking, as in the distinct path.
    shuffle_boundary_ties(&mut tent, balls, |t| t.0, rng);

    // Commit. Kept heights within a bin are downward closed, so the
    // returned heights reproduce the kept multiset in slice order.
    for t in &tent[..balls] {
        let h = state.add_ball(t.1 as usize);
        heights_out.record(h);
    }
}

impl RoundProcess for KdChoice {
    fn name(&self) -> String {
        let base = match self.policy {
            RoundPolicy::Multiplicity => format!("({},{})-choice", self.k, self.d),
            RoundPolicy::Unrestricted => {
                format!("({},{})-choice[unrestricted]", self.k, self.d)
            }
        };
        if matches!(self.probes, ProbeDistribution::Uniform) {
            base
        } else {
            format!("{base}@{}", self.probes.label())
        }
    }

    fn run_round<R, S>(
        &mut self,
        state: &mut LoadVector,
        rng: &mut R,
        heights: &mut S,
        balls_remaining: u64,
    ) -> RoundStats
    where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        // Truncate the final round if fewer than k balls remain (the paper
        // assumes k | n; this keeps the driver total-ball-exact anyway).
        let balls = (self.k as u64).min(balls_remaining.max(1)) as usize;
        // Exactly-uniform distributions (including weighted ones whose
        // weights degenerated to equal) route onto the uniform engine
        // paths, whose generator consumption predates the probe seam —
        // uniform runs are bit-identical with or without it.
        let uniform = self.probes.is_uniform();
        match (self.policy, self.engine) {
            (RoundPolicy::Multiplicity, EngineVersion::Batched) if uniform && self.d <= SMALL_D => {
                self.round_batched_small(state, rng, heights, balls);
            }
            (RoundPolicy::Multiplicity, EngineVersion::Batched) => {
                let n = state.n();
                if uniform {
                    kdchoice_prng::sample::fill_with_replacement(rng, n, self.d, &mut self.samples);
                } else {
                    self.probes.fill(rng, n, self.d, &mut self.samples);
                }
                self.commit_multiplicity_lazy(state, balls, rng, heights);
            }
            (RoundPolicy::Multiplicity, EngineVersion::Legacy) => {
                let n = state.n();
                self.samples.clear();
                if uniform {
                    for _ in 0..self.d {
                        self.samples.push(rng.gen_range(0..n));
                    }
                } else {
                    for _ in 0..self.d {
                        self.samples.push(self.probes.sample(rng, n));
                    }
                }
                self.commit_multiplicity_eager(state, balls, rng, heights);
            }
            (RoundPolicy::Unrestricted, engine) => {
                let n = state.n();
                self.samples.clear();
                match (engine, uniform) {
                    (EngineVersion::Batched, true) => kdchoice_prng::sample::fill_with_replacement(
                        rng,
                        n,
                        self.d,
                        &mut self.samples,
                    ),
                    (EngineVersion::Batched, false) => {
                        self.probes.fill(rng, n, self.d, &mut self.samples)
                    }
                    (EngineVersion::Legacy, true) => {
                        for _ in 0..self.d {
                            self.samples.push(rng.gen_range(0..n));
                        }
                    }
                    (EngineVersion::Legacy, false) => {
                        for _ in 0..self.d {
                            self.samples.push(self.probes.sample(rng, n));
                        }
                    }
                }
                self.commit_unrestricted(state, balls, rng, heights);
            }
        }
        RoundStats {
            thrown: balls as u32,
            placed: balls as u32,
            probes: self.d as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_prng::Xoshiro256PlusPlus;

    fn state_with_loads(loads: &[u32]) -> LoadVector {
        let mut s = LoadVector::new(loads.len());
        for (bin, &l) in loads.iter().enumerate() {
            for _ in 0..l {
                s.add_ball(bin);
            }
        }
        s
    }

    #[test]
    fn constructor_validates() {
        assert_eq!(KdChoice::new(0, 3).unwrap_err(), ConfigError::ZeroK);
        assert_eq!(
            KdChoice::new(4, 3).unwrap_err(),
            ConfigError::KExceedsD { k: 4, d: 3 }
        );
        assert!(
            KdChoice::new(3, 3).is_ok(),
            "k = d is the SA(k,k) degenerate"
        );
        assert!(KdChoice::new(1, 1).is_ok());
    }

    #[test]
    fn name_reflects_parameters_and_policy() {
        let p = KdChoice::new(2, 3).unwrap();
        assert_eq!(p.name(), "(2,3)-choice");
        let p = p.with_policy(RoundPolicy::Unrestricted);
        assert_eq!(p.name(), "(2,3)-choice[unrestricted]");
    }

    #[test]
    fn default_engine_is_batched() {
        assert_eq!(
            KdChoice::new(2, 3).unwrap().engine(),
            EngineVersion::Batched
        );
        assert_eq!(EngineVersion::Batched.label(), "batched");
        assert_ne!(
            EngineVersion::Batched.label(),
            EngineVersion::Legacy.label()
        );
    }

    /// Paper §1, scenario (a): (3,4)-choice, bins with loads (3,2,1,0), each
    /// sampled once. Each of bin2, bin3, bin4 receives a ball. Tie-free, so
    /// both engines must agree exactly.
    #[test]
    fn paper_scenario_a() {
        for engine in [EngineVersion::Legacy, EngineVersion::Batched] {
            let mut p = KdChoice::new(3, 4).unwrap().with_engine(engine);
            let mut state = state_with_loads(&[3, 2, 1, 0]);
            let mut rng = Xoshiro256PlusPlus::from_u64(1);
            let mut heights = Vec::new();
            p.place_round_with_samples(&mut state, &[0, 1, 2, 3], 3, &mut rng, &mut heights);
            assert_eq!(state.loads(), &[3, 3, 2, 1], "{engine:?}");
            let mut h = heights.clone();
            h.sort_unstable();
            assert_eq!(h, vec![1, 2, 3]);
        }
    }

    /// Paper §1, scenario (b): bin2 and bin3 sampled once, bin4 twice.
    /// "bin3 receives a ball and bin4 receives two balls".
    #[test]
    fn paper_scenario_b() {
        for engine in [EngineVersion::Legacy, EngineVersion::Batched] {
            let mut p = KdChoice::new(3, 4).unwrap().with_engine(engine);
            let mut state = state_with_loads(&[3, 2, 1, 0]);
            let mut rng = Xoshiro256PlusPlus::from_u64(2);
            let mut heights = Vec::new();
            p.place_round_with_samples(&mut state, &[1, 2, 3, 3], 3, &mut rng, &mut heights);
            assert_eq!(state.loads(), &[3, 2, 2, 2], "{engine:?}");
        }
    }

    /// Paper §1, scenario (c): bin1 sampled twice, bin4 sampled twice.
    /// "bin1 receives one ball and bin4 receives two".
    #[test]
    fn paper_scenario_c() {
        for engine in [EngineVersion::Legacy, EngineVersion::Batched] {
            let mut p = KdChoice::new(3, 4).unwrap().with_engine(engine);
            let mut state = state_with_loads(&[3, 2, 1, 0]);
            let mut rng = Xoshiro256PlusPlus::from_u64(3);
            let mut heights = Vec::new();
            p.place_round_with_samples(&mut state, &[0, 0, 3, 3], 3, &mut rng, &mut heights);
            assert_eq!(state.loads(), &[4, 2, 1, 2], "{engine:?}");
        }
    }

    /// §7: under the unrestricted policy in (2,3)-choice with loads
    /// (0, 2, 3), both balls go into the empty bin.
    #[test]
    fn paper_section7_unrestricted_example() {
        let mut p = KdChoice::new(2, 3)
            .unwrap()
            .with_policy(RoundPolicy::Unrestricted);
        let mut state = state_with_loads(&[0, 2, 3]);
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        let mut heights = Vec::new();
        p.place_round_with_samples(&mut state, &[0, 1, 2], 2, &mut rng, &mut heights);
        assert_eq!(state.loads(), &[2, 2, 3]);
        assert_eq!(heights, vec![1, 2]);
    }

    /// Under the multiplicity policy the same configuration splits the
    /// balls: one to the empty bin, one to the load-2 bin.
    #[test]
    fn multiplicity_policy_on_section7_example() {
        for engine in [EngineVersion::Legacy, EngineVersion::Batched] {
            let mut p = KdChoice::new(2, 3).unwrap().with_engine(engine);
            let mut state = state_with_loads(&[0, 2, 3]);
            let mut rng = Xoshiro256PlusPlus::from_u64(5);
            let mut heights = Vec::new();
            p.place_round_with_samples(&mut state, &[0, 1, 2], 2, &mut rng, &mut heights);
            assert_eq!(state.loads(), &[1, 3, 3], "{engine:?}");
        }
    }

    /// Reference implementation of the paper's removal formulation: place
    /// one ball per sampled slot sequentially, then remove the d−k balls of
    /// maximal height. Checked equivalent to both engines' multiplicity
    /// commit on random instances.
    fn removal_reference(loads: &[u32], samples: &[usize], k: usize) -> Vec<u32> {
        let mut loads = loads.to_vec();
        let mut placed: Vec<(u32, usize)> = Vec::new(); // (height, bin)
        for &s in samples {
            loads[s] += 1;
            placed.push((loads[s], s));
        }
        // Remove the d-k of maximal height.
        placed.sort_unstable(); // ascending by height
        for &(_, bin) in placed.iter().skip(k) {
            loads[bin] -= 1;
        }
        loads
    }

    #[test]
    fn multiplicity_matches_removal_formulation_on_random_instances() {
        use rand::Rng;
        for engine in [EngineVersion::Legacy, EngineVersion::Batched] {
            let mut rng = Xoshiro256PlusPlus::from_u64(6);
            for trial in 0..500 {
                let n = rng.gen_range(2..12);
                let d = rng.gen_range(1..=8usize);
                let k = rng.gen_range(1..=d);
                let loads: Vec<u32> = (0..n).map(|_| rng.gen_range(0..5)).collect();
                let samples: Vec<usize> = (0..d).map(|_| rng.gen_range(0..n)).collect();

                let mut p = KdChoice::new(k, d).unwrap().with_engine(engine);
                let mut state = state_with_loads(&loads);
                let mut heights = Vec::new();
                p.place_round_with_samples(&mut state, &samples, k, &mut rng, &mut heights);

                let mut got: Vec<u32> = state.loads().to_vec();
                let mut want = removal_reference(&loads, &samples, k);
                // Compare as multisets of loads: tie-breaking may route a ball
                // to a different bin of equal height, but the sorted load vector
                // must be identical (this is the paper's state space).
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(
                    got, want,
                    "{engine:?} trial {trial}: k={k} d={d} samples {samples:?}"
                );
            }
        }
    }

    #[test]
    fn multiplicity_cap_is_respected() {
        use rand::Rng;
        for engine in [EngineVersion::Legacy, EngineVersion::Batched] {
            let mut rng = Xoshiro256PlusPlus::from_u64(7);
            for _ in 0..300 {
                let n = 6;
                let d = rng.gen_range(2..=10usize);
                let k = rng.gen_range(1..=d);
                let loads: Vec<u32> = (0..n).map(|_| rng.gen_range(0..4)).collect();
                let samples: Vec<usize> = (0..d).map(|_| rng.gen_range(0..n)).collect();
                let mut occurrences = vec![0u32; n];
                for &s in &samples {
                    occurrences[s] += 1;
                }
                let mut p = KdChoice::new(k, d).unwrap().with_engine(engine);
                let mut state = state_with_loads(&loads);
                let mut heights = Vec::new();
                p.place_round_with_samples(&mut state, &samples, k, &mut rng, &mut heights);
                for bin in 0..n {
                    let gained = state.load(bin) - loads[bin];
                    assert!(
                        gained <= occurrences[bin],
                        "{engine:?}: bin {bin} sampled {} times but gained {gained}",
                        occurrences[bin]
                    );
                }
                assert_eq!(
                    state.total_balls() as usize,
                    loads.iter().sum::<u32>() as usize + k
                );
            }
        }
    }

    #[test]
    fn k_equals_d_places_every_sample() {
        let mut p = KdChoice::new(4, 4).unwrap();
        let mut state = state_with_loads(&[9, 0, 0, 0]);
        let mut rng = Xoshiro256PlusPlus::from_u64(8);
        let mut heights = Vec::new();
        // All four samples on the most loaded bin: all four balls stay.
        p.place_round_with_samples(&mut state, &[0, 0, 0, 0], 4, &mut rng, &mut heights);
        assert_eq!(state.load(0), 13);
        assert_eq!(heights, vec![10, 11, 12, 13]);
    }

    #[test]
    fn run_round_throws_k_and_probes_d() {
        for engine in [EngineVersion::Legacy, EngineVersion::Batched] {
            let mut p = KdChoice::new(3, 7).unwrap().with_engine(engine);
            let mut state = LoadVector::new(100);
            let mut rng = Xoshiro256PlusPlus::from_u64(9);
            let mut heights = Vec::new();
            let stats = p.run_round(&mut state, &mut rng, &mut heights, 1000);
            assert_eq!(stats.thrown, 3, "{engine:?}");
            assert_eq!(stats.placed, 3);
            assert_eq!(stats.probes, 7);
            assert_eq!(heights.len(), 3);
            assert_eq!(state.total_balls(), 3);
        }
    }

    #[test]
    fn large_d_batched_path_works() {
        // d > SMALL_D exercises the Vec-based lazy path.
        let mut p = KdChoice::new(20, 40).unwrap();
        let mut state = LoadVector::new(64);
        let mut rng = Xoshiro256PlusPlus::from_u64(10);
        let mut heights = Vec::new();
        let stats = p.run_round(&mut state, &mut rng, &mut heights, 1000);
        assert_eq!(stats.thrown, 20);
        assert_eq!(stats.probes, 40);
        assert_eq!(state.total_balls(), 20);
        assert!(state.check_invariants());
    }

    #[test]
    fn final_round_truncates_to_remaining() {
        for engine in [EngineVersion::Legacy, EngineVersion::Batched] {
            let mut p = KdChoice::new(4, 6).unwrap().with_engine(engine);
            let mut state = LoadVector::new(50);
            let mut rng = Xoshiro256PlusPlus::from_u64(10);
            let mut heights = Vec::new();
            let stats = p.run_round(&mut state, &mut rng, &mut heights, 2);
            assert_eq!(stats.thrown, 2, "{engine:?}");
            assert_eq!(state.total_balls(), 2);
        }
    }

    #[test]
    fn unrestricted_places_all_balls_even_with_one_distinct_candidate() {
        let mut p = KdChoice::new(3, 4)
            .unwrap()
            .with_policy(RoundPolicy::Unrestricted);
        let mut state = LoadVector::new(5);
        let mut rng = Xoshiro256PlusPlus::from_u64(11);
        let mut heights = Vec::new();
        p.place_round_with_samples(&mut state, &[2, 2, 2, 2], 3, &mut rng, &mut heights);
        assert_eq!(state.load(2), 3);
        assert_eq!(heights, vec![1, 2, 3]);
    }

    #[test]
    fn unrestricted_prefers_least_loaded() {
        let mut p = KdChoice::new(2, 4)
            .unwrap()
            .with_policy(RoundPolicy::Unrestricted);
        let mut state = state_with_loads(&[5, 0, 5, 5]);
        let mut rng = Xoshiro256PlusPlus::from_u64(12);
        let mut heights = Vec::new();
        p.place_round_with_samples(&mut state, &[0, 1, 2, 3], 2, &mut rng, &mut heights);
        // Both balls water-fill bin 1 (loads 1 then 2 < 5).
        assert_eq!(state.load(1), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        for engine in [EngineVersion::Legacy, EngineVersion::Batched] {
            let run = |seed: u64| {
                let mut p = KdChoice::new(2, 5).unwrap().with_engine(engine);
                let mut state = LoadVector::new(64);
                let mut rng = Xoshiro256PlusPlus::from_u64(seed);
                let mut heights = Vec::new();
                for _ in 0..32 {
                    p.run_round(&mut state, &mut rng, &mut heights, u64::MAX);
                }
                (state.sorted_descending(), heights)
            };
            assert_eq!(run(42), run(42), "{engine:?}");
            assert_ne!(run(42).1, run(43).1, "{engine:?}");
        }
    }

    #[test]
    fn ties_between_bins_are_randomized() {
        // (1,2)-choice, two empty bins sampled: the ball should land on
        // either bin with roughly equal probability — under both the eager
        // and the lazy tie-break engines.
        for engine in [EngineVersion::Legacy, EngineVersion::Batched] {
            let mut counts = [0u32; 2];
            let mut rng = Xoshiro256PlusPlus::from_u64(13);
            for _ in 0..4000 {
                let mut p = KdChoice::new(1, 2).unwrap().with_engine(engine);
                let mut state = LoadVector::new(2);
                let mut heights = Vec::new();
                p.place_round_with_samples(&mut state, &[0, 1], 1, &mut rng, &mut heights);
                if state.load(0) == 1 {
                    counts[0] += 1;
                } else {
                    counts[1] += 1;
                }
            }
            let f = f64::from(counts[0]) / 4000.0;
            assert!((f - 0.5).abs() < 0.05, "{engine:?}: tie frequency {f}");
        }
    }

    #[test]
    fn engines_agree_in_distribution_on_max_load() {
        // Legacy and batched engines simulate the same process: mean max
        // loads over independent trials must be statistically
        // indistinguishable.
        let mean_max = |engine: EngineVersion| {
            let mut sum = 0.0;
            for seed in 0..40u64 {
                let mut p = KdChoice::new(2, 3).unwrap().with_engine(engine);
                let r =
                    crate::driver::run_once(&mut p, &crate::driver::RunConfig::new(1 << 12, seed));
                sum += f64::from(r.max_load);
            }
            sum / 40.0
        };
        let legacy = mean_max(EngineVersion::Legacy);
        let batched = mean_max(EngineVersion::Batched);
        assert!(
            (legacy - batched).abs() < 0.4,
            "legacy {legacy} vs batched {batched}"
        );
    }
}
