//! [`ProbeDistribution`]: where a round's `d` probes come from.
//!
//! The paper's process samples probes **uniformly** with replacement; the
//! tight-bounds line of work (Park's analysis, Godfrey-style non-uniform
//! choice sets, the (1+β) multidimensional allocation report) and every
//! realistic scheduler/storage deployment need **skewed** sampling over
//! unequal servers. This module is the seam that opens that workload
//! family to every layer at once: the round engines ([`crate::KdChoice`]),
//! the baselines (greedy\[d\], (1+β)), the concurrent placement service,
//! and the open-loop pipeline all draw probes through a `ProbeDistribution`,
//! so a weighted variant of any of them is a constructor argument, not a
//! fork of the engine.
//!
//! **Uniform stays exact.** [`ProbeDistribution::Uniform`] draws the
//! *identical* generator stream as the pre-existing uniform paths
//! (`UniformBin` / `fill_with_replacement` / `gen_range`), and a
//! [`ProbeDistribution::Weighted`] built from all-equal weights
//! degenerates to that same stream (see
//! [`kdchoice_prng::sample::WeightedBin`]) — so uniform experiments are
//! bit-identical whether or not they route through this seam, which is
//! the equivalence the `hetero` scenario locks by test.

use std::borrow::Cow;

use kdchoice_prng::dist::ParamError;
use kdchoice_prng::sample::{fill_weighted, fill_with_replacement, UniformBin, WeightedBin};
use rand::RngCore;

/// The distribution the `d` probes of a round are drawn from (always with
/// replacement).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ProbeDistribution {
    /// Uniform over `0..n` — the paper's model. Carries no state: the
    /// bound `n` comes from the state being probed, so one `Uniform`
    /// value serves any `n`.
    #[default]
    Uniform,
    /// Arbitrary non-negative weights via a batched alias sampler
    /// (O(n) construction, O(1) divisionless draws).
    Weighted(WeightedBin),
    /// Zipf-weighted probing, `P(bin i) ∝ 1/(i+1)^s` — the canonical
    /// popularity skew. Keeps the exponent for reports; sampling goes
    /// through the same alias table as [`ProbeDistribution::Weighted`].
    Zipf {
        /// The Zipf exponent `s ≥ 0` (`s = 0` is uniform).
        s: f64,
        /// The alias sampler realizing the Zipf weights over `0..n`.
        sampler: WeightedBin,
    },
}

impl ProbeDistribution {
    /// A weighted distribution from raw weights.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for empty/negative/non-finite/all-zero
    /// weights.
    pub fn weighted(weights: &[f64]) -> Result<Self, ParamError> {
        Ok(Self::Weighted(WeightedBin::new(weights)?))
    }

    /// Zipf(s) probing over `0..n`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `n == 0` or `s` is not finite and ≥ 0.
    pub fn zipf(n: usize, s: f64) -> Result<Self, ParamError> {
        Ok(Self::Zipf {
            s,
            sampler: WeightedBin::zipf(n, s)?,
        })
    }

    /// Two-tier probing over `0..n`: every `every`-th bin (indices
    /// `≡ 0 mod every`) is probed `ratio×` as often as the rest — the
    /// "few hot frontends" skew.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `n == 0`, `every == 0`, or `ratio == 0`.
    pub fn two_tier(n: usize, every: usize, ratio: u32) -> Result<Self, ParamError> {
        if n == 0 || every == 0 || ratio == 0 {
            return Err(ParamError::new(
                "two-tier probing needs n >= 1, every >= 1, ratio >= 1",
            ));
        }
        // One definition of the two-tier stride/ratio pattern: the probe
        // weights are exactly the two-tier capacity map.
        Self::proportional_to(&two_tier_capacities(n, every, ratio))
    }

    /// Capacity-proportional probing: `P(bin) ∝ c_bin`, the natural
    /// sampling for heterogeneous servers (probe where the capacity is).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `capacities` is empty.
    pub fn proportional_to(capacities: &[u32]) -> Result<Self, ParamError> {
        let weights: Vec<f64> = capacities.iter().map(|&c| f64::from(c)).collect();
        Self::weighted(&weights)
    }

    /// Whether draws are exactly uniform — true for
    /// [`ProbeDistribution::Uniform`] and for weighted/Zipf variants whose
    /// weights degenerated to equal (their stream is bit-identical to
    /// uniform). Engines use this to route onto their uniform fast paths.
    pub fn is_uniform(&self) -> bool {
        match self {
            ProbeDistribution::Uniform => true,
            ProbeDistribution::Weighted(w) => w.is_uniform(),
            ProbeDistribution::Zipf { sampler, .. } => sampler.is_uniform(),
        }
    }

    /// The support size a non-uniform distribution was built for
    /// (`None` for [`ProbeDistribution::Uniform`], which adapts to any
    /// `n`).
    pub fn expected_n(&self) -> Option<usize> {
        match self {
            ProbeDistribution::Uniform => None,
            ProbeDistribution::Weighted(w) => Some(w.n()),
            ProbeDistribution::Zipf { sampler, .. } => Some(sampler.n()),
        }
    }

    /// A short label for process names and report rows: `"uniform"`,
    /// `"weighted"`, or `"zipf(s)"`.
    pub fn label(&self) -> Cow<'static, str> {
        match self {
            ProbeDistribution::Uniform => Cow::Borrowed("uniform"),
            ProbeDistribution::Weighted(_) => Cow::Borrowed("weighted"),
            ProbeDistribution::Zipf { s, .. } => Cow::Owned(format!("zipf({s})")),
        }
    }

    /// Draws one probe from `0..n`.
    ///
    /// The uniform arm consumes the generator exactly like
    /// `UniformBin::sample` / `gen_range(0..n)`.
    ///
    /// # Panics
    ///
    /// Panics if a non-uniform distribution was built for a different
    /// `n` — a hard assert even in release builds, since sampling a
    /// wrong-sized support would silently confine probes to a subrange
    /// (the check is one predicted compare next to a table load).
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R, n: usize) -> usize {
        match self {
            ProbeDistribution::Uniform => UniformBin::new(n).sample(rng),
            ProbeDistribution::Weighted(w) => {
                assert_eq!(w.n(), n, "weighted distribution built for wrong n");
                w.sample(rng)
            }
            ProbeDistribution::Zipf { sampler, .. } => {
                assert_eq!(sampler.n(), n, "zipf distribution built for wrong n");
                sampler.sample(rng)
            }
        }
    }

    /// Fills the slice `out` with sequential draws — the **same
    /// generator stream** as calling [`ProbeDistribution::sample`] once
    /// per slot, unlike the block-pulling [`ProbeDistribution::fill`].
    ///
    /// This is the shared-nothing engine's snapshot-read probe path:
    /// `d` probes land in a caller-owned scratch slice with no
    /// allocation, and the stream identity with the per-request striped
    /// path is what makes cross-backend bit-equivalence possible.
    ///
    /// # Panics
    ///
    /// Panics if a non-uniform distribution was built for a different `n`.
    #[inline]
    pub fn fill_each<R: RngCore + ?Sized>(&self, rng: &mut R, n: usize, out: &mut [usize]) {
        match self {
            ProbeDistribution::Uniform => UniformBin::new(n).fill_seq(rng, out),
            ProbeDistribution::Weighted(w) => {
                assert_eq!(w.n(), n, "weighted distribution built for wrong n");
                w.fill_seq(rng, out);
            }
            ProbeDistribution::Zipf { sampler, .. } => {
                assert_eq!(sampler.n(), n, "zipf distribution built for wrong n");
                sampler.fill_seq(rng, out);
            }
        }
    }

    /// Fills `out` with `count` probes from `0..n` (batch API; block-pulls
    /// generator outputs, see [`fill_with_replacement`] /
    /// [`fill_weighted`]).
    ///
    /// # Panics
    ///
    /// Panics if a non-uniform distribution was built for a different `n`.
    pub fn fill<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
        count: usize,
        out: &mut Vec<usize>,
    ) {
        match self {
            ProbeDistribution::Uniform => fill_with_replacement(rng, n, count, out),
            ProbeDistribution::Weighted(w) => {
                assert_eq!(w.n(), n, "weighted distribution built for wrong n");
                fill_weighted(rng, w, count, out);
            }
            ProbeDistribution::Zipf { sampler, .. } => {
                assert_eq!(sampler.n(), n, "zipf distribution built for wrong n");
                fill_weighted(rng, sampler, count, out);
            }
        }
    }
}

/// A two-tier capacity map over `n` bins: every `every`-th bin (indices
/// `≡ 0 mod every`) has capacity `ratio`, the rest capacity 1 — the
/// "two-tier 10×" heterogeneous cluster. Fat bins are interleaved by
/// index, so the modulo shard striping of `ShardedStore` spreads them
/// (and therefore total capacity) evenly across shards.
///
/// # Panics
///
/// Panics if `n == 0`, `every == 0`, or `ratio == 0`.
pub fn two_tier_capacities(n: usize, every: usize, ratio: u32) -> Vec<u32> {
    assert!(
        n > 0 && every > 0 && ratio > 0,
        "two-tier capacities need n >= 1, every >= 1, ratio >= 1"
    );
    (0..n)
        .map(|i| if i % every == 0 { ratio } else { 1 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_prng::Xoshiro256PlusPlus;
    use rand::Rng;

    #[test]
    fn default_is_uniform() {
        let d = ProbeDistribution::default();
        assert!(d.is_uniform());
        assert_eq!(d.expected_n(), None);
        assert_eq!(d.label(), "uniform");
    }

    #[test]
    fn uniform_sample_matches_gen_range_stream() {
        let d = ProbeDistribution::Uniform;
        let mut a = Xoshiro256PlusPlus::from_u64(3);
        let mut b = Xoshiro256PlusPlus::from_u64(3);
        for _ in 0..500 {
            assert_eq!(d.sample(&mut a, 1000), b.gen_range(0..1000));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn labels_and_expected_n() {
        let w = ProbeDistribution::weighted(&[1.0, 2.0]).unwrap();
        assert_eq!(w.label(), "weighted");
        assert_eq!(w.expected_n(), Some(2));
        assert!(!w.is_uniform());
        let z = ProbeDistribution::zipf(8, 1.5).unwrap();
        assert_eq!(z.label(), "zipf(1.5)");
        assert_eq!(z.expected_n(), Some(8));
        // Equal weights / zero exponent degenerate to uniform sampling.
        assert!(ProbeDistribution::weighted(&[2.0, 2.0])
            .unwrap()
            .is_uniform());
        assert!(ProbeDistribution::zipf(8, 0.0).unwrap().is_uniform());
    }

    #[test]
    fn two_tier_probing_boosts_hot_bins() {
        let d = ProbeDistribution::two_tier(10, 5, 9).unwrap();
        // Bins 0 and 5 carry weight 9 each, the rest 1: hot mass 18/26.
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        let mut hot = 0u32;
        let trials = 40_000;
        let mut out = Vec::new();
        d.fill(&mut rng, 10, trials, &mut out);
        for &b in &out {
            hot += u32::from(b == 0 || b == 5);
        }
        let f = f64::from(hot) / trials as f64;
        assert!((f - 18.0 / 26.0).abs() < 0.02, "hot mass {f}");
    }

    #[test]
    fn proportional_to_capacities() {
        let caps = two_tier_capacities(8, 4, 3);
        assert_eq!(caps, vec![3, 1, 1, 1, 3, 1, 1, 1]);
        let d = ProbeDistribution::proportional_to(&caps).unwrap();
        assert!(!d.is_uniform());
        assert_eq!(d.expected_n(), Some(8));
        // All-equal capacities degenerate to uniform.
        assert!(ProbeDistribution::proportional_to(&[2, 2, 2])
            .unwrap()
            .is_uniform());
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(ProbeDistribution::weighted(&[]).is_err());
        assert!(ProbeDistribution::weighted(&[-1.0]).is_err());
        assert!(ProbeDistribution::zipf(0, 1.0).is_err());
        assert!(ProbeDistribution::two_tier(0, 1, 1).is_err());
        assert!(ProbeDistribution::two_tier(8, 0, 1).is_err());
        assert!(ProbeDistribution::two_tier(8, 1, 0).is_err());
        assert!(ProbeDistribution::proportional_to(&[]).is_err());
    }

    #[test]
    #[should_panic(expected = "wrong n")]
    fn fill_rejects_mismatched_n() {
        let d = ProbeDistribution::zipf(8, 1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let mut out = Vec::new();
        d.fill(&mut rng, 9, 4, &mut out);
    }

    #[test]
    #[should_panic(expected = "two-tier capacities")]
    fn two_tier_capacities_reject_zero_ratio() {
        let _ = two_tier_capacities(4, 2, 0);
    }
}
