//! The process traits shared by (k,d)-choice and every baseline.
//!
//! Two traits cover the static/dynamic dispatch split:
//!
//! * [`RoundProcess`] — the **monomorphized engine trait**. `run_round` is
//!   generic over the RNG and the height sink, so driving a concrete
//!   process with a concrete generator compiles to a single fully inlined
//!   loop: no vtable call per probe, per tie-break key, or per recorded
//!   height. All drivers ([`crate::run_once`], [`crate::run_trials`],
//!   [`crate::run_sweep`]) take `P: RoundProcess + ?Sized`.
//! * [`BallsIntoBins`] — the **object-safe shim**. Experiment harnesses
//!   that need heterogeneous collections keep storing
//!   `Box<dyn BallsIntoBins>`; every `RoundProcess` gets this trait through
//!   a blanket impl, and `dyn BallsIntoBins` itself implements
//!   [`RoundProcess`], so boxed processes still plug into every driver —
//!   they just pay the (measured, see `BENCH_results.json`) dynamic
//!   dispatch toll.
//!
//! Implement [`RoundProcess`] for new processes; implement
//! [`BallsIntoBins`] directly only for types that must erase their RNG
//! interaction behind `dyn RngCore`.

use std::cell::RefCell;

use rand::RngCore;

use crate::state::LoadVector;

/// Statistics reported by one round of an allocation process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Balls *thrown* this round (drives termination: a run ends when the
    /// configured number of balls has been thrown).
    pub thrown: u32,
    /// Balls actually *placed* this round. Less than `thrown` only for
    /// discarding processes such as SA_{x0} (Definition 3).
    pub placed: u32,
    /// Bins probed this round — the paper's message cost (footnote 1).
    pub probes: u64,
}

/// A consumer of placed-ball heights (§2.1: heights feed the µ_y
/// histogram).
///
/// The generic sink lets the drivers histogram heights inline instead of
/// materializing a per-round `Vec<u32>`; the coupling experiments that do
/// need the individual heights pass a `Vec<u32>`, which is also a sink.
pub trait HeightSink {
    /// Records the height of one placed ball.
    fn record(&mut self, height: u32);
}

impl HeightSink for Vec<u32> {
    #[inline]
    fn record(&mut self, height: u32) {
        self.push(height);
    }
}

/// The null sink, for drivers that only need the bin state (e.g. tracing).
impl HeightSink for () {
    #[inline]
    fn record(&mut self, _height: u32) {}
}

/// A sequential-round balls-into-bins allocation process with a
/// **monomorphized** round step.
///
/// Implementations mutate the shared [`LoadVector`] one round at a time;
/// the drivers own the loop, the RNG, and the metric accumulation, so that
/// *every* process — (k,d)-choice, the baselines, the serialized variant —
/// is measured identically.
///
/// `run_round` is generic over the RNG and sink, which makes this trait
/// not object-safe; box processes as `Box<dyn BallsIntoBins>` (the shim
/// trait) when type erasure is needed.
pub trait RoundProcess {
    /// A short human-readable name, e.g. `"(2,3)-choice"` or `"greedy[2]"`.
    fn name(&self) -> String;

    /// Runs one round: samples bins using `rng`, commits balls into
    /// `state`, and records the height of every placed ball into `heights`.
    ///
    /// A process must throw at least one ball per round
    /// (`RoundStats::thrown ≥ 1`), but may throw fewer than usual on the
    /// final partial round.
    ///
    /// `balls_remaining` is the number of balls the driver still wants
    /// thrown; processes with fixed round sizes may use it to truncate the
    /// final round.
    fn run_round<R, S>(
        &mut self,
        state: &mut LoadVector,
        rng: &mut R,
        heights: &mut S,
        balls_remaining: u64,
    ) -> RoundStats
    where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized;

    /// Resets any per-run internal state (scratch buffers may be kept).
    /// The default implementation does nothing.
    fn reset(&mut self) {}
}

/// The object-safe shim over [`RoundProcess`].
///
/// This is the trait experiment harnesses box: `Box<dyn BallsIntoBins>`.
/// Every [`RoundProcess`] implements it via a blanket impl, and
/// `dyn BallsIntoBins` implements [`RoundProcess`] back, so boxed
/// processes run on the same drivers as concrete ones (paying dynamic
/// dispatch per RNG call and a per-round height copy).
pub trait BallsIntoBins {
    /// A short human-readable name, e.g. `"(2,3)-choice"` or `"greedy[2]"`.
    fn name(&self) -> String;

    /// Runs one round through erased RNG/height types. See
    /// [`RoundProcess::run_round`] for the contract.
    fn run_round(
        &mut self,
        state: &mut LoadVector,
        rng: &mut dyn RngCore,
        heights_out: &mut Vec<u32>,
        balls_remaining: u64,
    ) -> RoundStats;

    /// Resets any per-run internal state (scratch buffers may be kept).
    fn reset(&mut self) {}
}

impl<P: RoundProcess> BallsIntoBins for P {
    fn name(&self) -> String {
        RoundProcess::name(self)
    }

    fn run_round(
        &mut self,
        state: &mut LoadVector,
        rng: &mut dyn RngCore,
        heights_out: &mut Vec<u32>,
        balls_remaining: u64,
    ) -> RoundStats {
        RoundProcess::run_round(self, state, rng, heights_out, balls_remaining)
    }

    fn reset(&mut self) {
        RoundProcess::reset(self);
    }
}

thread_local! {
    /// Scratch height buffer for driving `dyn BallsIntoBins` through the
    /// generic drivers; taken (not borrowed) so re-entrant rounds degrade
    /// to a fresh allocation instead of a panic.
    static DYN_HEIGHTS: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

impl RoundProcess for dyn BallsIntoBins + '_ {
    fn name(&self) -> String {
        BallsIntoBins::name(self)
    }

    fn run_round<R, S>(
        &mut self,
        state: &mut LoadVector,
        rng: &mut R,
        heights: &mut S,
        balls_remaining: u64,
    ) -> RoundStats
    where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        let mut buf = DYN_HEIGHTS.with(RefCell::take);
        buf.clear();
        let mut rng = rng;
        let stats = BallsIntoBins::run_round(
            self,
            state,
            &mut rng as &mut dyn RngCore,
            &mut buf,
            balls_remaining,
        );
        for &h in &buf {
            heights.record(h);
        }
        DYN_HEIGHTS.with(|cell| cell.replace(buf));
        stats
    }

    fn reset(&mut self) {
        BallsIntoBins::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A minimal process used to pin down the trait plumbing and the
    /// driver contract.
    struct OneByOne;

    impl RoundProcess for OneByOne {
        fn name(&self) -> String {
            "one-by-one".to_string()
        }

        fn run_round<R, S>(
            &mut self,
            state: &mut LoadVector,
            rng: &mut R,
            heights: &mut S,
            _balls_remaining: u64,
        ) -> RoundStats
        where
            R: RngCore + ?Sized,
            S: HeightSink + ?Sized,
        {
            let bin = rng.gen_range(0..state.n());
            let h = state.add_ball(bin);
            heights.record(h);
            RoundStats {
                thrown: 1,
                placed: 1,
                probes: 1,
            }
        }
    }

    #[test]
    fn shim_trait_is_object_safe() {
        let mut boxed: Box<dyn BallsIntoBins> = Box::new(OneByOne);
        assert_eq!(BallsIntoBins::name(&*boxed), "one-by-one");
        let mut state = LoadVector::new(4);
        let mut rng = kdchoice_prng::Xoshiro256PlusPlus::from_u64(1);
        let mut heights = Vec::new();
        let stats = BallsIntoBins::run_round(&mut *boxed, &mut state, &mut rng, &mut heights, 10);
        assert_eq!(stats.thrown, 1);
        assert_eq!(stats.placed, 1);
        assert_eq!(heights.len(), 1);
        assert_eq!(state.total_balls(), 1);
    }

    #[test]
    fn dyn_process_runs_through_the_generic_trait() {
        // The shim round path: dyn BallsIntoBins as a RoundProcess.
        let mut boxed: Box<dyn BallsIntoBins> = Box::new(OneByOne);
        let process: &mut dyn BallsIntoBins = &mut *boxed;
        let mut state = LoadVector::new(4);
        let mut rng = kdchoice_prng::Xoshiro256PlusPlus::from_u64(2);
        let mut heights: Vec<u32> = Vec::new();
        let stats = RoundProcess::run_round(process, &mut state, &mut rng, &mut heights, 10);
        assert_eq!(stats.placed, 1);
        assert_eq!(heights.len(), 1);
        assert_eq!(RoundProcess::name(process), "one-by-one");
    }

    #[test]
    fn generic_and_dyn_paths_share_one_rng_stream() {
        // Whatever dispatch route a round takes, it must consume the
        // generator identically.
        let run = |use_dyn: bool| {
            let mut p = OneByOne;
            let mut state = LoadVector::new(8);
            let mut rng = kdchoice_prng::Xoshiro256PlusPlus::from_u64(3);
            let mut heights: Vec<u32> = Vec::new();
            for _ in 0..32 {
                if use_dyn {
                    let dyn_p: &mut dyn BallsIntoBins = &mut p;
                    RoundProcess::run_round(dyn_p, &mut state, &mut rng, &mut heights, 32);
                } else {
                    RoundProcess::run_round(&mut p, &mut state, &mut rng, &mut heights, 32);
                }
            }
            (state.loads().to_vec(), heights)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn null_sink_discards_heights() {
        let mut p = OneByOne;
        let mut state = LoadVector::new(4);
        let mut rng = kdchoice_prng::Xoshiro256PlusPlus::from_u64(4);
        let stats = RoundProcess::run_round(&mut p, &mut state, &mut rng, &mut (), 10);
        assert_eq!(stats.placed, 1);
        assert_eq!(state.total_balls(), 1);
    }

    #[test]
    fn round_stats_default_is_zero() {
        let s = RoundStats::default();
        assert_eq!(s.thrown, 0);
        assert_eq!(s.placed, 0);
        assert_eq!(s.probes, 0);
    }
}
