//! The process trait shared by (k,d)-choice and every baseline.

use rand::RngCore;

use crate::state::LoadVector;

/// Statistics reported by one round of an allocation process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Balls *thrown* this round (drives termination: a run ends when the
    /// configured number of balls has been thrown).
    pub thrown: u32,
    /// Balls actually *placed* this round. Less than `thrown` only for
    /// discarding processes such as SA_{x0} (Definition 3).
    pub placed: u32,
    /// Bins probed this round — the paper's message cost (footnote 1).
    pub probes: u64,
}

/// A sequential-round balls-into-bins allocation process.
///
/// Implementations mutate the shared [`LoadVector`] one round at a time;
/// the driver in [`crate::run_once`] owns the loop, the RNG, and the
/// metric accumulation, so that *every* process — (k,d)-choice, the
/// baselines, the serialized variant — is measured identically.
///
/// The trait is object-safe: experiment harnesses store
/// `Box<dyn BallsIntoBins>`.
pub trait BallsIntoBins {
    /// A short human-readable name, e.g. `"(2,3)-choice"` or `"greedy[2]"`.
    fn name(&self) -> String;

    /// Runs one round: samples bins using `rng`, commits balls into `state`,
    /// and pushes the height of every placed ball onto `heights_out`
    /// (heights feed the µ_y histogram, §2.1).
    ///
    /// `heights_out` is cleared by the caller before each round. A process
    /// must throw at least one ball per round (`RoundStats::thrown ≥ 1`),
    /// but may throw fewer than usual on the final partial round.
    ///
    /// `balls_remaining` is the number of balls the driver still wants
    /// thrown; processes with fixed round sizes may use it to truncate the
    /// final round.
    fn run_round(
        &mut self,
        state: &mut LoadVector,
        rng: &mut dyn RngCore,
        heights_out: &mut Vec<u32>,
        balls_remaining: u64,
    ) -> RoundStats;

    /// Resets any per-run internal state (scratch buffers may be kept).
    /// The default implementation does nothing.
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal process used to pin down trait object-safety and the
    /// driver contract.
    struct OneByOne;

    impl BallsIntoBins for OneByOne {
        fn name(&self) -> String {
            "one-by-one".to_string()
        }

        fn run_round(
            &mut self,
            state: &mut LoadVector,
            rng: &mut dyn RngCore,
            heights_out: &mut Vec<u32>,
            _balls_remaining: u64,
        ) -> RoundStats {
            use rand::Rng;
            let bin = rng.gen_range(0..state.n());
            let h = state.add_ball(bin);
            heights_out.push(h);
            RoundStats {
                thrown: 1,
                placed: 1,
                probes: 1,
            }
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn BallsIntoBins> = Box::new(OneByOne);
        assert_eq!(boxed.name(), "one-by-one");
        let mut state = LoadVector::new(4);
        let mut rng = kdchoice_prng::Xoshiro256PlusPlus::from_u64(1);
        let mut heights = Vec::new();
        let stats = boxed.run_round(&mut state, &mut rng, &mut heights, 10);
        assert_eq!(stats.thrown, 1);
        assert_eq!(stats.placed, 1);
        assert_eq!(heights.len(), 1);
        assert_eq!(state.total_balls(), 1);
    }

    #[test]
    fn round_stats_default_is_zero() {
        let s = RoundStats::default();
        assert_eq!(s.thrown, 0);
        assert_eq!(s.placed, 0);
        assert_eq!(s.probes, 0);
    }
}
