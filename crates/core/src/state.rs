//! The bin-state substrate: load vector with histogram-backed queries.

use rand::{Rng, RngCore};

/// One capacity class of a heterogeneous bin set: all bins sharing one
/// capacity value, with their own count-by-load histogram and max load —
/// the structure that keeps capacity-normalized observables cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CapacityClass {
    /// The shared capacity `c` of every bin in this class.
    capacity: u32,
    /// `count_by_load[l]` = bins of this class with load exactly `l`
    /// (same shape and truncation discipline as the global histogram).
    count_by_load: Vec<u64>,
    /// The maximum load within the class.
    max_load: u32,
}

/// The heterogeneous extension of [`LoadVector`]: per-bin capacities plus
/// per-capacity-class histograms. Boxed and optional so the homogeneous
/// case (the paper's model) pays nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Hetero {
    /// `capacity[bin]` = the bin's capacity `c_bin ≥ 1`.
    capacity: Vec<u32>,
    /// `Σ capacity` — the denominator of the average utilization.
    total_capacity: u64,
    /// `class_of[bin]` = index into `classes`.
    class_of: Vec<u32>,
    /// One entry per distinct capacity value, ascending by capacity.
    classes: Vec<CapacityClass>,
}

/// The state of `n` bins: per-bin loads plus a count-by-load histogram that
/// makes the paper's observables cheap:
///
/// * maximum load — O(1);
/// * `ν_y` (number of bins with load ≥ y, the quantity driven through the
///   layered induction of Theorems 4 and 7) — O(max load);
/// * the *rank* of a bin in the sorted order with random tie-breaking —
///   O(max load), needed by the SA_{x0} process of Definition 3.
///
/// The sorted order itself ("bin x = x-th most loaded") is never maintained
/// explicitly; every query that the paper phrases on the sorted vector is
/// answered from the histogram.
///
/// ## Heterogeneous capacities
///
/// [`LoadVector::with_capacities`] attaches a per-bin capacity `c_bin ≥ 1`
/// — the unequal-servers setting of the §1.3 applications. Bins are
/// grouped into **capacity classes** (one per distinct capacity value),
/// each maintaining its own count-by-load histogram and max load with the
/// same O(1)-per-mutation bookkeeping as the global caches, so the
/// normalized observables are cheap too:
///
/// * [`LoadVector::utilization`] — `load_bin / c_bin`;
/// * [`LoadVector::max_utilization`] — `max_bin load_bin / c_bin`, read in
///   O(#distinct capacities) (a handful in any realistic spread);
/// * [`LoadVector::utilization_gap`] — `max utilization − total_balls /
///   total_capacity`, the capacity-normalized analogue of [`LoadVector::gap`]
///   (and equal to it when every capacity is 1).
///
/// Capacities of all 1 construct the exact homogeneous representation, so
/// `with_capacities(&[1; n])` is bit-identical to `new(n)`; the add/remove
/// round-trip identity holds in every case (class histograms truncate
/// empty top levels exactly like the global one).
///
/// ```
/// use kdchoice_core::LoadVector;
///
/// let mut state = LoadVector::new(4);
/// assert_eq!(state.add_ball(2), 1); // returns the ball's height
/// assert_eq!(state.add_ball(2), 2);
/// assert_eq!(state.max_load(), 2);
/// assert_eq!(state.nu(1), 1); // one bin with >= 1 ball... (bin 2 has 2)
/// assert_eq!(state.nu(2), 1);
/// assert_eq!(state.nu(3), 0);
/// assert_eq!(state.total_balls(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadVector {
    loads: Vec<u32>,
    /// `count_by_load[l]` = number of bins with load exactly `l`.
    count_by_load: Vec<u64>,
    max_load: u32,
    total_balls: u64,
    /// Cached `ν_1` (bins with load ≥ 1). The layered-induction
    /// observables hammer `nu(y)` for tiny `y`; keeping the two leading
    /// suffix counts incrementally makes those queries O(1) instead of a
    /// histogram scan.
    nu1: u64,
    /// Cached `ν_2` (bins with load ≥ 2).
    nu2: u64,
    /// Per-bin capacities and capacity-class histograms; `None` for the
    /// homogeneous (all capacities 1) case, which pays nothing.
    hetero: Option<Box<Hetero>>,
}

impl LoadVector {
    /// Creates `n` empty bins.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one bin");
        Self {
            loads: vec![0; n],
            count_by_load: vec![n as u64],
            max_load: 0,
            total_balls: 0,
            nu1: 0,
            nu2: 0,
            hetero: None,
        }
    }

    /// Creates empty bins with the given per-bin capacities — the
    /// heterogeneous-cluster setting (unequal servers, §1.3).
    ///
    /// All capacities 1 is detected and constructs the exact homogeneous
    /// representation (bit-identical to [`LoadVector::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or any capacity is 0.
    pub fn with_capacities(capacities: &[u32]) -> Self {
        assert!(!capacities.is_empty(), "need at least one bin");
        assert!(
            capacities.iter().all(|&c| c > 0),
            "every bin needs capacity >= 1"
        );
        let mut state = Self::new(capacities.len());
        if capacities.iter().all(|&c| c == 1) {
            return state;
        }
        // One class per distinct capacity value, ascending.
        let mut distinct: Vec<u32> = capacities.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut classes: Vec<CapacityClass> = distinct
            .iter()
            .map(|&capacity| CapacityClass {
                capacity,
                count_by_load: vec![0],
                max_load: 0,
            })
            .collect();
        let class_of: Vec<u32> = capacities
            .iter()
            .map(|c| {
                let idx = distinct.binary_search(c).expect("capacity is distinct");
                classes[idx].count_by_load[0] += 1;
                idx as u32
            })
            .collect();
        state.hetero = Some(Box::new(Hetero {
            capacity: capacities.to_vec(),
            total_capacity: capacities.iter().map(|&c| u64::from(c)).sum(),
            class_of,
            classes,
        }));
        state
    }

    /// The number of bins.
    #[inline]
    pub fn n(&self) -> usize {
        self.loads.len()
    }

    /// The load of bin `bin` (0-based *index*, not rank).
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n`.
    #[inline]
    pub fn load(&self, bin: usize) -> u32 {
        self.loads[bin]
    }

    /// Places one ball into bin `bin` and returns the ball's **height**
    /// (the bin's load immediately after placement, as in §2.1).
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n`.
    #[inline]
    pub fn add_ball(&mut self, bin: usize) -> u32 {
        let old = self.loads[bin];
        let new = old + 1;
        self.loads[bin] = new;
        self.count_by_load[old as usize] -= 1;
        if new as usize >= self.count_by_load.len() {
            self.count_by_load.push(0);
        }
        self.count_by_load[new as usize] += 1;
        if new > self.max_load {
            self.max_load = new;
        }
        self.total_balls += 1;
        // Keep the ν_1/ν_2 suffix counts current (branchless increments).
        self.nu1 += u64::from(new == 1);
        self.nu2 += u64::from(new == 2);
        if let Some(h) = &mut self.hetero {
            let class = &mut h.classes[h.class_of[bin] as usize];
            class.count_by_load[old as usize] -= 1;
            if new as usize >= class.count_by_load.len() {
                class.count_by_load.push(0);
            }
            class.count_by_load[new as usize] += 1;
            if new > class.max_load {
                class.max_load = new;
            }
        }
        new
    }

    /// Removes one ball from bin `bin` and returns the removed ball's
    /// **height** (the bin's load immediately before removal).
    ///
    /// This is the departure primitive of the §7 infinite/dynamic process
    /// and of the service layer's release requests; all cached observables
    /// (`count_by_load`, `max_load`, `ν_1`, `ν_2`, `total_balls`) are
    /// maintained in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n` or the bin is empty.
    #[inline]
    pub fn remove_ball(&mut self, bin: usize) -> u32 {
        let old = self.loads[bin];
        assert!(old > 0, "cannot remove a ball from empty bin {bin}");
        let new = old - 1;
        self.loads[bin] = new;
        self.count_by_load[old as usize] -= 1;
        self.count_by_load[new as usize] += 1;
        self.total_balls -= 1;
        // If the last bin at the maximum emptied a level, the new maximum
        // is exactly `old - 1`: every other bin was ≤ old, the ones at
        // `old` are gone, and this bin now sits at `old - 1`.
        if old == self.max_load && self.count_by_load[old as usize] == 0 {
            self.max_load = new;
            // Drop the now-empty top level so that add-then-remove is a
            // bit-exact identity (the shape equality the 1-shard/-
            // `LoadVector` equivalence tests rely on).
            self.count_by_load.truncate(old as usize);
        }
        self.nu1 -= u64::from(old == 1);
        self.nu2 -= u64::from(old == 2);
        if let Some(h) = &mut self.hetero {
            let class = &mut h.classes[h.class_of[bin] as usize];
            class.count_by_load[old as usize] -= 1;
            class.count_by_load[new as usize] += 1;
            // Same top-level discipline as the global histogram: truncate
            // the emptied level so add-then-remove round-trips bit-exactly.
            if old == class.max_load && class.count_by_load[old as usize] == 0 {
                class.max_load = new;
                class.count_by_load.truncate(old as usize);
            }
        }
        old
    }

    /// The current maximum load.
    #[inline]
    pub fn max_load(&self) -> u32 {
        self.max_load
    }

    /// The total number of balls placed so far.
    #[inline]
    pub fn total_balls(&self) -> u64 {
        self.total_balls
    }

    /// The average load `total_balls / n`.
    pub fn average_load(&self) -> f64 {
        self.total_balls as f64 / self.n() as f64
    }

    /// The gap `max load − average load`, the quantity bounded by the
    /// heavily-loaded-case results (Theorem 2).
    pub fn gap(&self) -> f64 {
        self.max_load as f64 - self.average_load()
    }

    /// The capacity of `bin` (1 for homogeneous state).
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n`.
    #[inline]
    pub fn capacity(&self, bin: usize) -> u32 {
        assert!(bin < self.loads.len(), "bin {bin} out of range");
        self.hetero.as_ref().map_or(1, |h| h.capacity[bin])
    }

    /// The total capacity `Σ c_bin` (`n` for homogeneous state).
    #[inline]
    pub fn total_capacity(&self) -> u64 {
        self.hetero
            .as_ref()
            .map_or(self.loads.len() as u64, |h| h.total_capacity)
    }

    /// Whether any bin has capacity ≠ 1.
    #[inline]
    pub fn is_heterogeneous(&self) -> bool {
        self.hetero.is_some()
    }

    /// The per-bin capacities, or `None` for homogeneous state.
    pub fn capacities(&self) -> Option<&[u32]> {
        self.hetero.as_ref().map(|h| h.capacity.as_slice())
    }

    /// The **normalized load** (utilization) of `bin`: `load_bin / c_bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n`.
    #[inline]
    pub fn utilization(&self, bin: usize) -> f64 {
        f64::from(self.loads[bin]) / f64::from(self.capacity(bin))
    }

    /// The maximum utilization `max_bin load_bin / c_bin` — the
    /// heterogeneous analogue of [`LoadVector::max_load`].
    ///
    /// Answered from the per-capacity-class max loads: O(#distinct
    /// capacities) per query, O(1) maintenance per mutation. Equals
    /// `max_load` when every capacity is 1.
    pub fn max_utilization(&self) -> f64 {
        match &self.hetero {
            None => f64::from(self.max_load),
            Some(h) => h
                .classes
                .iter()
                .map(|c| f64::from(c.max_load) / f64::from(c.capacity))
                .fold(0.0, f64::max),
        }
    }

    /// The average utilization `total_balls / total_capacity`.
    pub fn average_utilization(&self) -> f64 {
        self.total_balls as f64 / self.total_capacity() as f64
    }

    /// The **capacity-normalized gap** `max utilization − average
    /// utilization` — the heterogeneous analogue of [`LoadVector::gap`]
    /// (equal to it when every capacity is 1), and the balance statistic
    /// the `hetero` scenario reports.
    pub fn utilization_gap(&self) -> f64 {
        self.max_utilization() - self.average_utilization()
    }

    /// The resident bytes of the per-bin tables: the 4-byte load array,
    /// plus (for heterogeneous state) the 4-byte capacity and 4-byte
    /// class-index tables — 4 B/bin homogeneous, 12 B/bin heterogeneous.
    /// The histograms are O(max load + #classes), not O(n), and excluded.
    /// This is the number the `gap_vs_bytes` memory accounting charges
    /// for an exact store or side-table.
    pub fn store_bytes(&self) -> u64 {
        let loads = self.loads.len() as u64 * 4;
        match &self.hetero {
            None => loads,
            // capacity: Vec<u32> + class_of: Vec<u32> on top of loads.
            Some(_) => loads * 3,
        }
    }

    /// `ν_y`: the number of bins with load at least `y`.
    ///
    /// `y ≤ 2` — the values driven through the layered induction of
    /// Theorems 4 and 7 — is answered from cached counters in O(1); larger
    /// `y` falls back to the histogram suffix sum.
    #[inline]
    pub fn nu(&self, y: u32) -> u64 {
        match y {
            0 => self.loads.len() as u64,
            1 => self.nu1,
            2 => self.nu2,
            _ => {
                let from = (y as usize).min(self.count_by_load.len());
                self.count_by_load[from..].iter().sum()
            }
        }
    }

    /// The count-by-load histogram, indexed by load value. Entry `l` is the
    /// number of bins holding exactly `l` balls. Trailing entries may be 0.
    pub fn load_histogram(&self) -> &[u64] {
        &self.count_by_load
    }

    /// A borrowed view of per-bin loads (by bin index).
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// The loads sorted in descending order — the paper's sorted load vector
    /// `(B₁, B₂, …, Bₙ)` with `B₁` the most loaded.
    pub fn sorted_descending(&self) -> Vec<u32> {
        let mut v = self.loads.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// The **rank** of `bin` in the descending sorted order (1-based: the
    /// most loaded bin has rank 1), with ties broken uniformly at random —
    /// exactly the "bin x" convention of §2.1. Needed by the SA_{x0} process
    /// (Definition 3), which discards balls landing in the top `x₀` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n`.
    #[inline]
    pub fn rank_of<R: RngCore + ?Sized>(&self, bin: usize, rng: &mut R) -> usize {
        let l = self.loads[bin];
        // Bins with a strictly greater load all rank above `bin`.
        let greater: u64 = self.count_by_load[(l as usize + 1)..].iter().sum();
        let ties = self.count_by_load[l as usize];
        debug_assert!(ties >= 1);
        let offset = if ties == 1 { 0 } else { rng.gen_range(0..ties) };
        greater as usize + 1 + offset as usize
    }

    /// Verifies the internal invariants (histogram consistency, max load,
    /// ball conservation). Intended for tests and debug assertions; O(n).
    pub fn check_invariants(&self) -> bool {
        let n = self.loads.len();
        let mut hist = vec![0u64; self.count_by_load.len()];
        let mut total = 0u64;
        let mut max = 0u32;
        for &l in &self.loads {
            if (l as usize) >= hist.len() {
                return false;
            }
            hist[l as usize] += 1;
            total += u64::from(l);
            max = max.max(l);
        }
        let ge1: u64 = hist[1..].iter().sum();
        let ge2: u64 = hist.get(2..).map(|t| t.iter().sum()).unwrap_or(0);
        let hetero_ok = match &self.hetero {
            None => true,
            Some(h) => {
                let mut ok = h.capacity.len() == n
                    && h.class_of.len() == n
                    && h.total_capacity == h.capacity.iter().map(|&c| u64::from(c)).sum::<u64>();
                for (idx, class) in h.classes.iter().enumerate() {
                    let mut class_hist = vec![0u64; class.count_by_load.len()];
                    let mut class_max = 0u32;
                    for bin in 0..n {
                        if h.class_of[bin] as usize != idx {
                            continue;
                        }
                        ok &= h.capacity[bin] == class.capacity;
                        let l = self.loads[bin] as usize;
                        if l >= class_hist.len() {
                            ok = false;
                            continue;
                        }
                        class_hist[l] += 1;
                        class_max = class_max.max(self.loads[bin]);
                    }
                    ok &= class_hist == class.count_by_load && class_max == class.max_load;
                }
                ok
            }
        };
        hist == self.count_by_load
            && total == self.total_balls
            && max == self.max_load
            && self.count_by_load.iter().sum::<u64>() == n as u64
            && ge1 == self.nu1
            && ge2 == self.nu2
            && hetero_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_prng::Xoshiro256PlusPlus;

    #[test]
    fn new_state_is_empty() {
        let s = LoadVector::new(5);
        assert_eq!(s.n(), 5);
        assert_eq!(s.max_load(), 0);
        assert_eq!(s.total_balls(), 0);
        assert_eq!(s.nu(0), 5);
        assert_eq!(s.nu(1), 0);
        assert_eq!(s.gap(), 0.0);
        assert!(s.check_invariants());
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = LoadVector::new(0);
    }

    #[test]
    fn add_ball_returns_heights_in_order() {
        let mut s = LoadVector::new(3);
        assert_eq!(s.add_ball(0), 1);
        assert_eq!(s.add_ball(0), 2);
        assert_eq!(s.add_ball(0), 3);
        assert_eq!(s.add_ball(1), 1);
        assert_eq!(s.max_load(), 3);
        assert_eq!(s.total_balls(), 4);
        assert!(s.check_invariants());
    }

    #[test]
    fn nu_suffix_counts() {
        let mut s = LoadVector::new(4);
        // loads: [2, 1, 0, 0]
        s.add_ball(0);
        s.add_ball(0);
        s.add_ball(1);
        assert_eq!(s.nu(0), 4);
        assert_eq!(s.nu(1), 2);
        assert_eq!(s.nu(2), 1);
        assert_eq!(s.nu(3), 0);
        assert_eq!(s.nu(100), 0);
    }

    #[test]
    fn sorted_descending_matches() {
        let mut s = LoadVector::new(4);
        s.add_ball(3);
        s.add_ball(3);
        s.add_ball(1);
        assert_eq!(s.sorted_descending(), vec![2, 1, 0, 0]);
    }

    #[test]
    fn gap_tracks_average() {
        let mut s = LoadVector::new(2);
        s.add_ball(0);
        s.add_ball(0);
        // loads [2,0]: avg 1, max 2, gap 1.
        assert_eq!(s.gap(), 1.0);
        assert_eq!(s.average_load(), 1.0);
    }

    #[test]
    fn rank_of_unique_loads() {
        let mut s = LoadVector::new(3);
        s.add_ball(1); // loads [0,1,0]
        s.add_ball(1); // loads [0,2,0]
        s.add_ball(2); // loads [0,2,1]
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        assert_eq!(s.rank_of(1, &mut rng), 1);
        assert_eq!(s.rank_of(2, &mut rng), 2);
        assert_eq!(s.rank_of(0, &mut rng), 3);
    }

    #[test]
    fn rank_of_ties_is_uniform_over_tie_range() {
        // loads [1,1,0]: bins 0 and 1 tie for ranks {1,2}; bin 2 has rank 3.
        let mut s = LoadVector::new(3);
        s.add_ball(0);
        s.add_ball(1);
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        let mut counts = [0u32; 4];
        let trials = 8000;
        for _ in 0..trials {
            counts[s.rank_of(0, &mut rng)] += 1;
        }
        assert_eq!(counts[3], 0);
        let f1 = counts[1] as f64 / trials as f64;
        let f2 = counts[2] as f64 / trials as f64;
        assert!((f1 - 0.5).abs() < 0.05, "rank-1 frequency {f1}");
        assert!((f2 - 0.5).abs() < 0.05, "rank-2 frequency {f2}");
        assert_eq!(s.rank_of(2, &mut rng), 3);
    }

    #[test]
    fn histogram_grows_with_load() {
        let mut s = LoadVector::new(1);
        for i in 1..=10 {
            assert_eq!(s.add_ball(0), i);
        }
        assert_eq!(s.load_histogram()[10], 1);
        assert_eq!(s.nu(10), 1);
        assert!(s.check_invariants());
    }

    #[test]
    fn remove_ball_returns_height_and_restores_state() {
        let mut s = LoadVector::new(3);
        s.add_ball(0);
        s.add_ball(0);
        s.add_ball(1);
        let snapshot = s.clone();
        assert_eq!(s.add_ball(0), 3);
        assert_eq!(s.remove_ball(0), 3);
        assert_eq!(s, snapshot, "add then remove must round-trip exactly");
        assert!(s.check_invariants());
    }

    #[test]
    fn remove_ball_decrements_max_load_only_when_level_empties() {
        let mut s = LoadVector::new(3);
        // loads [2, 2, 0]: two bins at the max.
        s.add_ball(0);
        s.add_ball(0);
        s.add_ball(1);
        s.add_ball(1);
        assert_eq!(s.max_load(), 2);
        assert_eq!(s.remove_ball(0), 2); // a max-load peer survives
        assert_eq!(s.max_load(), 2);
        assert_eq!(s.remove_ball(1), 2); // last bin at the max
        assert_eq!(s.max_load(), 1);
        assert!(s.check_invariants());
    }

    #[test]
    fn remove_ball_from_tall_bin_drops_max_by_exactly_one() {
        // loads [5, 1]: the gap below the max is empty levels 2..=4, but a
        // single removal can only land at height max-1.
        let mut s = LoadVector::new(2);
        for _ in 0..5 {
            s.add_ball(0);
        }
        s.add_ball(1);
        assert_eq!(s.remove_ball(0), 5);
        assert_eq!(s.max_load(), 4);
        assert!(s.check_invariants());
    }

    #[test]
    fn remove_ball_maintains_nu_caches() {
        let mut s = LoadVector::new(4);
        // loads [2, 1, 0, 0]: nu1 = 2, nu2 = 1.
        s.add_ball(0);
        s.add_ball(0);
        s.add_ball(1);
        assert_eq!((s.nu(1), s.nu(2)), (2, 1));
        s.remove_ball(0); // 2 -> 1: nu2 drops, nu1 unchanged
        assert_eq!((s.nu(1), s.nu(2)), (2, 0));
        s.remove_ball(0); // 1 -> 0: nu1 drops
        assert_eq!((s.nu(1), s.nu(2)), (1, 0));
        s.remove_ball(1); // last ball out
        assert_eq!((s.nu(1), s.nu(2)), (0, 0));
        assert_eq!(s.total_balls(), 0);
        assert_eq!(s.max_load(), 0);
        assert!(s.check_invariants());
    }

    #[test]
    #[should_panic(expected = "empty bin")]
    fn remove_ball_from_empty_bin_panics() {
        let mut s = LoadVector::new(2);
        s.add_ball(0);
        let _ = s.remove_ball(1);
    }

    #[test]
    fn add_remove_churn_keeps_invariants() {
        let mut s = LoadVector::new(32);
        let mut rng = Xoshiro256PlusPlus::from_u64(9);
        use rand::Rng;
        let mut live: Vec<usize> = Vec::new();
        for step in 0..20_000 {
            if live.is_empty() || rng.gen_bool(0.6) {
                let b = rng.gen_range(0..32);
                s.add_ball(b);
                live.push(b);
            } else {
                let i = rng.gen_range(0..live.len());
                let b = live.swap_remove(i);
                s.remove_ball(b);
            }
            if step % 4096 == 0 {
                assert!(s.check_invariants(), "corrupted at step {step}");
            }
        }
        assert_eq!(s.total_balls(), live.len() as u64);
        assert!(s.check_invariants());
    }

    #[test]
    fn unit_capacities_are_bit_identical_to_new() {
        let a = LoadVector::new(7);
        let b = LoadVector::with_capacities(&[1; 7]);
        assert_eq!(a, b);
        assert!(!b.is_heterogeneous());
        assert_eq!(b.capacity(3), 1);
        assert_eq!(b.total_capacity(), 7);
        assert!(b.capacities().is_none());
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        let _ = LoadVector::with_capacities(&[2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn empty_capacities_rejected() {
        let _ = LoadVector::with_capacities(&[]);
    }

    #[test]
    fn utilization_observables_track_capacities() {
        // Two-tier: bin 0 is a 4× server.
        let mut s = LoadVector::with_capacities(&[4, 1, 1, 1]);
        assert!(s.is_heterogeneous());
        assert_eq!(s.capacity(0), 4);
        assert_eq!(s.total_capacity(), 7);
        assert_eq!(s.capacities(), Some(&[4, 1, 1, 1][..]));
        assert_eq!(s.max_utilization(), 0.0);

        for _ in 0..4 {
            s.add_ball(0);
        }
        // Bin 0 is at load 4 but utilization 1.0.
        assert_eq!(s.max_load(), 4);
        assert_eq!(s.utilization(0), 1.0);
        assert_eq!(s.max_utilization(), 1.0);
        s.add_ball(1);
        s.add_ball(1);
        // Bin 1 (capacity 1, load 2) now dominates utilization.
        assert_eq!(s.max_utilization(), 2.0);
        assert!((s.average_utilization() - 6.0 / 7.0).abs() < 1e-12);
        assert!((s.utilization_gap() - (2.0 - 6.0 / 7.0)).abs() < 1e-12);
        assert!(s.check_invariants());
    }

    #[test]
    fn homogeneous_utilization_gap_equals_gap() {
        let mut s = LoadVector::new(4);
        s.add_ball(2);
        s.add_ball(2);
        s.add_ball(0);
        assert_eq!(s.max_utilization(), f64::from(s.max_load()));
        assert!((s.utilization_gap() - s.gap()).abs() < 1e-12);
    }

    #[test]
    fn capacity_add_remove_round_trips_exactly() {
        let mut s = LoadVector::with_capacities(&[1, 10, 3, 10, 1]);
        s.add_ball(1);
        s.add_ball(3);
        s.add_ball(3);
        let snapshot = s.clone();
        s.add_ball(3);
        s.add_ball(0);
        assert_eq!(s.remove_ball(0), 1);
        assert_eq!(s.remove_ball(3), 3);
        assert_eq!(s, snapshot, "add then remove must round-trip exactly");
        assert!(s.check_invariants());
    }

    #[test]
    fn capacity_churn_keeps_class_invariants() {
        use rand::Rng;
        let caps: Vec<u32> = (0..24).map(|i| if i % 8 == 0 { 10 } else { 1 }).collect();
        let mut s = LoadVector::with_capacities(&caps);
        let mut rng = Xoshiro256PlusPlus::from_u64(12);
        let mut live: Vec<usize> = Vec::new();
        for step in 0..10_000 {
            if live.is_empty() || rng.gen_bool(0.6) {
                let b = rng.gen_range(0..24);
                s.add_ball(b);
                live.push(b);
            } else {
                let i = rng.gen_range(0..live.len());
                let b = live.swap_remove(i);
                s.remove_ball(b);
            }
            if step % 2048 == 0 {
                assert!(s.check_invariants(), "corrupted at step {step}");
                // Brute-force max utilization cross-check.
                let want = (0..24)
                    .map(|b| f64::from(s.load(b)) / f64::from(caps[b]))
                    .fold(0.0, f64::max);
                assert!((s.max_utilization() - want).abs() < 1e-12);
            }
        }
        assert!(s.check_invariants());
    }

    #[test]
    fn invariants_catch_no_corruption_after_many_ops() {
        let mut s = LoadVector::new(64);
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        use rand::Rng;
        for _ in 0..10_000 {
            let b = rng.gen_range(0..64);
            s.add_ball(b);
        }
        assert!(s.check_invariants());
        assert_eq!(s.total_balls(), 10_000);
        assert_eq!(s.nu(0), 64);
    }
}
