//! Trajectory tracing: observe the maximum load and gap *during* a run.
//!
//! Theorem 2 is a statement about the end state, but its proof (§5.2)
//! partitions the process into round intervals R_i and tracks ν_y(R_i)
//! through time — and the interesting empirical phenomenon in the heavily
//! loaded case is the *trajectory*: (k,d)-choice's gap plateaus while single
//! choice's diverges. [`run_with_trace`] records checkpoints along the way.

use kdchoice_prng::Xoshiro256PlusPlus;

use crate::driver::RunConfig;
use crate::process::RoundProcess;
use crate::state::LoadVector;

/// One trajectory checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TracePoint {
    /// Balls thrown so far.
    pub balls: u64,
    /// Maximum load at this point.
    pub max_load: u32,
    /// `max_load − balls_placed/n`.
    pub gap: f64,
    /// Number of bins with load ≥ ⌈average⌉ + 1 (the "overloaded" count).
    pub overloaded_bins: u64,
}

/// Runs `process` like [`crate::run_once`], additionally recording a
/// [`TracePoint`] whenever the thrown-ball count crosses a checkpoint.
///
/// Checkpoints must be strictly increasing; values beyond `config.balls`
/// are ignored. The final state is always recorded as the last point.
///
/// # Panics
///
/// Panics if `checkpoints` is not strictly increasing, or if the process
/// stalls (see [`crate::run_once`]).
///
/// ```
/// use kdchoice_core::{run_with_trace, KdChoice, RunConfig};
///
/// # fn main() -> Result<(), kdchoice_core::ConfigError> {
/// let mut p = KdChoice::new(2, 4)?;
/// let cfg = RunConfig::new(256, 1).with_balls(1024);
/// let trace = run_with_trace(&mut p, &cfg, &[256, 512, 768]);
/// assert_eq!(trace.len(), 4); // 3 checkpoints + final state
/// assert_eq!(trace.last().unwrap().balls, 1024);
/// # Ok(())
/// # }
/// ```
pub fn run_with_trace<P: RoundProcess + ?Sized>(
    process: &mut P,
    config: &RunConfig,
    checkpoints: &[u64],
) -> Vec<TracePoint> {
    assert!(
        checkpoints.windows(2).all(|w| w[0] < w[1]),
        "checkpoints must be strictly increasing"
    );
    process.reset();
    let mut state = LoadVector::new(config.n);
    let mut rng = Xoshiro256PlusPlus::from_u64(config.seed);
    let mut thrown = 0u64;
    let mut trace: Vec<TracePoint> = Vec::with_capacity(checkpoints.len() + 1);
    let mut next_checkpoint = 0usize;
    while thrown < config.balls {
        // Tracing only observes the bin state; heights go to the null sink.
        let stats = process.run_round(&mut state, &mut rng, &mut (), config.balls - thrown);
        assert!(stats.thrown > 0, "process made no progress in a round");
        thrown += u64::from(stats.thrown);
        while next_checkpoint < checkpoints.len()
            && thrown >= checkpoints[next_checkpoint]
            && checkpoints[next_checkpoint] <= config.balls
        {
            trace.push(snapshot(&state, thrown));
            next_checkpoint += 1;
        }
        // Skip checkpoints beyond the budget.
        while next_checkpoint < checkpoints.len() && checkpoints[next_checkpoint] > config.balls {
            next_checkpoint += 1;
        }
    }
    match trace.last() {
        Some(last) if last.balls == thrown => {}
        _ => trace.push(snapshot(&state, thrown)),
    }
    trace
}

fn snapshot(state: &LoadVector, thrown: u64) -> TracePoint {
    let avg_ceil = (state.total_balls() as f64 / state.n() as f64).ceil() as u32;
    TracePoint {
        balls: thrown,
        max_load: state.max_load(),
        gap: state.gap(),
        overloaded_bins: state.nu(avg_ceil + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kd::KdChoice;

    #[test]
    fn trace_records_monotone_ball_counts() {
        let mut p = KdChoice::new(2, 4).unwrap();
        let cfg = RunConfig::new(128, 3).with_balls(1280);
        let trace = run_with_trace(&mut p, &cfg, &[128, 640, 1000]);
        assert_eq!(trace.len(), 4);
        for w in trace.windows(2) {
            assert!(w[0].balls < w[1].balls);
            assert!(w[0].max_load <= w[1].max_load, "max load is monotone");
        }
        assert_eq!(trace.last().unwrap().balls, 1280);
    }

    #[test]
    fn checkpoint_beyond_budget_is_ignored() {
        let mut p = KdChoice::new(1, 2).unwrap();
        let cfg = RunConfig::new(64, 4);
        let trace = run_with_trace(&mut p, &cfg, &[32, 1_000_000]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].balls, 32);
        assert_eq!(trace[1].balls, 64);
    }

    #[test]
    fn empty_checkpoints_yield_final_only() {
        let mut p = KdChoice::new(1, 2).unwrap();
        let cfg = RunConfig::new(64, 5);
        let trace = run_with_trace(&mut p, &cfg, &[]);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].balls, 64);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_checkpoints_rejected() {
        let mut p = KdChoice::new(1, 2).unwrap();
        let cfg = RunConfig::new(64, 6);
        let _ = run_with_trace(&mut p, &cfg, &[10, 10]);
    }

    #[test]
    fn trace_matches_run_once_final_state() {
        let mut p1 = KdChoice::new(2, 3).unwrap();
        let mut p2 = KdChoice::new(2, 3).unwrap();
        let cfg = RunConfig::new(256, 7);
        let trace = run_with_trace(&mut p1, &cfg, &[64, 128]);
        let result = crate::driver::run_once(&mut p2, &cfg);
        let last = trace.last().unwrap();
        assert_eq!(last.max_load, result.max_load);
        assert!((last.gap - result.gap).abs() < 1e-12);
    }

    #[test]
    fn heavy_trace_gap_stays_bounded_for_d_2k() {
        let mut p = KdChoice::new(2, 4).unwrap();
        let n = 512usize;
        let cfg = RunConfig::new(n, 8).with_balls(32 * n as u64);
        let cps: Vec<u64> = (1..=31).map(|i| i * n as u64).collect();
        let trace = run_with_trace(&mut p, &cfg, &cps);
        for pt in &trace {
            assert!(
                pt.gap <= 6.0,
                "gap {} too large at {} balls",
                pt.gap,
                pt.balls
            );
        }
    }
}
