//! Relaxed-read load views and the shared (k,d)-choice decision kernel.
//!
//! The shared-nothing service backend (`kdchoice-service`) decides
//! placements against **stale** per-bin load information: each shard's
//! owner thread periodically publishes its loads into a
//! [`SharedLoadSnapshot`], and probing threads read those counters with
//! `Relaxed` atomics instead of taking cross-shard locks. That is
//! exactly the regime the 1-2-3-Toolkit line of work analyzes (choices
//! acting on outdated load values), and Park's Theorem 2 envelope is the
//! yardstick the staleness sweep asserts against.
//!
//! [`LoadView`] names the one capability the decision step needs — "what
//! is bin `b`'s load, as far as you know?" — so the same kernel,
//! [`decide_k_least`], serves both the exact path (a [`LoadVector`]
//! behind a lock) and the relaxed path (a snapshot refreshed every `R`
//! commits). When the view is exact, the kernel is **bit-identical** to
//! the lock-striped `ShardedStore::place_k_least` decision: same probe
//! sort, same tentative-slot expansion under the multiplicity rule, same
//! one-tie-key-per-slot RNG consumption, same `select_nth` pivot, same
//! winner order. The cross-backend equivalence proptests in
//! `kdchoice-service` lock that claim.

use std::sync::atomic::{AtomicU32, Ordering};

use rand::RngCore;

use crate::state::LoadVector;

/// Issues a best-effort read prefetch for the cache line holding `*ptr`.
///
/// A pure performance hint: on x86_64 it lowers to `prefetcht0`, which
/// has no memory-safety obligations (the address need not even be
/// mapped); on other targets it is a no-op. This is the crate's single
/// `unsafe` carve-out — the pointer is always derived from a live
/// reference at the call sites.
#[inline(always)]
#[allow(unsafe_code)]
pub(crate) fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint; it cannot fault or write.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr.cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

/// A read-only view of per-bin loads, possibly stale.
///
/// Implementations promise only that `view_load(bin)` is *some*
/// previously published load of `bin` — an exact view ([`LoadVector`])
/// returns the current load, a [`SharedLoadSnapshot`] returns the load
/// as of the owner's last refresh.
pub trait LoadView {
    /// The number of bins visible through this view.
    fn view_n(&self) -> usize;

    /// The (possibly stale) load of `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= view_n()`.
    fn view_load(&self, bin: usize) -> u32;

    /// Hints that `view_load(bin)` is about to be read. Implementations
    /// with a dense backing array prefetch the bin's cache line; the
    /// default is a no-op. Purely advisory — never observable in
    /// results.
    #[inline]
    fn prefetch(&self, bin: usize) {
        let _ = bin;
    }
}

impl LoadView for LoadVector {
    #[inline]
    fn view_n(&self) -> usize {
        self.n()
    }

    #[inline]
    fn view_load(&self, bin: usize) -> u32 {
        self.load(bin)
    }

    #[inline]
    fn prefetch(&self, bin: usize) {
        prefetch_read(&self.loads()[bin]);
    }
}

/// A lock-free array of published per-bin loads.
///
/// One `AtomicU32` per bin, read and written with `Relaxed` ordering:
/// the snapshot carries no synchronization obligations of its own — each
/// counter is an independent monotonically-published value, and the
/// decision kernel tolerates any interleaving of per-bin staleness (that
/// tolerance is the *measured* claim of the staleness-vs-gap sweep, not
/// an assumption).
///
/// Writers are the shard owners (each bin has exactly one writer in the
/// shared-nothing engine); readers are every probing thread.
#[derive(Debug)]
pub struct SharedLoadSnapshot {
    loads: Vec<AtomicU32>,
}

impl SharedLoadSnapshot {
    /// Creates an all-zero snapshot over `n` bins.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "snapshot needs at least one bin");
        Self {
            loads: (0..n).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// The number of bins.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// Whether the snapshot has zero bins (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Reads the published load of `bin` (`Relaxed`).
    #[inline]
    pub fn get(&self, bin: usize) -> u32 {
        self.loads[bin].load(Ordering::Relaxed)
    }

    /// Publishes `load` as the load of `bin` (`Relaxed`). Only the bin's
    /// owner may call this in the shared-nothing engine.
    #[inline]
    pub fn set(&self, bin: usize, load: u32) {
        self.loads[bin].store(load, Ordering::Relaxed);
    }

    /// Atomically replaces `bin`'s load with `new` iff it still equals
    /// `current` (`AcqRel` on success, `Acquire` on failure).
    ///
    /// This is the commit point of the lock-free CAS-bins backend: a
    /// placement that read `current` during its decide phase commits by
    /// swapping in `current + multiplicity`, and a failure returns the
    /// interfering value (inside `Err`) so the caller can re-probe. The
    /// success ordering is `AcqRel` so a thread that later observes the
    /// new count also observes everything the committer did before it.
    #[inline]
    pub fn compare_exchange(&self, bin: usize, current: u32, new: u32) -> Result<u32, u32> {
        self.loads[bin].compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// Atomically adds `delta` to `bin`'s load (`AcqRel`), returning the
    /// previous value. The lock-free backend's bounded-retry fallback:
    /// after too many lost races it commits unconditionally at whatever
    /// the current count is.
    #[inline]
    pub fn fetch_add(&self, bin: usize, delta: u32) -> u32 {
        self.loads[bin].fetch_add(delta, Ordering::AcqRel)
    }

    /// Atomically subtracts `delta` from `bin`'s load (`AcqRel`),
    /// returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if the previous value was less than `delta` — a counter
    /// must never go negative, so an underflow here means a double
    /// release or a rollback of balls that were never committed, and it
    /// is reported instead of silently wrapping.
    #[inline]
    pub fn fetch_sub(&self, bin: usize, delta: u32) -> u32 {
        let prev = self.loads[bin].fetch_sub(delta, Ordering::AcqRel);
        assert!(
            prev >= delta,
            "bin {bin} load underflow: subtracted {delta} from {prev}"
        );
        prev
    }
}

impl LoadView for SharedLoadSnapshot {
    #[inline]
    fn view_n(&self) -> usize {
        self.len()
    }

    #[inline]
    fn view_load(&self, bin: usize) -> u32 {
        self.get(bin)
    }

    #[inline]
    fn prefetch(&self, bin: usize) {
        prefetch_read(&self.loads[bin]);
    }
}

/// The (k,d)-choice decision kernel over any [`LoadView`]: given the
/// probed bins, pick the `k` tentative slots of least `(height, tie
/// key)` under the paper's multiplicity rule.
///
/// `sorted_probes` **must already be sorted ascending** (duplicates
/// allowed — a bin probed `m` times contributes tentative slots at
/// heights `L+1..=L+m`). One `rng.next_u64()` tie key is drawn per
/// tentative slot in sorted-probe order, exactly like
/// `ShardedStore::place_k_least`, so a caller replaying the same RNG
/// stream against an exact view reproduces the locked path bit for bit.
///
/// Winner bins are appended to `bins_out` in selection order; the return
/// value is the maximum tentative height among the winners (equal to the
/// committed maximum height when the view is exact, a snapshot-tentative
/// estimate otherwise). `slots` is caller-provided scratch, cleared on
/// entry.
///
/// # Panics
///
/// Panics if `k == 0` or `k > sorted_probes.len()`.
pub fn decide_k_least<V, R>(
    view: &V,
    sorted_probes: &[usize],
    k: usize,
    rng: &mut R,
    slots: &mut Vec<(u32, u64, usize)>,
    bins_out: &mut Vec<usize>,
) -> u32
where
    V: LoadView + ?Sized,
    R: RngCore + ?Sized,
{
    assert!(
        k >= 1 && k <= sorted_probes.len(),
        "need 1 <= k <= d tentative slots (k={k}, d={})",
        sorted_probes.len()
    );
    slots.clear();
    // Issue the whole batch's prefetches before the first load read:
    // the expansion loop's cache misses then resolve in parallel
    // (memory-level parallelism) instead of serially in probe order.
    // Prefetching consumes no RNG, so the decision stream is unchanged.
    for &bin in sorted_probes {
        view.prefetch(bin);
    }
    let mut i = 0;
    while i < sorted_probes.len() {
        let bin = sorted_probes[i];
        let base = view.view_load(bin);
        let mut occ = 0u32;
        while i < sorted_probes.len() && sorted_probes[i] == bin {
            occ += 1;
            slots.push((base + occ, rng.next_u64(), bin));
            i += 1;
        }
    }
    if k < slots.len() {
        slots.select_nth_unstable_by(k - 1, |a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    }
    let mut max_height = 0;
    for &(height, _, bin) in &slots[..k] {
        max_height = max_height.max(height);
        bins_out.push(bin);
    }
    max_height
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_prng::Xoshiro256PlusPlus;

    #[test]
    fn snapshot_reads_back_published_loads() {
        let snapshot = SharedLoadSnapshot::new(8);
        assert_eq!(snapshot.len(), 8);
        assert!(!snapshot.is_empty());
        for bin in 0..8 {
            assert_eq!(snapshot.get(bin), 0);
        }
        snapshot.set(3, 7);
        snapshot.set(0, 2);
        assert_eq!(snapshot.get(3), 7);
        assert_eq!(snapshot.get(0), 2);
        assert_eq!(snapshot.view_load(3), 7);
        assert_eq!(snapshot.view_n(), 8);
    }

    /// The kernel against an exact `LoadVector` view consumes the RNG
    /// and picks winners exactly like the reference expansion used by
    /// the service-layer equivalence tests.
    #[test]
    fn kernel_matches_reference_expansion_on_exact_view() {
        let mut state = LoadVector::new(6);
        state.add_ball(2);
        state.add_ball(2);
        state.add_ball(4);

        let probes = {
            let mut p = vec![4, 2, 2, 0, 5];
            p.sort_unstable();
            p
        };
        let (mut slots, mut bins) = (Vec::new(), Vec::new());
        let mut rng = Xoshiro256PlusPlus::from_u64(9);
        let max = decide_k_least(&state, &probes, 2, &mut rng, &mut slots, &mut bins);

        // Reference: expand tentative slots with an identically-seeded RNG.
        let mut rng_ref = Xoshiro256PlusPlus::from_u64(9);
        let mut expected: Vec<(u32, u64, usize)> = Vec::new();
        let mut i = 0;
        while i < probes.len() {
            let bin = probes[i];
            let base = state.load(bin);
            let mut occ = 0;
            while i < probes.len() && probes[i] == bin {
                occ += 1;
                expected.push((base + occ, rng_ref.next_u64(), bin));
                i += 1;
            }
        }
        expected.select_nth_unstable_by(1, |a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        let expected_bins: Vec<usize> = expected[..2].iter().map(|s| s.2).collect();
        let expected_max = expected[..2].iter().map(|s| s.0).max().unwrap();
        assert_eq!(bins, expected_bins);
        assert_eq!(max, expected_max);
    }

    /// A stale view changes the decision, not the mechanics: winners
    /// still come from the probed set and heights reflect the snapshot.
    #[test]
    fn kernel_decides_from_the_stale_view_not_the_truth() {
        let snapshot = SharedLoadSnapshot::new(4);
        // Truth would say bin 0 is overloaded, but the snapshot is stale
        // and still calls it empty — the kernel must pick bin 0 over a
        // bin the snapshot reports as loaded.
        snapshot.set(1, 5);
        let probes = vec![0, 1];
        let (mut slots, mut bins) = (Vec::new(), Vec::new());
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        let max = decide_k_least(&snapshot, &probes, 1, &mut rng, &mut slots, &mut bins);
        assert_eq!(bins, vec![0]);
        assert_eq!(max, 1);
    }

    #[test]
    #[should_panic(expected = "1 <= k <= d")]
    fn kernel_rejects_k_larger_than_d() {
        let state = LoadVector::new(2);
        let mut rng = Xoshiro256PlusPlus::from_u64(0);
        decide_k_least(&state, &[0], 2, &mut rng, &mut Vec::new(), &mut Vec::new());
    }

    #[test]
    fn compare_exchange_commits_only_on_the_expected_value() {
        let snapshot = SharedLoadSnapshot::new(2);
        snapshot.set(0, 3);
        assert_eq!(snapshot.compare_exchange(0, 3, 5), Ok(3));
        assert_eq!(snapshot.get(0), 5);
        // A stale expectation loses the race and reports the interferer.
        assert_eq!(snapshot.compare_exchange(0, 3, 9), Err(5));
        assert_eq!(snapshot.get(0), 5);
    }

    #[test]
    fn fetch_add_and_sub_return_previous_values() {
        let snapshot = SharedLoadSnapshot::new(1);
        assert_eq!(snapshot.fetch_add(0, 4), 0);
        assert_eq!(snapshot.fetch_sub(0, 3), 4);
        assert_eq!(snapshot.get(0), 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn fetch_sub_panics_on_underflow() {
        let snapshot = SharedLoadSnapshot::new(1);
        snapshot.set(0, 1);
        snapshot.fetch_sub(0, 2);
    }
}
