//! Round allocation policies for (k,d)-choice.

/// How the `k` balls of a round are assigned to the `d` sampled bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundPolicy {
    /// The paper's rule (§1.1): a bin sampled `m ≥ 1` times receives at most
    /// `m` balls. Realized as "place `d` tentative balls, remove the `d − k`
    /// of maximal height", which the paper shows is the same policy.
    ///
    /// In the paper's scenario (b) — bins with loads (2, 1, 0, 0-again)
    /// sampled once, once, twice — bin₃ receives one ball and bin₄ two; in
    /// scenario (c) — bin₁ twice, bin₄ twice — bin₁ receives one and bin₄
    /// two.
    #[default]
    Multiplicity,
    /// The §7 future-work relaxation: "the less-loaded candidate bins can
    /// receive more balls regardless of how many times those bins are
    /// sampled". Realized as greedy water-filling over the *distinct*
    /// sampled bins: each of the `k` balls goes to the currently least
    /// loaded candidate (ties broken randomly), loads updating between
    /// placements. In (2,3)-choice with sampled loads (0, 2, 3) both balls
    /// land in the empty bin.
    ///
    /// The paper conjectures this variant keeps a constant maximum load
    /// even for `k ≈ d`; the `ablation` bench measures it.
    Unrestricted,
}

impl RoundPolicy {
    /// A short name for table headers.
    pub fn label(&self) -> &'static str {
        match self {
            RoundPolicy::Multiplicity => "multiplicity",
            RoundPolicy::Unrestricted => "unrestricted",
        }
    }
}

impl std::fmt::Display for RoundPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_policy() {
        assert_eq!(RoundPolicy::default(), RoundPolicy::Multiplicity);
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(
            RoundPolicy::Multiplicity.label(),
            RoundPolicy::Unrestricted.label()
        );
        assert_eq!(RoundPolicy::Multiplicity.to_string(), "multiplicity");
    }
}
