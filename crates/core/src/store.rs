//! [`BinStore`]: the shared bin-load substrate interface.
//!
//! The (k,d)-choice process, the §1.3 cluster scheduler, the §1.3 storage
//! cluster, and the concurrent placement service (`kdchoice-service`) all
//! observe the same state: `n` bins, per-bin loads, and the paper's
//! observables (`max load`, `ν_y`, `gap`). This trait names that surface
//! once, so every application tracks load through one substrate —
//! [`LoadVector`] single-threaded, `ShardedStore` under concurrency —
//! instead of each keeping a private counter array.

use crate::state::LoadVector;

/// The observable surface of a bin-load store: arrivals, departures, and
/// the paper's load observables.
///
/// Implementations must keep every observable consistent with the load
/// vector after each mutation. [`LoadVector`] is the canonical
/// single-threaded implementation; `kdchoice-service`'s `ShardedStore`
/// implements the same surface over lock-striped shards, merging the
/// observables on demand.
///
/// All methods are object-safe, so harnesses can hold
/// `Box<dyn BinStore>` when they need substrate-heterogeneous
/// collections.
pub trait BinStore {
    /// The number of bins.
    fn n(&self) -> usize;

    /// The load of bin `bin` (0-based index).
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n`.
    fn load(&self, bin: usize) -> u32;

    /// Places one ball into `bin`; returns the ball's height (the bin's
    /// load immediately after placement).
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n`.
    fn add_ball(&mut self, bin: usize) -> u32;

    /// Removes one ball from `bin`; returns the removed ball's height
    /// (the bin's load immediately before removal).
    ///
    /// # Panics
    ///
    /// Panics if `bin >= n` or the bin is empty.
    fn remove_ball(&mut self, bin: usize) -> u32;

    /// The current maximum load.
    fn max_load(&self) -> u32;

    /// The total number of balls currently stored.
    fn total_balls(&self) -> u64;

    /// `ν_y`: the number of bins with load at least `y`.
    fn nu(&self, y: u32) -> u64;

    /// The average load `total_balls / n`.
    fn average_load(&self) -> f64 {
        self.total_balls() as f64 / self.n() as f64
    }

    /// The gap `max load − average load` (Theorem 2's quantity).
    fn gap(&self) -> f64 {
        f64::from(self.max_load()) - self.average_load()
    }

    /// The capacity of `bin`. Defaults to 1 (homogeneous bins, the
    /// paper's model); heterogeneous stores override.
    fn capacity(&self, bin: usize) -> u32 {
        assert!(bin < self.n(), "bin {bin} out of range");
        1
    }

    /// The total capacity `Σ c_bin` (defaults to `n`).
    fn total_capacity(&self) -> u64 {
        self.n() as u64
    }

    /// The maximum utilization `max_bin load_bin / c_bin` (defaults to
    /// `max_load`, its value when every capacity is 1).
    fn max_utilization(&self) -> f64 {
        f64::from(self.max_load())
    }

    /// The capacity-normalized gap `max utilization − total_balls /
    /// total_capacity` — equal to [`BinStore::gap`] when every capacity
    /// is 1.
    fn utilization_gap(&self) -> f64 {
        self.max_utilization() - self.total_balls() as f64 / self.total_capacity() as f64
    }

    /// Overwrites `out` with the per-bin loads in bin-index order.
    ///
    /// Snapshot-style accessor shared by probing schedulers: a borrowed
    /// `&[u32]` cannot be returned here because sharded implementations
    /// materialize the global view on demand.
    fn copy_loads_into(&self, out: &mut Vec<u32>);

    /// The count-by-load histogram (entry `l` = bins holding exactly `l`
    /// balls); trailing entries may be 0.
    fn histogram(&self) -> Vec<u64>;
}

impl BinStore for LoadVector {
    #[inline]
    fn n(&self) -> usize {
        LoadVector::n(self)
    }

    #[inline]
    fn load(&self, bin: usize) -> u32 {
        LoadVector::load(self, bin)
    }

    #[inline]
    fn add_ball(&mut self, bin: usize) -> u32 {
        LoadVector::add_ball(self, bin)
    }

    #[inline]
    fn remove_ball(&mut self, bin: usize) -> u32 {
        LoadVector::remove_ball(self, bin)
    }

    #[inline]
    fn max_load(&self) -> u32 {
        LoadVector::max_load(self)
    }

    #[inline]
    fn total_balls(&self) -> u64 {
        LoadVector::total_balls(self)
    }

    #[inline]
    fn nu(&self, y: u32) -> u64 {
        LoadVector::nu(self, y)
    }

    #[inline]
    fn capacity(&self, bin: usize) -> u32 {
        LoadVector::capacity(self, bin)
    }

    #[inline]
    fn total_capacity(&self) -> u64 {
        LoadVector::total_capacity(self)
    }

    #[inline]
    fn max_utilization(&self) -> f64 {
        LoadVector::max_utilization(self)
    }

    #[inline]
    fn utilization_gap(&self) -> f64 {
        LoadVector::utilization_gap(self)
    }

    fn copy_loads_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(self.loads());
    }

    fn histogram(&self) -> Vec<u64> {
        self.load_histogram().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a store through the trait only — the object-safety and
    /// default-method check.
    fn exercise(store: &mut dyn BinStore) {
        assert_eq!(store.n(), 4);
        assert_eq!(store.add_ball(1), 1);
        assert_eq!(store.add_ball(1), 2);
        assert_eq!(store.add_ball(3), 1);
        assert_eq!(store.load(1), 2);
        assert_eq!(store.max_load(), 2);
        assert_eq!(store.total_balls(), 3);
        assert_eq!(store.nu(1), 2);
        assert_eq!(store.nu(2), 1);
        assert!((store.average_load() - 0.75).abs() < 1e-12);
        assert!((store.gap() - 1.25).abs() < 1e-12);
        assert_eq!(store.remove_ball(1), 2);
        assert_eq!(store.max_load(), 1);
        let mut loads = Vec::new();
        store.copy_loads_into(&mut loads);
        assert_eq!(loads, vec![0, 1, 0, 1]);
        assert_eq!(store.histogram()[..2], [2, 2]);
    }

    #[test]
    fn load_vector_implements_the_trait() {
        let mut store = LoadVector::new(4);
        exercise(&mut store);
        assert!(store.check_invariants());
    }
}
