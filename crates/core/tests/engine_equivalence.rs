//! The refactor-safety property: the monomorphized generic path and the
//! object-safe `dyn` shim are the *same* simulated process.
//!
//! Driving a `KdChoice` directly (static dispatch: `RoundProcess`
//! monomorphized over the concrete RNG) and driving the identical
//! configuration boxed as `Box<dyn BallsIntoBins>` (dynamic dispatch
//! through the shim) must consume the RNG identically and therefore
//! produce identical results — not just in distribution, but exactly:
//! same sorted load vector, same histograms, same every observable.

use kdchoice_core::{
    run_once, run_once_with_state, BallsIntoBins, EngineVersion, KdChoice, RoundPolicy, RunConfig,
};
use kdchoice_prng::Xoshiro256PlusPlus;
use rand::{Rng, RngCore};

/// Runs one config through the generic (static-dispatch) driver path.
fn run_generic(
    k: usize,
    d: usize,
    engine: EngineVersion,
    cfg: &RunConfig,
) -> kdchoice_core::RunResult {
    let mut p = KdChoice::new(k, d)
        .expect("valid (k,d)")
        .with_engine(engine);
    run_once(&mut p, cfg)
}

/// Runs the same config through the object-safe shim (dynamic dispatch).
fn run_dyn(k: usize, d: usize, engine: EngineVersion, cfg: &RunConfig) -> kdchoice_core::RunResult {
    let mut p: Box<dyn BallsIntoBins> = Box::new(
        KdChoice::new(k, d)
            .expect("valid (k,d)")
            .with_engine(engine),
    );
    run_once(&mut *p, cfg)
}

#[test]
fn generic_and_dyn_paths_agree_on_random_instances() {
    let mut meta = Xoshiro256PlusPlus::from_u64(0xE9E9);
    let mut instances = 0;
    while instances < 240 {
        let d = meta.gen_range(1..=20usize);
        let k = meta.gen_range(1..=d);
        let n = 1usize << meta.gen_range(4..11u32); // 16 .. 1024 bins
        let heavy = meta.gen_range(1..4u64); // up to m = 3n (Theorem 2 regime)
        let seed = meta.next_u64();
        let cfg = RunConfig::new(n, seed).with_balls(heavy * n as u64);
        for engine in [EngineVersion::Legacy, EngineVersion::Batched] {
            let a = run_generic(k, d, engine, &cfg);
            let b = run_dyn(k, d, engine, &cfg);
            // RunResult equality covers the full observable set: max load,
            // gap, message count, rounds, and both histograms (the load
            // histogram *is* the sorted load vector up to permutation).
            assert_eq!(
                a, b,
                "{engine:?} diverged between dispatch paths at k={k} d={d} n={n} seed={seed}"
            );
            instances += 1;
        }
    }
    assert!(instances >= 200, "acceptance floor: >= 200 instances");
}

#[test]
fn generic_and_dyn_final_states_agree_exactly() {
    // Sharper than histogram equality: the per-bin load vectors coincide,
    // bin by bin, because both paths draw the same bins in the same order.
    let mut meta = Xoshiro256PlusPlus::from_u64(77);
    for _ in 0..25 {
        let d = meta.gen_range(1..=17usize);
        let k = meta.gen_range(1..=d);
        let seed = meta.next_u64();
        let cfg = RunConfig::new(512, seed);
        for engine in [EngineVersion::Legacy, EngineVersion::Batched] {
            let (_, state_generic) = {
                let mut p = KdChoice::new(k, d).unwrap().with_engine(engine);
                run_once_with_state(&mut p, &cfg)
            };
            let (_, state_dyn) = {
                let mut p: Box<dyn BallsIntoBins> =
                    Box::new(KdChoice::new(k, d).unwrap().with_engine(engine));
                run_once_with_state(&mut *p, &cfg)
            };
            assert_eq!(
                state_generic.loads(),
                state_dyn.loads(),
                "{engine:?} k={k} d={d}"
            );
        }
    }
}

#[test]
fn unrestricted_policy_also_agrees_across_dispatch_paths() {
    let mut meta = Xoshiro256PlusPlus::from_u64(4242);
    for _ in 0..40 {
        let d = meta.gen_range(1..=12usize);
        let k = meta.gen_range(1..=d);
        let seed = meta.next_u64();
        let cfg = RunConfig::new(256, seed);
        for engine in [EngineVersion::Legacy, EngineVersion::Batched] {
            let a = {
                let mut p = KdChoice::new(k, d)
                    .unwrap()
                    .with_policy(RoundPolicy::Unrestricted)
                    .with_engine(engine);
                run_once(&mut p, &cfg)
            };
            let b = {
                let mut p: Box<dyn BallsIntoBins> = Box::new(
                    KdChoice::new(k, d)
                        .unwrap()
                        .with_policy(RoundPolicy::Unrestricted)
                        .with_engine(engine),
                );
                run_once(&mut *p, &cfg)
            };
            assert_eq!(a, b, "{engine:?} k={k} d={d}");
        }
    }
}

#[test]
fn legacy_and_batched_engines_agree_in_distribution() {
    // The engines share the process's *distribution* (not the stream):
    // compare mean max loads and mean gaps across seeds for a spread of
    // configurations, including the heavy case.
    for &(k, d, mult) in &[(1usize, 2usize, 1u64), (2, 3, 1), (3, 5, 1), (2, 4, 8)] {
        let stats = |engine: EngineVersion| {
            let trials = 30u64;
            let (mut max_sum, mut gap_sum) = (0.0f64, 0.0f64);
            for seed in 0..trials {
                let cfg = RunConfig::new(1 << 11, 1000 + seed).with_balls(mult << 11);
                let r = run_generic(k, d, engine, &cfg);
                max_sum += f64::from(r.max_load);
                gap_sum += r.gap;
            }
            (max_sum / trials as f64, gap_sum / trials as f64)
        };
        let (legacy_max, legacy_gap) = stats(EngineVersion::Legacy);
        let (batched_max, batched_gap) = stats(EngineVersion::Batched);
        assert!(
            (legacy_max - batched_max).abs() < 0.5,
            "(k={k},d={d},m={mult}n) max: legacy {legacy_max} vs batched {batched_max}"
        );
        assert!(
            (legacy_gap - batched_gap).abs() < 0.5,
            "(k={k},d={d},m={mult}n) gap: legacy {legacy_gap} vs batched {batched_gap}"
        );
    }
}
