//! Property-based tests of the (k,d)-choice round invariants.

use kdchoice_core::{
    run_once, run_once_with_state, BallsIntoBins, EngineVersion, KdChoice, LoadVector, RoundPolicy,
    RunConfig, SerializedKdChoice, SigmaSchedule,
};
use kdchoice_prng::Xoshiro256PlusPlus;
use proptest::prelude::*;

/// Strategy: a (k, d) pair with 1 ≤ k ≤ d ≤ 12.
fn kd_pair() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=12).prop_flat_map(|d| (1usize..=d, Just(d)))
}

/// Strategy: initial loads for a small bin set.
fn loads_vec() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..6, 2..10)
}

fn state_with(loads: &[u32]) -> LoadVector {
    let mut s = LoadVector::new(loads.len());
    for (b, &l) in loads.iter().enumerate() {
        for _ in 0..l {
            s.add_ball(b);
        }
    }
    s
}

proptest! {
    /// Ball conservation: a round adds exactly k balls (k ≤ d).
    #[test]
    fn round_conserves_balls(
        (k, d) in kd_pair(),
        loads in loads_vec(),
        seed in 0u64..1000,
    ) {
        let mut p = KdChoice::new(k, d).unwrap();
        let mut state = state_with(&loads);
        let before = state.total_balls();
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        let mut heights = Vec::new();
        let stats = p.run_round(&mut state, &mut rng, &mut heights, u64::MAX);
        prop_assert_eq!(stats.thrown as usize, k);
        prop_assert_eq!(state.total_balls(), before + k as u64);
        prop_assert_eq!(heights.len(), k);
        prop_assert!(state.check_invariants());
    }

    /// Multiplicity rule: a bin sampled m times gains at most m balls.
    #[test]
    fn multiplicity_cap_holds(
        (k, d) in kd_pair(),
        loads in loads_vec(),
        seed in 0u64..1000,
    ) {
        let n = loads.len();
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        use rand::Rng;
        let samples: Vec<usize> = (0..d).map(|_| rng.gen_range(0..n)).collect();
        let mut occurrences = vec![0u32; n];
        for &s in &samples { occurrences[s] += 1; }

        let mut p = KdChoice::new(k, d).unwrap();
        let mut state = state_with(&loads);
        let mut heights = Vec::new();
        p.place_round_with_samples(&mut state, &samples, k, &mut rng, &mut heights);
        for b in 0..n {
            prop_assert!(state.load(b) - loads[b] <= occurrences[b]);
        }
    }

    /// The kept set is downward closed in height: no committed ball has a
    /// height above any discarded tentative slot's height... equivalently,
    /// committed heights are the k smallest tentative heights.
    #[test]
    fn kept_heights_are_minimal(
        (k, d) in kd_pair(),
        loads in loads_vec(),
        seed in 0u64..1000,
    ) {
        let n = loads.len();
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        use rand::Rng;
        let samples: Vec<usize> = (0..d).map(|_| rng.gen_range(0..n)).collect();
        // Tentative heights of all d slots.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let mut tentative: Vec<u32> = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let b = sorted[i];
            let mut occ = 0;
            while i < sorted.len() && sorted[i] == b {
                occ += 1;
                tentative.push(loads[b] + occ);
                i += 1;
            }
        }
        tentative.sort_unstable();

        let mut p = KdChoice::new(k, d).unwrap();
        let mut state = state_with(&loads);
        let mut heights = Vec::new();
        p.place_round_with_samples(&mut state, &samples, k, &mut rng, &mut heights);
        heights.sort_unstable();
        prop_assert_eq!(&heights[..], &tentative[..k]);
    }

    /// The unrestricted (water-filling) policy never produces a worse
    /// round-local maximum than the multiplicity policy on the same samples.
    #[test]
    fn unrestricted_dominates_multiplicity_per_round(
        (k, d) in kd_pair(),
        loads in loads_vec(),
        seed in 0u64..1000,
    ) {
        let n = loads.len();
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        use rand::Rng;
        let samples: Vec<usize> = (0..d).map(|_| rng.gen_range(0..n)).collect();

        let run = |policy: RoundPolicy, rng: &mut Xoshiro256PlusPlus| {
            let mut p = KdChoice::new(k, d).unwrap().with_policy(policy);
            let mut state = state_with(&loads);
            let mut heights = Vec::new();
            p.place_round_with_samples(&mut state, &samples, k, rng, &mut heights);
            heights.iter().copied().max().unwrap_or(0)
        };
        let std_max = run(RoundPolicy::Multiplicity, &mut rng);
        let relaxed_max = run(RoundPolicy::Unrestricted, &mut rng);
        prop_assert!(relaxed_max <= std_max,
            "water-filling max {} > multiplicity max {}", relaxed_max, std_max);
    }

    /// Whole runs conserve balls and report consistent histograms.
    #[test]
    fn run_histograms_are_consistent(
        (k, d) in kd_pair(),
        n_exp in 6u32..10,
        seed in 0u64..500,
    ) {
        let n = 1usize << n_exp;
        let mut p = KdChoice::new(k, d).unwrap();
        let r = run_once(&mut p, &RunConfig::new(n, seed));
        prop_assert_eq!(r.balls_placed, n as u64);
        let bins: u64 = r.load_histogram.iter().sum();
        prop_assert_eq!(bins, n as u64);
        let balls: u64 = r.load_histogram.iter().enumerate()
            .map(|(l, &c)| l as u64 * c).sum();
        prop_assert_eq!(balls, n as u64);
        let placed: u64 = r.height_histogram.iter().sum();
        prop_assert_eq!(placed, n as u64);
        // nu_y <= mu_y for all y (Theorem 3's bridge inequality).
        for y in 0..=r.max_load {
            prop_assert!(r.nu(y) <= r.mu(y));
        }
    }

    /// The serialized process coincides with the round process whole-run on
    /// a shared RNG stream (Identity schedule), for arbitrary (k, d). The
    /// legacy engine is pinned because only it consumes the stream exactly
    /// like the serialization (d samples + d eager keys per round); the
    /// batched engine shares the distribution but not the stream.
    #[test]
    fn serialized_identity_equals_round_process(
        (k, d) in kd_pair(),
        seed in 0u64..300,
    ) {
        let n = 256;
        let a = {
            let mut p = KdChoice::new(k, d).unwrap().with_engine(EngineVersion::Legacy);
            run_once(&mut p, &RunConfig::new(n, seed))
        };
        let b = {
            let mut p = SerializedKdChoice::new(k, d, SigmaSchedule::Identity).unwrap();
            run_once(&mut p, &RunConfig::new(n, seed))
        };
        prop_assert_eq!(a.load_histogram, b.load_histogram);
        prop_assert_eq!(a.height_histogram, b.height_histogram);
    }

    /// σ permutations never change the coupled final vector.
    #[test]
    fn sigma_invariance_under_coupling(
        (k, d) in kd_pair(),
        seed in 0u64..300,
    ) {
        let n = 128;
        let run = |schedule| {
            let mut p = SerializedKdChoice::new(k, d, schedule).unwrap();
            let (_, st) = run_once_with_state(&mut p, &RunConfig::new(n, seed));
            st.sorted_descending()
        };
        prop_assert_eq!(run(SigmaSchedule::Identity), run(SigmaSchedule::Reverse));
    }

    /// Heavy runs: gap is non-negative and max load >= ceil(m/n).
    #[test]
    fn heavy_run_bounds(
        (k, d) in kd_pair(),
        ratio in 1u64..6,
        seed in 0u64..200,
    ) {
        let n = 128usize;
        let mut p = KdChoice::new(k, d).unwrap();
        let r = run_once(&mut p, &RunConfig::new(n, seed).with_balls(ratio * n as u64));
        prop_assert!(r.gap >= 0.0);
        prop_assert!(u64::from(r.max_load) >= ratio);
        prop_assert_eq!(r.balls_placed, ratio * n as u64);
    }

    /// LoadVector rank query is always within [1, n] and consistent with
    /// the load ordering.
    #[test]
    fn rank_of_is_consistent(
        loads in loads_vec(),
        seed in 0u64..200,
    ) {
        let state = state_with(&loads);
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        let n = loads.len();
        for bin in 0..n {
            let rank = state.rank_of(bin, &mut rng);
            prop_assert!(rank >= 1 && rank <= n);
            // Bins with strictly larger loads must have strictly smaller
            // possible ranks: count them.
            let greater = loads.iter().filter(|&&l| l > loads[bin]).count();
            let ties = loads.iter().filter(|&&l| l == loads[bin]).count();
            prop_assert!(rank > greater);
            prop_assert!(rank <= greater + ties);
        }
    }
}
