//! Open-loop-churn coverage for [`LoadVector::remove_ball`]: under a
//! high-rate interleaving of arrivals and departures, the O(1)-maintained
//! caches (`nu1`, `nu2`, `max_load`, `total_balls`, the count-by-load
//! histogram) must never drift from an oracle recomputed from scratch
//! out of the raw per-bin loads.
//!
//! This is the property the service layer's release path leans on: the
//! dynamic traffic engine removes balls millions of times per run and
//! reads the cached observables after every tick.

use kdchoice_core::LoadVector;
use proptest::prelude::*;

/// The from-scratch oracle: every cached observable recomputed from the
/// raw loads alone.
struct Oracle {
    histogram: Vec<u64>,
    max_load: u32,
    total: u64,
    nu1: u64,
    nu2: u64,
}

fn recompute(loads: &[u32]) -> Oracle {
    let max_load = loads.iter().copied().max().unwrap_or(0);
    let mut histogram = vec![0u64; max_load as usize + 1];
    let mut total = 0u64;
    for &l in loads {
        histogram[l as usize] += 1;
        total += u64::from(l);
    }
    let nu = |y: u32| -> u64 {
        histogram
            .get(y as usize..)
            .map_or(0, |tail| tail.iter().sum())
    };
    Oracle {
        nu1: nu(1),
        nu2: nu(2),
        histogram,
        max_load,
        total,
    }
}

fn assert_matches_oracle(state: &LoadVector, step: usize) {
    let oracle = recompute(state.loads());
    assert_eq!(state.max_load(), oracle.max_load, "max_load drift @ {step}");
    assert_eq!(state.total_balls(), oracle.total, "total drift @ {step}");
    assert_eq!(state.nu(1), oracle.nu1, "nu1 drift @ {step}");
    assert_eq!(state.nu(2), oracle.nu2, "nu2 drift @ {step}");
    for y in 3..=oracle.max_load + 2 {
        let expect: u64 = oracle
            .histogram
            .get(y as usize..)
            .map_or(0, |tail| tail.iter().sum());
        assert_eq!(state.nu(y), expect, "nu({y}) drift @ {step}");
    }
    // The histogram is kept canonical: exactly max_load + 1 entries, so
    // add-then-remove round-trips bit for bit.
    assert_eq!(
        state.load_histogram(),
        &oracle.histogram[..],
        "histogram drift @ {step}"
    );
    assert!(state.check_invariants(), "invariants broken @ {step}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Random high-rate add/remove interleavings: `bias` skews each case
    /// toward growth, churn, or drain so the max-load level empties and
    /// refills many times.
    #[test]
    fn caches_never_drift_under_churn(
        n in 1usize..24,
        bias in 2u8..9,
        ops in prop::collection::vec((0u8..=255, 0u16..=u16::MAX), 1..300),
    ) {
        let mut state = LoadVector::new(n);
        let mut live: Vec<usize> = Vec::new();
        for (step, (kind, which)) in ops.into_iter().enumerate() {
            if live.is_empty() || kind % 10 < bias {
                let bin = which as usize % n;
                state.add_ball(bin);
                live.push(bin);
            } else {
                // Departures target an arbitrary live ball, not the
                // oldest, so removals hit interior and top histogram
                // levels alike.
                let i = which as usize % live.len();
                let bin = live.swap_remove(i);
                state.remove_ball(bin);
            }
            assert_matches_oracle(&state, step);
        }
        prop_assert_eq!(state.total_balls(), live.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Drain-to-empty: removing every live ball in random order must
    /// walk the caches all the way back to the pristine empty state.
    #[test]
    fn full_drain_restores_the_empty_state(
        n in 1usize..16,
        adds in prop::collection::vec(0u16..=u16::MAX, 1..120),
        drain_seed in any::<u64>(),
    ) {
        let mut state = LoadVector::new(n);
        let mut live: Vec<usize> = Vec::new();
        for a in adds {
            let bin = a as usize % n;
            state.add_ball(bin);
            live.push(bin);
        }
        let mut order = drain_seed;
        while !live.is_empty() {
            // Cheap deterministic shuffle-by-LCG over the live list.
            order = order.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (order >> 33) as usize % live.len();
            let bin = live.swap_remove(i);
            state.remove_ball(bin);
            assert_matches_oracle(&state, live.len());
        }
        prop_assert_eq!(state.max_load(), 0);
        prop_assert_eq!(state.nu(1), 0);
        prop_assert_eq!(state.nu(2), 0);
        prop_assert_eq!(state.total_balls(), 0);
        prop_assert_eq!(state.load_histogram(), &[n as u64][..]);
    }
}
