//! Property-based equivalence of [`PackedStore`] against [`LoadVector`]
//! in the lossless window, plus bit-identical (k,d)-choice *placement*
//! streams through the shared decision kernel — the proptest lock on
//! the compact-store quantization contract.

use kdchoice_core::{decide_k_least, BinStore, LoadVector, PackedStore, SketchStore, StoreKind};
use kdchoice_prng::Xoshiro256PlusPlus;
use proptest::prelude::*;
use rand::{Rng, RngCore};

/// An operation stream that keeps every load inside the b-bit window
/// when replayed from empty: interleaved adds and matched removes over
/// a small bin set.
fn op_stream(bins: usize, ops: usize) -> impl Strategy<Value = Vec<(bool, usize)>> {
    prop::collection::vec((any::<bool>(), 0..bins), 1..ops + 1)
}

/// Replays `ops` on both stores, skipping adds that would leave the
/// window and removes of empty bins (so the stream is lossless by
/// construction), asserting every return value matches.
fn replay_lossless(bits: u32, bins: usize, ops: &[(bool, usize)]) -> (PackedStore, LoadVector) {
    let mut packed = PackedStore::new(bins, bits);
    let mut exact = LoadVector::new(bins);
    let window = (1u32 << bits) - 1;
    for &(is_add, bin) in ops {
        if is_add {
            // Stay within `window` of the current minimum so no counter
            // can pin even after renormalizations.
            let min = (0..bins).map(|b| exact.load(b)).min().unwrap();
            if exact.load(bin) - min < window {
                assert_eq!(packed.add_ball(bin), exact.add_ball(bin));
            }
        } else if exact.load(bin) > 0 && {
            // Removes below the running base would clamp; the base never
            // exceeds the historical minimum load, so staying above the
            // current minimum is safe.
            let min = (0..bins).map(|b| exact.load(b)).min().unwrap();
            exact.load(bin) > min || packed.base() < exact.load(bin)
        } {
            assert_eq!(packed.remove_ball(bin), exact.remove_ball(bin));
        }
    }
    (packed, exact)
}

proptest! {
    /// Random op streams inside the window: every observable of the
    /// packed store is bit-identical to the exact store.
    #[test]
    fn packed_observables_match_exact_in_window(
        ops in op_stream(9, 400),
        wide in any::<bool>(),
    ) {
        let bits = if wide { 8u32 } else { 4 };
        let (packed, exact) = replay_lossless(bits, 9, &ops);
        prop_assert!(packed.is_lossless());
        prop_assert_eq!(packed.load_histogram(), exact.load_histogram());
        prop_assert_eq!(BinStore::max_load(&packed), exact.max_load());
        prop_assert_eq!(packed.total_balls(), exact.total_balls());
        for y in 0..6 {
            prop_assert_eq!(packed.nu(y), exact.nu(y));
        }
        for bin in 0..9 {
            prop_assert_eq!(packed.load(bin), exact.load(bin));
        }
        let (mut pl, mut el) = (Vec::new(), Vec::new());
        BinStore::copy_loads_into(&packed, &mut pl);
        exact.copy_loads_into(&mut el);
        prop_assert_eq!(pl, el);
        prop_assert!(packed.check_invariants());
        prop_assert!(exact.check_invariants());
    }

    /// The placement stream itself is bit-identical: the same seeded
    /// (k,d)-choice decisions against a packed4 view pick the same
    /// winner bins in the same order as against the exact view, while
    /// loads stay in the window.
    #[test]
    fn packed_placements_are_bit_identical_in_window(
        seed in 0u64..500,
        k in 1usize..=3,
        extra in 0usize..=3,
        rounds in 1usize..60,
    ) {
        let d = k + extra;
        let n = 16usize;
        let mut packed = StoreKind::Packed4.new_slab(n);
        let mut exact = LoadVector::new(n);
        let mut rng_p = Xoshiro256PlusPlus::from_u64(seed);
        let mut rng_e = Xoshiro256PlusPlus::from_u64(seed);
        let (mut slots, mut probes) = (Vec::new(), Vec::new());
        // The stream is assertion-guarded rather than bounded a priori:
        // the moment a counter clamps (possible when d == k degenerates
        // to random placement) the lossless contract ends, so we stop.
        let mut lossless = true;
        'rounds: for _ in 0..rounds {
            probes.clear();
            probes.extend((0..d).map(|_| rng_p.next_u64() as usize % n));
            // Drive the exact RNG identically.
            for _ in 0..d { rng_e.next_u64(); }
            probes.sort_unstable();
            let (mut bins_p, mut bins_e) = (Vec::new(), Vec::new());
            let h_p = decide_k_least(&packed, &probes, k, &mut rng_p, &mut slots, &mut bins_p);
            let h_e = decide_k_least(&exact, &probes, k, &mut rng_e, &mut slots, &mut bins_e);
            prop_assert_eq!(&bins_p, &bins_e);
            prop_assert_eq!(h_p, h_e);
            for &bin in &bins_p {
                let got = packed.add_ball(bin);
                let want = exact.add_ball(bin);
                let still_lossless = match &packed {
                    kdchoice_core::BinSlab::Packed(p) => p.is_lossless(),
                    _ => unreachable!(),
                };
                if !still_lossless {
                    lossless = false;
                    break 'rounds;
                }
                prop_assert_eq!(got, want);
            }
        }
        if lossless {
            prop_assert_eq!(packed.histogram(), BinStore::histogram(&exact));
        }
        prop_assert!(packed.check_invariants());
    }

    /// Unrestricted churn (clamps allowed): the packed store never
    /// corrupts its caches, keeps the exact ball count, and quantized
    /// loads always sit within the window of the base.
    #[test]
    fn packed_saturating_churn_keeps_invariants(
        ops in op_stream(5, 600),
        wide in any::<bool>(),
    ) {
        let bits = if wide { 8u32 } else { 4 };
        let bins = 5;
        let mut packed = PackedStore::new(bins, bits);
        let mut true_loads = vec![0u64; bins];
        for &(is_add, bin) in &ops {
            if is_add {
                packed.add_ball(bin);
                true_loads[bin] += 1;
            } else if true_loads[bin] > 0 {
                packed.remove_ball(bin);
                true_loads[bin] -= 1;
            }
        }
        prop_assert_eq!(packed.total_balls(), true_loads.iter().sum::<u64>());
        let window = (1u32 << bits) - 1;
        for bin in 0..bins {
            let q = packed.load(bin);
            prop_assert!(q >= packed.base() && q <= packed.base() + window);
        }
        prop_assert!(packed.check_invariants());
    }

    /// Sketch estimates dominate true loads under arbitrary matched
    /// churn, and the exact ball counter never drifts.
    #[test]
    fn sketch_never_underestimates(ops in op_stream(32, 500)) {
        let mut sketch = SketchStore::with_width(32, 16);
        let mut exact = LoadVector::new(32);
        for &(is_add, bin) in &ops {
            if is_add {
                prop_assert!(sketch.add_ball(bin) >= exact.add_ball(bin));
            } else if exact.load(bin) > 0 {
                prop_assert!(sketch.remove_ball(bin) >= exact.remove_ball(bin));
            }
        }
        prop_assert_eq!(sketch.total_balls(), exact.total_balls());
        for bin in 0..32 {
            prop_assert!(sketch.load(bin) >= exact.load(bin));
        }
        prop_assert!(SketchStore::max_load(&sketch) >= exact.max_load());
        prop_assert!(sketch.check_invariants());
    }
}

/// Deterministic saturation edge: a counter pinned at 2^b − 1 absorbs
/// adds, reports the loss, and resumes exact counting once removes
/// bring the quantized load back to the truth.
#[test]
fn saturation_edge_pins_and_recovers() {
    for bits in [4u32, 8] {
        let top = (1u32 << bits) - 1;
        let mut packed = PackedStore::new(2, bits);
        for expect in 1..=top {
            assert_eq!(packed.add_ball(0), expect);
        }
        assert_eq!(packed.load(0), top);
        assert!(packed.is_lossless());
        // Bin 1 is empty, so the minimum offset is 0 and renormalization
        // cannot help: the counter pins.
        assert_eq!(packed.add_ball(0), top);
        assert_eq!(packed.clamped_adds(), 1);
        assert_eq!(packed.total_balls(), u64::from(top) + 1);
        assert!(packed.check_invariants());
    }
}

/// Deterministic base bump: when every bin's offset rises, a saturating
/// add triggers a renormalization that bumps the base and changes no
/// quantized load.
#[test]
fn base_level_bump_preserves_quantized_loads() {
    let mut packed = PackedStore::new(4, 4);
    for _ in 0..15 {
        for bin in 0..4 {
            packed.add_ball(bin);
        }
    }
    assert_eq!(packed.base(), 0);
    let before: Vec<u32> = (0..4).map(|b| packed.load(b)).collect();
    assert_eq!(before, vec![15; 4]);
    // The 16th add renormalizes (min offset 15), then increments.
    assert_eq!(packed.add_ball(0), 16);
    assert_eq!(packed.base(), 15);
    assert_eq!(packed.renormalizations(), 1);
    assert!(packed.is_lossless());
    assert_eq!(packed.load(1), 15, "peers keep their quantized load");
    assert!(packed.check_invariants());
}

/// remove_ball across a renormalization boundary: quantized loads are
/// absolute, so descending through a historical base bump stays exact
/// until the current base, then clamps.
#[test]
fn remove_across_renormalization_boundary_clamps_at_base() {
    let mut packed = PackedStore::new(2, 4);
    let mut exact = LoadVector::new(2);
    for _ in 0..22 {
        for bin in 0..2 {
            assert_eq!(packed.add_ball(bin), exact.add_ball(bin));
        }
    }
    let base = packed.base();
    assert!(base > 0);
    for _ in 0..(22 - base) {
        for bin in 0..2 {
            assert_eq!(packed.remove_ball(bin), exact.remove_ball(bin));
        }
    }
    assert!(packed.is_lossless());
    assert_eq!(packed.load(0), base);
    assert_eq!(packed.remove_ball(0), base, "below the base: clamped");
    assert_eq!(packed.clamped_removes(), 1);
    assert!(packed.check_invariants());
}

/// A (2,4)-choice fill through the decision kernel at n=256 stays
/// lossless for packed4 far beyond n balls — the d-choice gap is what
/// makes a 4-bit window realistic.
#[test]
fn two_choice_fill_stays_lossless_at_packed4() {
    let n = 256;
    let mut slab = StoreKind::Packed4.new_slab(n);
    let mut rng = Xoshiro256PlusPlus::from_u64(0xC0FFEE);
    let (mut slots, mut probes, mut bins) = (Vec::new(), Vec::new(), Vec::new());
    // 32n balls: the average load (32) is far past the 4-bit ceiling, so
    // losslessness can only survive through repeated renormalizations.
    for _ in 0..16 * n {
        probes.clear();
        probes.extend((0..4).map(|_| rng.gen_range(0..n)));
        probes.sort_unstable();
        bins.clear();
        decide_k_least(&slab, &probes, 2, &mut rng, &mut slots, &mut bins);
        for &bin in &bins {
            slab.add_ball(bin);
        }
    }
    assert_eq!(slab.total_balls(), 32 * n as u64);
    match &slab {
        kdchoice_core::BinSlab::Packed(p) => {
            assert!(p.is_lossless(), "4-bit window must hold under (2,4)-choice");
            assert!(p.renormalizations() > 0, "the base must have advanced");
        }
        _ => unreachable!(),
    }
    assert!(slab.check_invariants());
}
