//! Worker-selection strategies for job scheduling.

use std::borrow::Cow;
use std::cmp::Ordering;

use kdchoice_core::PlacementObjective;
use kdchoice_prng::sample::fill_with_replacement;
use rand::RngCore;

/// `f64` under `total_cmp`, so objective keys can drive the same
/// `random_argmin` reservoir the scalar per-task path uses. Keys are
/// integer-valued for the scalar and max-norm objectives, where
/// `total_cmp` equality coincides with integer equality — the property
/// the dims=1 tie-count (and therefore RNG-stream) identity rests on.
#[derive(Debug, Clone, Copy)]
struct TotalF64(f64);

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// How a job's `k` tasks pick their workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PlacementStrategy {
    /// Each task goes to a uniformly random worker; zero probes.
    Random,
    /// Each task independently probes `d` workers and joins the least
    /// loaded — the standard multiple-choice strategy whose *job-level*
    /// performance degrades with parallelism (§1.3). `k·d` probes per job.
    PerTaskDChoice {
        /// Probes per task.
        d: usize,
    },
    /// Sparrow's batch sampling (the paper's reference \[12\]): probe
    /// `probes_per_task · k` workers and place the `k` tasks on the `k`
    /// least loaded, multiplicities respected — exactly
    /// (k, probes_per_task·k)-choice. `probes_per_task·k` probes per job.
    BatchSampling {
        /// Probes per task (Sparrow uses 2).
        probes_per_task: usize,
    },
    /// The paper's (k,d)-choice with a probe budget `d` decoupled from `k`
    /// (`d ≥ k`): `d` probes per job, e.g. `d = k+1` for near-minimal
    /// message cost.
    KdChoice {
        /// Total probes per job.
        d: usize,
    },
    /// Sparrow's **late binding**: place reservations on
    /// `probes_per_task · k` probed workers; each worker, upon becoming
    /// free, claims one of the job's not-yet-launched tasks (service time
    /// drawn at launch), and surplus reservations cancel. The strongest
    /// scheme in the Sparrow paper \[12\].
    ///
    /// Note: in this simulator probes read *perfect instantaneous* queue
    /// lengths, so [`PlacementStrategy::BatchSampling`] keeps an
    /// information advantage that real deployments lack (stale probes,
    /// unknown task durations) — late binding beats random placement here
    /// but not perfect-information batch sampling.
    LateBinding {
        /// Probes (reservations) per task.
        probes_per_task: usize,
    },
}

impl PlacementStrategy {
    /// Display name used in reports.
    ///
    /// Parameter-free strategies return a borrowed `&'static str` — no
    /// allocation on reporting paths; parameterized ones format once per
    /// call, so callers that report per run should cache the name per run
    /// (as [`crate::SchedulerReport`] does), not fetch it per event.
    pub fn name(&self) -> Cow<'static, str> {
        match self {
            PlacementStrategy::Random => Cow::Borrowed("random"),
            PlacementStrategy::PerTaskDChoice { d } => Cow::Owned(format!("per-task {d}-choice")),
            PlacementStrategy::BatchSampling { probes_per_task } => {
                Cow::Owned(format!("batch-sampling x{probes_per_task}"))
            }
            PlacementStrategy::KdChoice { d } => Cow::Owned(format!("(k,{d})-choice")),
            PlacementStrategy::LateBinding { probes_per_task } => {
                Cow::Owned(format!("late-binding x{probes_per_task}"))
            }
        }
    }

    /// Panics when the strategy is incompatible with the job shape.
    pub(crate) fn validate(&self, k: usize, workers: usize) {
        match *self {
            PlacementStrategy::Random => {}
            PlacementStrategy::PerTaskDChoice { d } => {
                assert!(d >= 1, "per-task d-choice needs d >= 1");
            }
            PlacementStrategy::BatchSampling { probes_per_task } => {
                assert!(probes_per_task >= 1, "batch sampling needs >= 1 probe/task");
            }
            PlacementStrategy::KdChoice { d } => {
                assert!(d >= k, "(k,d)-choice needs d >= k (k={k}, d={d})");
            }
            PlacementStrategy::LateBinding { probes_per_task } => {
                assert!(probes_per_task >= 1, "late binding needs >= 1 probe/task");
            }
        }
        assert!(workers >= 1);
    }

    /// Chooses the workers for the `k` tasks of one job given the current
    /// worker loads (queue lengths). Returns `(workers, probe_messages)`;
    /// the same worker may appear multiple times (it then receives several
    /// of the job's tasks).
    ///
    /// Public so the equivalence tests can couple this kernel against the
    /// core (k,d)-choice process on a shared RNG stream.
    ///
    /// # Panics
    ///
    /// Panics for [`PlacementStrategy::LateBinding`], which is
    /// event-driven and has no one-shot worker choice.
    pub fn choose_workers<R: RngCore + ?Sized>(
        &self,
        loads: &[u32],
        k: usize,
        rng: &mut R,
    ) -> (Vec<usize>, u64) {
        let n = loads.len();
        match *self {
            PlacementStrategy::Random => {
                let mut chosen = Vec::with_capacity(k);
                fill_with_replacement(rng, n, k, &mut chosen);
                (chosen, 0)
            }
            PlacementStrategy::PerTaskDChoice { d } => {
                let mut chosen = Vec::with_capacity(k);
                let mut samples = Vec::with_capacity(d);
                for _ in 0..k {
                    fill_with_replacement(rng, n, d, &mut samples);
                    let idx = kdchoice_prng::sample::random_argmin(rng, &samples, |&w| loads[w])
                        .expect("d >= 1");
                    chosen.push(samples[idx]);
                }
                (chosen, (k * d) as u64)
            }
            PlacementStrategy::BatchSampling { probes_per_task } => {
                let probes = probes_per_task * k;
                let mut samples = Vec::with_capacity(probes);
                fill_with_replacement(rng, n, probes, &mut samples);
                (
                    select_k_least_loaded(&samples, loads, k, rng),
                    probes as u64,
                )
            }
            PlacementStrategy::KdChoice { d } => {
                let mut samples = Vec::with_capacity(d);
                fill_with_replacement(rng, n, d, &mut samples);
                (select_k_least_loaded(&samples, loads, k, rng), d as u64)
            }
            PlacementStrategy::LateBinding { .. } => {
                unreachable!("late binding is event-driven; handled by the simulator")
            }
        }
    }

    /// The vector analogue of [`PlacementStrategy::choose_workers`]:
    /// workers carry `dims`-dimensional load vectors (`loads_strided[w *
    /// dims + j]`, a possibly stale snapshot) and optional per-dimension
    /// capacities in the same strided layout; the job's `k` tasks share
    /// one `demand` vector and compete on `objective` keys instead of
    /// scalar queue lengths.
    ///
    /// **RNG contract:** draw for draw identical to the scalar method —
    /// the same `fill_with_replacement` probe batches, one tie-break per
    /// tentative slot in sorted order (batch/kd), the same reservoir
    /// tie-breaking (per-task). With `dims = 1`, the scalar objective,
    /// and unit demand, keys are the scalar heights as integer `f64`s,
    /// so the chosen workers are bit-identical to the scalar method on
    /// the same stream (locked by test).
    ///
    /// # Panics
    ///
    /// Panics if the strided slices are not multiples of `dims`.
    /// [`PlacementStrategy::LateBinding`] is unreachable here exactly as
    /// in the scalar method: it makes no one-shot worker choice — the
    /// simulator drives its reservations event by event.
    #[allow(clippy::too_many_arguments)]
    pub fn choose_workers_vector<R: RngCore + ?Sized>(
        &self,
        loads_strided: &[u32],
        dims: usize,
        caps_strided: Option<&[u32]>,
        demand: &[u32],
        objective: &PlacementObjective,
        k: usize,
        rng: &mut R,
    ) -> (Vec<usize>, u64) {
        assert!(
            dims >= 1 && loads_strided.len().is_multiple_of(dims),
            "strided loads must be a multiple of dims"
        );
        assert_eq!(demand.len(), dims, "demand/dims mismatch");
        let n = loads_strided.len() / dims;
        match *self {
            PlacementStrategy::Random => {
                let mut chosen = Vec::with_capacity(k);
                fill_with_replacement(rng, n, k, &mut chosen);
                (chosen, 0)
            }
            PlacementStrategy::PerTaskDChoice { d } => {
                let mut chosen = Vec::with_capacity(k);
                let mut samples = Vec::with_capacity(d);
                for _ in 0..k {
                    fill_with_replacement(rng, n, d, &mut samples);
                    let idx = kdchoice_prng::sample::random_argmin(rng, &samples, |&w| {
                        let load = &loads_strided[w * dims..(w + 1) * dims];
                        let caps = caps_strided.map(|c| &c[w * dims..(w + 1) * dims]);
                        TotalF64(objective.tentative_key(load, demand, 1, caps))
                    })
                    .expect("d >= 1");
                    chosen.push(samples[idx]);
                }
                (chosen, (k * d) as u64)
            }
            PlacementStrategy::BatchSampling { probes_per_task } => {
                let probes = probes_per_task * k;
                let mut samples = Vec::with_capacity(probes);
                fill_with_replacement(rng, n, probes, &mut samples);
                (
                    select_k_least_loaded_vector(
                        &samples,
                        loads_strided,
                        dims,
                        caps_strided,
                        demand,
                        objective,
                        k,
                        rng,
                    ),
                    probes as u64,
                )
            }
            PlacementStrategy::KdChoice { d } => {
                let mut samples = Vec::with_capacity(d);
                fill_with_replacement(rng, n, d, &mut samples);
                (
                    select_k_least_loaded_vector(
                        &samples,
                        loads_strided,
                        dims,
                        caps_strided,
                        demand,
                        objective,
                        k,
                        rng,
                    ),
                    d as u64,
                )
            }
            PlacementStrategy::LateBinding { .. } => {
                unreachable!("late binding is event-driven; handled by the simulator")
            }
        }
    }
}

impl std::fmt::Display for PlacementStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Selects destinations for `k` tasks from `samples` (worker indices, with
/// multiplicity) under the paper's rule: a worker sampled `m` times receives
/// at most `m` tasks, and tasks go to the least loaded tentative slots
/// (height = load + occurrence), ties broken randomly.
///
/// This is the (k,d)-choice round kernel operating on an arbitrary load
/// slice instead of a `LoadVector`, shared by the batch-sampling and
/// (k,d)-choice strategies.
///
/// # Panics
///
/// Panics if `k > samples.len()`.
///
/// ```
/// use kdchoice_scheduler::select_k_least_loaded;
/// use kdchoice_prng::Xoshiro256PlusPlus;
///
/// let loads = [3, 0, 5];
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// // Worker 1 sampled twice: both tasks go there (heights 1 and 2 < 4).
/// let w = select_k_least_loaded(&[0, 1, 1], &loads, 2, &mut rng);
/// assert_eq!(w, vec![1, 1]);
/// ```
pub fn select_k_least_loaded<R: RngCore + ?Sized>(
    samples: &[usize],
    loads: &[u32],
    k: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert!(
        k <= samples.len(),
        "cannot place {k} tasks on {} slots",
        samples.len()
    );
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    // (height, random key, worker)
    let mut slots: Vec<(u32, u64, usize)> = Vec::with_capacity(sorted.len());
    let mut i = 0;
    while i < sorted.len() {
        let w = sorted[i];
        let base = loads[w];
        let mut occ = 0u32;
        while i < sorted.len() && sorted[i] == w {
            occ += 1;
            slots.push((base + occ, rng.next_u64(), w));
            i += 1;
        }
    }
    if k < slots.len() {
        slots.select_nth_unstable_by(k - 1, |a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    }
    slots[..k].iter().map(|&(_, _, w)| w).collect()
}

/// [`select_k_least_loaded`] over D-dimensional worker loads: the
/// `occ`-th tentative task of a worker sampled with multiplicity is
/// keyed at `objective(load + occ · demand)`, and the `k` smallest
/// `(key, tie)` slots win under `total_cmp`. Exactly one `rng.next_u64()`
/// tie-break per tentative slot in sorted-sample order — the scalar
/// kernel's RNG contract, which is what makes the dims=1 path
/// stream-identical.
///
/// `loads_strided`/`caps_strided` use the `[w * dims + j]` layout of
/// `kdchoice_core::VectorLoad::loads_strided`.
///
/// # Panics
///
/// Panics if `k > samples.len()` or the strided slices are not
/// multiples of `dims`.
#[allow(clippy::too_many_arguments)]
pub fn select_k_least_loaded_vector<R: RngCore + ?Sized>(
    samples: &[usize],
    loads_strided: &[u32],
    dims: usize,
    caps_strided: Option<&[u32]>,
    demand: &[u32],
    objective: &PlacementObjective,
    k: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert!(
        k <= samples.len(),
        "cannot place {k} tasks on {} slots",
        samples.len()
    );
    assert!(
        dims >= 1 && loads_strided.len().is_multiple_of(dims),
        "strided loads must be a multiple of dims"
    );
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    // (objective key, random tie-break, worker)
    let mut slots: Vec<(f64, u64, usize)> = Vec::with_capacity(sorted.len());
    let mut i = 0;
    while i < sorted.len() {
        let w = sorted[i];
        let load = &loads_strided[w * dims..(w + 1) * dims];
        let caps = caps_strided.map(|c| &c[w * dims..(w + 1) * dims]);
        let mut occ = 0u32;
        while i < sorted.len() && sorted[i] == w {
            occ += 1;
            slots.push((
                objective.tentative_key(load, demand, occ, caps),
                rng.next_u64(),
                w,
            ));
            i += 1;
        }
    }
    if k < slots.len() {
        slots.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    }
    slots[..k].iter().map(|&(_, _, w)| w).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_prng::Xoshiro256PlusPlus;

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = [
            PlacementStrategy::Random,
            PlacementStrategy::PerTaskDChoice { d: 2 },
            PlacementStrategy::BatchSampling { probes_per_task: 2 },
            PlacementStrategy::KdChoice { d: 5 },
        ]
        .iter()
        .map(|s| s.name().into_owned())
        .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(PlacementStrategy::Random.to_string(), "random");
    }

    #[test]
    fn select_respects_multiplicity() {
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        let loads = [0, 0, 0, 0];
        // Worker 0 sampled once, cannot receive both tasks even though it
        // stays least loaded after one assignment... heights break the tie:
        // slot heights are 1 (w0), 1 (w1): both tasks spread out.
        let w = select_k_least_loaded(&[0, 1], &loads, 2, &mut rng);
        let mut sorted = w.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn select_prefers_low_load() {
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let loads = [9, 9, 0, 9];
        for _ in 0..50 {
            let w = select_k_least_loaded(&[0, 1, 2, 3], &loads, 1, &mut rng);
            assert_eq!(w, vec![2]);
        }
    }

    #[test]
    fn select_k_equals_slots_returns_all() {
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        let loads = [1, 2];
        let mut w = select_k_least_loaded(&[0, 1, 0], &loads, 3, &mut rng);
        w.sort_unstable();
        assert_eq!(w, vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn select_rejects_k_above_slots() {
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let _ = select_k_least_loaded(&[0], &[0], 2, &mut rng);
    }

    #[test]
    fn choose_workers_counts_probes() {
        let mut rng = Xoshiro256PlusPlus::from_u64(6);
        let loads = vec![0u32; 16];
        let (w, p) = PlacementStrategy::Random.choose_workers(&loads, 4, &mut rng);
        assert_eq!((w.len(), p), (4, 0));
        let (w, p) = PlacementStrategy::PerTaskDChoice { d: 3 }.choose_workers(&loads, 4, &mut rng);
        assert_eq!((w.len(), p), (4, 12));
        let (w, p) = PlacementStrategy::BatchSampling { probes_per_task: 2 }
            .choose_workers(&loads, 4, &mut rng);
        assert_eq!((w.len(), p), (4, 8));
        let (w, p) = PlacementStrategy::KdChoice { d: 5 }.choose_workers(&loads, 4, &mut rng);
        assert_eq!((w.len(), p), (4, 5));
    }

    #[test]
    fn batch_sampling_avoids_hot_workers() {
        // One cold worker among hot ones: batch sampling with enough probes
        // should route at least one task to it almost always.
        let mut rng = Xoshiro256PlusPlus::from_u64(7);
        let mut loads = vec![10u32; 32];
        loads[17] = 0;
        let mut hits = 0;
        let trials = 200;
        for _ in 0..trials {
            let (w, _) = PlacementStrategy::BatchSampling { probes_per_task: 8 }
                .choose_workers(&loads, 4, &mut rng);
            if w.contains(&17) {
                hits += 1;
            }
        }
        // P(17 sampled in 32 probes) = 1 - (31/32)^32 ≈ 0.64; if sampled it
        // is always chosen (load 0).
        assert!(hits > trials / 3, "cold worker hit only {hits}/{trials}");
    }

    #[test]
    #[should_panic(expected = "needs d >= k")]
    fn kd_strategy_validates_d_at_least_k() {
        PlacementStrategy::KdChoice { d: 2 }.validate(4, 10);
    }

    #[test]
    fn vector_choice_at_dims_1_matches_scalar_streams_and_winners() {
        // The dims=1 contract at the kernel level: same RNG stream in,
        // same workers out, same stream position after — for every
        // one-shot strategy.
        let loads: Vec<u32> = (0..32).map(|w| (w * 7 % 5) as u32).collect();
        for (label, strategy) in [
            ("random", PlacementStrategy::Random),
            ("per-task", PlacementStrategy::PerTaskDChoice { d: 3 }),
            (
                "batch",
                PlacementStrategy::BatchSampling { probes_per_task: 2 },
            ),
            ("kd", PlacementStrategy::KdChoice { d: 5 }),
        ] {
            let mut rng_a = Xoshiro256PlusPlus::from_u64(42);
            let mut rng_b = Xoshiro256PlusPlus::from_u64(42);
            let (scalar, probes_a) = strategy.choose_workers(&loads, 4, &mut rng_a);
            let (vector, probes_b) = strategy.choose_workers_vector(
                &loads,
                1,
                None,
                &[1],
                &PlacementObjective::Scalar,
                4,
                &mut rng_b,
            );
            assert_eq!(scalar, vector, "{label}: winners diverged");
            assert_eq!(probes_a, probes_b, "{label}: probe counts diverged");
            assert_eq!(
                rng_a.next_u64(),
                rng_b.next_u64(),
                "{label}: RNG streams desynced"
            );
        }
    }

    #[test]
    fn vector_select_prefers_balanced_worker_under_max_norm() {
        // Worker 0 is scalar-lighter (sum 4 < 6) but spiked on dim 0;
        // max-norm placement of a (1,1) demand must prefer the balanced
        // worker 1, while the scalar objective prefers worker 0.
        let loads = [4, 0, 3, 3]; // dims = 2: w0 = (4,0), w1 = (3,3)
        let demand = [1, 1];
        for _ in 0..20 {
            let mut rng = Xoshiro256PlusPlus::from_u64(9);
            let w = select_k_least_loaded_vector(
                &[0, 1],
                &loads,
                2,
                None,
                &demand,
                &PlacementObjective::MaxNorm,
                1,
                &mut rng,
            );
            assert_eq!(w, vec![1]);
            let w = select_k_least_loaded_vector(
                &[0, 1],
                &loads,
                2,
                None,
                &demand,
                &PlacementObjective::Scalar,
                1,
                &mut rng,
            );
            assert_eq!(w, vec![0]);
        }
    }

    #[test]
    fn vector_select_capacity_objective_prefers_fat_worker() {
        // Same loads, but worker 0 has 8x capacity on every dimension:
        // normalized load (6/8, 2/8) beats worker 1's (1,1).
        let loads = [6, 2, 1, 1];
        let caps = [8, 8, 1, 1];
        let mut rng = Xoshiro256PlusPlus::from_u64(10);
        let w = select_k_least_loaded_vector(
            &[0, 1],
            &loads,
            2,
            Some(&caps),
            &[1, 1],
            &PlacementObjective::NormalizedByCapacity,
            1,
            &mut rng,
        );
        assert_eq!(w, vec![0]);
    }

    #[test]
    #[should_panic(expected = "event-driven")]
    fn late_binding_makes_no_one_shot_vector_choice() {
        let mut rng = Xoshiro256PlusPlus::from_u64(11);
        let _ = PlacementStrategy::LateBinding { probes_per_task: 2 }.choose_workers_vector(
            &[0, 0],
            1,
            None,
            &[1],
            &PlacementObjective::Scalar,
            1,
            &mut rng,
        );
    }
}
