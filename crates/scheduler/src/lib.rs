//! Parallel job scheduling with (k,d)-choice — the paper's first
//! application (§1.3).
//!
//! > "Suppose that a job consists of k tasks to be scheduled in parallel,
//! > and each task issues d random probes individually (as in d-choice). In
//! > this case, it is likely that there will be a ball/task whose d possible
//! > destinations are all heavily loaded. Since a job's completion time is
//! > determined by the task finishing last, the performance of the standard
//! > multiple choice degrades as a job's parallelism increases. Our
//! > (k,d)-choice model solves this problem by letting k tasks share
//! > information across all the probes in a job."
//!
//! This crate simulates exactly that scenario: a cluster of FIFO workers, a
//! Poisson stream of jobs of `k` parallel tasks each, and pluggable probing
//! strategies ([`PlacementStrategy`]):
//!
//! * [`PlacementStrategy::Random`] — no probing;
//! * [`PlacementStrategy::PerTaskDChoice`] — the degraded per-task d-choice
//!   described above;
//! * [`PlacementStrategy::BatchSampling`] — Sparrow's batch sampling
//!   (reference \[12\]): probe `d·k` workers, place the `k` tasks on the `k`
//!   least loaded — which is precisely (k, d·k)-choice;
//! * [`PlacementStrategy::KdChoice`] — the paper's process with a probe
//!   budget `d` decoupled from `k` (e.g. `d = k+1` for near-minimal message
//!   cost).
//!
//! A job's **response time** is the completion time of its last task; the
//! experiment regenerating the §1.3 claim compares tail response times at
//! matched or lower message budgets.
//!
//! **Multidimensional jobs** ([`simulate_vector`]): jobs may carry a
//! D-dimensional resource demand vector (CPU/memory/IO…, drawn once per
//! job from a `DemandDistribution` and shared by its `k` tasks), workers
//! accumulate demand in a `kdchoice_core::VectorLoad` and may carry
//! per-dimension capacities, and probes compete on a
//! [`kdchoice_core::PlacementObjective`] key (max-norm, weighted norm,
//! capacity-normalized) instead of the scalar queue length. Queue
//! *lengths* (task counts) still drive the FIFO service model — demand
//! vectors shape only the placement decision and the per-dimension gap
//! observables. At `dims = 1` with the scalar objective and unit demand
//! the vector simulation is bit-identical to [`simulate`] (locked by
//! test). Late binding is event-driven rather than one-shot: a
//! reservation carries its job's demand vector from enqueue to claim or
//! cancellation, so probed loads include reserved demand exactly as the
//! scalar path's queue lengths include reservations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod placement;
mod scenario;
mod workload;

pub use placement::{select_k_least_loaded, select_k_least_loaded_vector, PlacementStrategy};
pub use scenario::{SchedulerExperiment, SchedulerScenario};
pub use workload::ServiceDistribution;

use std::collections::VecDeque;

use kdchoice_core::{BinStore, LoadVector, PlacementObjective, VectorLoad};
use kdchoice_prng::demand::DemandDistribution;
use kdchoice_prng::dist::Exponential;
use kdchoice_prng::Xoshiro256PlusPlus;
use kdchoice_sim::{Clock, EventQueue, TimeWeighted};
use kdchoice_stats::quantile::quantiles;
use kdchoice_stats::Summary;
use rand::Rng;

/// Configuration of one cluster-scheduling simulation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClusterConfig {
    /// Number of worker machines.
    pub workers: usize,
    /// Tasks per job (`k` in the paper's framing).
    pub tasks_per_job: usize,
    /// Total jobs to run.
    pub jobs: usize,
    /// Poisson arrival rate (jobs per unit time).
    pub arrival_rate: f64,
    /// Per-task service time distribution.
    pub service: ServiceDistribution,
    /// Fraction of earliest-arriving jobs excluded from statistics.
    pub warmup_fraction: f64,
    /// Probe staleness: consecutive jobs in a batch of this size share one
    /// queue-length snapshot (modeling multiple independent schedulers or
    /// probe latency, as in Sparrow). `1` = perfectly fresh probes.
    pub scheduler_batch: usize,
    /// Master seed.
    pub seed: u64,
}

impl ClusterConfig {
    /// A reasonable default scenario: utilization is set via
    /// [`ClusterConfig::with_utilization`].
    pub fn new(workers: usize, tasks_per_job: usize, jobs: usize, seed: u64) -> Self {
        Self {
            workers,
            tasks_per_job,
            jobs,
            arrival_rate: 1.0,
            service: ServiceDistribution::Exponential { mean: 1.0 },
            warmup_fraction: 0.1,
            scheduler_batch: 1,
            seed,
        }
    }

    /// Makes probes stale: batches of `batch` consecutive jobs share one
    /// queue-length snapshot (Sparrow's multi-scheduler race).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    #[must_use]
    pub fn with_scheduler_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "scheduler batch must be at least 1");
        self.scheduler_batch = batch;
        self
    }

    /// Sets the arrival rate so that the offered load is `rho` (fraction of
    /// aggregate service capacity).
    #[must_use]
    pub fn with_utilization(mut self, rho: f64) -> Self {
        assert!(rho > 0.0 && rho < 1.0, "utilization must be in (0,1)");
        let per_job_work = self.tasks_per_job as f64 * self.service.mean();
        self.arrival_rate = rho * self.workers as f64 / per_job_work;
        self
    }

    /// Replaces the service distribution.
    #[must_use]
    pub fn with_service(mut self, service: ServiceDistribution) -> Self {
        self.service = service;
        self
    }

    /// The offered load `λ·k·E[S]/workers`.
    pub fn utilization(&self) -> f64 {
        self.arrival_rate * self.tasks_per_job as f64 * self.service.mean() / self.workers as f64
    }
}

/// The multidimensional job model driving [`simulate_vector`]: demand
/// dimensionality, the probe-comparison objective, the per-job demand
/// distribution, and optional scalar worker capacities (replicated
/// across dimensions, consumed by
/// [`PlacementObjective::NormalizedByCapacity`]).
#[derive(Debug, Clone, PartialEq)]
pub struct VectorJobProfile {
    /// Demand-vector dimensionality (1..=`kdchoice_core::MAX_DIMS`).
    pub dims: usize,
    /// The probe comparison key.
    pub objective: PlacementObjective,
    /// Per-job demand distribution (one vector per job, shared by its
    /// `k` tasks).
    pub demand: DemandDistribution,
    /// Optional per-worker capacities (one scalar per worker, replicated
    /// across dimensions). Capacities shape the *placement objective*
    /// only — the FIFO service model is unchanged.
    pub worker_capacities: Option<Vec<u32>>,
}

impl VectorJobProfile {
    /// The degenerate profile equivalent to the scalar simulation:
    /// `dims = 1`, scalar objective, unit demand, no capacities.
    pub fn scalar() -> Self {
        Self {
            dims: 1,
            objective: PlacementObjective::Scalar,
            demand: DemandDistribution::Unit,
            worker_capacities: None,
        }
    }

    /// Whether this profile exercises anything beyond the scalar path.
    pub fn is_vector(&self) -> bool {
        self.dims != 1
            || self.objective != PlacementObjective::Scalar
            || self.demand != DemandDistribution::Unit
            || self.worker_capacities.is_some()
    }
}

/// Aggregate results of one scheduling simulation.
#[derive(Debug, Clone)]
pub struct SchedulerReport {
    /// The strategy's display name.
    pub strategy: String,
    /// Jobs measured (post-warmup).
    pub jobs_measured: usize,
    /// Summary of job response times (last-task completion − arrival).
    pub response: Summary,
    /// Response-time percentiles `[p50, p90, p99]`.
    pub response_percentiles: [f64; 3],
    /// Total probe messages issued by the scheduler.
    pub probe_messages: u64,
    /// Probe messages per job.
    pub probes_per_job: f64,
    /// Time-weighted mean of total outstanding tasks in the cluster.
    pub mean_outstanding: f64,
    /// Maximum queue length (including the running task) seen at any worker.
    pub max_queue_len: u32,
    /// Peak per-dimension load gap (`max_w load_j(w) − mean_w load_j(w)`
    /// per dimension `j`), sampled right after each job's placements
    /// commit and maximized over the run. The scalar path reports the
    /// single-entry queue-length gap; [`simulate_vector`] reports one
    /// entry per demand dimension.
    pub dim_gaps: Vec<f64>,
}

/// A queue entry at a worker: a concrete task, or a late-binding
/// reservation that will claim a task (or cancel) when it reaches service.
#[derive(Debug, Clone, Copy)]
enum Entry {
    /// A task of `job` with its service time drawn at assignment.
    Task(u32, f64),
    /// A late-binding reservation for `job`.
    Reservation(u32),
}

/// One worker: a FIFO queue of entries plus the running task.
///
/// The worker's queue *length* (including the running task and pending
/// reservations — the probed "load", as in Sparrow) is not stored here:
/// it lives in the shared [`BinStore`] substrate, one bin per worker, so
/// the scheduler tracks load through the same interface as the core
/// process, the storage cluster, and the concurrent placement service.
#[derive(Debug, Default)]
struct Worker {
    /// Pending entries, not including the one in service.
    pending: VecDeque<Entry>,
    /// Job id of the task in service, if busy.
    running: Option<u32>,
}

/// Simulation events.
#[derive(Debug)]
enum Event {
    /// Job with this index arrives.
    JobArrival(u32),
    /// The running task at this worker completes.
    TaskComplete(u32),
}

/// Runs one simulation; deterministic in `(config, strategy)`.
///
/// # Panics
///
/// Panics if the configuration is unstable (utilization ≥ 1) or degenerate
/// (zero workers/jobs/tasks).
///
/// ```
/// use kdchoice_scheduler::{simulate, ClusterConfig, PlacementStrategy};
///
/// let cfg = ClusterConfig::new(100, 4, 500, 7).with_utilization(0.6);
/// let report = simulate(&cfg, PlacementStrategy::KdChoice { d: 8 });
/// assert_eq!(report.jobs_measured, 450); // 10% warmup excluded
/// assert!(report.response.mean() > 0.0);
/// ```
pub fn simulate(config: &ClusterConfig, strategy: PlacementStrategy) -> SchedulerReport {
    assert!(config.workers > 0, "need at least one worker");
    // Worker queue lengths live in the shared bin-load substrate; any
    // `BinStore` implementation slots in via `simulate_on`.
    let queue_lens = LoadVector::new(config.workers);
    simulate_on(config, strategy, queue_lens)
}

/// [`simulate`] over an explicit [`BinStore`] tracking worker queue
/// lengths (one bin per worker; must start empty).
///
/// This is the substrate seam of the service-layer refactor: the
/// default [`simulate`] plugs in a [`LoadVector`], and any other
/// implementation — e.g. `kdchoice-service`'s `ShardedStore` — produces
/// the identical simulation, since the store is driven through the
/// trait surface only (locked by a cross-substrate test).
pub fn simulate_on<B: BinStore>(
    config: &ClusterConfig,
    strategy: PlacementStrategy,
    mut queue_lens: B,
) -> SchedulerReport {
    assert!(config.workers > 0, "need at least one worker");
    assert_eq!(queue_lens.n(), config.workers, "one bin per worker");
    assert_eq!(queue_lens.total_balls(), 0, "store must start empty");
    assert!(config.tasks_per_job > 0, "need at least one task per job");
    assert!(config.jobs > 0, "need at least one job");
    assert!(
        config.utilization() < 1.0,
        "unstable configuration: utilization {:.3} >= 1",
        config.utilization()
    );
    strategy.validate(config.tasks_per_job, config.workers);

    let mut rng = Xoshiro256PlusPlus::from_u64(config.seed);
    let interarrival = Exponential::new(config.arrival_rate).expect("rate > 0");
    let mut workers: Vec<Worker> = (0..config.workers).map(|_| Worker::default()).collect();
    let mut queue = EventQueue::new();
    let mut clock = Clock::new();

    let k = config.tasks_per_job;
    let warmup = ((config.jobs as f64) * config.warmup_fraction).floor() as usize;
    let mut arrivals: Vec<f64> = vec![0.0; config.jobs];
    let mut remaining: Vec<u32> = vec![0; config.jobs];
    // Tasks launched so far per job (only consulted by late binding).
    let mut launched: Vec<u32> = vec![0; config.jobs];
    let mut responses: Vec<f64> = Vec::with_capacity(config.jobs - warmup);
    let mut probe_messages = 0u64;
    let mut outstanding = TimeWeighted::new(0.0, 0.0);
    let mut outstanding_now = 0i64;
    let mut max_queue_len = 0u32;
    let mut peak_gap = 0.0f64;
    // The probed queue-length snapshot; refreshed once per scheduler batch
    // (scheduler_batch = 1 means perfectly fresh probes).
    let mut snapshot: Vec<u32> = vec![0; config.workers];
    let mut jobs_since_refresh = 0usize;

    queue.push(interarrival.sample(&mut rng), Event::JobArrival(0));

    while let Some((t, event)) = queue.pop() {
        clock.advance_to(t);
        match event {
            Event::JobArrival(job) => {
                let job_idx = job as usize;
                arrivals[job_idx] = t;
                remaining[job_idx] = k as u32;
                if let PlacementStrategy::LateBinding { probes_per_task } = strategy {
                    // Place reservations on d·k probed workers; idle workers
                    // claim a task immediately, busy workers enqueue.
                    let probes = probes_per_task * k;
                    probe_messages += probes as u64;
                    for _ in 0..probes {
                        let w = rng.gen_range(0..config.workers);
                        let worker = &mut workers[w];
                        if worker.running.is_none() && launched[job_idx] < k as u32 {
                            launched[job_idx] += 1;
                            let service = config.service.sample(&mut rng);
                            worker.running = Some(job);
                            max_queue_len = max_queue_len.max(queue_lens.add_ball(w));
                            queue.push(t + service, Event::TaskComplete(w as u32));
                        } else if launched[job_idx] < k as u32 {
                            worker.pending.push_back(Entry::Reservation(job));
                            max_queue_len = max_queue_len.max(queue_lens.add_ball(w));
                        }
                    }
                    // Degenerate safety net: if every probe hit the same few
                    // idle workers and fewer than k tasks have homes, bind
                    // the remainder to random workers (Sparrow retries).
                    while launched[job_idx] < k as u32 {
                        let w = rng.gen_range(0..config.workers);
                        launched[job_idx] += 1;
                        let service = config.service.sample(&mut rng);
                        let worker = &mut workers[w];
                        max_queue_len = max_queue_len.max(queue_lens.add_ball(w));
                        if worker.running.is_none() {
                            worker.running = Some(job);
                            queue.push(t + service, Event::TaskComplete(w as u32));
                        } else {
                            worker.pending.push_back(Entry::Task(job, service));
                        }
                    }
                } else {
                    // Probe and choose workers for the k tasks up front,
                    // reading the (possibly stale) snapshot.
                    if jobs_since_refresh == 0 {
                        queue_lens.copy_loads_into(&mut snapshot);
                    }
                    jobs_since_refresh = (jobs_since_refresh + 1) % config.scheduler_batch;
                    let (chosen, probes) = strategy.choose_workers(&snapshot, k, &mut rng);
                    probe_messages += probes;
                    debug_assert_eq!(chosen.len(), k);
                    for &w in &chosen {
                        let service = config.service.sample(&mut rng);
                        let worker = &mut workers[w];
                        max_queue_len = max_queue_len.max(queue_lens.add_ball(w));
                        if worker.running.is_none() {
                            worker.running = Some(job);
                            queue.push(t + service, Event::TaskComplete(w as u32));
                        } else {
                            worker.pending.push_back(Entry::Task(job, service));
                        }
                    }
                }
                peak_gap = peak_gap.max(queue_lens.gap());
                outstanding_now += k as i64;
                outstanding.update(t, outstanding_now as f64);
                let next = job_idx + 1;
                if next < config.jobs {
                    queue.push(
                        t + interarrival.sample(&mut rng),
                        Event::JobArrival(next as u32),
                    );
                }
            }
            Event::TaskComplete(w) => {
                let widx = w as usize;
                let finished_job = workers[widx].running.take().expect("worker was busy");
                queue_lens.remove_ball(widx);
                outstanding_now -= 1;
                outstanding.update(t, outstanding_now as f64);
                // Pull the next runnable entry: concrete tasks run as-is;
                // reservations launch a task if their job still needs one,
                // and cancel otherwise.
                while let Some(entry) = workers[widx].pending.pop_front() {
                    match entry {
                        Entry::Task(next_job, service) => {
                            workers[widx].running = Some(next_job);
                            queue.push(t + service, Event::TaskComplete(w));
                            break;
                        }
                        Entry::Reservation(res_job) => {
                            let rj = res_job as usize;
                            if launched[rj] < k as u32 {
                                launched[rj] += 1;
                                let service = config.service.sample(&mut rng);
                                workers[widx].running = Some(res_job);
                                queue.push(t + service, Event::TaskComplete(w));
                                break;
                            }
                            // Cancelled reservation: drop and keep looking.
                            queue_lens.remove_ball(widx);
                        }
                    }
                }
                let fj = finished_job as usize;
                remaining[fj] -= 1;
                if remaining[fj] == 0 && fj >= warmup {
                    responses.push(t - arrivals[fj]);
                }
            }
        }
    }

    let response = Summary::from_iter(responses.iter().copied());
    let pct = quantiles(&responses, &[0.5, 0.9, 0.99]);
    let percentiles = if pct.len() == 3 {
        [pct[0], pct[1], pct[2]]
    } else {
        [0.0; 3]
    };
    SchedulerReport {
        strategy: strategy.name().into_owned(),
        jobs_measured: responses.len(),
        response,
        response_percentiles: percentiles,
        probe_messages,
        probes_per_job: probe_messages as f64 / config.jobs as f64,
        mean_outstanding: outstanding.average(clock.now()),
        max_queue_len,
        dim_gaps: vec![peak_gap],
    }
}

/// [`simulate`] with multidimensional job demands: jobs draw a demand
/// vector per [`VectorJobProfile::demand`] at arrival (shared by the
/// job's `k` tasks), workers accumulate demand in a
/// [`kdchoice_core::VectorLoad`], and probes compete on
/// [`VectorJobProfile::objective`] keys over a (possibly stale, per
/// `scheduler_batch`) strided load snapshot.
///
/// The FIFO service model, event ordering, and every scalar observable
/// are those of [`simulate`]; the per-job RNG stream is `demand draws →
/// probe draws → tie-break draws → service draws` (unit demand draws
/// nothing). With the [`VectorJobProfile::scalar`] profile the run is
/// **bit-identical** to [`simulate`] — same responses, probe counts,
/// queue peaks, and gap — locked by test.
///
/// [`PlacementStrategy::LateBinding`] is event-driven here exactly as
/// in [`simulate`]: reservations enqueue the job's demand vector at
/// probed workers (so probed loads include reserved demand, matching
/// the scalar path where queue lengths include reservations) and a
/// cancelled reservation subtracts the same vector it added.
///
/// # Panics
///
/// Panics under [`simulate`]'s conditions, if the objective does not
/// validate against `profile.dims`, or if a capacity map's length
/// differs from `config.workers`.
pub fn simulate_vector(
    config: &ClusterConfig,
    strategy: PlacementStrategy,
    profile: &VectorJobProfile,
) -> SchedulerReport {
    assert!(config.workers > 0, "need at least one worker");
    assert!(config.tasks_per_job > 0, "need at least one task per job");
    assert!(config.jobs > 0, "need at least one job");
    assert!(
        config.utilization() < 1.0,
        "unstable configuration: utilization {:.3} >= 1",
        config.utilization()
    );
    strategy.validate(config.tasks_per_job, config.workers);
    let dims = profile.dims;
    assert!(
        profile.objective.validate(dims),
        "objective does not validate against dims={dims}"
    );

    let mut store = match &profile.worker_capacities {
        Some(caps) => {
            assert_eq!(caps.len(), config.workers, "one capacity per worker");
            VectorLoad::with_capacities(dims, caps)
        }
        None => VectorLoad::new(dims, config.workers),
    };
    // Capacities are immutable: replicate the scalar map across
    // dimensions once (the `VectorLoad::with_capacities` layout) for the
    // snapshot-side kernel.
    let caps_strided: Option<Vec<u32>> = profile.worker_capacities.as_ref().map(|caps| {
        let mut strided = Vec::with_capacity(caps.len() * dims);
        for &c in caps {
            strided.resize(strided.len() + dims, c);
        }
        strided
    });

    let mut rng = Xoshiro256PlusPlus::from_u64(config.seed);
    let interarrival = Exponential::new(config.arrival_rate).expect("rate > 0");
    let mut workers: Vec<Worker> = (0..config.workers).map(|_| Worker::default()).collect();
    let mut queue = EventQueue::new();
    let mut clock = Clock::new();

    let k = config.tasks_per_job;
    let warmup = ((config.jobs as f64) * config.warmup_fraction).floor() as usize;
    let mut arrivals: Vec<f64> = vec![0.0; config.jobs];
    let mut remaining: Vec<u32> = vec![0; config.jobs];
    // Tasks launched so far per job (only consulted by late binding).
    let mut launched: Vec<u32> = vec![0; config.jobs];
    // Each job's demand vector, kept until its last task completes so
    // removals (including cancelled reservations) subtract exactly what
    // was added.
    let mut job_demands: Vec<u32> = vec![0; config.jobs * dims];
    let mut demand_buf: Vec<u32> = vec![0; dims];
    let mut responses: Vec<f64> = Vec::with_capacity(config.jobs - warmup);
    let mut probe_messages = 0u64;
    let mut outstanding = TimeWeighted::new(0.0, 0.0);
    let mut outstanding_now = 0i64;
    let mut max_queue_len = 0u32;
    let mut peak_dim_gaps = vec![0.0f64; dims];
    // The probed strided load snapshot; refreshed once per scheduler
    // batch, like the scalar path's queue-length snapshot.
    let mut snapshot: Vec<u32> = vec![0; config.workers * dims];
    let mut jobs_since_refresh = 0usize;

    queue.push(interarrival.sample(&mut rng), Event::JobArrival(0));

    while let Some((t, event)) = queue.pop() {
        clock.advance_to(t);
        match event {
            Event::JobArrival(job) => {
                let job_idx = job as usize;
                arrivals[job_idx] = t;
                remaining[job_idx] = k as u32;
                profile.demand.sample_into(&mut rng, dims, &mut demand_buf);
                job_demands[job_idx * dims..(job_idx + 1) * dims].copy_from_slice(&demand_buf);
                if let PlacementStrategy::LateBinding { probes_per_task } = strategy {
                    // Event-driven, as in `simulate`: reservations carry
                    // the job's demand vector so probed loads include
                    // reserved demand; idle workers claim immediately.
                    let probes = probes_per_task * k;
                    probe_messages += probes as u64;
                    for _ in 0..probes {
                        let w = rng.gen_range(0..config.workers);
                        let worker = &mut workers[w];
                        if worker.running.is_none() && launched[job_idx] < k as u32 {
                            launched[job_idx] += 1;
                            let service = config.service.sample(&mut rng);
                            worker.running = Some(job);
                            max_queue_len = max_queue_len.max(store.add(w, &demand_buf));
                            queue.push(t + service, Event::TaskComplete(w as u32));
                        } else if launched[job_idx] < k as u32 {
                            worker.pending.push_back(Entry::Reservation(job));
                            max_queue_len = max_queue_len.max(store.add(w, &demand_buf));
                        }
                    }
                    // The same safety net as the scalar path: bind any
                    // still-homeless tasks to random workers.
                    while launched[job_idx] < k as u32 {
                        let w = rng.gen_range(0..config.workers);
                        launched[job_idx] += 1;
                        let service = config.service.sample(&mut rng);
                        let worker = &mut workers[w];
                        max_queue_len = max_queue_len.max(store.add(w, &demand_buf));
                        if worker.running.is_none() {
                            worker.running = Some(job);
                            queue.push(t + service, Event::TaskComplete(w as u32));
                        } else {
                            worker.pending.push_back(Entry::Task(job, service));
                        }
                    }
                } else {
                    if jobs_since_refresh == 0 {
                        snapshot.copy_from_slice(store.loads_strided());
                    }
                    jobs_since_refresh = (jobs_since_refresh + 1) % config.scheduler_batch;
                    let (chosen, probes) = strategy.choose_workers_vector(
                        &snapshot,
                        dims,
                        caps_strided.as_deref(),
                        &demand_buf,
                        &profile.objective,
                        k,
                        &mut rng,
                    );
                    probe_messages += probes;
                    debug_assert_eq!(chosen.len(), k);
                    for &w in &chosen {
                        let service = config.service.sample(&mut rng);
                        let worker = &mut workers[w];
                        max_queue_len = max_queue_len.max(store.add(w, &demand_buf));
                        if worker.running.is_none() {
                            worker.running = Some(job);
                            queue.push(t + service, Event::TaskComplete(w as u32));
                        } else {
                            worker.pending.push_back(Entry::Task(job, service));
                        }
                    }
                }
                for (j, peak) in peak_dim_gaps.iter_mut().enumerate() {
                    *peak = peak.max(store.dim_gap(j));
                }
                outstanding_now += k as i64;
                outstanding.update(t, outstanding_now as f64);
                let next = job_idx + 1;
                if next < config.jobs {
                    queue.push(
                        t + interarrival.sample(&mut rng),
                        Event::JobArrival(next as u32),
                    );
                }
            }
            Event::TaskComplete(w) => {
                let widx = w as usize;
                let finished_job = workers[widx].running.take().expect("worker was busy");
                let fj = finished_job as usize;
                store.remove(widx, &job_demands[fj * dims..(fj + 1) * dims]);
                outstanding_now -= 1;
                outstanding.update(t, outstanding_now as f64);
                // Pull the next runnable entry: concrete tasks run as-is;
                // reservations launch a task if their job still needs one
                // (the reserved demand becomes the task's demand), and
                // cancel — subtracting their demand — otherwise.
                while let Some(entry) = workers[widx].pending.pop_front() {
                    match entry {
                        Entry::Task(next_job, service) => {
                            workers[widx].running = Some(next_job);
                            queue.push(t + service, Event::TaskComplete(w));
                            break;
                        }
                        Entry::Reservation(res_job) => {
                            let rj = res_job as usize;
                            if launched[rj] < k as u32 {
                                launched[rj] += 1;
                                let service = config.service.sample(&mut rng);
                                workers[widx].running = Some(res_job);
                                queue.push(t + service, Event::TaskComplete(w));
                                break;
                            }
                            // Cancelled reservation: drop its demand and
                            // keep looking.
                            store.remove(widx, &job_demands[rj * dims..(rj + 1) * dims]);
                        }
                    }
                }
                remaining[fj] -= 1;
                if remaining[fj] == 0 && fj >= warmup {
                    responses.push(t - arrivals[fj]);
                }
            }
        }
    }

    debug_assert!(store.check_invariants(), "vector store invariants broken");
    debug_assert_eq!(store.balls().total_balls(), 0, "tasks leaked demand");

    let response = Summary::from_iter(responses.iter().copied());
    let pct = quantiles(&responses, &[0.5, 0.9, 0.99]);
    let percentiles = if pct.len() == 3 {
        [pct[0], pct[1], pct[2]]
    } else {
        [0.0; 3]
    };
    SchedulerReport {
        strategy: strategy.name().into_owned(),
        jobs_measured: responses.len(),
        response,
        response_percentiles: percentiles,
        probe_messages,
        probes_per_job: probe_messages as f64 / config.jobs as f64,
        mean_outstanding: outstanding.average(clock.now()),
        max_queue_len,
        dim_gaps: peak_dim_gaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config(seed: u64) -> ClusterConfig {
        ClusterConfig::new(64, 4, 400, seed).with_utilization(0.7)
    }

    #[test]
    fn utilization_is_respected() {
        let cfg = base_config(1);
        assert!((cfg.utilization() - 0.7).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_config_is_rejected() {
        let mut cfg = base_config(1);
        cfg.arrival_rate *= 2.0; // utilization 1.4
        let _ = simulate(&cfg, PlacementStrategy::Random);
    }

    #[test]
    fn all_jobs_complete_and_accounting_balances() {
        let cfg = base_config(2);
        let r = simulate(&cfg, PlacementStrategy::KdChoice { d: 5 });
        assert_eq!(r.jobs_measured, 400 - 40);
        // (k,d)-choice probes d workers per job.
        assert_eq!(r.probe_messages, 400 * 5);
        assert!((r.probes_per_job - 5.0).abs() < 1e-12);
        assert!(r.response.min().unwrap() > 0.0);
        assert!(r.max_queue_len >= 1);
        assert!(r.mean_outstanding > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = base_config(3);
        let a = simulate(
            &cfg,
            PlacementStrategy::BatchSampling { probes_per_task: 2 },
        );
        let b = simulate(
            &cfg,
            PlacementStrategy::BatchSampling { probes_per_task: 2 },
        );
        assert_eq!(a.response.mean(), b.response.mean());
        assert_eq!(a.probe_messages, b.probe_messages);
        assert_eq!(a.max_queue_len, b.max_queue_len);
    }

    #[test]
    fn probing_beats_random_at_high_load() {
        let cfg = ClusterConfig::new(64, 4, 2000, 4).with_utilization(0.85);
        let rand = simulate(&cfg, PlacementStrategy::Random);
        let batch = simulate(
            &cfg,
            PlacementStrategy::BatchSampling { probes_per_task: 2 },
        );
        assert!(
            batch.response.mean() < rand.response.mean(),
            "batch {} vs random {}",
            batch.response.mean(),
            rand.response.mean()
        );
    }

    #[test]
    fn batch_sampling_improves_tail_over_per_task_probing() {
        // The §1.3 claim: sharing probes across the job's tasks reduces the
        // chance that some task lands on a loaded machine, which shows up in
        // the response-time tail. Use equal message budgets.
        let cfg = ClusterConfig::new(128, 8, 4000, 5).with_utilization(0.85);
        let per_task = simulate(&cfg, PlacementStrategy::PerTaskDChoice { d: 2 });
        let batch = simulate(
            &cfg,
            PlacementStrategy::BatchSampling { probes_per_task: 2 },
        );
        assert_eq!(per_task.probe_messages, batch.probe_messages);
        let tail_pt = per_task.response_percentiles[2];
        let tail_b = batch.response_percentiles[2];
        assert!(
            tail_b <= tail_pt * 1.05,
            "batch p99 {tail_b} should not lose to per-task p99 {tail_pt}"
        );
    }

    #[test]
    fn kd_choice_with_small_d_uses_far_fewer_messages() {
        let cfg = base_config(6);
        let kd = simulate(&cfg, PlacementStrategy::KdChoice { d: 5 }); // k+1 probes
        let batch = simulate(
            &cfg,
            PlacementStrategy::BatchSampling { probes_per_task: 2 },
        );
        assert!(kd.probe_messages <= batch.probe_messages);
    }

    #[test]
    fn deterministic_service_works() {
        let cfg = base_config(7).with_service(ServiceDistribution::Deterministic { value: 0.5 });
        let r = simulate(&cfg, PlacementStrategy::Random);
        assert!(r.response.min().unwrap() >= 0.5 - 1e-12);
    }

    #[test]
    fn late_binding_completes_every_job() {
        let cfg = base_config(8);
        let r = simulate(&cfg, PlacementStrategy::LateBinding { probes_per_task: 2 });
        assert_eq!(r.jobs_measured, 400 - 40);
        assert_eq!(r.probe_messages, 400 * 2 * 4);
        assert!(r.response.mean() > 0.0);
    }

    #[test]
    fn late_binding_is_deterministic() {
        let cfg = base_config(9);
        let a = simulate(&cfg, PlacementStrategy::LateBinding { probes_per_task: 2 });
        let b = simulate(&cfg, PlacementStrategy::LateBinding { probes_per_task: 2 });
        assert_eq!(a.response.mean(), b.response.mean());
    }

    #[test]
    fn late_binding_beats_random_but_not_perfect_information_batch() {
        // In Sparrow, late binding wins because probed queue lengths are
        // stale and task durations unknown. This simulator gives batch
        // sampling *perfect instantaneous* queue information, so batch
        // sampling retains the information advantage — late binding must
        // still clearly beat unprobed random placement. (Recorded as a
        // substitution note in DESIGN.md.)
        let cfg = ClusterConfig::new(128, 8, 4000, 10).with_utilization(0.9);
        let random = simulate(&cfg, PlacementStrategy::Random);
        let late = simulate(&cfg, PlacementStrategy::LateBinding { probes_per_task: 2 });
        assert!(
            late.response.mean() < random.response.mean(),
            "late binding mean {} vs random mean {}",
            late.response.mean(),
            random.response.mean()
        );
    }

    #[test]
    fn stale_probes_degrade_batch_sampling_monotonically() {
        // With scheduler_batch > 1, many jobs act on one queue snapshot and
        // pile onto the same apparently-idle workers (Sparrow's
        // multi-scheduler race). Batch sampling degrades as the snapshot
        // ages; late binding never trusts a snapshot and is unaffected.
        let base = ClusterConfig::new(128, 8, 3000, 12).with_utilization(0.9);
        let mean_at = |batch: usize, s: PlacementStrategy| {
            simulate(&base.clone().with_scheduler_batch(batch), s)
                .response
                .mean()
        };
        let bs = PlacementStrategy::BatchSampling { probes_per_task: 2 };
        let lb = PlacementStrategy::LateBinding { probes_per_task: 2 };
        let fresh = mean_at(1, bs);
        let stale32 = mean_at(32, bs);
        let stale256 = mean_at(256, bs);
        assert!(
            fresh < stale32 && stale32 < stale256,
            "staleness must degrade batch sampling monotonically: {fresh:.2} {stale32:.2} {stale256:.2}"
        );
        // Late binding is immune to snapshot staleness (it never reads one).
        let late_fresh = mean_at(1, lb);
        let late_stale = mean_at(256, lb);
        assert!((late_fresh - late_stale).abs() < 1e-9);
        // At extreme staleness late binding overtakes batch sampling on the
        // mean — Sparrow's regime.
        assert!(
            late_stale < stale256,
            "late binding {late_stale:.2} should beat extremely stale batch sampling {stale256:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_scheduler_batch_rejected() {
        let _ = base_config(13).with_scheduler_batch(0);
    }

    #[test]
    fn sharded_store_substrate_reproduces_load_vector_run() {
        // The substrate seam holds: driving the identical simulation on a
        // ShardedStore instead of a LoadVector changes nothing — the
        // store is consulted only through the BinStore surface and the
        // RNG stream never touches it.
        use kdchoice_service::ShardedStore;
        let cfg = base_config(14);
        for strategy in [
            PlacementStrategy::KdChoice { d: 5 },
            PlacementStrategy::LateBinding { probes_per_task: 2 },
        ] {
            let a = simulate(&cfg, strategy);
            let b = simulate_on(&cfg, strategy, ShardedStore::new(cfg.workers, 4));
            assert_eq!(a.response.mean(), b.response.mean());
            assert_eq!(a.response_percentiles, b.response_percentiles);
            assert_eq!(a.probe_messages, b.probe_messages);
            assert_eq!(a.max_queue_len, b.max_queue_len);
            assert_eq!(a.mean_outstanding, b.mean_outstanding);
        }
    }

    #[test]
    fn vector_simulation_at_dims_1_is_bit_identical_to_scalar() {
        // The tentpole lock at the simulator level: the degenerate
        // profile reproduces `simulate` bit for bit, for every strategy
        // — including event-driven late binding — same RNG draws, same
        // winners, same report.
        let cfg = base_config(20);
        let profile = VectorJobProfile::scalar();
        assert!(!profile.is_vector());
        for strategy in [
            PlacementStrategy::Random,
            PlacementStrategy::PerTaskDChoice { d: 2 },
            PlacementStrategy::BatchSampling { probes_per_task: 2 },
            PlacementStrategy::KdChoice { d: 5 },
            PlacementStrategy::LateBinding { probes_per_task: 2 },
        ] {
            let scalar = simulate(&cfg, strategy);
            let vector = simulate_vector(&cfg, strategy, &profile);
            assert_eq!(scalar.jobs_measured, vector.jobs_measured, "{strategy}");
            assert_eq!(scalar.response.mean(), vector.response.mean(), "{strategy}");
            assert_eq!(
                scalar.response_percentiles, vector.response_percentiles,
                "{strategy}"
            );
            assert_eq!(scalar.probe_messages, vector.probe_messages, "{strategy}");
            assert_eq!(scalar.max_queue_len, vector.max_queue_len, "{strategy}");
            assert_eq!(
                scalar.mean_outstanding, vector.mean_outstanding,
                "{strategy}"
            );
            assert_eq!(scalar.dim_gaps, vector.dim_gaps, "{strategy}");
            assert_eq!(vector.dim_gaps.len(), 1, "{strategy}");
        }
    }

    #[test]
    fn vector_jobs_complete_and_report_per_dim_gaps() {
        let cfg = base_config(21);
        let profile = VectorJobProfile {
            dims: 3,
            objective: PlacementObjective::MaxNorm,
            demand: DemandDistribution::parse("anti", 4).unwrap(),
            worker_capacities: None,
        };
        assert!(profile.is_vector());
        let r = simulate_vector(&cfg, PlacementStrategy::KdChoice { d: 5 }, &profile);
        assert_eq!(r.jobs_measured, 400 - 40);
        assert_eq!(r.probe_messages, 400 * 5);
        assert_eq!(r.dim_gaps.len(), 3);
        assert!(
            r.dim_gaps.iter().all(|&g| g > 0.0),
            "every dimension saw imbalance: {:?}",
            r.dim_gaps
        );
        // Deterministic in (config, strategy, profile).
        let again = simulate_vector(&cfg, PlacementStrategy::KdChoice { d: 5 }, &profile);
        assert_eq!(r.response.mean(), again.response.mean());
        assert_eq!(r.dim_gaps, again.dim_gaps);
    }

    #[test]
    fn vector_capacities_drive_the_capacity_objective() {
        let cfg = base_config(22);
        let profile = VectorJobProfile {
            dims: 2,
            objective: PlacementObjective::NormalizedByCapacity,
            demand: DemandDistribution::parse("uniform", 3).unwrap(),
            worker_capacities: Some(kdchoice_core::two_tier_capacities(cfg.workers, 4, 4)),
        };
        let r = simulate_vector(&cfg, PlacementStrategy::KdChoice { d: 5 }, &profile);
        assert_eq!(r.jobs_measured, 400 - 40);
        assert_eq!(r.dim_gaps.len(), 2);
    }

    #[test]
    fn vector_late_binding_completes_jobs_and_conserves_demand() {
        // The event-driven vector path: reservations carry demand, claims
        // convert it, cancellations subtract it. Every job completes, the
        // per-dimension gaps are populated, and the run is deterministic.
        // (The end-of-run debug asserts inside `simulate_vector` check
        // that no cancelled reservation leaked demand.)
        let cfg = base_config(23);
        let profile = VectorJobProfile {
            dims: 3,
            objective: PlacementObjective::MaxNorm,
            demand: DemandDistribution::parse("anti", 4).unwrap(),
            worker_capacities: None,
        };
        let strategy = PlacementStrategy::LateBinding { probes_per_task: 2 };
        let r = simulate_vector(&cfg, strategy, &profile);
        assert_eq!(r.jobs_measured, 400 - 40);
        assert_eq!(r.probe_messages, 400 * 2 * 4);
        assert_eq!(r.dim_gaps.len(), 3);
        assert!(r.dim_gaps.iter().all(|&g| g > 0.0));
        let again = simulate_vector(&cfg, strategy, &profile);
        assert_eq!(r.response.mean(), again.response.mean());
        assert_eq!(r.dim_gaps, again.dim_gaps);
    }

    #[test]
    #[should_panic(expected = "objective does not validate")]
    fn vector_mode_rejects_mismatched_weighted_norm() {
        let cfg = base_config(24);
        let profile = VectorJobProfile {
            dims: 3,
            objective: PlacementObjective::WeightedNorm(vec![1.0, 0.5]),
            demand: DemandDistribution::Unit,
            worker_capacities: None,
        };
        let _ = simulate_vector(&cfg, PlacementStrategy::KdChoice { d: 5 }, &profile);
    }

    #[test]
    fn late_binding_survives_probe_collisions() {
        // Tiny cluster, large jobs: many probes collide; the safety net
        // must still launch exactly k tasks per job.
        let cfg = ClusterConfig::new(3, 4, 100, 11).with_utilization(0.5);
        let r = simulate(&cfg, PlacementStrategy::LateBinding { probes_per_task: 1 });
        assert_eq!(r.jobs_measured, 90);
    }
}
