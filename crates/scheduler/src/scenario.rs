//! The cluster-scheduling simulation as a [`kdchoice_expt::Scenario`]
//! named `scheduler`.
//!
//! Replaces the bespoke serial loops the experiment binaries used to
//! carry: a grid of `(workers, k, utilization, strategy, ...)` cells runs
//! through the shared work-stealing `SweepRunner`, each cell a
//! deterministic [`simulate`] call.

use kdchoice_core::{two_tier_capacities, PlacementObjective, MAX_DIMS};
use kdchoice_expt::{Axis, Fields, GridError, GridSpec, Params, Scenario, Value};
use kdchoice_prng::demand::DemandDistribution;

use crate::{
    simulate, simulate_vector, ClusterConfig, PlacementStrategy, SchedulerReport,
    ServiceDistribution, VectorJobProfile,
};

/// Config of one scheduling cell: the cluster shape, the placement
/// strategy under test, and the (possibly degenerate) multidimensional
/// job profile.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerExperiment {
    /// The cluster and workload shape (embeds the master seed).
    pub cluster: ClusterConfig,
    /// The probing strategy under test.
    pub strategy: PlacementStrategy,
    /// The demand-vector model; [`VectorJobProfile::scalar`] selects the
    /// classic scalar simulation.
    pub profile: VectorJobProfile,
}

/// The §1.3 cluster-scheduling experiment family.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerScenario;

impl Scenario for SchedulerScenario {
    type Config = SchedulerExperiment;
    type Record = SchedulerReport;

    fn name(&self) -> &'static str {
        "scheduler"
    }

    fn description(&self) -> &'static str {
        "cluster job scheduling: k parallel tasks per job, pluggable probing (section 1.3)"
    }

    fn run(&self, config: &Self::Config, seed: u64) -> SchedulerReport {
        let mut cluster = config.cluster.clone();
        cluster.seed = seed;
        if config.profile.is_vector() {
            simulate_vector(&cluster, config.strategy, &config.profile)
        } else {
            simulate(&cluster, config.strategy)
        }
    }

    fn base_seed(&self, config: &Self::Config) -> u64 {
        config.cluster.seed
    }

    fn config_fields(&self, config: &Self::Config) -> Fields {
        vec![
            ("workers", Value::U64(config.cluster.workers as u64)),
            ("k", Value::U64(config.cluster.tasks_per_job as u64)),
            ("jobs", Value::U64(config.cluster.jobs as u64)),
            ("utilization", Value::F64(config.cluster.utilization())),
            ("batch", Value::U64(config.cluster.scheduler_batch as u64)),
            ("strategy", Value::Str(config.strategy.name())),
            ("dims", Value::U64(config.profile.dims as u64)),
            (
                "objective",
                Value::Str(config.profile.objective.name().into()),
            ),
            ("demand", Value::Str(config.profile.demand.name().into())),
            (
                "caps",
                Value::Str(
                    if config.profile.worker_capacities.is_some() {
                        "two_tier"
                    } else {
                        "none"
                    }
                    .into(),
                ),
            ),
        ]
    }

    fn record_fields(&self, record: &Self::Record) -> Fields {
        let max_dim_gap = record.dim_gaps.iter().cloned().fold(0.0f64, f64::max);
        vec![
            ("jobs_measured", Value::U64(record.jobs_measured as u64)),
            ("mean_response", Value::F64(record.response.mean())),
            ("p50_response", Value::F64(record.response_percentiles[0])),
            ("p90_response", Value::F64(record.response_percentiles[1])),
            ("p99_response", Value::F64(record.response_percentiles[2])),
            ("probe_messages", Value::U64(record.probe_messages)),
            ("probes_per_job", Value::F64(record.probes_per_job)),
            ("mean_outstanding", Value::F64(record.mean_outstanding)),
            ("max_queue_len", Value::U64(u64::from(record.max_queue_len))),
            ("max_dim_gap", Value::F64(max_dim_gap)),
        ]
    }

    fn axes(&self) -> &'static [Axis] {
        const AXES: &[Axis] = &[
            Axis::new("workers", "worker machines (default 64)"),
            Axis::new("k", "tasks per job (default 4)"),
            Axis::new("jobs", "jobs to run (default 2000)"),
            Axis::new("rho", "offered load in (0,1) (default 0.8)"),
            Axis::new(
                "strategy",
                "random | per-task | batch | kd | late (default kd)",
            ),
            Axis::new(
                "d",
                "probe parameter: per-task d / probes-per-task / total kd probes (default k+1 for kd, 2 otherwise)",
            ),
            Axis::new("batch", "jobs sharing one probe snapshot (default 1)"),
            Axis::new("service", "service distribution: exp | det (default exp, mean 1)"),
            Axis::new(
                "dims",
                "job demand-vector dimensionality, 1..=8 (default 1 = scalar)",
            ),
            Axis::new(
                "objective",
                "probe comparison key: scalar | max_norm | weighted | capacity (default scalar)",
            ),
            Axis::new(
                "demand",
                "job demand distribution: unit | uniform | correlated | anti (default unit)",
            ),
            Axis::new(
                "demand_max",
                "largest per-dimension demand of non-unit distributions (default 4)",
            ),
            Axis::new(
                "caps",
                "worker capacities: none | two_tier (default none; two_tier = every 4th worker 4x)",
            ),
            Axis::new("seed", "master seed (default: --seed)"),
        ];
        AXES
    }

    fn config_from_params(&self, params: &Params) -> Result<Self::Config, GridError> {
        let workers = params.get_usize("workers", 64)?;
        let k = params.get_usize("k", 4)?;
        let jobs = params.get_usize("jobs", 2000)?;
        if workers == 0 || k == 0 || jobs == 0 {
            return Err(params.bad_value("workers", "workers, k, and jobs all >= 1"));
        }
        let rho = params.get_f64("rho", 0.8)?;
        if !(rho > 0.0 && rho < 1.0) {
            return Err(params.bad_value("rho", "a utilization in (0,1)"));
        }
        let strategy = match params.get_raw("strategy").unwrap_or("kd") {
            "random" => PlacementStrategy::Random,
            "per-task" => PlacementStrategy::PerTaskDChoice {
                d: params.get_usize("d", 2)?,
            },
            "batch" => PlacementStrategy::BatchSampling {
                probes_per_task: params.get_usize("d", 2)?,
            },
            "kd" => {
                let d = params.get_usize("d", k + 1)?;
                if d < k {
                    return Err(params.bad_value("d", &format!("d >= k for kd (k={k})")));
                }
                PlacementStrategy::KdChoice { d }
            }
            "late" => PlacementStrategy::LateBinding {
                probes_per_task: params.get_usize("d", 2)?,
            },
            _ => return Err(params.bad_value("strategy", "random | per-task | batch | kd | late")),
        };
        let service = match params.get_raw("service").unwrap_or("exp") {
            "exp" => ServiceDistribution::Exponential { mean: 1.0 },
            "det" => ServiceDistribution::Deterministic { value: 1.0 },
            _ => return Err(params.bad_value("service", "exp | det")),
        };
        let batch = params.get_usize("batch", 1)?;
        if batch == 0 {
            return Err(params.bad_value("batch", "at least 1"));
        }
        let dims = params.get_usize("dims", 1)?;
        if dims == 0 || dims > MAX_DIMS {
            return Err(params.bad_value("dims", &format!("1 <= dims <= {MAX_DIMS}")));
        }
        let objective =
            PlacementObjective::parse(params.get_raw("objective").unwrap_or("scalar"), dims)
                .ok_or_else(|| {
                    params.bad_value("objective", "scalar | max_norm | weighted | capacity")
                })?;
        let demand_max = params.get_u32("demand_max", 4)?;
        if demand_max == 0 {
            return Err(params.bad_value("demand_max", "a per-dimension demand of at least 1"));
        }
        let demand =
            DemandDistribution::parse(params.get_raw("demand").unwrap_or("unit"), demand_max)
                .map_err(|_| params.bad_value("demand", "unit | uniform | correlated | anti"))?;
        let worker_capacities = match params.get_raw("caps").unwrap_or("none") {
            "none" => None,
            "two_tier" => Some(two_tier_capacities(workers, 4, 4)),
            _ => return Err(params.bad_value("caps", "none | two_tier")),
        };
        let profile = VectorJobProfile {
            dims,
            objective,
            demand,
            worker_capacities,
        };
        let seed = params.get_u64("seed", 0)?;
        let cluster = ClusterConfig::new(workers, k, jobs, seed)
            .with_service(service)
            .with_utilization(rho)
            .with_scheduler_batch(batch);
        Ok(SchedulerExperiment {
            cluster,
            strategy,
            profile,
        })
    }

    fn smoke_grid(&self) -> GridSpec {
        GridSpec::parse_str(
            "workers=16 k=2 jobs=120 rho=0.6 strategy=kd,batch dims=1,2 objective=max_norm",
        )
        .expect("scheduler smoke grid")
    }

    fn throughput_unit(&self) -> &'static str {
        "jobs/sec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_expt::{configs_from_grid, SweepReport, SweepRunner};
    use kdchoice_prng::derive_seed;

    #[test]
    fn scheduler_sweep_is_bit_identical_to_serial_simulate() {
        // Acceptance criterion: the parallel sweep path reproduces the
        // pre-refactor serial `simulate` loop bit for bit per seed.
        let grid =
            GridSpec::parse_str("workers=32 k=4 jobs=300 rho=0.7 strategy=kd,batch,random d=5")
                .unwrap();
        let configs = configs_from_grid(&SchedulerScenario, &grid, 21).unwrap();
        assert_eq!(configs.len(), 3);
        let cells = SweepRunner::new().run_scenario(&SchedulerScenario, &configs, 3);
        for (cell, config) in cells.iter().zip(&configs) {
            for run in &cell.runs {
                let mut serial_cfg = config.cluster.clone();
                serial_cfg.seed = derive_seed(config.cluster.seed, run.trial as u64);
                let serial = simulate(&serial_cfg, config.strategy);
                assert_eq!(run.record.strategy, serial.strategy);
                assert_eq!(run.record.jobs_measured, serial.jobs_measured);
                assert_eq!(run.record.response.mean(), serial.response.mean());
                assert_eq!(run.record.response_percentiles, serial.response_percentiles);
                assert_eq!(run.record.probe_messages, serial.probe_messages);
                assert_eq!(run.record.mean_outstanding, serial.mean_outstanding);
                assert_eq!(run.record.max_queue_len, serial.max_queue_len);
            }
        }
    }

    #[test]
    fn grid_parses_every_strategy() {
        for (name, expect) in [
            ("random", PlacementStrategy::Random),
            ("per-task", PlacementStrategy::PerTaskDChoice { d: 3 }),
            (
                "batch",
                PlacementStrategy::BatchSampling { probes_per_task: 3 },
            ),
            ("kd", PlacementStrategy::KdChoice { d: 3 }),
            (
                "late",
                PlacementStrategy::LateBinding { probes_per_task: 3 },
            ),
        ] {
            let grid = GridSpec::parse_str(&format!("k=2 strategy={name} d=3")).unwrap();
            let configs = configs_from_grid(&SchedulerScenario, &grid, 0).unwrap();
            assert_eq!(configs[0].strategy, expect, "{name}");
        }
        let bad = GridSpec::parse_str("strategy=psychic").unwrap();
        assert!(configs_from_grid(&SchedulerScenario, &bad, 0).is_err());
        let unstable = GridSpec::parse_str("rho=1.5").unwrap();
        assert!(configs_from_grid(&SchedulerScenario, &unstable, 0).is_err());
    }

    #[test]
    fn vector_axes_parse_and_validate() {
        let grid = GridSpec::parse_str(
            "workers=16 k=2 jobs=100 rho=0.5 dims=2 objective=max_norm demand=anti caps=two_tier",
        )
        .unwrap();
        let configs = configs_from_grid(&SchedulerScenario, &grid, 0).unwrap();
        assert!(configs[0].profile.is_vector());
        assert_eq!(configs[0].profile.dims, 2);
        assert_eq!(
            configs[0].profile.worker_capacities.as_deref(),
            Some(&kdchoice_core::two_tier_capacities(16, 4, 4)[..])
        );

        // Defaults stay on the scalar path.
        let plain = GridSpec::parse_str("workers=16 k=2 jobs=100 rho=0.5").unwrap();
        let configs = configs_from_grid(&SchedulerScenario, &plain, 0).unwrap();
        assert!(!configs[0].profile.is_vector());

        for bad in [
            "dims=0",
            "dims=9",
            "objective=psychic",
            "demand=psychic",
            "demand_max=0",
            "caps=psychic",
        ] {
            let grid = GridSpec::parse_str(bad).unwrap();
            assert!(
                configs_from_grid(&SchedulerScenario, &grid, 0).is_err(),
                "{bad} should be rejected"
            );
        }

        // Late binding composes with the vector axes now that it has an
        // event-driven vector path.
        let late = GridSpec::parse_str(
            "workers=16 k=2 jobs=100 rho=0.5 dims=2 objective=max_norm strategy=late",
        )
        .unwrap();
        let configs = configs_from_grid(&SchedulerScenario, &late, 0).unwrap();
        assert!(configs[0].profile.is_vector());
        assert_eq!(
            configs[0].strategy,
            PlacementStrategy::LateBinding { probes_per_task: 2 }
        );
    }

    /// The smoke grid's vector rows end to end: parse, run, and render
    /// per-dimension gap observables in JSON.
    #[test]
    fn vector_cells_run_and_report_max_dim_gap() {
        let grid = GridSpec::parse_str(
            "workers=16 k=2 jobs=150 rho=0.6 strategy=kd dims=2 objective=max_norm demand=uniform",
        )
        .unwrap();
        let configs = configs_from_grid(&SchedulerScenario, &grid, 5).unwrap();
        let cells =
            SweepRunner::new()
                .with_threads(1)
                .run_scenario(&SchedulerScenario, &configs, 2);
        let report = SweepReport::from_cells(&SchedulerScenario, &configs, &cells);
        assert_eq!(report.rows.len(), 2);
        for line in report.to_jsonl().lines() {
            kdchoice_expt::validate_json(line).unwrap();
            assert!(line.contains("\"dims\": 2"));
            assert!(line.contains("\"objective\": \"max_norm\""));
            assert!(line.contains("\"max_dim_gap\""));
        }
    }

    #[test]
    fn report_fields_render_valid_json() {
        let grid = GridSpec::parse_str("workers=16 k=2 jobs=100 rho=0.5").unwrap();
        let configs = configs_from_grid(&SchedulerScenario, &grid, 1).unwrap();
        let cells = SweepRunner::new().run_scenario(&SchedulerScenario, &configs, 2);
        let report = SweepReport::from_cells(&SchedulerScenario, &configs, &cells);
        assert_eq!(report.rows.len(), 2);
        for line in report.to_jsonl().lines() {
            kdchoice_expt::validate_json(line).unwrap();
            assert!(line.contains("\"scenario\": \"scheduler\""));
            assert!(line.contains("\"p99_response\""));
        }
    }
}
