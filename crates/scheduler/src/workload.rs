//! Service-time distributions for the cluster workload.

use kdchoice_prng::dist::{BoundedPareto, Exponential};
use rand::RngCore;

/// Per-task service time distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ServiceDistribution {
    /// Exponential with the given mean (the M/M/· textbook case).
    Exponential {
        /// Mean service time.
        mean: f64,
    },
    /// Every task takes exactly this long (batch analytics tasks).
    Deterministic {
        /// The fixed service time.
        value: f64,
    },
    /// Bounded Pareto on `[lo, hi]` with shape `alpha` — heavy-tailed
    /// service times, the regime where probing quality matters most.
    Pareto {
        /// Shape parameter.
        alpha: f64,
        /// Smallest service time.
        lo: f64,
        /// Largest service time.
        hi: f64,
    },
}

impl ServiceDistribution {
    /// The distribution's mean (used for utilization accounting).
    pub fn mean(&self) -> f64 {
        match *self {
            ServiceDistribution::Exponential { mean } => mean,
            ServiceDistribution::Deterministic { value } => value,
            ServiceDistribution::Pareto { alpha, lo, hi } => {
                // Mean of the bounded Pareto.
                if (alpha - 1.0).abs() < 1e-12 {
                    let la = lo;
                    (la * (hi / lo).ln()) / (1.0 - lo / hi)
                } else {
                    let num = lo.powf(alpha) / (1.0 - (lo / hi).powf(alpha));
                    num * (alpha / (alpha - 1.0))
                        * (1.0 / lo.powf(alpha - 1.0) - 1.0 / hi.powf(alpha - 1.0))
                }
            }
        }
    }

    /// Draws one service time.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (validated lazily; construct
    /// through the public fields responsibly or via config validation).
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ServiceDistribution::Exponential { mean } => Exponential::new(1.0 / mean)
                .expect("positive mean")
                .sample(rng),
            ServiceDistribution::Deterministic { value } => value,
            ServiceDistribution::Pareto { alpha, lo, hi } => BoundedPareto::new(alpha, lo, hi)
                .expect("valid pareto parameters")
                .sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_prng::Xoshiro256PlusPlus;

    #[test]
    fn deterministic_mean_and_samples() {
        let d = ServiceDistribution::Deterministic { value: 2.5 };
        assert_eq!(d.mean(), 2.5);
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        assert_eq!(d.sample(&mut rng), 2.5);
    }

    #[test]
    fn exponential_empirical_mean_matches() {
        let d = ServiceDistribution::Exponential { mean: 3.0 };
        assert_eq!(d.mean(), 3.0);
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        let m: f64 = (0..40_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 40_000.0;
        assert!((m - 3.0).abs() < 0.1, "empirical mean {m}");
    }

    #[test]
    fn pareto_empirical_mean_matches_formula() {
        let d = ServiceDistribution::Pareto {
            alpha: 1.5,
            lo: 1.0,
            hi: 100.0,
        };
        let want = d.mean();
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let m: f64 = (0..200_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 200_000.0;
        assert!(
            (m - want).abs() / want < 0.05,
            "empirical {m} vs formula {want}"
        );
    }

    #[test]
    fn pareto_alpha_one_mean_is_finite() {
        let d = ServiceDistribution::Pareto {
            alpha: 1.0,
            lo: 1.0,
            hi: 50.0,
        };
        let want = d.mean();
        assert!(want.is_finite() && want > 1.0 && want < 50.0);
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        let m: f64 = (0..200_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 200_000.0;
        assert!(
            (m - want).abs() / want < 0.06,
            "empirical {m} vs formula {want}"
        );
    }
}
