//! Pins the §1.3 claim made by the scheduler doc-comment:
//! [`PlacementStrategy::BatchSampling`] with probe budget `d·k` **is**
//! the core (k, d·k)-choice process — on identical load snapshots, with
//! coupled RNG streams, the two implementations choose the same workers.
//!
//! Coupling: both sides draw their samples with
//! `fill_with_replacement(rng, n, d·k)` and then break ties with one
//! `next_u64` key per tentative slot in sorted-bin order (the scheduler
//! in `select_k_least_loaded`, the core in the legacy engine's eager
//! commit). Feeding both the same seeded generator therefore makes them
//! bit-equal, not merely equal in distribution.

use kdchoice_core::{EngineVersion, KdChoice, LoadVector};
use kdchoice_prng::sample::fill_with_replacement;
use kdchoice_prng::Xoshiro256PlusPlus;
use kdchoice_scheduler::PlacementStrategy;
use rand::Rng;

/// Builds a `LoadVector` with the given per-bin loads.
fn load_vector(loads: &[u32]) -> LoadVector {
    let mut state = LoadVector::new(loads.len());
    for (bin, &load) in loads.iter().enumerate() {
        for _ in 0..load {
            state.add_ball(bin);
        }
    }
    state
}

/// One coupled round: scheduler batch sampling vs core (k, d·k)-choice on
/// the same snapshot and RNG stream. Returns (scheduler multiset, core
/// per-bin gains).
fn coupled_round(loads: &[u32], k: usize, d_per_task: usize, seed: u64) -> (Vec<usize>, Vec<u32>) {
    let n = loads.len();
    let probes = d_per_task * k;

    // Scheduler side: BatchSampling probes d·k workers, places the k
    // tasks on the k least loaded (multiplicities respected).
    let mut sched_rng = Xoshiro256PlusPlus::from_u64(seed);
    let strategy = PlacementStrategy::BatchSampling {
        probes_per_task: d_per_task,
    };
    let (mut chosen, probe_messages) = strategy.choose_workers(loads, k, &mut sched_rng);
    assert_eq!(probe_messages, probes as u64);
    chosen.sort_unstable();

    // Core side: draw the identical sample set from an identically seeded
    // stream, then run one legacy-engine (k, d·k)-choice commit with the
    // remainder of the stream breaking ties.
    let mut core_rng = Xoshiro256PlusPlus::from_u64(seed);
    let mut samples = Vec::with_capacity(probes);
    fill_with_replacement(&mut core_rng, n, probes, &mut samples);
    let mut process = KdChoice::new(k, probes)
        .expect("k <= d*k")
        .with_engine(EngineVersion::Legacy);
    let mut state = load_vector(loads);
    let mut heights = Vec::new();
    process.place_round_with_samples(&mut state, &samples, k, &mut core_rng, &mut heights);
    let gains: Vec<u32> = (0..n).map(|bin| state.load(bin) - loads[bin]).collect();
    (chosen, gains)
}

#[test]
fn batch_sampling_equals_core_kd_choice_on_coupled_streams() {
    let mut meta_rng = Xoshiro256PlusPlus::from_u64(0xC0FFEE);
    for trial in 0..300 {
        let n = meta_rng.gen_range(2..40);
        let k = meta_rng.gen_range(1..=6usize);
        let d_per_task = meta_rng.gen_range(1..=4usize);
        let loads: Vec<u32> = (0..n).map(|_| meta_rng.gen_range(0..8)).collect();
        let seed = meta_rng.gen_range(0..u64::MAX);

        let (chosen, gains) = coupled_round(&loads, k, d_per_task, seed);

        // The scheduler's chosen-worker multiset must equal the bins the
        // core process placed balls into, with multiplicity.
        let mut core_multiset = Vec::new();
        for (bin, &gain) in gains.iter().enumerate() {
            for _ in 0..gain {
                core_multiset.push(bin);
            }
        }
        assert_eq!(
            chosen, core_multiset,
            "trial {trial}: n={n} k={k} d={d_per_task} loads={loads:?}"
        );
        assert_eq!(chosen.len(), k);
    }
}

#[test]
fn batch_sampling_respects_the_multiplicity_rule_like_the_core() {
    // A worker probed m times receives at most m tasks — the defining
    // constraint of the paper's process, checked through the coupling.
    let mut meta_rng = Xoshiro256PlusPlus::from_u64(7);
    for _ in 0..100 {
        let n = meta_rng.gen_range(2..6);
        let k = meta_rng.gen_range(2..=5usize);
        let loads: Vec<u32> = (0..n).map(|_| meta_rng.gen_range(0..3)).collect();
        let seed = meta_rng.gen_range(0..u64::MAX);

        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        let mut samples = Vec::new();
        fill_with_replacement(&mut rng, n, 2 * k, &mut samples);
        let mut occurrences = vec![0usize; n];
        for &s in &samples {
            occurrences[s] += 1;
        }

        let (chosen, _) = coupled_round(&loads, k, 2, seed);
        let mut placed = vec![0usize; n];
        for &w in &chosen {
            placed[w] += 1;
        }
        for bin in 0..n {
            assert!(
                placed[bin] <= occurrences[bin],
                "worker {bin} probed {} times but received {} tasks",
                occurrences[bin],
                placed[bin]
            );
        }
    }
}
