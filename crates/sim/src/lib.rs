//! A small deterministic discrete-event simulation engine.
//!
//! The paper's two applications (§1.3) — cluster job scheduling and
//! distributed storage — are queueing systems; this crate provides the
//! simulation substrate they share:
//!
//! * [`EventQueue`] — a time-ordered queue with deterministic FIFO
//!   tie-breaking (a sequence number disambiguates simultaneous events, so
//!   runs are bit-reproducible).
//! * [`Clock`] — monotone simulation time.
//! * [`TimeWeighted`] — time-weighted averages for state variables such as
//!   queue lengths.
//!
//! ```
//! use kdchoice_sim::{Clock, EventQueue};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Arrive(u32), Depart(u32) }
//!
//! let mut q = EventQueue::new();
//! q.push(2.0, Ev::Depart(1));
//! q.push(1.0, Ev::Arrive(1));
//! let mut clock = Clock::new();
//! let (t, ev) = q.pop().unwrap();
//! clock.advance_to(t);
//! assert_eq!(ev, Ev::Arrive(1));
//! assert_eq!(clock.now(), 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Monotone simulation time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Clock {
    now: f64,
}

impl Clock {
    /// A clock at time 0.
    pub fn new() -> Self {
        Self { now: 0.0 }
    }

    /// The current time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time or not finite —
    /// time travel in a discrete-event simulation is always a bug.
    pub fn advance_to(&mut self, t: f64) {
        assert!(t.is_finite(), "non-finite simulation time");
        assert!(t >= self.now, "time went backwards: {} -> {t}", self.now);
        self.now = t;
    }
}

/// An event scheduled at a time, ordered for the min-heap.
struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first;
        // equal times fall back to insertion order (FIFO).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events with equal timestamps pop in insertion (FIFO) order, which keeps
/// simulations reproducible across platforms.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite.
    pub fn push(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "non-finite event time");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

/// A time-weighted running average of a piecewise-constant state variable
/// (e.g. a queue length): each value contributes proportionally to how long
/// it was held.
///
/// ```
/// use kdchoice_sim::TimeWeighted;
///
/// let mut tw = TimeWeighted::new(0.0, 0.0);
/// tw.update(2.0, 10.0); // value 0 held on [0,2)
/// tw.update(4.0, 0.0);  // value 10 held on [2,4)
/// assert_eq!(tw.average(4.0), 5.0);
/// assert_eq!(tw.max(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    start: f64,
    last_time: f64,
    last_value: f64,
    integral: f64,
    max_value: f64,
}

impl TimeWeighted {
    /// Starts tracking at `start_time` with initial `value`.
    pub fn new(start_time: f64, value: f64) -> Self {
        Self {
            start: start_time,
            last_time: start_time,
            last_value: value,
            integral: 0.0,
            max_value: value,
        }
    }

    /// Records that the variable changed to `value` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the previous update.
    pub fn update(&mut self, t: f64, value: f64) {
        assert!(t >= self.last_time, "time went backwards");
        self.integral += self.last_value * (t - self.last_time);
        self.last_time = t;
        self.last_value = value;
        if value > self.max_value {
            self.max_value = value;
        }
    }

    /// The time-weighted average over `[start, end]`. If `end` does not
    /// exceed the start time, returns the current value.
    pub fn average(&self, end: f64) -> f64 {
        let span = end - self.start;
        if span <= 0.0 {
            return self.last_value;
        }
        let total = self.integral + self.last_value * (end - self.last_time);
        total / span
    }

    /// The maximum value seen.
    pub fn max(&self) -> f64 {
        self.max_value
    }

    /// The current (most recently set) value.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        c.advance_to(1.5);
        c.advance_to(1.5);
        c.advance_to(2.0);
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn clock_rejects_regression() {
        let mut c = Clock::new();
        c.advance_to(2.0);
        c.advance_to(1.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn clock_rejects_nan() {
        let mut c = Clock::new();
        c.advance_to(f64::NAN);
    }

    #[test]
    fn queue_pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, 'c');
        q.push(1.0, 'a');
        q.push(2.0, 'b');
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((1.0, 'a')));
        assert_eq!(q.pop(), Some((2.0, 'b')));
        assert_eq!(q.pop(), Some((3.0, 'c')));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(1.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((1.0, i)));
        }
    }

    #[test]
    fn interleaved_pushes_and_pops_stay_ordered() {
        let mut q = EventQueue::new();
        q.push(10.0, 1);
        q.push(5.0, 0);
        assert_eq!(q.pop(), Some((5.0, 0)));
        q.push(7.0, 2);
        q.push(20.0, 3);
        assert_eq!(q.pop(), Some((7.0, 2)));
        assert_eq!(q.pop(), Some((10.0, 1)));
        assert_eq!(q.pop(), Some((20.0, 3)));
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        q.push(5.0, ());
        q.push(4.0, ());
        assert_eq!(q.peek_time(), Some(4.0));
        q.pop();
        assert_eq!(q.peek_time(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn queue_rejects_nan_times() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn debug_impl_is_nonempty() {
        let mut q = EventQueue::new();
        q.push(1.0, 7u8);
        let s = format!("{q:?}");
        assert!(s.contains("pending"));
    }

    #[test]
    fn time_weighted_piecewise_average() {
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.update(1.0, 3.0); // 1 held on [0,1)
        tw.update(3.0, 0.0); // 3 held on [1,3)
                             // avg over [0,4] = (1*1 + 3*2 + 0*1)/4 = 7/4.
        assert!((tw.average(4.0) - 1.75).abs() < 1e-12);
        assert_eq!(tw.max(), 3.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_no_updates_is_constant() {
        let tw = TimeWeighted::new(2.0, 5.0);
        assert_eq!(tw.average(10.0), 5.0);
        assert_eq!(tw.average(2.0), 5.0); // degenerate span
        assert_eq!(tw.average(1.0), 5.0); // before start
    }

    #[test]
    fn time_weighted_nonzero_start() {
        let mut tw = TimeWeighted::new(10.0, 2.0);
        tw.update(12.0, 4.0);
        // avg over [10,14] = (2*2 + 4*2)/4 = 3.
        assert!((tw.average(14.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_weighted_rejects_regression() {
        let mut tw = TimeWeighted::new(5.0, 0.0);
        tw.update(4.0, 1.0);
    }
}
