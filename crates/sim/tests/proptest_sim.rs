//! Property-based tests of the discrete-event engine against a reference
//! model.

use kdchoice_sim::{EventQueue, TimeWeighted};
use proptest::prelude::*;

proptest! {
    /// The queue pops events in nondecreasing time order, FIFO within ties,
    /// and returns exactly the pushed multiset.
    #[test]
    fn queue_matches_stable_sort_reference(times in prop::collection::vec(0u32..50, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(f64::from(t), i);
        }
        // Reference: stable sort by time preserves insertion order in ties.
        let mut reference: Vec<(f64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (f64::from(t), i)).collect();
        reference.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push(ev);
        }
        prop_assert_eq!(popped, reference);
        prop_assert!(q.is_empty());
    }

    /// Interleaved push/pop never yields out-of-order events when pushes
    /// are at or after the last popped time (the DES contract).
    #[test]
    fn interleaved_operations_stay_ordered(ops in prop::collection::vec((0u32..100, any::<bool>()), 0..200)) {
        let mut q = EventQueue::new();
        let mut last_popped = 0.0f64;
        let mut pending = 0usize;
        for (t, is_push) in ops {
            if is_push || pending == 0 {
                // Schedule in the future of the last pop.
                let time = last_popped + f64::from(t);
                q.push(time, ());
                pending += 1;
            } else {
                let (time, ()) = q.pop().unwrap();
                prop_assert!(time >= last_popped);
                last_popped = time;
                pending -= 1;
            }
            prop_assert_eq!(q.len(), pending);
        }
    }

    /// Time-weighted average is bracketed by the min and max values.
    #[test]
    fn time_weighted_average_bracketed(steps in prop::collection::vec((0.01f64..10.0, 0.0f64..100.0), 1..50)) {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        let mut t = 0.0;
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for (dt, v) in steps {
            t += dt;
            tw.update(t, v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let end = t + 1.0;
        let avg = tw.average(end);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
        prop_assert!(tw.max() >= hi);
    }
}
