//! Property-based tests of the discrete-event engine against a reference
//! model.

use kdchoice_sim::{EventQueue, TimeWeighted};
use proptest::prelude::*;

proptest! {
    /// The queue pops events in nondecreasing time order, FIFO within ties,
    /// and returns exactly the pushed multiset.
    #[test]
    fn queue_matches_stable_sort_reference(times in prop::collection::vec(0u32..50, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(f64::from(t), i);
        }
        // Reference: stable sort by time preserves insertion order in ties.
        let mut reference: Vec<(f64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (f64::from(t), i)).collect();
        reference.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push(ev);
        }
        prop_assert_eq!(popped, reference);
        prop_assert!(q.is_empty());
    }

    /// Interleaved push/pop never yields out-of-order events when pushes
    /// are at or after the last popped time (the DES contract).
    #[test]
    fn interleaved_operations_stay_ordered(ops in prop::collection::vec((0u32..100, any::<bool>()), 0..200)) {
        let mut q = EventQueue::new();
        let mut last_popped = 0.0f64;
        let mut pending = 0usize;
        for (t, is_push) in ops {
            if is_push || pending == 0 {
                // Schedule in the future of the last pop.
                let time = last_popped + f64::from(t);
                q.push(time, ());
                pending += 1;
            } else {
                let (time, ()) = q.pop().unwrap();
                prop_assert!(time >= last_popped);
                last_popped = time;
                pending -= 1;
            }
            prop_assert_eq!(q.len(), pending);
        }
    }

    /// FIFO tie-breaking at equal timestamps survives interleaved pops:
    /// the seq-number disambiguation is global across the queue's
    /// lifetime, not per-batch, so events pushed at the same time *after*
    /// earlier ties were drained still pop behind nothing they followed.
    /// The scheduler migration rewired its event wiring around this exact
    /// guarantee; this test locks it.
    #[test]
    fn fifo_ties_survive_interleaved_pops(
        batch_sizes in prop::collection::vec(1usize..8, 1..30),
        pops_between in prop::collection::vec(0usize..6, 1..30),
    ) {
        let mut q = EventQueue::new();
        let t = 42.0f64; // every event at the same timestamp
        let mut next_label = 0u32;
        let mut expected = 0u32;
        for (batch, pops) in batch_sizes.iter().zip(&pops_between) {
            for _ in 0..*batch {
                q.push(t, next_label);
                next_label += 1;
            }
            for _ in 0..*pops {
                match q.pop() {
                    Some((time, label)) => {
                        prop_assert_eq!(time, t);
                        prop_assert_eq!(label, expected, "tie order must be global FIFO");
                        expected += 1;
                    }
                    None => break,
                }
            }
        }
        while let Some((_, label)) = q.pop() {
            prop_assert_eq!(label, expected);
            expected += 1;
        }
        prop_assert_eq!(expected, next_label, "every event popped exactly once");
    }

    /// Time-weighted average is bracketed by the min and max values.
    #[test]
    fn time_weighted_average_bracketed(steps in prop::collection::vec((0.01f64..10.0, 0.0f64..100.0), 1..50)) {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        let mut t = 0.0;
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for (dt, v) in steps {
            t += dt;
            tw.update(t, v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let end = t + 1.0;
        let avg = tw.average(end);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
        prop_assert!(tw.max() >= hi);
    }
}
