//! Vendored, dependency-free stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! The build environment is offline, so the workspace ships a miniature
//! property-testing harness with the same spelling as upstream proptest:
//!
//! * [`proptest!`] — wraps `#[test]` functions whose arguments are drawn
//!   from [`strategy::Strategy`] values;
//! * strategies for integer/float ranges, [`strategy::Just`], tuples,
//!   [`collection::vec`], [`arbitrary::any`], and `prop_flat_map`/`prop_map`;
//! * [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`]/[`prop_assume!`].
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test-name stream (no OS entropy), failing inputs are reported via the
//! panic message but **not shrunk**, and `prop_assume!` skips the case
//! rather than retrying a replacement.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test-case configuration and the deterministic case generator.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// Deterministic case-generation stream (SplitMix64 seeded from the
    /// property name, so every test sees the same inputs on every run).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a property name.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Returns the next 64-bit value of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, span)` (`span > 0`), by widening multiply.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let mut m = u128::from(self.next_u64()) * u128::from(span);
            if (m as u64) < span {
                let threshold = span.wrapping_neg() % span;
                while (m as u64) < threshold {
                    m = u128::from(self.next_u64()) * u128::from(span);
                }
            }
            (m >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Derives a dependent strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }

        /// Maps generated values through a function.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let mid = self.base.generate(rng);
            (self.f)(mid).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as u64) - (start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty strategy range");
            start + (end - start) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident/$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the full domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Returns the full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size` and elements
    /// from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module alias so `prop::collection::vec` resolves as upstream.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests. Each `fn` item becomes a `#[test]` that runs
/// the body for every generated case.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    let ( $($pat,)+ ) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = Strategy::generate(&(5u64..=5), &mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn flat_map_sees_base_value() {
        let mut rng = crate::test_runner::TestRng::deterministic("flat");
        let strat = (1usize..=6).prop_flat_map(|d| (1usize..=d, Just(d)));
        for _ in 0..500 {
            let (k, d) = Strategy::generate(&strat, &mut rng);
            assert!(1 <= k && k <= d && d <= 6);
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::test_runner::TestRng::deterministic("vecs");
        let strat = prop::collection::vec(0u32..4, 2..9);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        /// The macro itself: patterns, assume, and config plumb through.
        #[test]
        fn macro_smoke((a, b) in (0u32..50, 0u32..50), flip in any::<bool>()) {
            prop_assume!(a != b);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(lo < hi);
            prop_assert_ne!(lo, hi);
            prop_assert_eq!(lo.min(hi), lo, "flip={}", flip);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn configured_case_count(seed in any::<u64>()) {
            // 7 cases of a trivially true property.
            prop_assert!(seed == seed);
        }
    }
}
