//! Vendored, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses.
//!
//! The build environment is fully offline, so the workspace ships the `rand`
//! API surface it needs as a small path dependency: [`RngCore`],
//! [`SeedableRng`], [`Error`], and the [`Rng`] extension trait with
//! `gen_range` / `gen` / `gen_bool`.
//!
//! Bounded integer sampling uses Lemire's nearly-divisionless widening
//! multiply (Lemire, "Fast random integer generation in an interval", ACM
//! TOMS 2019): one 64×64→128-bit multiply per draw and a modulo only on the
//! (astronomically rare for small ranges) rejection path. This is the same
//! primitive `kdchoice-prng` builds its batched samplers on, so the scalar
//! and batched paths draw from identical per-value distributions.
//!
//! Everything here is deterministic: given the same generator state, every
//! method produces the same value on every platform (no `getrandom`, no
//! thread-local entropy).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (API compatibility; the
/// deterministic generators in this workspace never fail).
#[derive(Debug)]
pub struct Error {
    message: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(message: &'static str) -> Self {
        Self { message }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of `u32`/`u64` values
/// and byte fills.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`fill_bytes`](Self::fill_bytes).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }

    #[inline]
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }

    #[inline]
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` (expanded deterministically).
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling in `[0, span)` by Lemire's widening-multiply method.
///
/// `span` must be non-zero. At most one modulo is ever computed (to derive
/// the rejection threshold), and only when the first draw lands in the
/// low-`span` band of the 128-bit product — probability `span / 2^64`.
#[inline]
pub fn lemire_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "span must be non-zero");
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    let mut lo = m as u64;
    if lo < span {
        // Rare slow path: compute the exact rejection threshold.
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

mod private {
    /// Seals [`SampleRange`](super::SampleRange) against downstream impls.
    pub trait Sealed {}
}

/// A range type that [`Rng::gen_range`] accepts, producing values of `T`.
pub trait SampleRange<T>: private::Sealed {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl private::Sealed for Range<$t> {}
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + lemire_u64(rng, span) as $t
            }
        }

        impl private::Sealed for RangeInclusive<$t> {}
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + lemire_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl private::Sealed for Range<$t> {}
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(lemire_u64(rng, span) as $t)
            }
        }

        impl private::Sealed for RangeInclusive<$t> {}
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(lemire_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl private::Sealed for Range<f64> {}
impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = unit_f64(rng.next_u64());
        self.start + (self.end - self.start) * unit
    }
}

/// Maps a `u64` to a `f64` uniform in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types drawable from the "standard" distribution via [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Extension methods on [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, Q: SampleRange<T>>(&mut self, range: Q) -> T {
        range.sample_from(self)
    }

    /// Draws a value from the standard distribution of `T` (`f64` is
    /// uniform in `[0, 1)`).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counting generator for deterministic unit tests.
    struct Seq(u64);

    impl RngCore for Seq {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so every bit pattern occurs.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Seq(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let w: u64 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = Seq(2);
        let mut counts = [0u32; 5];
        let trials = 50_000;
        for _ in 0..trials {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            let f = f64::from(c) / f64::from(trials);
            assert!((f - 0.2).abs() < 0.01, "frequency {f}");
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = Seq(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Seq(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn gen_bool_rejects_bad_p() {
        let mut rng = Seq(5);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Seq(6);
        let _: usize = rng.gen_range(3..3);
    }

    #[test]
    fn lemire_full_span_never_loops() {
        let mut rng = Seq(7);
        // span = u64::MAX: threshold is 1, rejection probability 2^-64.
        for _ in 0..100 {
            let _ = lemire_u64(&mut rng, u64::MAX);
        }
    }

    #[test]
    fn dyn_rng_works_through_references() {
        let mut rng = Seq(8);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let by_ref = dyn_rng;
        let v: u32 = by_ref.gen_range(0..10u32);
        assert!(v < 10);
    }

    #[test]
    fn f64_range_in_bounds_including_negative() {
        let mut rng = Seq(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-3.0f64..7.0);
            assert!((-3.0..7.0).contains(&x));
        }
    }
}
