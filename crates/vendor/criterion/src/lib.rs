//! Vendored, dependency-free stand-in for the parts of `criterion` this
//! workspace uses.
//!
//! The build environment is offline, so the bench targets link against this
//! minimal wall-clock runner instead of the real criterion. It keeps the
//! same spelling — [`criterion_group!`], [`criterion_main!`],
//! [`Criterion::benchmark_group`], `bench_function`, `Throughput`,
//! [`BenchmarkId`] — and prints a single mean-time (and throughput) line
//! per benchmark. There is no statistical analysis, warm-up tuning, or
//! HTML report.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a value away.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id consisting of a parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to warm caches and page in code.
        black_box(routine());
        let iters = self.iterations.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Declares the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: self.sample_size.max(1),
        };
        f(&mut bencher);
        let iters = bencher.iterations.max(1);
        let mean = bencher.elapsed.as_secs_f64() / iters as f64;
        let mut line = format!("{}/{}: {:>12.3} µs/iter", self.name, id.id, mean * 1e6);
        if let Some(Throughput::Elements(n)) = self.throughput {
            if mean > 0.0 {
                line.push_str(&format!("  ({:.3} Melem/s)", n as f64 / mean / 1e6));
            }
        }
        if let Some(Throughput::Bytes(n)) = self.throughput {
            if mean > 0.0 {
                line.push_str(&format!(
                    "  ({:.3} MiB/s)",
                    n as f64 / mean / (1 << 20) as f64
                ));
            }
        }
        println!("{line}");
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Finishes the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: u64,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 3 timed.
        assert_eq!(calls, 4);
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
    }
}
