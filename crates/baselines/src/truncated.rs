//! SA_{x₀}: the truncated single-choice process of Definition 3.

use kdchoice_core::{HeightSink, LoadVector, RoundProcess, RoundStats};
use rand::{Rng, RngCore};

/// The SA_{x₀} process (Definition 3 of the paper): each ball chooses a bin
/// i.u.r., say bin x (the x-th most loaded at that moment, ties ranked
/// randomly); the ball is **placed only if `x > x₀`** and discarded
/// otherwise.
///
/// This process is pure lower-bound machinery: Lemma 8 shows
/// `SA_{x₀} ≤dm SA`, and Lemma 10/Corollary 3 show `SA_{γ*} ≤dm A(k,d)` for
/// `γ* = 4n/dk`, which converts single-choice lower bounds into (k,d)-choice
/// lower bounds. Implementing it lets the `properties` bench check these
/// dominations empirically.
///
/// ```
/// use kdchoice_baselines::TruncatedSingleChoice;
/// use kdchoice_core::{run_once, RunConfig};
///
/// let mut p = TruncatedSingleChoice::new(10);
/// let r = run_once(&mut p, &RunConfig::new(1 << 10, 1));
/// assert_eq!(r.balls_thrown, 1 << 10);
/// assert!(r.balls_placed < r.balls_thrown); // some balls discarded
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncatedSingleChoice {
    x0: usize,
}

impl TruncatedSingleChoice {
    /// Creates SA_{x₀}. `x0 = 0` never discards and equals single choice.
    pub fn new(x0: usize) -> Self {
        Self { x0 }
    }

    /// The truncation rank x₀.
    pub fn x0(&self) -> usize {
        self.x0
    }
}

impl RoundProcess for TruncatedSingleChoice {
    fn name(&self) -> String {
        format!("SA_{{{}}}", self.x0)
    }

    fn run_round<R, S>(
        &mut self,
        state: &mut LoadVector,
        rng: &mut R,
        heights_out: &mut S,
        _balls_remaining: u64,
    ) -> RoundStats
    where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        let bin = rng.gen_range(0..state.n());
        let rank = state.rank_of(bin, rng);
        let placed = if rank > self.x0 {
            let h = state.add_ball(bin);
            heights_out.record(h);
            1
        } else {
            0
        };
        RoundStats {
            thrown: 1,
            placed,
            probes: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SingleChoice;
    use kdchoice_core::{run_once, run_trials, RunConfig};

    #[test]
    fn x0_zero_never_discards() {
        let mut p = TruncatedSingleChoice::new(0);
        let r = run_once(&mut p, &RunConfig::new(512, 1));
        assert_eq!(r.balls_placed, r.balls_thrown);
    }

    #[test]
    fn x0_n_discards_everything_after_first_levels() {
        // With x0 = n every rank is <= x0, so every ball is discarded.
        let mut p = TruncatedSingleChoice::new(512);
        let r = run_once(&mut p, &RunConfig::new(512, 2));
        assert_eq!(r.balls_placed, 0);
        assert_eq!(r.max_load, 0);
    }

    #[test]
    fn lemma8_property_ii_top_loads_differ_by_at_most_one() {
        // Lemma 8(ii): B_1 = B_{x0} or B_1 = B_{x0} + 1 — the top x0 bins
        // stay within one ball of each other (they only grow while outside
        // the top-x0, so the top is flat).
        let x0 = 16;
        let mut p = TruncatedSingleChoice::new(x0);
        let (_, state) = kdchoice_core::run_once_with_state(&mut p, &RunConfig::new(1 << 10, 3));
        let sorted = state.sorted_descending();
        let b1 = sorted[0];
        let bx0 = sorted[x0 - 1];
        assert!(
            b1 == bx0 || b1 == bx0 + 1,
            "B1 = {b1}, B_x0 = {bx0}: violates Lemma 8(ii)"
        );
    }

    #[test]
    fn lemma8_property_iii_dominated_by_single_choice() {
        // SA_{x0} <=dm SA: per-rank loads are stochastically below single
        // choice. Compare mean sorted vectors over trials.
        let n = 1 << 10;
        let trials = 30;
        let trunc = run_trials(
            |_| Box::new(TruncatedSingleChoice::new(8)),
            &RunConfig::new(n, 4),
            trials,
        );
        let plain = run_trials(
            |_| Box::new(SingleChoice::new()),
            &RunConfig::new(n, 5),
            trials,
        );
        let mean_sorted = |set: &kdchoice_core::TrialSet| -> Vec<f64> {
            let vecs = set.sorted_load_vectors();
            let mut acc = vec![0.0; n];
            for v in &vecs {
                for (i, &x) in v.iter().enumerate() {
                    acc[i] += f64::from(x);
                }
            }
            for a in &mut acc {
                *a /= vecs.len() as f64;
            }
            acc
        };
        let mt = mean_sorted(&trunc);
        let mp = mean_sorted(&plain);
        // Allow small sampling noise per coordinate.
        for i in 0..n {
            assert!(
                mt[i] <= mp[i] + 0.35,
                "rank {i}: truncated {} vs plain {}",
                mt[i],
                mp[i]
            );
        }
    }

    #[test]
    fn discard_fraction_grows_with_x0() {
        let n = 1 << 10;
        let placed = |x0: usize, seed: u64| {
            let mut p = TruncatedSingleChoice::new(x0);
            run_once(&mut p, &RunConfig::new(n, seed)).balls_placed
        };
        let p8 = placed(8, 6);
        let p128 = placed(128, 7);
        assert!(
            p128 < p8,
            "more truncation must discard more: {p128} vs {p8}"
        );
    }
}
