//! Vöcking's Always-Go-Left asymmetric d-choice.

use kdchoice_core::{ConfigError, HeightSink, LoadVector, RoundProcess, RoundStats};
use rand::{Rng, RngCore};

/// Vöcking's Always-Go-Left process ("How asymmetry helps load balancing",
/// the paper's reference \[19\]): the `n` bins are split into `d` contiguous
/// groups of (almost) equal size; each ball draws one bin i.u.r. from *each*
/// group and joins a least loaded one, breaking ties toward the **leftmost
/// group**. Maximum load `lnln n/(d·ln φ_d) + O(1)` — better than symmetric
/// d-choice by the factor-d in the denominator.
///
/// ```
/// use kdchoice_baselines::AlwaysGoLeft;
/// use kdchoice_core::{run_once, RunConfig};
///
/// # fn main() -> Result<(), kdchoice_core::ConfigError> {
/// let mut p = AlwaysGoLeft::new(2)?;
/// let r = run_once(&mut p, &RunConfig::new(1 << 12, 1));
/// assert!(r.max_load <= 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AlwaysGoLeft {
    d: usize,
}

impl AlwaysGoLeft {
    /// Creates the process with `d` groups.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `d == 0`.
    pub fn new(d: usize) -> Result<Self, ConfigError> {
        if d == 0 {
            return Err(ConfigError::ZeroParameter("d"));
        }
        Ok(Self { d })
    }

    /// The number of groups / choices per ball.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The half-open index range of group `g` within `n` bins.
    fn group_range(&self, g: usize, n: usize) -> (usize, usize) {
        let base = n / self.d;
        let rem = n % self.d;
        // First `rem` groups get one extra bin.
        let start = g * base + g.min(rem);
        let len = base + usize::from(g < rem);
        (start, start + len)
    }
}

impl RoundProcess for AlwaysGoLeft {
    fn name(&self) -> String {
        format!("go-left[{}]", self.d)
    }

    fn run_round<R, S>(
        &mut self,
        state: &mut LoadVector,
        rng: &mut R,
        heights_out: &mut S,
        _balls_remaining: u64,
    ) -> RoundStats
    where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        let n = state.n();
        debug_assert!(n >= self.d, "need at least d bins");
        let mut best_bin = usize::MAX;
        let mut best_load = u32::MAX;
        // Scan groups left to right; strict improvement required, so ties
        // resolve to the leftmost group automatically.
        for g in 0..self.d {
            let (lo, hi) = self.group_range(g, n);
            let bin = rng.gen_range(lo..hi);
            let load = state.load(bin);
            if load < best_load {
                best_load = load;
                best_bin = bin;
            }
        }
        let h = state.add_ball(best_bin);
        heights_out.record(h);
        RoundStats {
            thrown: 1,
            placed: 1,
            probes: self.d as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_core::{run_once, run_trials, RunConfig};

    #[test]
    fn rejects_zero_d() {
        assert!(AlwaysGoLeft::new(0).is_err());
    }

    #[test]
    fn group_ranges_partition_bins() {
        for d in 1..=7 {
            let p = AlwaysGoLeft::new(d).unwrap();
            for n in [d, d + 1, 100, 101, 1024] {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for g in 0..d {
                    let (lo, hi) = p.group_range(g, n);
                    assert_eq!(lo, prev_end, "gap before group {g} (d={d}, n={n})");
                    assert!(hi > lo, "empty group {g} (d={d}, n={n})");
                    covered += hi - lo;
                    prev_end = hi;
                }
                assert_eq!(covered, n, "groups must cover all bins (d={d}, n={n})");
            }
        }
    }

    #[test]
    fn places_one_ball_with_d_probes() {
        let mut p = AlwaysGoLeft::new(3).unwrap();
        let r = run_once(&mut p, &RunConfig::new(999, 2));
        assert_eq!(r.balls_placed, 999);
        assert_eq!(r.messages, 999 * 3);
    }

    #[test]
    fn go_left_is_at_least_as_good_as_two_choice() {
        use crate::DChoice;
        let n = 1 << 13;
        let gl = run_trials(
            |_| Box::new(AlwaysGoLeft::new(2).unwrap()),
            &RunConfig::new(n, 4),
            10,
        );
        let two = run_trials(
            |_| Box::new(DChoice::new(2).unwrap()),
            &RunConfig::new(n, 5),
            10,
        );
        assert!(
            gl.mean_max_load() <= two.mean_max_load() + 0.3,
            "go-left {} vs 2-choice {}",
            gl.mean_max_load(),
            two.mean_max_load()
        );
    }
}
