//! The classical single-choice process.

use kdchoice_core::{HeightSink, LoadVector, RoundProcess, RoundStats};
use rand::{Rng, RngCore};

/// Classical single-choice balls-into-bins: every ball goes to one bin
/// chosen i.u.r. Maximum load `(1+o(1))·ln n/lnln n` w.h.p. for `n` balls
/// into `n` bins (Raab & Steger; the paper's reference \[15\]).
///
/// This is also the paper's **SA = SA(k,k)** process: placing `k` balls
/// i.u.r. per round is distributionally identical to placing them one at a
/// time, so a single implementation covers every `k`.
///
/// ```
/// use kdchoice_baselines::SingleChoice;
/// use kdchoice_core::{run_once, RunConfig};
///
/// let mut p = SingleChoice::new();
/// let r = run_once(&mut p, &RunConfig::new(1 << 12, 1));
/// assert_eq!(r.messages, 1 << 12); // one probe per ball
/// assert!(r.max_load >= 3); // single choice is visibly worse than 2-choice
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SingleChoice;

impl SingleChoice {
    /// Creates the process.
    pub fn new() -> Self {
        Self
    }
}

impl RoundProcess for SingleChoice {
    fn name(&self) -> String {
        "single-choice".to_string()
    }

    fn run_round<R, S>(
        &mut self,
        state: &mut LoadVector,
        rng: &mut R,
        heights_out: &mut S,
        _balls_remaining: u64,
    ) -> RoundStats
    where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        let bin = rng.gen_range(0..state.n());
        let h = state.add_ball(bin);
        heights_out.record(h);
        RoundStats {
            thrown: 1,
            placed: 1,
            probes: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_core::{run_once, run_trials, RunConfig};

    #[test]
    fn places_every_ball() {
        let mut p = SingleChoice::new();
        let r = run_once(&mut p, &RunConfig::new(1000, 2));
        assert_eq!(r.balls_placed, 1000);
        assert_eq!(r.rounds, 1000);
        assert_eq!(r.messages_per_ball(), 1.0);
    }

    #[test]
    fn max_load_is_in_the_raab_steger_ballpark() {
        // At n = 2^14, ln n/lnln n ≈ 4.3; the w.h.p. max is ~3x that.
        let set = run_trials(
            |_| Box::new(SingleChoice::new()),
            &RunConfig::new(1 << 14, 3),
            10,
        );
        let mean = set.mean_max_load();
        assert!((5.0..=13.0).contains(&mean), "mean max load {mean}");
    }

    #[test]
    fn loads_spread_over_all_bins_reasonably() {
        let mut p = SingleChoice::new();
        let r = run_once(&mut p, &RunConfig::new(1 << 12, 4));
        // Poisson(1): about 36.8% of bins stay empty.
        let empty = r.load_histogram[0] as f64 / r.n as f64;
        assert!((empty - 0.368).abs() < 0.03, "empty fraction {empty}");
    }
}
