//! Baseline balls-into-bins processes.
//!
//! Every scheme the paper positions (k,d)-choice against, implemented on the
//! same monomorphized [`RoundProcess`](kdchoice_core::RoundProcess) trait so
//! the experiments drive them identically — statically dispatched through
//! the generic drivers, or boxed as
//! [`BallsIntoBins`](kdchoice_core::BallsIntoBins) trait objects via the
//! blanket shim:
//!
//! * [`SingleChoice`] — the classical process; also the paper's SA = SA(k,k)
//!   equivalence class (the round structure is irrelevant for i.u.r.
//!   placements).
//! * [`DChoice`] — Greedy\[d\] of Azar, Broder, Karlin & Upfal; (k,d)-choice
//!   with `k = 1`, and the coupling target `A(1, d−k+1)` of the paper's
//!   lower bound.
//! * [`AlwaysGoLeft`] — Vöcking's asymmetric d-choice with group-partitioned
//!   bins and leftmost tie-breaking.
//! * [`OnePlusBeta`] — the (1+β)-choice process of Peres, Talwar & Wieder,
//!   the other known single/multi-choice interpolation (§1 of the paper).
//! * [`TruncatedSingleChoice`] — SA_{x₀} of Definition 3: single choice that
//!   discards balls landing in the top x₀ ranks (lower-bound machinery).
//! * [`AdaptiveProbing`] — a Czumaj–Stemann-style adaptive scheme: probe
//!   until a lightly loaded bin is found; the (1+o(1))·n-message adaptive
//!   point of comparison in §1.1.
//! * [`BatchedParallel`] — a Stemann-style synchronous collision protocol,
//!   standing in for the parallel allocation family cited in §1.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adaptive;
mod dchoice;
mod go_left;
mod one_plus_beta;
mod parallel_batch;
mod single;
mod truncated;

pub use adaptive::AdaptiveProbing;
pub use dchoice::DChoice;
pub use go_left::AlwaysGoLeft;
pub use one_plus_beta::OnePlusBeta;
pub use parallel_batch::BatchedParallel;
pub use single::SingleChoice;
pub use truncated::TruncatedSingleChoice;
