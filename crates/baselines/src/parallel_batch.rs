//! A synchronous batched-parallel allocation (Stemann-style collision
//! protocol).

use kdchoice_core::{ConfigError, HeightSink, LoadVector, RoundProcess, RoundStats};
use rand::{Rng, RngCore};

/// A synchronous parallel allocation in the spirit of Stemann's collision
/// protocol and the parallel multi-choice family the paper cites in §1
/// (references \[1, 16\]): in phase `r`, every unplaced ball samples `d`
/// bins, requests the least loaded one, and each bin accepts requesters up
/// to the phase threshold `r + 1`; losers retry in the next phase. After
/// `max_phases`, stragglers fall back to sequential d-choice.
///
/// This is the "each ball probes independently" contrast case for
/// (k,d)-choice, where the k balls of a round *share* their `d` probes
/// (§1: "a group of k balls shares information on bin state").
///
/// The whole protocol runs inside a single driver round — the driver sees
/// one `run_round` call that throws every remaining ball.
///
/// ```
/// use kdchoice_baselines::BatchedParallel;
/// use kdchoice_core::{run_once, RunConfig};
///
/// # fn main() -> Result<(), kdchoice_core::ConfigError> {
/// let mut p = BatchedParallel::new(2, 4)?;
/// let r = run_once(&mut p, &RunConfig::new(1 << 12, 1));
/// assert_eq!(r.balls_placed, 1 << 12);
/// assert_eq!(r.rounds, 1); // one synchronous protocol execution
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchedParallel {
    d: usize,
    max_phases: usize,
}

impl BatchedParallel {
    /// Creates the protocol with `d` choices per ball per phase and
    /// `max_phases` synchronous phases.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `d == 0` or `max_phases == 0`.
    pub fn new(d: usize, max_phases: usize) -> Result<Self, ConfigError> {
        if d == 0 {
            return Err(ConfigError::ZeroParameter("d"));
        }
        if max_phases == 0 {
            return Err(ConfigError::ZeroParameter("max_phases"));
        }
        Ok(Self { d, max_phases })
    }

    /// Choices per ball per phase.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Maximum number of synchronous phases before the sequential fallback.
    pub fn max_phases(&self) -> usize {
        self.max_phases
    }
}

impl RoundProcess for BatchedParallel {
    fn name(&self) -> String {
        format!("parallel[d={},phases={}]", self.d, self.max_phases)
    }

    fn run_round<R, S>(
        &mut self,
        state: &mut LoadVector,
        rng: &mut R,
        heights_out: &mut S,
        balls_remaining: u64,
    ) -> RoundStats
    where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        let n = state.n();
        let total = usize::try_from(balls_remaining.min(u64::from(u32::MAX))).expect("fits usize");
        let mut probes = 0u64;
        let mut unplaced: u64 = total as u64;
        // requests[bin] holds the count of requesters this phase; winners
        // are chosen implicitly: with i.u.r. requesters, accepting "the
        // first c" of an unordered count is exchangeable with a random
        // subset, so only counts are needed.
        let mut requests: Vec<u32> = vec![0; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut samples: Vec<usize> = Vec::with_capacity(self.d);
        for phase in 0..self.max_phases {
            if unplaced == 0 {
                break;
            }
            let threshold = (phase + 1) as u32;
            // Request phase.
            for _ in 0..unplaced {
                samples.clear();
                for _ in 0..self.d {
                    samples.push(rng.gen_range(0..n));
                }
                probes += self.d as u64;
                let idx = kdchoice_prng::sample::random_argmin(rng, &samples, |&b| state.load(b))
                    .expect("d >= 1");
                let bin = samples[idx];
                if requests[bin] == 0 {
                    touched.push(bin);
                }
                requests[bin] += 1;
            }
            // Accept phase.
            let mut accepted = 0u64;
            for &bin in &touched {
                let capacity = threshold.saturating_sub(state.load(bin));
                let take = requests[bin].min(capacity);
                for _ in 0..take {
                    let h = state.add_ball(bin);
                    heights_out.record(h);
                }
                accepted += u64::from(take);
                requests[bin] = 0;
            }
            touched.clear();
            unplaced -= accepted;
        }
        // Sequential d-choice fallback for stragglers.
        for _ in 0..unplaced {
            samples.clear();
            for _ in 0..self.d {
                samples.push(rng.gen_range(0..n));
            }
            probes += self.d as u64;
            let idx = kdchoice_prng::sample::random_argmin(rng, &samples, |&b| state.load(b))
                .expect("d >= 1");
            let h = state.add_ball(samples[idx]);
            heights_out.record(h);
        }
        RoundStats {
            thrown: total as u32,
            placed: total as u32,
            probes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_core::{run_once, run_trials, RunConfig};

    #[test]
    fn rejects_bad_parameters() {
        assert!(BatchedParallel::new(0, 3).is_err());
        assert!(BatchedParallel::new(2, 0).is_err());
    }

    #[test]
    fn places_all_balls_in_one_driver_round() {
        let mut p = BatchedParallel::new(2, 3).unwrap();
        let r = run_once(&mut p, &RunConfig::new(1 << 10, 2));
        assert_eq!(r.balls_placed, 1 << 10);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn max_load_is_competitive_with_sequential_d_choice() {
        let n = 1 << 13;
        let set = run_trials(
            |_| Box::new(BatchedParallel::new(2, 6).unwrap()),
            &RunConfig::new(n, 3),
            8,
        );
        // Collision protocols land within a small factor of greedy[2].
        assert!(set.mean_max_load() <= 8.0, "{}", set.mean_max_load());
        assert!(set.mean_max_load() >= 2.0);
    }

    #[test]
    fn more_phases_cost_more_messages_but_do_not_hurt_load() {
        let n = 1 << 12;
        let one = {
            let mut p = BatchedParallel::new(2, 1).unwrap();
            run_once(&mut p, &RunConfig::new(n, 4))
        };
        let many = {
            let mut p = BatchedParallel::new(2, 8).unwrap();
            run_once(&mut p, &RunConfig::new(n, 4))
        };
        assert!(many.messages >= one.messages);
        assert!(many.max_load <= one.max_load + 1);
    }

    #[test]
    fn phase_thresholds_bound_early_loads() {
        // With a single phase and threshold 1, every bin ends with load <= 1
        // from the phase itself; the fallback then adds the collided balls.
        let n = 1 << 10;
        let mut p = BatchedParallel::new(4, 1).unwrap();
        let r = run_once(&mut p, &RunConfig::new(n, 5));
        assert_eq!(r.balls_placed, n as u64);
        assert!(r.max_load <= 4, "max load {}", r.max_load);
    }

    #[test]
    fn heavy_case_works() {
        let n = 512;
        let mut p = BatchedParallel::new(2, 4).unwrap();
        let r = run_once(&mut p, &RunConfig::new(n, 6).with_balls(4 * n as u64));
        assert_eq!(r.balls_placed, 4 * n as u64);
    }
}
