//! Greedy[d]: the standard d-choice process of Azar et al.

use kdchoice_core::{
    ConfigError, HeightSink, LoadVector, ProbeDistribution, RoundProcess, RoundStats,
};
use rand::RngCore;

/// The d-choice (Greedy\[d\]) process of Azar, Broder, Karlin & Upfal: each
/// ball samples `d` bins i.u.r. with replacement and joins the least loaded,
/// ties broken randomly. Maximum load `lnln n/ln d + Θ(1)` w.h.p.
///
/// Within the paper this plays two roles: the `k = 1` member of the
/// (k,d)-choice family, and the coupling target `A(1, d−k+1) ≤mj A(k,d)` of
/// the lower-bound analysis (§5).
///
/// ```
/// use kdchoice_baselines::DChoice;
/// use kdchoice_core::{run_once, RunConfig};
///
/// # fn main() -> Result<(), kdchoice_core::ConfigError> {
/// let mut p = DChoice::new(2)?;
/// let r = run_once(&mut p, &RunConfig::new(1 << 12, 1));
/// assert!(r.max_load <= 6); // two-choice: lnln n / ln 2 + O(1)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DChoice {
    d: usize,
    probes: ProbeDistribution,
    samples: Vec<usize>,
}

impl DChoice {
    /// Creates a d-choice process.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `d == 0`.
    pub fn new(d: usize) -> Result<Self, ConfigError> {
        if d == 0 {
            return Err(ConfigError::ZeroParameter("d"));
        }
        Ok(Self {
            d,
            probes: ProbeDistribution::Uniform,
            samples: Vec::with_capacity(d),
        })
    }

    /// Switches the probe distribution (builder style) — the weighted
    /// variant of greedy\[d\], for free via the distribution seam. The
    /// uniform default draws the identical generator stream as before
    /// the seam existed.
    #[must_use]
    pub fn with_probes(mut self, probes: ProbeDistribution) -> Self {
        self.probes = probes;
        self
    }

    /// The active probe distribution.
    pub fn probes(&self) -> &ProbeDistribution {
        &self.probes
    }

    /// The number of choices per ball.
    pub fn d(&self) -> usize {
        self.d
    }
}

impl RoundProcess for DChoice {
    fn name(&self) -> String {
        if matches!(self.probes, ProbeDistribution::Uniform) {
            format!("greedy[{}]", self.d)
        } else {
            format!("greedy[{}]@{}", self.d, self.probes.label())
        }
    }

    fn run_round<R, S>(
        &mut self,
        state: &mut LoadVector,
        rng: &mut R,
        heights_out: &mut S,
        _balls_remaining: u64,
    ) -> RoundStats
    where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        let n = state.n();
        self.samples.clear();
        // ProbeDistribution::sample's uniform arm is stream-identical to
        // the former `rng.gen_range(0..n)` draws.
        for _ in 0..self.d {
            self.samples.push(self.probes.sample(rng, n));
        }
        let idx = kdchoice_prng::sample::random_argmin(rng, &self.samples, |&b| state.load(b))
            .expect("d >= 1");
        let h = state.add_ball(self.samples[idx]);
        heights_out.record(h);
        RoundStats {
            thrown: 1,
            placed: 1,
            probes: self.d as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_core::{run_once, run_trials, RunConfig};

    #[test]
    fn rejects_zero_d() {
        assert!(DChoice::new(0).is_err());
    }

    #[test]
    fn d_one_is_single_choice_shaped() {
        let set = run_trials(
            |_| Box::new(DChoice::new(1).unwrap()),
            &RunConfig::new(1 << 12, 5),
            8,
        );
        assert!(set.mean_max_load() >= 5.0, "{}", set.mean_max_load());
    }

    #[test]
    fn message_cost_is_d_per_ball() {
        let mut p = DChoice::new(5).unwrap();
        let r = run_once(&mut p, &RunConfig::new(512, 6));
        assert_eq!(r.messages, 512 * 5);
    }

    #[test]
    fn two_choice_beats_single_choice() {
        let n = 1 << 13;
        let one = run_trials(
            |_| Box::new(DChoice::new(1).unwrap()),
            &RunConfig::new(n, 7),
            8,
        );
        let two = run_trials(
            |_| Box::new(DChoice::new(2).unwrap()),
            &RunConfig::new(n, 8),
            8,
        );
        assert!(
            two.mean_max_load() + 1.5 < one.mean_max_load(),
            "two-choice {} vs single {}",
            two.mean_max_load(),
            one.mean_max_load()
        );
    }

    #[test]
    fn weighted_variant_skews_placements() {
        // greedy[1] with two-tier probing: hot bins collect the boost.
        let mut p = DChoice::new(1)
            .unwrap()
            .with_probes(ProbeDistribution::two_tier(16, 4, 9).unwrap());
        assert_eq!(RoundProcess::name(&p), "greedy[1]@weighted");
        let (r, state) =
            kdchoice_core::run_once_with_state(&mut p, &RunConfig::new(16, 3).with_balls(4000));
        assert_eq!(r.balls_placed, 4000);
        // Hot bins (0, 4, 8, 12) carry 36/48 = 3/4 of the probe mass;
        // under single choice their load share matches it. Uniform
        // probing would give them 1/4, so this cleanly separates.
        let hot: u64 = [0usize, 4, 8, 12]
            .iter()
            .map(|&b| u64::from(state.load(b)))
            .sum();
        let share = hot as f64 / 4000.0;
        assert!((share - 0.75).abs() < 0.05, "hot-bin load share {share}");
    }

    #[test]
    fn equal_weights_match_uniform_stream() {
        let uniform = {
            let mut p = DChoice::new(3).unwrap();
            run_once(&mut p, &RunConfig::new(128, 9))
        };
        let weighted = {
            let mut p = DChoice::new(3)
                .unwrap()
                .with_probes(ProbeDistribution::weighted(&vec![2.0; 128]).unwrap());
            run_once(&mut p, &RunConfig::new(128, 9))
        };
        assert_eq!(weighted.load_histogram, uniform.load_histogram);
        assert_eq!(weighted.height_histogram, uniform.height_histogram);
    }

    #[test]
    fn larger_d_does_not_hurt() {
        let n = 1 << 12;
        let d2 = run_trials(
            |_| Box::new(DChoice::new(2).unwrap()),
            &RunConfig::new(n, 9),
            8,
        );
        let d8 = run_trials(
            |_| Box::new(DChoice::new(8).unwrap()),
            &RunConfig::new(n, 10),
            8,
        );
        assert!(d8.mean_max_load() <= d2.mean_max_load() + 0.5);
    }
}
