//! The (1+β)-choice process of Peres, Talwar & Wieder.

use kdchoice_core::{
    ConfigError, HeightSink, LoadVector, ProbeDistribution, RoundProcess, RoundStats,
};
use rand::{Rng, RngCore};

/// The (1+β)-choice process (the paper's reference \[14\]): each ball flips
/// a β-coin; with probability β it plays two-choice, otherwise it places
/// uniformly at random. The gap from average is `Θ(log n/β)` in the heavily
/// loaded case.
///
/// The paper singles this process out as the other known single-/multi-
/// choice interpolation — "both schemes can be viewed as a mix between
/// single- and multiple-choice strategies, though these two models exhibit
/// no other structural similarities" (§1). The `tradeoff` bench plots it
/// against (k,d)-choice at matched message budgets.
///
/// ```
/// use kdchoice_baselines::OnePlusBeta;
/// use kdchoice_core::{run_once, RunConfig};
///
/// # fn main() -> Result<(), kdchoice_core::ConfigError> {
/// let mut p = OnePlusBeta::new(0.5)?;
/// let r = run_once(&mut p, &RunConfig::new(1 << 12, 1));
/// // expected 1.5 probes per ball
/// assert!((r.messages_per_ball() - 1.5).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OnePlusBeta {
    beta: f64,
    probes: ProbeDistribution,
}

impl OnePlusBeta {
    /// Creates the process.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] unless `0 ≤ β ≤ 1`.
    pub fn new(beta: f64) -> Result<Self, ConfigError> {
        if !(0.0..=1.0).contains(&beta) || beta.is_nan() {
            return Err(ConfigError::BadProbability("beta"));
        }
        Ok(Self {
            beta,
            probes: ProbeDistribution::Uniform,
        })
    }

    /// Switches the probe distribution (builder style) — the weighted
    /// (1+β) variant of the multidimensional-allocation reports, for
    /// free via the distribution seam. Both the single-choice arm and
    /// the two-choice arm probe through it; the uniform default draws
    /// the identical generator stream as before the seam existed.
    #[must_use]
    pub fn with_probes(mut self, probes: ProbeDistribution) -> Self {
        self.probes = probes;
        self
    }

    /// The active probe distribution.
    pub fn probes(&self) -> &ProbeDistribution {
        &self.probes
    }

    /// The mixing probability β.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl RoundProcess for OnePlusBeta {
    fn name(&self) -> String {
        if matches!(self.probes, ProbeDistribution::Uniform) {
            format!("(1+{})-choice", self.beta)
        } else {
            format!("(1+{})-choice@{}", self.beta, self.probes.label())
        }
    }

    fn run_round<R, S>(
        &mut self,
        state: &mut LoadVector,
        rng: &mut R,
        heights_out: &mut S,
        _balls_remaining: u64,
    ) -> RoundStats
    where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        let n = state.n();
        let two_choice = rng.gen_bool(self.beta);
        // ProbeDistribution::sample's uniform arm is stream-identical to
        // the former `rng.gen_range(0..n)` draws.
        let (bin, probes) = if two_choice {
            let a = self.probes.sample(rng, n);
            let b = self.probes.sample(rng, n);
            let la = state.load(a);
            let lb = state.load(b);
            let chosen = if la < lb {
                a
            } else if lb < la {
                b
            } else if rng.gen_bool(0.5) {
                a
            } else {
                b
            };
            (chosen, 2)
        } else {
            (self.probes.sample(rng, n), 1)
        };
        let h = state.add_ball(bin);
        heights_out.record(h);
        RoundStats {
            thrown: 1,
            placed: 1,
            probes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_core::{run_once, run_trials, RunConfig};

    #[test]
    fn rejects_bad_beta() {
        assert!(OnePlusBeta::new(-0.1).is_err());
        assert!(OnePlusBeta::new(1.1).is_err());
        assert!(OnePlusBeta::new(f64::NAN).is_err());
        assert!(OnePlusBeta::new(0.0).is_ok());
        assert!(OnePlusBeta::new(1.0).is_ok());
    }

    #[test]
    fn beta_zero_is_single_choice() {
        let mut p = OnePlusBeta::new(0.0).unwrap();
        let r = run_once(&mut p, &RunConfig::new(1 << 12, 2));
        assert_eq!(r.messages, 1 << 12);
        assert!(r.max_load >= 4, "should look like single choice");
    }

    #[test]
    fn beta_one_is_two_choice() {
        let mut p = OnePlusBeta::new(1.0).unwrap();
        let r = run_once(&mut p, &RunConfig::new(1 << 12, 3));
        assert_eq!(r.messages, 2 << 12);
        assert!(r.max_load <= 6, "should look like two-choice");
    }

    #[test]
    fn weighted_variant_is_stream_identical_with_equal_weights() {
        let uniform = {
            let mut p = OnePlusBeta::new(0.5).unwrap();
            run_once(&mut p, &RunConfig::new(256, 4))
        };
        let weighted = {
            let mut p = OnePlusBeta::new(0.5)
                .unwrap()
                .with_probes(ProbeDistribution::weighted(&vec![3.0; 256]).unwrap());
            assert_eq!(RoundProcess::name(&p), "(1+0.5)-choice@weighted");
            run_once(&mut p, &RunConfig::new(256, 4))
        };
        assert_eq!(weighted.load_histogram, uniform.load_histogram);
        assert_eq!(weighted.height_histogram, uniform.height_histogram);
        assert_eq!(weighted.messages, uniform.messages);
    }

    #[test]
    fn zipf_probing_concentrates_load() {
        let n = 1 << 10;
        let balls = 8 * n as u64;
        let run = |probes: ProbeDistribution, seed| {
            let mut p = OnePlusBeta::new(0.5).unwrap().with_probes(probes);
            run_once(&mut p, &RunConfig::new(n, seed).with_balls(balls))
        };
        let uniform = run(ProbeDistribution::Uniform, 6);
        let zipf = run(ProbeDistribution::zipf(n, 1.0).unwrap(), 6);
        assert!(
            zipf.max_load > uniform.max_load + 4,
            "zipf {} vs uniform {}",
            zipf.max_load,
            uniform.max_load
        );
    }

    #[test]
    fn interpolates_between_extremes() {
        let n = 1 << 13;
        let mean = |beta: f64, seed: u64| {
            run_trials(
                move |_| Box::new(OnePlusBeta::new(beta).unwrap()),
                &RunConfig::new(n, seed),
                8,
            )
            .mean_max_load()
        };
        let lo = mean(0.0, 4);
        let mid = mean(0.5, 5);
        let hi = mean(1.0, 6);
        assert!(hi < mid, "beta=1 ({hi}) should beat beta=0.5 ({mid})");
        assert!(mid < lo, "beta=0.5 ({mid}) should beat beta=0 ({lo})");
    }
}
