//! Adaptive threshold probing (Czumaj–Stemann style).

use kdchoice_core::{ConfigError, HeightSink, LoadVector, RoundProcess, RoundStats};
use rand::{Rng, RngCore};

/// A simplified adaptive allocation in the spirit of Czumaj & Stemann
/// ("Randomized allocation processes", the paper's reference \[7\]): each
/// ball probes bins i.u.r. one at a time and immediately joins the first bin
/// whose load is below the running threshold `⌈(placed+1)/n⌉ + slack`;
/// after `max_probes` unsuccessful probes it joins the best bin seen.
///
/// The number of choices *varies by ball* — this is exactly what makes the
/// scheme **adaptive** in the paper's terminology (footnote 3), and why the
/// paper's non-adaptive (k,d)-choice matching its tradeoff is notable.
/// Empirically this scheme lands at `O(lnln n)`-grade maximum load with
/// `(1+o(1))·n` messages, the comparison point quoted in §1.1.
///
/// ```
/// use kdchoice_baselines::AdaptiveProbing;
/// use kdchoice_core::{run_once, RunConfig};
///
/// # fn main() -> Result<(), kdchoice_core::ConfigError> {
/// let mut p = AdaptiveProbing::new(1, 16)?;
/// let r = run_once(&mut p, &RunConfig::new(1 << 12, 1));
/// // Close to one probe per ball.
/// assert!(r.messages_per_ball() < 1.6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveProbing {
    slack: u32,
    max_probes: usize,
}

impl AdaptiveProbing {
    /// Creates the process. `slack` is added to the running average to form
    /// the acceptance threshold; `max_probes` caps the per-ball probe count.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `max_probes == 0`.
    pub fn new(slack: u32, max_probes: usize) -> Result<Self, ConfigError> {
        if max_probes == 0 {
            return Err(ConfigError::ZeroParameter("max_probes"));
        }
        Ok(Self { slack, max_probes })
    }

    /// The threshold slack above the running average.
    pub fn slack(&self) -> u32 {
        self.slack
    }

    /// The per-ball probe cap.
    pub fn max_probes(&self) -> usize {
        self.max_probes
    }
}

impl RoundProcess for AdaptiveProbing {
    fn name(&self) -> String {
        format!("adaptive[+{},cap {}]", self.slack, self.max_probes)
    }

    fn run_round<R, S>(
        &mut self,
        state: &mut LoadVector,
        rng: &mut R,
        heights_out: &mut S,
        _balls_remaining: u64,
    ) -> RoundStats
    where
        R: RngCore + ?Sized,
        S: HeightSink + ?Sized,
    {
        let n = state.n() as u64;
        // Threshold: ceil of the average load after this ball, plus slack.
        let threshold = ((state.total_balls() + 1).div_ceil(n)) as u32 + self.slack;
        let mut probes = 0u64;
        let mut best_bin = usize::MAX;
        let mut best_load = u32::MAX;
        for _ in 0..self.max_probes {
            let bin = rng.gen_range(0..state.n());
            probes += 1;
            let load = state.load(bin);
            if load < threshold {
                let h = state.add_ball(bin);
                heights_out.record(h);
                return RoundStats {
                    thrown: 1,
                    placed: 1,
                    probes,
                };
            }
            if load < best_load {
                best_load = load;
                best_bin = bin;
            }
        }
        let h = state.add_ball(best_bin);
        heights_out.record(h);
        RoundStats {
            thrown: 1,
            placed: 1,
            probes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_core::{run_once, run_trials, RunConfig};

    #[test]
    fn rejects_zero_probe_cap() {
        assert!(AdaptiveProbing::new(1, 0).is_err());
    }

    #[test]
    fn achieves_low_load_with_near_n_messages() {
        let n = 1 << 14;
        let set = run_trials(
            |_| Box::new(AdaptiveProbing::new(1, 32).unwrap()),
            &RunConfig::new(n, 2),
            8,
        );
        // Threshold avg+1 = 2 while filling, so accepted balls sit at
        // heights <= 2; the probe-cap fallback adds at most a little.
        assert!(set.mean_max_load() <= 4.0, "{}", set.mean_max_load());
        let mpb: f64 = set
            .results
            .iter()
            .map(|r| r.messages_per_ball())
            .sum::<f64>()
            / set.results.len() as f64;
        assert!(mpb < 1.5, "messages per ball {mpb}");
    }

    #[test]
    fn bigger_slack_means_fewer_probes() {
        let n = 1 << 12;
        let mpb = |slack: u32, seed: u64| {
            let mut p = AdaptiveProbing::new(slack, 64).unwrap();
            run_once(&mut p, &RunConfig::new(n, seed)).messages_per_ball()
        };
        let tight = mpb(0, 3);
        let loose = mpb(3, 4);
        assert!(loose < tight, "loose {loose} vs tight {tight}");
        assert!(loose < 1.05);
    }

    #[test]
    fn probe_cap_bounds_messages() {
        let n = 256;
        let mut p = AdaptiveProbing::new(0, 4).unwrap();
        // Heavy case: thresholds rise with the average, probes stay capped.
        let r = run_once(&mut p, &RunConfig::new(n, 5).with_balls(16 * n as u64));
        assert!(r.messages <= r.balls_thrown * 4);
        assert_eq!(r.balls_placed, 16 * n as u64);
    }
}
