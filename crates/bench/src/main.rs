//! The `kdchoice-bench` CLI: every experiment family in the workspace,
//! runnable by name over a parameter grid, plus the throughput harness.
//!
//! ```sh
//! kdchoice-bench list                          # registered scenarios + axes
//! kdchoice-bench run static --grid k=2,3 d=4 n=2^16 --trials 8 --format table
//! kdchoice-bench run scheduler --grid strategy=kd,batch rho=0.7,0.9 --format jsonl
//! kdchoice-bench run service --grid threads=1,2,4,8 window=256 --format table
//! kdchoice-bench run open_loop --grid lambda=0.9,1.2 threads=8 --format table
//! kdchoice-bench smoke                         # tiny grid per scenario; JSON validated
//! kdchoice-bench throughput [--quick]          # engine + scenario + service + open-loop
//!                                              # λ×threads rows -> BENCH_results.json
//! kdchoice-bench                               # = throughput (back-compat)
//! ```
//!
//! Every `run` sweep executes on the shared work-stealing
//! [`SweepRunner`]: all (config × trial) cells in parallel across all
//! cores, per-trial seeds derived from the grid coordinates, so output is
//! identical no matter the thread count.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use kdchoice_core::{
    decide_k_least, run_once, run_once_compact, run_once_vector, BallsIntoBins, BinSlab,
    DynamicScenario, EngineVersion, HeteroScenario, KdChoice, LoadView, PlacementObjective,
    ProbeDistribution, RunConfig, StaticScenario, StoreKind,
};
use kdchoice_expt::{
    configs_from_grid, GridSpec, Registry, ReportFormat, Scenario, SweepRunner, Value,
};
use kdchoice_prng::demand::DemandDistribution;
use kdchoice_prng::sample::{fill_weighted, fill_with_replacement, WeightedBin};
use kdchoice_prng::Xoshiro256PlusPlus;
use kdchoice_scheduler::SchedulerScenario;
use kdchoice_service::{
    run_open_loop, run_service_workload, OpenLoopConfig, OpenLoopScenario, PipelineMode,
    ServiceBackend, ServiceScenario, ServiceWorkloadConfig,
};
use kdchoice_storage::{
    run_cluster_workload, ClusterConfig, ClusterScenario, ClusterWorkloadConfig, FaultPlan,
    HeartbeatConfig, PlacementPolicy, RecoveryConfig, StorageScenario,
};

/// Builds the workspace scenario registry: all eight experiment families.
fn registry() -> Registry {
    Registry::new()
        .with(Box::new(StaticScenario))
        .with(Box::new(DynamicScenario))
        .with(Box::new(HeteroScenario))
        .with(Box::new(SchedulerScenario))
        .with(Box::new(StorageScenario))
        .with(Box::new(ClusterScenario))
        .with(Box::new(ServiceScenario))
        .with(Box::new(OpenLoopScenario))
}

fn usage() -> &'static str {
    "usage:\n  \
     kdchoice-bench list\n  \
     kdchoice-bench run <scenario> [--grid k=v1,v2 ...] [--trials N] [--seed S] [--format jsonl|csv|table] [--threads N]\n  \
     kdchoice-bench smoke\n  \
     kdchoice-bench throughput [--quick]\n  \
     kdchoice-bench figures          (render BENCH_results.json curves into docs/*.svg)\n  \
     kdchoice-bench decide-kernel    (re-measure the decide_k_least before/after points)\n  \
     kdchoice-bench [--quick]        (same as `throughput`)"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            cmd_list();
            ExitCode::SUCCESS
        }
        Some("run") => match cmd_run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}\n\n{}", usage());
                ExitCode::FAILURE
            }
        },
        Some("smoke") => match cmd_smoke() {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("smoke failed: {msg}");
                ExitCode::FAILURE
            }
        },
        Some("throughput") => match cmd_throughput(args.iter().any(|a| a == "--quick")) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("throughput failed: {msg}");
                ExitCode::FAILURE
            }
        },
        Some("decide-kernel") => {
            // Standalone run of the kernel-prefetch race (the same rows
            // `throughput` records as `decide_prefetch`).
            for p in measure_decide_prefetch() {
                println!(
                    "decide-kernel n={} d={} k=2: before {:.0} | after {:.0} decisions/sec ({:+.1}%)",
                    p.n,
                    p.d,
                    p.before_decisions_per_sec,
                    p.after_decisions_per_sec,
                    p.delta() * 100.0,
                );
            }
            ExitCode::SUCCESS
        }
        Some("figures") => match cmd_figures() {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("figures failed: {msg}");
                ExitCode::FAILURE
            }
        },
        None => match cmd_throughput(false) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("throughput failed: {msg}");
                ExitCode::FAILURE
            }
        },
        Some("--quick") => match cmd_throughput(true) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("throughput failed: {msg}");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

/// `list`: registered scenarios with their grid axes.
fn cmd_list() {
    let registry = registry();
    println!("registered scenarios:\n");
    for scenario in registry.iter() {
        println!("  {:<10} {}", scenario.name(), scenario.description());
        for axis in scenario.axes() {
            println!("      {:<10} {}", axis.name, axis.help);
        }
        println!();
    }
    println!("run one with: kdchoice-bench run <scenario> --grid <axis>=<v1>,<v2> ...");
}

/// `run <scenario> ...`: one parallel grid sweep, rendered to stdout.
fn cmd_run(args: &[String]) -> Result<(), String> {
    let scenario_name = args.first().ok_or("missing scenario name")?;
    let mut grid_tokens: Vec<String> = Vec::new();
    let mut trials = 3usize;
    let mut seed = 0u64;
    let mut format = ReportFormat::JsonLines;
    let mut threads = 0usize;

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--grid" => {
                i += 1;
                while i < args.len() && !args[i].starts_with("--") {
                    grid_tokens.push(args[i].clone());
                    i += 1;
                }
            }
            "--trials" => {
                i += 1;
                trials = next_value(args, i, "--trials")?;
                i += 1;
            }
            "--seed" => {
                i += 1;
                seed = next_value(args, i, "--seed")?;
                i += 1;
            }
            "--format" => {
                i += 1;
                let raw = args.get(i).ok_or("--format needs a value")?;
                format = raw.parse().map_err(|e| format!("{e}"))?;
                i += 1;
            }
            "--threads" => {
                i += 1;
                threads = next_value(args, i, "--threads")?;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    let registry = registry();
    let scenario = registry
        .require(scenario_name)
        .map_err(|e| format!("{e} (have: {})", registry.names().join(", ")))?;
    let grid = GridSpec::parse(&grid_tokens).map_err(|e| format!("{e}"))?;
    let runner = SweepRunner::new().with_threads(threads);
    let report = scenario
        .run_grid(&grid, trials, seed, &runner)
        .map_err(|e| format!("{e}"))?;
    print!("{}", report.render(format));
    Ok(())
}

fn next_value<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, String> {
    args.get(i)
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag}: bad value `{}`", args[i]))
}

/// `smoke`: every registered scenario on its tiny grid; every JSONL line
/// must validate, or the process exits non-zero (the CI gate).
fn cmd_smoke() -> Result<(), String> {
    let registry = registry();
    let runner = SweepRunner::new();
    for scenario in registry.iter() {
        let start = Instant::now();
        let report = scenario
            .run_grid(&scenario.smoke_grid(), 2, 1, &runner)
            .map_err(|e| format!("{}: {e}", scenario.name()))?;
        if report.rows.is_empty() {
            return Err(format!("{}: smoke grid produced no rows", scenario.name()));
        }
        let jsonl = report.to_jsonl();
        for (lineno, line) in jsonl.lines().enumerate() {
            kdchoice_expt::validate_json(line).map_err(|e| {
                format!(
                    "{}: malformed JSON on line {}: {e}\n  {line}",
                    scenario.name(),
                    lineno + 1
                )
            })?;
        }
        println!(
            "smoke {:<10} {:>3} rows ok in {:>6.1?}",
            scenario.name(),
            report.rows.len(),
            start.elapsed()
        );
        print!("{jsonl}");
    }
    println!("smoke: all scenarios produced well-formed JSON");
    Ok(())
}

// ---------------------------------------------------------------------------
// Throughput harness (BENCH_results.json)
// ---------------------------------------------------------------------------

/// One measured static configuration: the pre-refactor dynamic path vs
/// the monomorphized batched engine.
struct Measurement {
    k: usize,
    d: usize,
    n: usize,
    balls: u64,
    dyn_legacy_balls_per_sec: f64,
    generic_batched_balls_per_sec: f64,
    max_load_dyn: u32,
    max_load_generic: u32,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.generic_batched_balls_per_sec / self.dyn_legacy_balls_per_sec
    }
}

/// One scenario-throughput row: a whole (config × trial) sweep through
/// the shared runner, measured end to end.
struct ScenarioThroughput {
    scenario: &'static str,
    unit: &'static str,
    grid: String,
    trials: usize,
    work_items: u64,
    wall_secs: f64,
    rate: f64,
}

/// One thread-scaling row of the concurrent placement service: a fixed
/// total request budget split across `threads` closed-loop clients.
struct ServiceScaling {
    threads: usize,
    bins: usize,
    k: usize,
    d: usize,
    shards: usize,
    requests: u64,
    balls_placed: u64,
    wall_secs: f64,
    balls_per_sec: f64,
    placements_per_sec: f64,
    max_load: u32,
    gap: f64,
    conserved: bool,
}

/// Client thread counts swept by the service thread-scaling mode.
const SERVICE_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Measures placement throughput of the sharded service at each thread
/// count, holding the total work fixed so rows are comparable: every row
/// statically fills the same ball count, so final max-load/gap are
/// directly comparable across thread counts (the release path is
/// exercised by the `service` smoke grid and the stress tests).
fn measure_service_scaling(quick: bool) -> Vec<ServiceScaling> {
    let (bins, total_requests) = if quick {
        (1 << 13, 100_000usize)
    } else {
        (1 << 16, 1_500_000usize)
    };
    SERVICE_THREADS
        .iter()
        .map(|&threads| {
            let cfg = ServiceWorkloadConfig {
                bins,
                k: 2,
                d: 4,
                shards: 16,
                threads,
                requests_per_thread: total_requests / threads,
                window: 0,
                backend: ServiceBackend::Striped,
                snapshot_refresh: 1,
                store: StoreKind::Exact,
                dims: 1,
                objective: kdchoice_core::PlacementObjective::Scalar,
                demand: kdchoice_prng::demand::DemandDistribution::Unit,
                seed: 0xBE7C4,
            };
            let report = run_service_workload(&cfg);
            ServiceScaling {
                threads,
                bins,
                k: cfg.k,
                d: cfg.d,
                shards: cfg.shards,
                requests: report.placements,
                balls_placed: report.balls_placed,
                wall_secs: report.wall_secs,
                balls_per_sec: report.balls_per_sec,
                placements_per_sec: report.placements_per_sec,
                max_load: report.max_load,
                gap: report.gap,
                conserved: report.conserved,
            }
        })
        .collect()
}

/// One open-loop λ×threads row: the same traffic trace driven through
/// both pipeline modes, so the batched-vs-per-request lock amortization
/// is measured head to head on identical work.
struct OpenLoopScaling {
    lambda: f64,
    threads: usize,
    bins: usize,
    ticks: u32,
    committed: u64,
    backlog: u64,
    balls_placed: u64,
    per_request_balls_per_sec: f64,
    batched_balls_per_sec: f64,
    latency_p50: f64,
    latency_p99: f64,
    max_load: u32,
    gap: f64,
    conserved: bool,
}

impl OpenLoopScaling {
    fn speedup(&self) -> f64 {
        self.batched_balls_per_sec / self.per_request_balls_per_sec
    }
}

/// Offered-load factors swept by the open-loop mode (fractions of the
/// service capacity; 1.2 is deliberate overload).
const OPEN_LOOP_LAMBDAS: [f64; 4] = [0.5, 0.9, 0.99, 1.2];

/// Measures the open-loop dynamic traffic engine over the λ×threads
/// grid. The virtual-clock schedule (and therefore every latency
/// number) is identical for the two pipeline modes at a given λ; the
/// wall-clock rate is what separates them.
fn measure_open_loop(quick: bool) -> Vec<OpenLoopScaling> {
    // Short lifetimes keep the per-tick batch chunky (capacity =
    // n/(k·mu) commits per tick), so the barrier cadence does not
    // dominate the multi-thread rows.
    let (bins, ticks, mu, reps) = if quick {
        (1 << 12, 400u32, 8.0, 1usize)
    } else {
        (1 << 14, 1500, 16.0, 2)
    };
    let lambdas: &[f64] = if quick {
        &[0.9, 1.2]
    } else {
        &OPEN_LOOP_LAMBDAS
    };
    let threads: &[usize] = if quick { &[1, 8] } else { &[1, 2, 4, 8] };

    let mut rows = Vec::new();
    for &lambda in lambdas {
        for &t in threads {
            let mut config = OpenLoopConfig::at_lambda(bins, 2, 4, lambda, mu, ticks, 0xBE7C4);
            config.threads = t;
            config.sample_every = 8;
            let mut best = |mode: PipelineMode| {
                config.mode = mode;
                let mut best_rate = 0.0f64;
                let mut last = None;
                for _ in 0..reps {
                    let report = run_open_loop(&config);
                    assert!(report.conserved, "open-loop run must conserve balls");
                    best_rate = best_rate.max(report.balls_per_sec);
                    last = Some(report);
                }
                (best_rate, last.expect("reps >= 1"))
            };
            let (batched_rate, report) = best(PipelineMode::Batched);
            let (per_request_rate, _) = best(PipelineMode::PerRequest);
            rows.push(OpenLoopScaling {
                lambda,
                threads: t,
                bins,
                ticks,
                committed: report.requests_committed,
                backlog: report.backlog,
                balls_placed: report.balls_placed,
                per_request_balls_per_sec: per_request_rate,
                batched_balls_per_sec: batched_rate,
                latency_p50: report.latency_p50,
                latency_p99: report.latency_p99,
                max_load: report.final_max_load,
                gap: report.final_gap,
                conserved: report.conserved,
            });
        }
    }
    rows
}

/// One thread count of the backend race: the identical open-loop trace
/// (same seed, same virtual-clock schedule, same per-request placement
/// streams) driven through the lock-striped store (both pipeline
/// modes), the shared-nothing owned engine, and the lock-free CAS-bins
/// store.
struct BackendRace {
    threads: usize,
    bins: usize,
    ticks: u32,
    refresh: usize,
    balls_placed: u64,
    striped_per_request_balls_per_sec: f64,
    striped_batched_balls_per_sec: f64,
    shared_nothing_balls_per_sec: f64,
    lockfree_balls_per_sec: f64,
    striped_max_load: u32,
    owned_max_load: u32,
    lockfree_max_load: u32,
    /// Steady-state gap of the lock-free run (mean over the trace's
    /// second half), checked live against the Theorem 2 envelope —
    /// raced CAS commits must not cost more balance than bounded-stale
    /// snapshots do.
    lockfree_steady_gap: f64,
    lockfree_envelope_hi: f64,
    lockfree_within_envelope: bool,
    conserved: bool,
}

/// Snapshot refresh period the owned engine races at (decisions may
/// read counters up to this many mutations stale).
const RACE_REFRESH: usize = 64;

/// Races the backends on identical traces at each thread count. λ=0.9
/// (the busy-but-stable regime), short lifetimes so each tick commits a
/// chunky batch and the owned engine's two-barrier cadence is amortized.
fn measure_backend_race(quick: bool) -> Vec<BackendRace> {
    let (bins, ticks, mu, reps) = if quick {
        (1 << 13, 120u32, 4.0, 1usize)
    } else {
        (1 << 16, 400, 8.0, 2)
    };
    let threads: &[usize] = if quick { &[1, 8] } else { &[1, 2, 4, 8] };
    // The race runs (k=2, d=4), where d = 2k keeps Theorem 2's
    // envelope applicable to the steady-state gap rows.
    let envelope = kdchoice_theory::bounds::theorem2_gap_band(2, 4, bins, 3.0);
    threads
        .iter()
        .map(|&t| {
            let mut config = OpenLoopConfig::at_lambda(bins, 2, 4, 0.9, mu, ticks, 0xBE7C4);
            config.threads = t;
            config.sample_every = 8;
            config.snapshot_refresh = RACE_REFRESH;
            let mut best = |backend: ServiceBackend, mode: PipelineMode| {
                config.backend = backend;
                config.mode = mode;
                let mut best_rate = 0.0f64;
                let mut last = None;
                for _ in 0..reps {
                    let report = run_open_loop(&config);
                    assert!(report.conserved, "backend race run must conserve balls");
                    best_rate = best_rate.max(report.balls_per_sec);
                    last = Some(report);
                }
                (best_rate, last.expect("reps >= 1"))
            };
            let (per_request_rate, striped_report) =
                best(ServiceBackend::Striped, PipelineMode::PerRequest);
            let (batched_rate, _) = best(ServiceBackend::Striped, PipelineMode::Batched);
            let (owned_rate, owned_report) =
                best(ServiceBackend::SharedNothing, PipelineMode::Batched);
            let (lockfree_rate, lockfree_report) =
                best(ServiceBackend::LockFree, PipelineMode::PerRequest);
            let lockfree_gap = lockfree_report.steady_gap_mean;
            BackendRace {
                threads: t,
                bins,
                ticks,
                refresh: RACE_REFRESH,
                balls_placed: owned_report.balls_placed,
                striped_per_request_balls_per_sec: per_request_rate,
                striped_batched_balls_per_sec: batched_rate,
                shared_nothing_balls_per_sec: owned_rate,
                lockfree_balls_per_sec: lockfree_rate,
                striped_max_load: striped_report.final_max_load,
                owned_max_load: owned_report.final_max_load,
                lockfree_max_load: lockfree_report.final_max_load,
                lockfree_steady_gap: lockfree_gap,
                lockfree_envelope_hi: envelope.hi,
                lockfree_within_envelope: lockfree_gap <= envelope.hi,
                conserved: striped_report.conserved
                    && owned_report.conserved
                    && lockfree_report.conserved,
            }
        })
        .collect()
}

/// The `backend_race` JSON rows — one renderer shared by the committed
/// `BENCH_results.json` and the quick-mode shape gate, so CI validates
/// the exact structure the full run writes.
fn race_rows_json(race: &[BackendRace]) -> String {
    use std::fmt::Write as _;
    let mutex_1t = race
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.striped_per_request_balls_per_sec)
        .unwrap_or(f64::NAN);
    let mut out = String::from("[\n");
    for (i, r) in race.iter().enumerate() {
        let speedup = r.shared_nothing_balls_per_sec / mutex_1t;
        let _ = write!(
            out,
            "    {{\n      \"threads\": {},\n      \"n\": {},\n      \"ticks\": {},\n      \"snapshot_refresh\": {},\n      \"balls_placed\": {},\n      \"striped_per_request_balls_per_sec\": {:.0},\n      \"striped_batched_balls_per_sec\": {:.0},\n      \"shared_nothing_balls_per_sec\": {:.0},\n      \"lockfree_balls_per_sec\": {:.0},\n      \"speedup_vs_mutex_1t\": {:.3},\n      \"speedup_vs_striped_same_threads\": {:.3},\n      \"lockfree_speedup_vs_mutex_1t\": {:.3},\n      \"striped_max_load\": {},\n      \"shared_nothing_max_load\": {},\n      \"lockfree_max_load\": {},\n      \"lockfree_steady_gap\": {:.3},\n      \"lockfree_envelope_hi\": {:.3},\n      \"lockfree_within_envelope\": {},\n      \"target_met\": {},\n      \"conserved\": {}\n    }}",
            r.threads,
            r.bins,
            r.ticks,
            r.refresh,
            r.balls_placed,
            r.striped_per_request_balls_per_sec,
            r.striped_batched_balls_per_sec,
            r.shared_nothing_balls_per_sec,
            r.lockfree_balls_per_sec,
            speedup,
            r.shared_nothing_balls_per_sec / r.striped_per_request_balls_per_sec,
            r.lockfree_balls_per_sec / mutex_1t,
            r.striped_max_load,
            r.owned_max_load,
            r.lockfree_max_load,
            r.lockfree_steady_gap,
            r.lockfree_envelope_hi,
            r.lockfree_within_envelope,
            r.threads != 8 || speedup >= 3.0,
            r.conserved,
        );
        out.push_str(if i + 1 < race.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    out
}

/// One refresh period of the staleness sweep: steady-state gap of the
/// owned engine deciding on snapshots republished every `refresh`
/// mutations, against the Theorem 2 envelope for (k=1, d=2).
struct StalenessGap {
    refresh: usize,
    bins: usize,
    steady_gap: f64,
    envelope_hi: f64,
    within_envelope: bool,
}

/// Sweeps the snapshot refresh period on the deterministic
/// single-threaded owned engine — the same (k=1, d=2), λ=0.9 churn
/// config the `open_loop_regression` and `snapshot_staleness` tests
/// pin, so the committed numbers and CI assert the same envelope.
fn measure_staleness_gap() -> Vec<StalenessGap> {
    let bins = 1 << 12;
    let envelope = kdchoice_theory::bounds::theorem2_gap_band(1, 2, bins, 3.0);
    [1usize, 8, 64, 512]
        .into_iter()
        .map(|refresh| {
            let mut config = OpenLoopConfig::at_lambda(bins, 1, 2, 0.9, 32.0, 1200, 0xBE7C4);
            config.threads = 1;
            config.backend = ServiceBackend::SharedNothing;
            config.snapshot_refresh = refresh;
            config.sample_every = 4;
            let report = run_open_loop(&config);
            assert!(report.conserved, "staleness sweep must conserve balls");
            StalenessGap {
                refresh,
                bins,
                steady_gap: report.steady_gap_mean,
                envelope_hi: envelope.hi,
                within_envelope: report.steady_gap_mean <= envelope.hi,
            }
        })
        .collect()
}

/// Thread-scaling throughput of the full-config service workload as
/// recorded **before** the shard slots were padded to their own cache
/// lines (`CachePadded` in `sharded.rs`): `(threads, balls_per_sec)`
/// from the committed `BENCH_results.json` of the unpadded build, same
/// n=2^16 / k=2 / d=4 / shards=16 / 1.5M-request configuration the
/// `service_thread_scaling` section still runs.
const FALSE_SHARING_BEFORE: [(usize, f64); 4] = [
    (1, 5_976_226.0),
    (2, 5_991_294.0),
    (4, 6_296_565.0),
    (8, 6_602_398.0),
];

/// The uniform-vs-weighted sampling race: the same draw budget pulled
/// through the uniform batch sampler, the equal-weights alias sampler
/// (which degenerates to the uniform stream), and a Zipf(1.0) alias
/// table. The acceptance bar for the heterogeneous tentpole is
/// `uniform / zipf ≤ 1.3` — weighted sampling must not fall off the
/// hardware-speed path.
struct SamplingRace {
    n: usize,
    draws: u64,
    uniform_per_sec: f64,
    weighted_equal_per_sec: f64,
    weighted_zipf_per_sec: f64,
}

impl SamplingRace {
    /// How much slower Zipf-weighted draws are than uniform draws
    /// (1.0 = parity; the acceptance bar is ≤ 1.3).
    fn uniform_over_zipf(&self) -> f64 {
        self.uniform_per_sec / self.weighted_zipf_per_sec
    }
}

/// Times one batched sampling closure over `draws` values pulled in
/// chunks of 2^16 (the buffer-reuse pattern of the round engines),
/// returning the best of [`REPS`] runs in draws/sec.
fn time_sampling<F: FnMut(&mut Xoshiro256PlusPlus, usize, &mut Vec<usize>)>(
    draws: u64,
    mut fill: F,
) -> f64 {
    const CHUNK: usize = 1 << 16;
    let mut best = 0.0f64;
    for rep in 0..REPS {
        let mut rng = Xoshiro256PlusPlus::from_u64(0xBE7C4 + rep as u64);
        let mut out = Vec::with_capacity(CHUNK);
        let mut sink = 0usize;
        let start = Instant::now();
        let mut remaining = draws;
        while remaining > 0 {
            let take = remaining.min(CHUNK as u64) as usize;
            fill(&mut rng, take, &mut out);
            sink = sink.wrapping_add(out.last().copied().unwrap_or(0));
            remaining -= take as u64;
        }
        let secs = start.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        best = best.max(draws as f64 / secs);
    }
    best
}

/// Races the samplers at two table sizes: `n = 2^16` (the workspace's
/// canonical bin count; the 512 KiB packed alias table is cache-resident
/// and the ≤ 1.3× acceptance bar applies) and `n = 2^20` (the table
/// spills to DRAM, so the gap is memory latency, not sampler
/// arithmetic — recorded for honesty, not gated).
fn measure_sampling_race(quick: bool) -> Vec<SamplingRace> {
    let draws: u64 = if quick { 1 << 22 } else { 1 << 25 };
    [1usize << 16, 1 << 20]
        .into_iter()
        .map(|n| {
            let equal = WeightedBin::new(&vec![1.0; n]).expect("valid weights");
            assert!(equal.is_uniform());
            let zipf = WeightedBin::zipf(n, 1.0).expect("valid zipf");
            SamplingRace {
                n,
                draws,
                uniform_per_sec: time_sampling(draws, |rng, take, out| {
                    fill_with_replacement(rng, n, take, out)
                }),
                weighted_equal_per_sec: time_sampling(draws, |rng, take, out| {
                    fill_weighted(rng, &equal, take, out)
                }),
                weighted_zipf_per_sec: time_sampling(draws, |rng, take, out| {
                    fill_weighted(rng, &zipf, take, out)
                }),
            }
        })
        .collect()
}

/// One cell of the memory-vs-balance frontier: a (2,4)-choice static
/// fill through `run_once_compact` on one store kind, recording the
/// bytes the decision state occupies per bin next to the gap it pays
/// and the fill rate it sustains. Exact and (lossless) packed rows
/// report the true gap of the identical decision stream; sketch rows
/// report the gap of the count-min *estimates*, which includes the
/// collision inflation ≈ balls/width — that fidelity cost is the
/// frontier's honest third axis, not an artifact.
struct GapVsBytes {
    store: &'static str,
    n: usize,
    balls: u64,
    bytes_per_bin: f64,
    balls_per_sec: f64,
    max_load: u32,
    gap: f64,
    lossless: bool,
    reps: usize,
}

/// Store kinds swept by the frontier (all four representations).
const GAP_STORE_KINDS: [StoreKind; 4] = [
    StoreKind::Exact,
    StoreKind::Packed4,
    StoreKind::Packed8,
    StoreKind::Sketch,
];

/// Runs one frontier cell `reps` times (best rate kept), returning the
/// final slab's observables alongside the measured fill rate.
fn measure_gap_vs_bytes_cell(kind: StoreKind, n: usize, balls: u64, reps: usize) -> GapVsBytes {
    let cfg = RunConfig::new(n, 0xBE7C4).with_balls(balls);
    let mut best_rate = 0.0f64;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let (result, slab) = run_once_compact(kind, 2, 4, &ProbeDistribution::Uniform, None, &cfg);
        let secs = start.elapsed().as_secs_f64();
        best_rate = best_rate.max(balls as f64 / secs);
        last = Some((result, slab));
    }
    let (result, slab) = last.expect("reps >= 1");
    let lossless = match &slab {
        BinSlab::Exact(_) => true,
        BinSlab::Packed(p) => p.is_lossless(),
        BinSlab::Sketch(_) => false,
    };
    GapVsBytes {
        store: kind.name(),
        n,
        balls,
        bytes_per_bin: slab.bytes_per_bin(),
        balls_per_sec: best_rate,
        max_load: result.max_load,
        gap: result.gap,
        lossless,
        reps,
    }
}

/// Sweeps store kind × n up to the 10^8-bin frontier. The largest grid
/// point (n = 2^24 ≈ 1.7·10^7 bins) and the frontier rows put the exact
/// store's u32 loads far past any cache (64 MB / 400 MB hot state); the
/// packed rows shrink the same decision state 8×. Frontier rows run one
/// fill each (recorded in `reps`).
fn measure_gap_vs_bytes(quick: bool) -> Vec<GapVsBytes> {
    let mut rows = Vec::new();
    if quick {
        for kind in GAP_STORE_KINDS {
            rows.push(measure_gap_vs_bytes_cell(kind, 1 << 12, 4 << 12, 1));
        }
        return rows;
    }
    for (n, ratio) in [(1usize << 16, 4u64), (1 << 20, 4), (1 << 24, 2)] {
        for kind in GAP_STORE_KINDS {
            rows.push(measure_gap_vs_bytes_cell(kind, n, ratio * n as u64, REPS));
        }
    }
    for kind in GAP_STORE_KINDS {
        rows.push(measure_gap_vs_bytes_cell(kind, 100_000_000, 100_000_000, 1));
    }
    rows
}

/// The acceptance race for the compact tentpole: the identical n = 2^20
/// static fill (same seed, same probes, same decide kernel) against the
/// exact u32 store and the packed 4-bit store. The exact slab's hot
/// loads span 4 MiB; the packed slab's 512 KiB, so the packed fill must
/// win on balls/sec while replaying the exact decision stream bit for
/// bit (the run stays lossless — renormalization slides the shared base
/// under the ~15-ball spread).
struct CompactStoreRace {
    n: usize,
    balls: u64,
    exact_balls_per_sec: f64,
    packed4_balls_per_sec: f64,
    exact_bytes_per_bin: f64,
    packed4_bytes_per_bin: f64,
    max_load: u32,
    identical_stream: bool,
}

impl CompactStoreRace {
    fn speedup(&self) -> f64 {
        self.packed4_balls_per_sec / self.exact_balls_per_sec
    }
}

fn measure_compact_store(quick: bool) -> CompactStoreRace {
    let n = if quick { 1 << 14 } else { 1 << 20 };
    let balls = 16 * n as u64;
    let cfg = RunConfig::new(n, 0xBE7C4).with_balls(balls);
    let run_one = |kind: StoreKind| {
        let start = Instant::now();
        let (result, slab) = run_once_compact(kind, 2, 4, &ProbeDistribution::Uniform, None, &cfg);
        let secs = start.elapsed().as_secs_f64();
        (balls as f64 / secs, result, slab.bytes_per_bin())
    };
    // Interleave the two sides rep by rep: the host throttles under
    // sustained load, so back-to-back blocks of reps would hand the
    // side that runs first a systematic advantage.
    let race_reps = if quick { 1 } else { REPS + 2 };
    let mut exact_rate = 0.0f64;
    let mut packed_rate = 0.0f64;
    let mut exact_last = None;
    let mut packed_last = None;
    for _ in 0..race_reps {
        let (rate, result, bpb) = run_one(StoreKind::Exact);
        exact_rate = exact_rate.max(rate);
        exact_last = Some((result, bpb));
        let (rate, result, bpb) = run_one(StoreKind::Packed4);
        packed_rate = packed_rate.max(rate);
        packed_last = Some((result, bpb));
    }
    let (exact_result, exact_bpb) = exact_last.expect("reps >= 1");
    let (packed_result, packed_bpb) = packed_last.expect("reps >= 1");
    CompactStoreRace {
        n,
        balls,
        exact_balls_per_sec: exact_rate,
        packed4_balls_per_sec: packed_rate,
        exact_bytes_per_bin: exact_bpb,
        packed4_bytes_per_bin: packed_bpb,
        max_load: packed_result.max_load,
        identical_stream: exact_result.load_histogram == packed_result.load_histogram
            && exact_result.height_histogram == packed_result.height_histogram
            && exact_result.max_load == packed_result.max_load,
    }
}

/// One before/after row of the kernel-prefetch microbench.
struct DecidePrefetch {
    n: usize,
    d: usize,
    decisions: u64,
    before_decisions_per_sec: f64,
    after_decisions_per_sec: f64,
}

impl DecidePrefetch {
    fn delta(&self) -> f64 {
        self.after_decisions_per_sec / self.before_decisions_per_sec - 1.0
    }
}

/// A view adapter that drops the underlying view's `prefetch` back to
/// the trait's no-op default. Driving `decide_k_least` through it
/// reproduces the **pre-prefetch kernel exactly**: with nothing to
/// issue, the kernel's prefetch pass folds away, leaving the original
/// expand/select loop. That gives the before/after race a live "before"
/// in the same process — rep-interleaved with the prefetching view, so
/// host throttling drift hits both sides equally (which a committed
/// before-constant cannot guarantee).
struct NoPrefetch<'a, V: ?Sized>(&'a V);

impl<V: LoadView + ?Sized> LoadView for NoPrefetch<'_, V> {
    #[inline]
    fn view_n(&self) -> usize {
        self.0.view_n()
    }

    #[inline]
    fn view_load(&self, bin: usize) -> u32 {
        self.0.view_load(bin)
    }
}

/// One timed pass of the decision kernel alone over `view`: random
/// sorted probe batches of `d`, k = 2 winners, in decisions/sec. The
/// probe stream and tie-key draws depend only on `seed` (prefetching
/// consumes no RNG), so passes over the two views time identical work.
fn decide_pass<V: LoadView + ?Sized>(view: &V, d: usize, decisions: u64, seed: u64) -> f64 {
    let n = view.view_n();
    let mut rng = Xoshiro256PlusPlus::from_u64(seed);
    let mut probes = vec![0usize; d];
    let mut slots: Vec<(u32, u64, usize)> = Vec::with_capacity(d);
    let mut winners: Vec<usize> = Vec::with_capacity(2);
    let mut sink = 0u32;
    let start = Instant::now();
    for _ in 0..decisions {
        fill_with_replacement(&mut rng, n, d, &mut probes);
        probes.sort_unstable();
        winners.clear();
        sink = sink.wrapping_add(decide_k_least(
            view,
            &probes,
            2,
            &mut rng,
            &mut slots,
            &mut winners,
        ));
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    decisions as f64 / secs
}

/// Races the kernel with and without its probe-batch prefetch pass on
/// an exact slab prefilled to mean load 2: `REPS` rep-interleaved
/// (after, before) pass pairs, best of each side.
fn time_decide_kernel(n: usize, d: usize, decisions: u64) -> DecidePrefetch {
    let mut slab = StoreKind::Exact.new_slab(n);
    {
        let mut rng = Xoshiro256PlusPlus::from_u64(0x5EED);
        let mut bins = vec![0usize; 1 << 16];
        let mut placed = 0u64;
        while placed < 2 * n as u64 {
            fill_with_replacement(&mut rng, n, bins.len(), &mut bins);
            for &b in &bins {
                slab.add_ball(b);
            }
            placed += bins.len() as u64;
        }
    }
    let mut best_before = 0.0f64;
    let mut best_after = 0.0f64;
    for rep in 0..REPS as u64 {
        best_after = best_after.max(decide_pass(&slab, d, decisions, 0xBE7C4 ^ rep));
        best_before = best_before.max(decide_pass(&NoPrefetch(&slab), d, decisions, 0xBE7C4 ^ rep));
    }
    DecidePrefetch {
        n,
        d,
        decisions,
        before_decisions_per_sec: best_before,
        after_decisions_per_sec: best_after,
    }
}

/// The kernel-prefetch race at the cache-boundary n = 2^20 table and
/// the DRAM-resident n = 2^24 table.
fn measure_decide_prefetch() -> Vec<DecidePrefetch> {
    [1usize << 20, 1 << 24]
        .into_iter()
        .map(|n| time_decide_kernel(n, 8, 1 << 21))
        .collect()
}

/// One cell of the graceful-degradation sweep: a seeded crash storm
/// against the fault-injected cluster at one recovery budget, measuring
/// how deep the under-replication window gets, how long healing takes,
/// and what the placement pipeline still sustains under churn.
struct ClusterDegradation {
    budget: u32,
    failures: usize,
    servers: usize,
    k: usize,
    files: usize,
    peak_under_replicated: u64,
    under_replicated_p99: u64,
    under_replicated_area: u64,
    ticks_to_heal: u64,
    healed: bool,
    detection_latency_mean: f64,
    durability_losses: u64,
    repair_attempts: u64,
    replicas_placed: u64,
    wall_secs: f64,
    balls_per_sec: f64,
}

/// Sweeps recovery budget × failure count over a fixed storm seed. Every
/// cell replays the same creates and crash schedule; only the repair
/// rate differs, so the degradation curve isolates the budget's effect.
fn measure_cluster_degradation(quick: bool) -> Vec<ClusterDegradation> {
    let (servers, files, budgets, failure_counts): (usize, usize, &[u32], &[usize]) = if quick {
        (50, 1_000, &[2, 0], &[4])
    } else {
        (200, 8_000, &[1, 4, 16, 0], &[4, 12])
    };
    let k = 3;
    let mut rows = Vec::new();
    for &failures in failure_counts {
        for &budget in budgets {
            let mut cluster =
                ClusterConfig::new(servers, k, PlacementPolicy::KdChoice { d: 2 * k });
            cluster.heartbeat = HeartbeatConfig::new(2, 1);
            cluster.recovery = if budget == 0 {
                RecoveryConfig::unbounded()
            } else {
                RecoveryConfig::budgeted(budget)
            };
            let mut config = ClusterWorkloadConfig::new(cluster);
            config.files = files;
            config.reads = 0;
            config.sample_every = 1;
            config.plan = FaultPlan::new().storm(failures, files as u64);
            config.seed = 0xBE7C4;
            let start = Instant::now();
            let report = run_cluster_workload(&config);
            let wall_secs = start.elapsed().as_secs_f64();
            assert!(
                report.degradation.healed,
                "degradation sweep must heal (budget {budget}, failures {failures})"
            );
            let mut under: Vec<u32> = report.series.iter().map(|&(_, u)| u).collect();
            under.sort_unstable();
            let p99 = under
                .get((under.len().saturating_sub(1)) * 99 / 100)
                .copied()
                .unwrap_or(0);
            let replicas_placed = (files * k) as u64 + report.stats.recovered_chunks;
            rows.push(ClusterDegradation {
                budget,
                failures,
                servers,
                k,
                files,
                peak_under_replicated: report.degradation.peak_under_replicated,
                under_replicated_p99: u64::from(p99),
                under_replicated_area: report.degradation.under_replicated_area,
                ticks_to_heal: report.degradation.ticks_to_heal,
                healed: report.degradation.healed,
                detection_latency_mean: report.degradation.detection_latency_mean,
                durability_losses: report.degradation.durability_losses,
                repair_attempts: report.degradation.repair_attempts,
                replicas_placed,
                wall_secs,
                balls_per_sec: replicas_placed as f64 / wall_secs,
            });
        }
    }
    rows
}

/// How many times each measurement repeats; the best rate is reported
/// (standard practice for throughput: the minimum-interference run).
const REPS: usize = 3;

/// Times one full run `REPS` times, returning (best balls/sec, max load).
fn time_run<F: FnMut() -> kdchoice_core::RunResult>(balls: u64, mut run: F) -> (f64, u32) {
    let mut best_rate = 0.0f64;
    let mut max_load = 0;
    for _ in 0..REPS {
        let start = Instant::now();
        let result = run();
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(result.balls_placed, balls, "harness must place every ball");
        best_rate = best_rate.max(balls as f64 / secs);
        max_load = result.max_load;
    }
    (best_rate, max_load)
}

fn measure(k: usize, d: usize, n: usize, ratio: u64, seed: u64) -> Measurement {
    let balls = ratio * n as u64;
    let cfg = RunConfig::new(n, seed).with_balls(balls);

    // Pre-refactor path: legacy engine behind the object-safe shim — every
    // probe, tie key, and height crosses a `dyn` boundary.
    let (dyn_rate, max_load_dyn) = time_run(balls, || {
        let mut p: Box<dyn BallsIntoBins> = Box::new(
            KdChoice::new(k, d)
                .expect("valid (k,d)")
                .with_engine(EngineVersion::Legacy),
        );
        run_once(&mut *p, &cfg)
    });

    // Monomorphized batched engine: static dispatch end to end.
    let (generic_rate, max_load_generic) = time_run(balls, || {
        let mut p = KdChoice::new(k, d)
            .expect("valid (k,d)")
            .with_engine(EngineVersion::Batched);
        run_once(&mut p, &cfg)
    });

    Measurement {
        k,
        d,
        n,
        balls,
        dyn_legacy_balls_per_sec: dyn_rate,
        generic_batched_balls_per_sec: generic_rate,
        max_load_dyn,
        max_load_generic,
    }
}

/// Sweeps `scenario` over `grid` with the shared runner and measures the
/// end-to-end rate, where one "work item" is `work_per_run` (jobs per
/// simulation, ops per workload, ...).
fn measure_scenario<S: Scenario>(
    scenario: &S,
    grid_str: &str,
    trials: usize,
    work_per_run: u64,
) -> ScenarioThroughput {
    let grid = GridSpec::parse_str(grid_str).expect("harness grid is well-formed");
    let configs = configs_from_grid(scenario, &grid, 0xBE7C4).expect("harness grid is valid");
    let runner = SweepRunner::new();
    let start = Instant::now();
    let cells = runner.run_scenario(scenario, &configs, trials);
    let wall_secs = start.elapsed().as_secs_f64();
    let runs: u64 = cells.iter().map(|c| c.runs.len() as u64).sum();
    let work_items = runs * work_per_run;
    ScenarioThroughput {
        scenario: scenario.name(),
        unit: scenario.throughput_unit(),
        grid: grid_str.to_string(),
        trials,
        work_items,
        wall_secs,
        rate: work_items as f64 / wall_secs,
    }
}

/// One cell of the multidimensional-load sweep: a static fill of
/// vector-demand balls under the max-norm objective, with the
/// per-dimension gap profile of the final state.
struct VectorLoadRow {
    dims: usize,
    d: usize,
    n: usize,
    balls: u64,
    balls_per_sec: f64,
    max_load: u32,
    scalar_gap: f64,
    dim_gaps: Vec<f64>,
    /// Demand-scaled Theorem 2 envelope, present only where the bound
    /// applies (d >= 2k).
    envelope_hi: Option<f64>,
}

impl VectorLoadRow {
    fn max_dim_gap(&self) -> f64 {
        self.dim_gaps.iter().cloned().fold(0.0f64, f64::max)
    }
}

/// The `vector_loads` sweep: one-choice vs two-choice static fills of
/// `4n` balls whose demands are uniform `1..=4` vectors, placed by the
/// max-norm objective, at dims in {2, 4}. The d=1 rows are the baseline
/// that shows what probing buys per dimension; the d=2 rows must sit
/// inside the demand-scaled Theorem 2 envelope (the same bar the
/// `vector_envelope` test suite asserts in CI).
fn measure_vector_loads(quick: bool) -> Vec<VectorLoadRow> {
    const DEMAND_MAX: u32 = 4;
    let ns: &[usize] = if quick {
        &[1 << 12, 1 << 14]
    } else {
        &[1 << 14, 1 << 16, 1 << 18, 1 << 20]
    };
    let demand = DemandDistribution::uniform(DEMAND_MAX).expect("harness demand distribution");
    let mut rows = Vec::new();
    for &n in ns {
        for dims in [2usize, 4] {
            for d in [1usize, 2] {
                let balls = 4 * n as u64;
                let seed = 0xD1E5_0000u64 ^ (n as u64) ^ ((dims as u64) << 48) ^ ((d as u64) << 56);
                let config = RunConfig::new(n, seed).with_balls(balls);
                let start = Instant::now();
                let (result, store) = run_once_vector(
                    1,
                    d,
                    dims,
                    &PlacementObjective::MaxNorm,
                    &demand,
                    &ProbeDistribution::Uniform,
                    None,
                    &config,
                );
                let wall = start.elapsed().as_secs_f64();
                assert!(store.check_invariants(), "vector store invariants (n={n})");
                let envelope_hi = (d >= 2).then(|| {
                    kdchoice_theory::bounds::vector_gap_band(
                        1,
                        d,
                        n,
                        DEMAND_MAX,
                        2.0 * f64::from(DEMAND_MAX),
                    )
                    .hi
                });
                rows.push(VectorLoadRow {
                    dims,
                    d,
                    n,
                    balls,
                    balls_per_sec: balls as f64 / wall,
                    max_load: result.max_load,
                    scalar_gap: result.gap,
                    dim_gaps: store.dim_gaps(),
                    envelope_hi,
                });
            }
        }
    }
    rows
}

/// Renders the `vector_loads` rows as a JSON array — shared between
/// [`render_json`] and the quick-mode validation pass, like
/// [`gap_rows_json`].
fn vector_rows_json(rows: &[VectorLoadRow]) -> String {
    let mut out = String::from("[\n");
    for (i, v) in rows.iter().enumerate() {
        let gaps = v
            .dim_gaps
            .iter()
            .map(|g| format!("{g:.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        let envelope = match v.envelope_hi {
            Some(hi) => format!("{hi:.3}"),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "    {{\n      \"dims\": {},\n      \"k\": 1,\n      \"d\": {},\n      \"n\": {},\n      \"balls\": {},\n      \"objective\": \"max_norm\",\n      \"demand\": \"uniform(4)\",\n      \"balls_per_sec\": {:.0},\n      \"max_load\": {},\n      \"scalar_gap\": {:.3},\n      \"dim_gaps\": [{}],\n      \"max_dim_gap\": {:.3},\n      \"theorem2_envelope_hi\": {}\n    }}",
            v.dims,
            v.d,
            v.n,
            v.balls,
            v.balls_per_sec,
            v.max_load,
            v.scalar_gap,
            gaps,
            v.max_dim_gap(),
            envelope,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    out
}

/// Renders the `gap_vs_bytes` rows as a JSON array — shared between
/// [`render_json`] and the quick-mode validation pass (the CI gate that
/// keeps the section's shape honest at smoke scale).
fn gap_rows_json(rows: &[GapVsBytes]) -> String {
    let mut out = String::from("[\n");
    for (i, g) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"store\": \"{}\",\n      \"n\": {},\n      \"balls\": {},\n      \"bytes_per_bin\": {:.3},\n      \"balls_per_sec\": {:.0},\n      \"max_load\": {},\n      \"gap\": {:.3},\n      \"lossless\": {},\n      \"reps\": {}\n    }}",
            g.store,
            g.n,
            g.balls,
            g.bytes_per_bin,
            g.balls_per_sec,
            g.max_load,
            g.gap,
            g.lossless,
            g.reps,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    out
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    measurements: &[Measurement],
    scenarios: &[ScenarioThroughput],
    service: &[ServiceScaling],
    open_loop: &[OpenLoopScaling],
    race: &[BackendRace],
    staleness: &[StalenessGap],
    sampling: &[SamplingRace],
    degradation: &[ClusterDegradation],
    gap: &[GapVsBytes],
    vector: &[VectorLoadRow],
    compact: &CompactStoreRace,
    prefetch: &[DecidePrefetch],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"harness\": \"kdchoice-bench throughput\",\n");
    out.push_str(
        "  \"comparison\": \"dyn_legacy = pre-refactor Box<dyn BallsIntoBins> path with eager tie keys; generic_batched = monomorphized engine with block sampling and lazy tie keys\",\n",
    );
    let _ = writeln!(out, "  \"profile\": \"{}\",", profile_name());
    out.push_str(
        "  \"host_note\": \"provenance for the concurrency sections: thread counts above logical_cores cannot show true parallel speedup on this host\",\n",
    );
    let _ = writeln!(
        out,
        "  \"host\": {{\n    \"logical_cores\": {},\n    \"service_thread_counts\": [1, 2, 4, 8],\n    \"backend_race_thread_counts\": [{}]\n  }},",
        logical_cores(),
        race.iter()
            .map(|r| r.threads.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"process\": \"({},{})-choice\",\n      \"n\": {},\n      \"balls\": {},\n      \"dyn_legacy_balls_per_sec\": {:.0},\n      \"generic_batched_balls_per_sec\": {:.0},\n      \"speedup\": {:.3},\n      \"max_load_dyn\": {},\n      \"max_load_generic\": {}\n    }}",
            m.k,
            m.d,
            m.n,
            m.balls,
            m.dyn_legacy_balls_per_sec,
            m.generic_batched_balls_per_sec,
            m.speedup(),
            m.max_load_dyn,
            m.max_load_generic,
        );
        out.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"scenario_throughput_note\": \"end-to-end (config x trial) sweeps through the shared kdchoice-expt SweepRunner, all cores\",\n",
    );
    out.push_str("  \"scenario_throughput\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let mut grid_json = String::new();
        Value::Str(s.grid.clone().into()).write_json(&mut grid_json);
        let _ = write!(
            out,
            "    {{\n      \"scenario\": \"{}\",\n      \"unit\": \"{}\",\n      \"grid\": {},\n      \"trials\": {},\n      \"work_items\": {},\n      \"wall_secs\": {:.3},\n      \"rate\": {:.0}\n    }}",
            s.scenario, s.unit, grid_json, s.trials, s.work_items, s.wall_secs, s.rate,
        );
        out.push_str(if i + 1 < scenarios.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"service_thread_scaling_note\": \"closed-loop clients on the sharded (k,d)-choice PlacementService; fixed total request budget split across threads, static fill so max_load/gap are comparable across rows\",\n",
    );
    out.push_str("  \"service_thread_scaling\": [\n");
    for (i, s) in service.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"scenario\": \"service\",\n      \"threads\": {},\n      \"n\": {},\n      \"k\": {},\n      \"d\": {},\n      \"shards\": {},\n      \"requests\": {},\n      \"balls_placed\": {},\n      \"wall_secs\": {:.3},\n      \"balls_per_sec\": {:.0},\n      \"placements_per_sec\": {:.0},\n      \"max_load\": {},\n      \"gap\": {:.3},\n      \"conserved\": {}\n    }}",
            s.threads,
            s.bins,
            s.k,
            s.d,
            s.shards,
            s.requests,
            s.balls_placed,
            s.wall_secs,
            s.balls_per_sec,
            s.placements_per_sec,
            s.max_load,
            s.gap,
            s.conserved,
        );
        out.push_str(if i + 1 < service.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"open_loop_sweep_note\": \"open-loop dynamic traffic: Poisson arrivals at lambda x capacity, exponential ball lifetimes, FIFO queue drained at the service rate; identical virtual-clock trace driven through the per-request and batched placement pipelines, latency in virtual ticks\",\n",
    );
    out.push_str("  \"open_loop_sweep\": [\n");
    for (i, r) in open_loop.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"scenario\": \"open_loop\",\n      \"lambda\": {:.2},\n      \"threads\": {},\n      \"n\": {},\n      \"ticks\": {},\n      \"committed\": {},\n      \"backlog\": {},\n      \"balls_placed\": {},\n      \"per_request_balls_per_sec\": {:.0},\n      \"batched_balls_per_sec\": {:.0},\n      \"batched_speedup\": {:.3},\n      \"latency_p50_ticks\": {:.1},\n      \"latency_p99_ticks\": {:.1},\n      \"max_load\": {},\n      \"gap\": {:.3},\n      \"conserved\": {}\n    }}",
            r.lambda,
            r.threads,
            r.bins,
            r.ticks,
            r.committed,
            r.backlog,
            r.balls_placed,
            r.per_request_balls_per_sec,
            r.batched_balls_per_sec,
            r.speedup(),
            r.latency_p50,
            r.latency_p99,
            r.max_load,
            r.gap,
            r.conserved,
        );
        out.push_str(if i + 1 < open_loop.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"backend_race_note\": \"lock-striped ShardedStore vs shared-nothing OwnedShardEngine vs lock-free AtomicStore on bit-identical open-loop traces (lambda=0.9, k=2, d=4, chunky per-tick batches); speedup_vs_mutex_1t = shared_nothing balls/sec over the 1-thread striped per-request (mutex) rate, speedup_vs_striped_same_threads over the per-request rate at the row's own thread count, lockfree_speedup_vs_mutex_1t the same baseline for the CAS-bins store; target_met asserts the >= 3x-at-8-threads acceptance bar against the 1-thread mutex baseline. Every lockfree_steady_gap row is asserted live against the Theorem 2 envelope lnln n / ln(d/k) + 3 — raced CAS commits must not cost more balance than bounded-stale snapshots. On a single-core host the 8-thread rows cannot exceed the engines' serial rates, so the cliff shows up as the striped columns collapsing with threads while shared_nothing and lockfree hold\",\n",
    );
    out.push_str("  \"backend_race\": ");
    out.push_str(&race_rows_json(race));
    out.push_str(",\n");
    out.push_str(
        "  \"staleness_vs_gap_note\": \"steady-state gap of the shared-nothing engine deciding on load snapshots republished every `snapshot_refresh` mutations (single thread, deterministic; two-choice k=1 d=2 churn at lambda=0.9, n=2^12); every row must stay within the Theorem 2 envelope lnln n / ln(d/k) + 3, the same bar tests/snapshot_staleness.rs asserts in CI\",\n",
    );
    out.push_str("  \"staleness_vs_gap\": [\n");
    for (i, s) in staleness.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"snapshot_refresh\": {},\n      \"n\": {},\n      \"steady_gap\": {:.3},\n      \"theorem2_envelope_hi\": {:.3},\n      \"within_envelope\": {}\n    }}",
            s.refresh, s.bins, s.steady_gap, s.envelope_hi, s.within_envelope,
        );
        out.push_str(if i + 1 < staleness.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"false_sharing_fix_note\": \"service_thread_scaling balls/sec before vs after padding each ShardedStore shard slot to its own 64-byte cache line (CachePadded, repr(align(64))); before-values recorded from the committed unpadded build at the identical full configuration. On a single-core host the delta is expected to sit inside run-to-run noise — the padding pays off only when threads on different cores hammer adjacent shard mutexes\",\n",
    );
    out.push_str("  \"false_sharing_fix\": [\n");
    let false_sharing_rows: Vec<_> = FALSE_SHARING_BEFORE
        .iter()
        .filter_map(|&(threads, before)| {
            service
                .iter()
                .find(|s| s.threads == threads)
                .map(|s| (threads, before, s.balls_per_sec))
        })
        .collect();
    for (i, &(threads, before, after)) in false_sharing_rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"threads\": {},\n      \"before_balls_per_sec\": {:.0},\n      \"after_balls_per_sec\": {:.0},\n      \"delta\": {:.3}\n    }}",
            threads,
            before,
            after,
            after / before - 1.0,
        );
        out.push_str(if i + 1 < false_sharing_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"weighted_sampling_note\": \"uniform vs weighted batch sampling race: the same draw budget through fill_with_replacement, the equal-weights alias sampler (bit-identical uniform stream), and a Zipf(1.0) packed alias table; uniform_over_zipf is the weighted slowdown factor. The n=2^16 row (cache-resident 512KiB table) is the <= 1.3x acceptance bar; the n=2^20 row spills the table to DRAM and its gap is memory latency, not sampler arithmetic\",\n",
    );
    out.push_str("  \"weighted_sampling\": [\n");
    for (i, s) in sampling.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"n\": {},\n      \"draws\": {},\n      \"uniform_draws_per_sec\": {:.0},\n      \"weighted_equal_draws_per_sec\": {:.0},\n      \"weighted_zipf_draws_per_sec\": {:.0},\n      \"uniform_over_zipf\": {:.3}\n    }}",
            s.n,
            s.draws,
            s.uniform_per_sec,
            s.weighted_equal_per_sec,
            s.weighted_zipf_per_sec,
            s.uniform_over_zipf(),
        );
        out.push_str(if i + 1 < sampling.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"cluster_degradation_note\": \"graceful-degradation curve of the fault-injected replicated cluster: one seeded crash storm (heartbeat period 2, 1 tolerated miss, k=3 with d=6 probes) replayed at each recovery budget; budget 0 = unbounded (instantaneous legacy healing). under_replicated_p99 is the 99th percentile of the per-tick under-replicated chunk count, ticks_to_heal the span from first under-replication to full re-replication, balls_per_sec the replica placements (creates + repairs) per wall-clock second under churn\",\n",
    );
    out.push_str("  \"cluster_degradation\": [\n");
    for (i, c) in degradation.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"scenario\": \"cluster\",\n      \"budget_per_tick\": {},\n      \"failures\": {},\n      \"servers\": {},\n      \"k\": {},\n      \"chunks\": {},\n      \"peak_under_replicated\": {},\n      \"under_replicated_p99\": {},\n      \"under_replicated_area\": {},\n      \"ticks_to_heal\": {},\n      \"healed\": {},\n      \"detection_latency_mean_ticks\": {:.2},\n      \"durability_losses\": {},\n      \"repair_attempts\": {},\n      \"replicas_placed\": {},\n      \"wall_secs\": {:.3},\n      \"balls_per_sec\": {:.0}\n    }}",
            c.budget,
            c.failures,
            c.servers,
            c.k,
            c.files,
            c.peak_under_replicated,
            c.under_replicated_p99,
            c.under_replicated_area,
            c.ticks_to_heal,
            c.healed,
            c.detection_latency_mean,
            c.durability_losses,
            c.repair_attempts,
            c.replicas_placed,
            c.wall_secs,
            c.balls_per_sec,
        );
        out.push_str(if i + 1 < degradation.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"gap_vs_bytes_note\": \"memory-vs-balance frontier: (2,4)-choice static fills through the identical decide kernel on each bin-store representation, up to the 10^8-bin frontier. bytes_per_bin is the decision-path state (u32 loads = 4.0; 4/8-bit packed lanes = 0.5/1.0; count-min counters ~0.5 at width n/16 x 2 rows). Exact and lossless packed rows pay zero gap penalty (bit-identical decision stream); sketch rows report the gap of the estimates, which includes count-min collision inflation ~ balls/width — the honest fidelity cost of sub-linear state. Frontier rows (n = 10^8) run one fill each (see reps); all rows single-threaded\",\n",
    );
    out.push_str("  \"gap_vs_bytes\": ");
    out.push_str(&gap_rows_json(gap));
    out.push_str(",\n");
    out.push_str(
        "  \"vector_loads_note\": \"multidimensional loads: static fills of 4n balls whose demands are per-dimension uniform 1..=4 vectors, placed k=1 by the max-norm objective on the VectorLoad store. d=1 rows are the no-choice baseline; d=2 rows exercise two-choice and must keep every per-dimension gap inside the demand-scaled Theorem 2 envelope Delta*lnln(n)/ln(d/k) + 2*Delta (theorem2_envelope_hi; null where d < 2k and the bound does not apply — the same bar the vector_envelope test suite asserts in CI). dims=1 with the scalar objective is bit-identical to the scalar engine and is therefore covered by the scalar sections, not re-measured here\",\n",
    );
    out.push_str("  \"vector_loads\": ");
    out.push_str(&vector_rows_json(vector));
    out.push_str(",\n");
    out.push_str(
        "  \"compact_store_note\": \"the n=2^20 acceptance race: identical static fill (same seed, probes, decide kernel) on the exact u32 store (4 MiB hot loads) vs the packed 4-bit store (512 KiB); the packed fill must beat the exact fill on balls/sec while replaying its decision stream bit for bit (identical_stream checks load histogram, height histogram, and max load)\",\n",
    );
    let _ = write!(
        out,
        "  \"compact_store\": {{\n    \"n\": {},\n    \"balls\": {},\n    \"exact_balls_per_sec\": {:.0},\n    \"packed4_balls_per_sec\": {:.0},\n    \"exact_bytes_per_bin\": {:.3},\n    \"packed4_bytes_per_bin\": {:.3},\n    \"packed4_speedup\": {:.3},\n    \"max_load\": {},\n    \"identical_stream\": {},\n    \"target_met\": {}\n  }},\n",
        compact.n,
        compact.balls,
        compact.exact_balls_per_sec,
        compact.packed4_balls_per_sec,
        compact.exact_bytes_per_bin,
        compact.packed4_bytes_per_bin,
        compact.speedup(),
        compact.max_load,
        compact.identical_stream,
        compact.speedup() > 1.0 && compact.identical_stream,
    );
    out.push_str(
        "  \"decide_prefetch_note\": \"probe-batch software prefetch in the batched decide_k_least kernel: the whole sorted probe batch is prefetched before the first load read, so the batch's cache misses resolve in parallel instead of serially in probe order. before = the identical kernel driven through a view whose prefetch is the trait's no-op default, which folds the pass away and reproduces the pre-prefetch kernel exactly; the two sides run rep-interleaved on identical probe/tie-key streams (d=8, k=2, exact slab at mean load 2), so throttling drift hits both equally. The n=2^20 table sits at the cache boundary, the n=2^24 table is DRAM-resident\",\n",
    );
    out.push_str("  \"decide_prefetch\": [\n");
    for (i, p) in prefetch.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"n\": {},\n      \"d\": {},\n      \"decisions\": {},\n      \"before_decisions_per_sec\": {:.0},\n      \"after_decisions_per_sec\": {:.0},\n      \"delta\": {:.3}\n    }}",
            p.n,
            p.d,
            p.decisions,
            p.before_decisions_per_sec,
            p.after_decisions_per_sec,
            p.delta(),
        );
        out.push_str(if i + 1 < prefetch.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// `figures`: re-reads `BENCH_results.json` and renders the headline
/// curves of the concurrency sections into `docs/` as dependency-free
/// SVG (see `kdchoice_bench::svg`).
fn cmd_figures() -> Result<(), String> {
    use kdchoice_bench::svg::{extract_objects, get_f64, Chart, Series};

    let json = std::fs::read_to_string("BENCH_results.json").map_err(|e| {
        format!("read BENCH_results.json (run `kdchoice-bench throughput` first): {e}")
    })?;

    let race = extract_objects(&json, "backend_race");
    if race.is_empty() {
        return Err("BENCH_results.json has no backend_race section — regenerate it".into());
    }
    let curve = |field: &str| -> Vec<(f64, f64)> {
        race.iter()
            .filter_map(|row| Some((get_f64(row, "threads")?, get_f64(row, field)? / 1e6)))
            .collect()
    };
    let scaling = Chart {
        title: "Placement throughput vs threads (identical open-loop traces)".into(),
        x_label: "worker threads (log2)".into(),
        y_label: "Mballs/sec".into(),
        log2_x: true,
        series: vec![
            Series {
                label: "striped, per-request locks".into(),
                points: curve("striped_per_request_balls_per_sec"),
                color: "#d62728",
            },
            Series {
                label: "striped, batched locks".into(),
                points: curve("striped_batched_balls_per_sec"),
                color: "#ff7f0e",
            },
            Series {
                label: "shared-nothing owned shards".into(),
                points: curve("shared_nothing_balls_per_sec"),
                color: "#1f77b4",
            },
            Series {
                label: "lock-free CAS bins".into(),
                points: curve("lockfree_balls_per_sec"),
                color: "#9467bd",
            },
        ],
    };

    let staleness = extract_objects(&json, "staleness_vs_gap");
    if staleness.is_empty() {
        return Err("BENCH_results.json has no staleness_vs_gap section — regenerate it".into());
    }
    let pick = |field: &str| -> Vec<(f64, f64)> {
        staleness
            .iter()
            .filter_map(|row| Some((get_f64(row, "snapshot_refresh")?, get_f64(row, field)?)))
            .collect()
    };
    let staleness_chart = Chart {
        title: "Steady-state gap vs snapshot staleness (k=1, d=2, lambda=0.9)".into(),
        x_label: "snapshot refresh period, mutations (log2)".into(),
        y_label: "steady gap (balls)".into(),
        log2_x: true,
        series: vec![
            Series {
                label: "measured steady gap".into(),
                points: pick("steady_gap"),
                color: "#1f77b4",
            },
            Series {
                label: "Theorem 2 envelope (hi)".into(),
                points: pick("theorem2_envelope_hi"),
                color: "#2ca02c",
            },
        ],
    };

    let gap_rows = extract_objects(&json, "gap_vs_bytes");
    if gap_rows.is_empty() {
        return Err("BENCH_results.json has no gap_vs_bytes section — regenerate it".into());
    }
    let mut ns: Vec<u64> = gap_rows
        .iter()
        .filter_map(|row| get_f64(row, "n").map(|v| v as u64))
        .collect();
    ns.sort_unstable();
    ns.dedup();
    const PALETTE: [&str; 5] = ["#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd"];
    let gap_chart = Chart {
        title: "Balance gap vs decision-state bytes per bin (static fill, k=2 d=4)".into(),
        x_label: "bytes per bin (exact=4, packed8=1, packed4=0.5, sketch<0.6)".into(),
        y_label: "gap (balls; sketch rows include estimate inflation)".into(),
        log2_x: false,
        series: ns
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let mut points: Vec<(f64, f64)> = gap_rows
                    .iter()
                    .filter(|row| get_f64(row, "n").map(|v| v as u64) == Some(n))
                    .filter_map(|row| Some((get_f64(row, "bytes_per_bin")?, get_f64(row, "gap")?)))
                    .collect();
                points.sort_by(|a, b| a.0.total_cmp(&b.0));
                Series {
                    label: format!("n = {n}"),
                    points,
                    color: PALETTE[i % PALETTE.len()],
                }
            })
            .collect(),
    };

    let vector_rows = extract_objects(&json, "vector_loads");
    if vector_rows.is_empty() {
        return Err("BENCH_results.json has no vector_loads section — regenerate it".into());
    }
    let vector_curve = |d: f64, dims: f64| -> Vec<(f64, f64)> {
        let mut points: Vec<(f64, f64)> = vector_rows
            .iter()
            .filter(|row| get_f64(row, "d") == Some(d) && get_f64(row, "dims") == Some(dims))
            .filter_map(|row| Some((get_f64(row, "n")?, get_f64(row, "max_dim_gap")?)))
            .collect();
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        points
    };
    let vector_chart = Chart {
        title: "Max per-dimension gap vs n (uniform 1..=4 vector demands, max-norm)".into(),
        x_label: "bins n (log2)".into(),
        y_label: "max per-dimension gap (balls)".into(),
        log2_x: true,
        series: vec![
            Series {
                label: "d=1, dims=2 (no choice)".into(),
                points: vector_curve(1.0, 2.0),
                color: "#d62728",
            },
            Series {
                label: "d=1, dims=4 (no choice)".into(),
                points: vector_curve(1.0, 4.0),
                color: "#ff7f0e",
            },
            Series {
                label: "d=2, dims=2 (two-choice)".into(),
                points: vector_curve(2.0, 2.0),
                color: "#1f77b4",
            },
            Series {
                label: "d=2, dims=4 (two-choice)".into(),
                points: vector_curve(2.0, 4.0),
                color: "#2ca02c",
            },
        ],
    };

    std::fs::create_dir_all("docs").map_err(|e| format!("create docs/: {e}"))?;
    for (path, chart) in [
        ("docs/fig_backend_scaling.svg", &scaling),
        ("docs/fig_staleness_gap.svg", &staleness_chart),
        ("docs/fig_gap_vs_bytes.svg", &gap_chart),
        ("docs/fig_vector_loads.svg", &vector_chart),
    ] {
        std::fs::write(path, chart.render()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Logical cores of the host, recorded as bench provenance.
fn logical_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn profile_name() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

fn cmd_throughput(quick: bool) -> Result<(), String> {
    if profile_name() == "debug" && !quick {
        eprintln!(
            "note: running the full workload in a debug build; use --release for the committed numbers"
        );
    }
    let (n, ratio) = if quick { (1 << 16, 4) } else { (1 << 20, 16) };

    println!(
        "kdchoice throughput harness: n = {n}, m = {ratio}n, profile = {}",
        profile_name()
    );
    println!();

    let mut measurements = Vec::new();
    for &(k, d) in &[(1usize, 1usize), (2, 3), (3, 5)] {
        let m = measure(k, d, n, ratio, 0xBE7C4);
        println!(
            "({k},{d})-choice: dyn-legacy {:>7.2} Mballs/s | generic-batched {:>7.2} Mballs/s | speedup {:.2}x (max load {} / {})",
            m.dyn_legacy_balls_per_sec / 1e6,
            m.generic_batched_balls_per_sec / 1e6,
            m.speedup(),
            m.max_load_dyn,
            m.max_load_generic,
        );
        measurements.push(m);
    }

    // Application-scenario throughput through the shared sweep runner.
    println!();
    let (sched_grid, sched_jobs, sched_trials) = if quick {
        (
            "workers=64 k=4 jobs=2000 rho=0.8 strategy=kd d=5",
            2000u64,
            4,
        )
    } else {
        (
            "workers=256 k=4 jobs=20000 rho=0.8 strategy=kd d=5",
            20000u64,
            8,
        )
    };
    let (storage_grid, storage_ops, storage_trials) = if quick {
        (
            "servers=100 k=4 files=1000 reads=2000 failures=4",
            3000u64,
            4,
        )
    } else {
        (
            "servers=1000 k=4 files=20000 reads=40000 failures=20",
            60000u64,
            8,
        )
    };
    let (hetero_grid, hetero_balls, hetero_trials) = if quick {
        ("n=2^12 d=4 skew=uniform,zipf lambda=2", 2 * (1u64 << 12), 4)
    } else {
        ("n=2^16 d=4 skew=uniform,zipf lambda=4", 4 * (1u64 << 16), 8)
    };
    let scenarios = vec![
        measure_scenario(&SchedulerScenario, sched_grid, sched_trials, sched_jobs),
        measure_scenario(&StorageScenario, storage_grid, storage_trials, storage_ops),
        measure_scenario(&HeteroScenario, hetero_grid, hetero_trials, hetero_balls),
    ];
    for s in &scenarios {
        println!(
            "{:<10} {:>10.0} {} ({} trials of [{}] in {:.2}s, all cores)",
            s.scenario, s.rate, s.unit, s.trials, s.grid, s.wall_secs
        );
    }

    // Thread scaling of the concurrent placement service.
    println!();
    let service = measure_service_scaling(quick);
    for s in &service {
        println!(
            "service    {:>2} thread{} {:>7.2} Mballs/s ({} requests in {:.2}s, max load {}, gap {:.2}{})",
            s.threads,
            if s.threads == 1 { " " } else { "s" },
            s.balls_per_sec / 1e6,
            s.requests,
            s.wall_secs,
            s.max_load,
            s.gap,
            if s.conserved { "" } else { ", NOT CONSERVED" },
        );
        assert!(s.conserved, "service workload must conserve balls");
    }

    // Open-loop dynamic traffic: λ × threads, batched vs per-request.
    println!();
    let open_loop = measure_open_loop(quick);
    for r in &open_loop {
        println!(
            "open_loop  λ={:<4} {:>2} thread{} per-request {:>6.2} | batched {:>6.2} Mballs/s ({:.2}x) | p50/p99 latency {:>5.1}/{:>6.1} ticks | max load {} gap {:.2} backlog {}",
            r.lambda,
            r.threads,
            if r.threads == 1 { " " } else { "s" },
            r.per_request_balls_per_sec / 1e6,
            r.batched_balls_per_sec / 1e6,
            r.speedup(),
            r.latency_p50,
            r.latency_p99,
            r.max_load,
            r.gap,
            r.backlog,
        );
    }
    if let Some(best) = open_loop
        .iter()
        .filter(|r| r.threads == 8)
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
    {
        println!(
            "open_loop  best 8-thread batched speedup: {:.2}x at λ={}",
            best.speedup(),
            best.lambda
        );
    }

    // Backend race: striped vs shared-nothing vs lock-free on
    // identical traces.
    println!();
    let race = measure_backend_race(quick);
    let mutex_1t = race
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.striped_per_request_balls_per_sec)
        .unwrap_or(f64::NAN);
    for r in &race {
        println!(
            "backend    {:>2} thread{} striped per-request {:>6.2} | batched {:>6.2} | shared-nothing {:>6.2} | lock-free {:>6.2} Mballs/s ({:.2}x vs mutex-1t) | max load {} / {} / {} | lf gap {:.2} (env {:.2})",
            r.threads,
            if r.threads == 1 { " " } else { "s" },
            r.striped_per_request_balls_per_sec / 1e6,
            r.striped_batched_balls_per_sec / 1e6,
            r.shared_nothing_balls_per_sec / 1e6,
            r.lockfree_balls_per_sec / 1e6,
            r.shared_nothing_balls_per_sec / mutex_1t,
            r.striped_max_load,
            r.owned_max_load,
            r.lockfree_max_load,
            r.lockfree_steady_gap,
            r.lockfree_envelope_hi,
        );
        assert!(
            r.lockfree_within_envelope,
            "lock-free steady gap {:.3} left the Theorem 2 envelope {:.3} at {} threads",
            r.lockfree_steady_gap, r.lockfree_envelope_hi, r.threads
        );
    }
    println!(
        "backend    host has {} logical core{} — thread counts above that measure the serial path + coordination, not parallelism",
        logical_cores(),
        if logical_cores() == 1 { "" } else { "s" },
    );

    // Staleness vs gap on the deterministic single-threaded owned engine.
    println!();
    let staleness = measure_staleness_gap();
    for s in &staleness {
        println!(
            "staleness  refresh={:<4} steady gap {:.3} (Theorem 2 envelope {:.3}){}",
            s.refresh,
            s.steady_gap,
            s.envelope_hi,
            if s.within_envelope {
                ""
            } else {
                "  OUTSIDE ENVELOPE"
            },
        );
        assert!(
            s.within_envelope,
            "staleness sweep left the Theorem 2 envelope at refresh={}",
            s.refresh
        );
    }

    // Graceful degradation of the fault-injected replicated cluster.
    println!();
    let degradation = measure_cluster_degradation(quick);
    for c in &degradation {
        println!(
            "cluster    budget={:<4} failures={:<3} peak under-replicated {:>5} (p99 {:>5}) | heal {:>6} ticks | {:>6.2} Mballs/s under churn{}",
            if c.budget == 0 {
                "inf".to_string()
            } else {
                c.budget.to_string()
            },
            c.failures,
            c.peak_under_replicated,
            c.under_replicated_p99,
            c.ticks_to_heal,
            c.balls_per_sec / 1e6,
            if c.durability_losses > 0 {
                format!(" ({} durability losses)", c.durability_losses)
            } else {
                String::new()
            },
        );
    }

    // Uniform vs weighted batch sampling on the raw prng layer.
    println!();
    let sampling = measure_sampling_race(quick);
    for s in &sampling {
        println!(
            "sampling   n=2^{:<2} uniform {:>6.1} Mdraws/s | weighted(equal) {:>6.1} | weighted(zipf) {:>6.1} Mdraws/s | uniform/zipf {:.2}x",
            s.n.trailing_zeros(),
            s.uniform_per_sec / 1e6,
            s.weighted_equal_per_sec / 1e6,
            s.weighted_zipf_per_sec / 1e6,
            s.uniform_over_zipf(),
        );
    }

    // Memory-bounded stores: the gap-vs-bytes frontier.
    println!();
    let gap = measure_gap_vs_bytes(quick);
    for g in &gap {
        println!(
            "compact    {:<7} n=10^{:<4.1} {:>7.2} Mballs/s | {:>5.2} B/bin | max load {:>3} gap {:>9.3}{}",
            g.store,
            (g.n as f64).log10(),
            g.balls_per_sec / 1e6,
            g.bytes_per_bin,
            g.max_load,
            g.gap,
            if g.lossless { "" } else { " (lossy)" },
        );
    }

    // Multidimensional loads: per-dimension gaps of vector-demand fills.
    println!();
    let vector = measure_vector_loads(quick);
    for v in &vector {
        let envelope = match v.envelope_hi {
            Some(hi) => format!(" (envelope {hi:.3})"),
            None => String::new(),
        };
        println!(
            "vector     dims={} d={} n=2^{:<2} {:>6.2} Mballs/s | max load {:>3} | max per-dim gap {:>7.3}{}",
            v.dims,
            v.d,
            v.n.trailing_zeros(),
            v.balls_per_sec / 1e6,
            v.max_load,
            v.max_dim_gap(),
            envelope,
        );
        if let Some(hi) = v.envelope_hi {
            assert!(
                v.max_dim_gap() <= hi,
                "vector fill left the demand-scaled Theorem 2 envelope at dims={} n={}",
                v.dims,
                v.n
            );
        }
    }

    // The n=2^20 exact-vs-packed4 acceptance race.
    println!();
    let compact = measure_compact_store(quick);
    println!(
        "compact    n=2^{} race: exact {:>6.2} Mballs/s ({} B/bin) | packed4 {:>6.2} Mballs/s ({} B/bin) | speedup {:.2}x | identical stream: {}",
        compact.n.trailing_zeros(),
        compact.exact_balls_per_sec / 1e6,
        compact.exact_bytes_per_bin,
        compact.packed4_balls_per_sec / 1e6,
        compact.packed4_bytes_per_bin,
        compact.speedup(),
        compact.identical_stream,
    );
    assert!(
        compact.identical_stream,
        "packed4 must replay the exact decision stream below saturation"
    );

    // Kernel-prefetch before/after (full mode only — the committed
    // before-points are full-size).
    let prefetch = if quick {
        Vec::new()
    } else {
        let rows = measure_decide_prefetch();
        println!();
        for p in &rows {
            println!(
                "prefetch   n=2^{:<2} decide_k_least before {:>7.0} | after {:>7.0} decisions/s ({:+.1}%)",
                p.n.trailing_zeros(),
                p.before_decisions_per_sec,
                p.after_decisions_per_sec,
                p.delta() * 100.0,
            );
        }
        rows
    };

    if quick {
        // Smoke-scale shape gate for the hand-rendered sections: the same
        // renderers the full run commits, validated even when no file is
        // written. backend_race rides along so CI checks the three-way
        // row structure (lockfree columns included) every quick run.
        let json = format!(
            "{{\n  \"gap_vs_bytes\": {},\n  \"vector_loads\": {},\n  \"backend_race\": {}\n}}\n",
            gap_rows_json(&gap),
            vector_rows_json(&vector),
            race_rows_json(&race),
        );
        kdchoice_expt::validate_json(&json)
            .map_err(|e| format!("quick rows emit malformed JSON: {e}"))?;
        println!(
            "\ngap_vs_bytes + vector_loads + backend_race quick rows validated ({} + {} + {} rows)",
            gap.len(),
            vector.len(),
            race.len()
        );
    } else {
        let json = render_json(
            &measurements,
            &scenarios,
            &service,
            &open_loop,
            &race,
            &staleness,
            &sampling,
            &degradation,
            &gap,
            &vector,
            &compact,
            &prefetch,
        );
        kdchoice_expt::validate_json(&json)
            .map_err(|e| format!("harness emitted malformed JSON: {e}"))?;
        std::fs::write("BENCH_results.json", &json)
            .map_err(|e| format!("write BENCH_results.json: {e}"))?;
        println!("\nwrote BENCH_results.json");
    }
    Ok(())
}
