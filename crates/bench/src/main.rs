//! The `kdchoice-bench` throughput harness.
//!
//! Measures allocation throughput (balls/second) for (1,1)-, (2,3)- and
//! (3,5)-choice at `n = 2^20` bins and `m = 16n` balls, once through the
//! **pre-refactor dynamic path** (legacy engine boxed as
//! `Box<dyn BallsIntoBins>`: vtable dispatch per RNG call, eager tie keys,
//! per-round height buffer) and once through the **monomorphized batched
//! engine** (static dispatch, block sampling, lazy tie keys, inline height
//! histogramming). Both measurements run in the same invocation so the
//! reported speedup is apples-to-apples on the same machine and build.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p kdchoice-bench            # writes BENCH_results.json
//! cargo run --release -p kdchoice-bench -- --quick # reduced workload, stdout only
//! ```
//!
//! The JSON lands in `BENCH_results.json` in the current directory and is
//! committed at the repo root as the perf trajectory baseline for future
//! PRs.

use std::fmt::Write as _;
use std::time::Instant;

use kdchoice_core::{run_once, BallsIntoBins, EngineVersion, KdChoice, RunConfig};

/// One measured configuration.
struct Measurement {
    k: usize,
    d: usize,
    n: usize,
    balls: u64,
    dyn_legacy_balls_per_sec: f64,
    generic_batched_balls_per_sec: f64,
    max_load_dyn: u32,
    max_load_generic: u32,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.generic_batched_balls_per_sec / self.dyn_legacy_balls_per_sec
    }
}

/// How many times each measurement repeats; the best rate is reported
/// (standard practice for throughput: the minimum-interference run).
const REPS: usize = 3;

/// Times one full run `REPS` times, returning (best balls/sec, max load).
fn time_run<F: FnMut() -> kdchoice_core::RunResult>(balls: u64, mut run: F) -> (f64, u32) {
    let mut best_rate = 0.0f64;
    let mut max_load = 0;
    for _ in 0..REPS {
        let start = Instant::now();
        let result = run();
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(result.balls_placed, balls, "harness must place every ball");
        best_rate = best_rate.max(balls as f64 / secs);
        max_load = result.max_load;
    }
    (best_rate, max_load)
}

fn measure(k: usize, d: usize, n: usize, ratio: u64, seed: u64) -> Measurement {
    let balls = ratio * n as u64;
    let cfg = RunConfig::new(n, seed).with_balls(balls);

    // Pre-refactor path: legacy engine behind the object-safe shim — every
    // probe, tie key, and height crosses a `dyn` boundary.
    let (dyn_rate, max_load_dyn) = time_run(balls, || {
        let mut p: Box<dyn BallsIntoBins> = Box::new(
            KdChoice::new(k, d)
                .expect("valid (k,d)")
                .with_engine(EngineVersion::Legacy),
        );
        run_once(&mut *p, &cfg)
    });

    // Monomorphized batched engine: static dispatch end to end.
    let (generic_rate, max_load_generic) = time_run(balls, || {
        let mut p = KdChoice::new(k, d)
            .expect("valid (k,d)")
            .with_engine(EngineVersion::Batched);
        run_once(&mut p, &cfg)
    });

    Measurement {
        k,
        d,
        n,
        balls,
        dyn_legacy_balls_per_sec: dyn_rate,
        generic_batched_balls_per_sec: generic_rate,
        max_load_dyn,
        max_load_generic,
    }
}

fn render_json(measurements: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"harness\": \"kdchoice-bench throughput\",\n");
    out.push_str(
        "  \"comparison\": \"dyn_legacy = pre-refactor Box<dyn BallsIntoBins> path with eager tie keys; generic_batched = monomorphized engine with block sampling and lazy tie keys\",\n",
    );
    let _ = writeln!(out, "  \"profile\": \"{}\",", profile_name());
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"process\": \"({},{})-choice\",\n      \"n\": {},\n      \"balls\": {},\n      \"dyn_legacy_balls_per_sec\": {:.0},\n      \"generic_batched_balls_per_sec\": {:.0},\n      \"speedup\": {:.3},\n      \"max_load_dyn\": {},\n      \"max_load_generic\": {}\n    }}",
            m.k,
            m.d,
            m.n,
            m.balls,
            m.dyn_legacy_balls_per_sec,
            m.generic_batched_balls_per_sec,
            m.speedup(),
            m.max_load_dyn,
            m.max_load_generic,
        );
        out.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn profile_name() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if profile_name() == "debug" && !quick {
        eprintln!(
            "note: running the full workload in a debug build; use --release for the committed numbers"
        );
    }
    let (n, ratio) = if quick { (1 << 16, 4) } else { (1 << 20, 16) };

    println!(
        "kdchoice throughput harness: n = {n}, m = {ratio}n, profile = {}",
        profile_name()
    );
    println!();

    let mut measurements = Vec::new();
    for &(k, d) in &[(1usize, 1usize), (2, 3), (3, 5)] {
        let m = measure(k, d, n, ratio, 0xBE7C4);
        println!(
            "({k},{d})-choice: dyn-legacy {:>7.2} Mballs/s | generic-batched {:>7.2} Mballs/s | speedup {:.2}x (max load {} / {})",
            m.dyn_legacy_balls_per_sec / 1e6,
            m.generic_batched_balls_per_sec / 1e6,
            m.speedup(),
            m.max_load_dyn,
            m.max_load_generic,
        );
        measurements.push(m);
    }

    if !quick {
        let json = render_json(&measurements);
        std::fs::write("BENCH_results.json", &json).expect("write BENCH_results.json");
        println!("\nwrote BENCH_results.json");
    }
}
