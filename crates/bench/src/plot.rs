//! ASCII plotting for the figure benches.
//!
//! Figures 1 and 2 of the paper are schematics of the *sorted bin load
//! vector* with analysis markers (β₀, γ*, γ₀). The figure benches draw the
//! measured sorted load vector the same way: load level on the y-axis, bin
//! rank (log-compressed) on the x-axis, with vertical markers at the
//! theory-determined ranks.

/// Renders a sorted (descending) load vector as an ASCII step plot.
///
/// `markers` are `(rank, label)` pairs drawn as vertical annotations. The
/// x-axis is sampled at `width` geometrically spaced ranks so that the
/// heavy head (bins 1, 2, …) and the long tail are both visible.
///
/// ```
/// use kdchoice_bench::plot::sorted_load_plot;
///
/// let mut loads: Vec<u32> = vec![5, 3, 3, 2, 2, 2, 1, 1, 0, 0];
/// let s = sorted_load_plot(&loads, &[(4, "beta0".to_string())], 40);
/// assert!(s.contains("beta0"));
/// assert!(s.contains('#'));
/// ```
pub fn sorted_load_plot(sorted_desc: &[u32], markers: &[(usize, String)], width: usize) -> String {
    assert!(!sorted_desc.is_empty(), "empty load vector");
    let n = sorted_desc.len();
    let width = width.clamp(10, 160);
    // Geometric rank grid: rank(col) = n^(col/width), deduplicated.
    let mut ranks: Vec<usize> = (0..width)
        .map(|c| {
            let f = (n as f64).powf(c as f64 / (width - 1).max(1) as f64);
            (f.round() as usize).clamp(1, n)
        })
        .collect();
    ranks.dedup();
    let max_load = sorted_desc[0];
    let mut out = String::new();
    // Rows from max load down to 0.
    for level in (0..=max_load).rev() {
        out.push_str(&format!("{level:>4} |"));
        for &r in &ranks {
            let load = sorted_desc[r - 1];
            out.push(if load >= level && level > 0 {
                '#'
            } else if level == 0 {
                '-'
            } else {
                ' '
            });
        }
        out.push('\n');
    }
    // Marker lines.
    for (rank, label) in markers {
        let rank = (*rank).clamp(1, n);
        // Column of the closest grid rank.
        let col = ranks
            .iter()
            .position(|&r| r >= rank)
            .unwrap_or(ranks.len() - 1);
        out.push_str(&format!(
            "     |{}^ {label} (bin {rank})\n",
            " ".repeat(col)
        ));
    }
    out.push_str(&format!(
        "     +{} bin rank 1..{n} (geometric axis)\n",
        "-".repeat(ranks.len())
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_has_one_row_per_level_plus_markers() {
        let loads = vec![3, 2, 1, 1, 0, 0, 0, 0];
        let s = sorted_load_plot(&loads, &[(2, "m".into())], 20);
        // Levels 3..=0 -> 4 rows, one marker row, one axis row.
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    fn markers_are_clamped() {
        let loads = vec![1, 0];
        let s = sorted_load_plot(&loads, &[(999, "far".into())], 20);
        assert!(s.contains("far (bin 2)"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_vector_rejected() {
        let _ = sorted_load_plot(&[], &[], 20);
    }

    #[test]
    fn all_zero_loads_render() {
        let loads = vec![0, 0, 0];
        let s = sorted_load_plot(&loads, &[], 10);
        assert!(s.contains('-'));
    }
}
