//! No-dependency SVG line charts for the committed benchmark figures.
//!
//! `kdchoice-bench figures` re-reads `BENCH_results.json` (written by the
//! throughput harness) and renders the headline curves into `docs/` as
//! hand-assembled SVG — no plotting crate, no JSON crate. The extractor
//! here handles exactly the shape the harness emits: named sections that
//! are arrays of **flat** objects whose values are numbers, booleans, or
//! strings (never nested objects/arrays), which is all
//! `BENCH_results.json` contains inside its sections.

use std::fmt::Write as _;

/// One parsed object of a section: `(field, raw value)` pairs in file
/// order. Raw values keep their JSON spelling (`"8"`, `"3.25"`, `"true"`,
/// `"\"striped\""`).
pub type FlatObject = Vec<(String, String)>;

/// Extracts the array of flat objects stored under `"key": [...]`.
///
/// Returns an empty vector when the key is absent — callers decide
/// whether a missing section is an error.
pub fn extract_objects(json: &str, key: &str) -> Vec<FlatObject> {
    let needle = format!("\"{key}\": [");
    let Some(start) = json.find(&needle) else {
        return Vec::new();
    };
    let mut objects = Vec::new();
    let mut rest = &json[start + needle.len()..];
    while let Some(open) = rest.find(['{', ']']) {
        if rest.as_bytes()[open] == b']' {
            break;
        }
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        let body = &rest[open + 1..open + close];
        objects.push(parse_flat_object(body));
        rest = &rest[open + close + 1..];
    }
    objects
}

/// Splits `"a": 1,\n "b": "x"` into pairs. Flat values contain no commas
/// except inside strings, and the harness never emits commas inside
/// strings' quoted values on these sections — note strings live outside
/// the arrays — so a quote-aware scan is enough.
fn parse_flat_object(body: &str) -> FlatObject {
    let mut pairs = Vec::new();
    let mut depth_in_string = false;
    let mut field_start = 0;
    let bytes = body.as_bytes();
    let mut cuts = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => depth_in_string = !depth_in_string,
            b',' if !depth_in_string => cuts.push(i),
            _ => {}
        }
    }
    cuts.push(body.len());
    for cut in cuts {
        let entry = body[field_start..cut].trim();
        field_start = cut + 1;
        let Some(colon) = entry.find(':') else {
            continue;
        };
        let name = entry[..colon].trim().trim_matches('"').to_string();
        let value = entry[colon + 1..].trim().to_string();
        if !name.is_empty() && !value.is_empty() {
            pairs.push((name, value));
        }
    }
    pairs
}

/// Looks a numeric field up in a flat object.
pub fn get_f64(object: &FlatObject, field: &str) -> Option<f64> {
    object
        .iter()
        .find(|(name, _)| name == field)
        .and_then(|(_, raw)| raw.parse().ok())
}

/// One curve of a chart.
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points, already in data coordinates.
    pub points: Vec<(f64, f64)>,
    /// SVG stroke color.
    pub color: &'static str,
}

/// A line chart rendered to a standalone SVG document.
pub struct Chart {
    /// Chart title (top center).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label (rendered vertically).
    pub y_label: String,
    /// Plot x on a log2 scale (thread counts, refresh periods).
    pub log2_x: bool,
    /// The curves.
    pub series: Vec<Series>,
}

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 440.0;
const MARGIN_L: f64 = 86.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 46.0;
const MARGIN_B: f64 = 58.0;

impl Chart {
    /// Renders the chart as a complete SVG document.
    pub fn render(&self) -> String {
        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| self.map_x(x)))
            .collect();
        let ys: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(_, y)| y))
            .collect();
        let (x_lo, x_hi) = padded_range(&xs, 0.0);
        let (y_lo, y_hi) = padded_range(&ys, 0.08);
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let px = |x: f64| MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w;
        let py = |y: f64| MARGIN_T + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h;

        let mut out = String::new();
        let _ = writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" viewBox=\"0 0 {WIDTH} {HEIGHT}\" font-family=\"monospace\" font-size=\"13\">"
        );
        out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
        let _ = writeln!(
            out,
            "<text x=\"{:.0}\" y=\"24\" text-anchor=\"middle\" font-size=\"16\">{}</text>",
            WIDTH / 2.0,
            escape(&self.title)
        );

        // Gridlines + axis ticks.
        for i in 0..=4 {
            let fy = y_lo + (y_hi - y_lo) * f64::from(i) / 4.0;
            let y = py(fy);
            let _ = writeln!(
                out,
                "<line x1=\"{MARGIN_L}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" stroke=\"#ddd\"/>",
                WIDTH - MARGIN_R
            );
            let _ = writeln!(
                out,
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>",
                MARGIN_L - 8.0,
                y + 4.0,
                format_tick(fy)
            );
        }
        let x_ticks: Vec<f64> = if self.log2_x {
            // One tick per distinct data x, in mapped (log) position.
            let mut ticks: Vec<f64> = self
                .series
                .iter()
                .flat_map(|s| s.points.iter().map(|&(x, _)| x))
                .collect();
            ticks.sort_by(f64::total_cmp);
            ticks.dedup();
            ticks
        } else {
            (0..=4)
                .map(|i| x_lo + (x_hi - x_lo) * f64::from(i) / 4.0)
                .collect()
        };
        for &tick in &x_ticks {
            let x = px(self.map_x(tick));
            let _ = writeln!(
                out,
                "<line x1=\"{x:.1}\" y1=\"{:.1}\" x2=\"{x:.1}\" y2=\"{:.1}\" stroke=\"#ddd\"/>",
                MARGIN_T,
                HEIGHT - MARGIN_B
            );
            let _ = writeln!(
                out,
                "<text x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
                HEIGHT - MARGIN_B + 20.0,
                format_tick(tick)
            );
        }

        // Axes frame and labels.
        let _ = writeln!(
            out,
            "<rect x=\"{MARGIN_L}\" y=\"{MARGIN_T}\" width=\"{plot_w:.1}\" height=\"{plot_h:.1}\" fill=\"none\" stroke=\"#333\"/>"
        );
        let _ = writeln!(
            out,
            "<text x=\"{:.0}\" y=\"{:.0}\" text-anchor=\"middle\">{}</text>",
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 14.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            out,
            "<text x=\"20\" y=\"{:.0}\" text-anchor=\"middle\" transform=\"rotate(-90 20 {:.0})\">{}</text>",
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Curves + markers + legend.
        for (i, series) in self.series.iter().enumerate() {
            let path: Vec<String> = series
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", px(self.map_x(x)), py(y)))
                .collect();
            let _ = writeln!(
                out,
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"2\"/>",
                path.join(" "),
                series.color
            );
            for &(x, y) in &series.points {
                let _ = writeln!(
                    out,
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3.5\" fill=\"{}\"/>",
                    px(self.map_x(x)),
                    py(y),
                    series.color
                );
            }
            let ly = MARGIN_T + 16.0 + 18.0 * i as f64;
            let _ = writeln!(
                out,
                "<line x1=\"{:.1}\" y1=\"{ly:.1}\" x2=\"{:.1}\" y2=\"{ly:.1}\" stroke=\"{}\" stroke-width=\"2\"/>",
                MARGIN_L + 12.0,
                MARGIN_L + 40.0,
                series.color
            );
            let _ = writeln!(
                out,
                "<text x=\"{:.1}\" y=\"{:.1}\">{}</text>",
                MARGIN_L + 46.0,
                ly + 4.0,
                escape(&series.label)
            );
        }
        out.push_str("</svg>\n");
        out
    }

    fn map_x(&self, x: f64) -> f64 {
        if self.log2_x {
            x.max(f64::MIN_POSITIVE).log2()
        } else {
            x
        }
    }
}

/// The data range padded by `pad` of its span on each side (degenerate
/// single-value ranges get a unit span so the mapping stays finite).
fn padded_range(values: &[f64], pad: f64) -> (f64, f64) {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 1.0);
    }
    let span = if hi > lo { hi - lo } else { 1.0 };
    (lo - span * pad, hi + span * pad)
}

/// Ticks render like a human would write them: integers plain, big
/// numbers in millions, small ones with two decimals.
fn format_tick(v: f64) -> String {
    if v.abs() >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "profile": "release",
  "backend_race": [
    {
      "threads": 1,
      "striped_per_request_balls_per_sec": 3950000,
      "shared_nothing_balls_per_sec": 5400000,
      "backend": "shared_nothing"
    },
    {
      "threads": 8,
      "striped_per_request_balls_per_sec": 2320000,
      "shared_nothing_balls_per_sec": 5100000,
      "backend": "shared_nothing"
    }
  ],
  "other": [ { "x": 1 } ]
}"#;

    #[test]
    fn extracts_flat_sections_by_key() {
        let rows = extract_objects(SAMPLE, "backend_race");
        assert_eq!(rows.len(), 2);
        assert_eq!(get_f64(&rows[0], "threads"), Some(1.0));
        assert_eq!(
            get_f64(&rows[1], "striped_per_request_balls_per_sec"),
            Some(2_320_000.0)
        );
        assert_eq!(get_f64(&rows[0], "missing"), None);
        assert!(extract_objects(SAMPLE, "absent_section").is_empty());
        let other = extract_objects(SAMPLE, "other");
        assert_eq!(other.len(), 1);
        assert_eq!(get_f64(&other[0], "x"), Some(1.0));
    }

    #[test]
    fn renders_a_wellformed_svg_with_every_series() {
        let chart = Chart {
            title: "scaling".into(),
            x_label: "threads".into(),
            y_label: "balls/sec".into(),
            log2_x: true,
            series: vec![
                Series {
                    label: "striped".into(),
                    points: vec![(1.0, 3.9e6), (2.0, 3.1e6), (8.0, 2.3e6)],
                    color: "#d62728",
                },
                Series {
                    label: "shared_nothing".into(),
                    points: vec![(1.0, 5.4e6), (2.0, 5.2e6), (8.0, 5.1e6)],
                    color: "#1f77b4",
                },
            ],
        };
        let svg = chart.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("striped"));
        assert!(svg.contains("shared_nothing"));
        // Every plotted coordinate stays inside the viewBox.
        for cap in svg.split("cx=\"").skip(1) {
            let x: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=720.0).contains(&x), "x={x} out of frame");
        }
    }
}
