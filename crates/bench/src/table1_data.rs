//! The paper's Table 1: grid definition and published values.
//!
//! "The maximum bin load for (k,d)-choice with n = 3·2¹⁶ and varying k and d
//! values", 10 runs per cell, cells list the set of observed maxima.

/// The `k` values of Table 1's rows.
pub const K_VALUES: [usize; 15] = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192];

/// The `d` values of Table 1's columns.
pub const D_VALUES: [usize; 10] = [1, 2, 3, 5, 9, 17, 25, 49, 65, 193];

/// The values printed in the paper's Table 1, as `(k, d, "observed set")`.
/// A cell exists iff `k < d`, except `(1,1)` (the single-choice column).
pub const PAPER_CELLS: [(usize, usize, &str); 61] = [
    (1, 1, "7, 8, 9"),
    (1, 2, "3, 4"),
    (1, 3, "3"),
    (1, 5, "2"),
    (1, 9, "2"),
    (1, 17, "2"),
    (1, 25, "2"),
    (1, 49, "2"),
    (1, 65, "2"),
    (1, 193, "2"),
    (2, 3, "4"),
    (2, 5, "3"),
    (2, 9, "2"),
    (2, 17, "2"),
    (2, 25, "2"),
    (2, 49, "2"),
    (2, 65, "2"),
    (2, 193, "2"),
    (3, 5, "3"),
    (3, 9, "2"),
    (3, 17, "2"),
    (3, 25, "2"),
    (3, 49, "2"),
    (3, 65, "2"),
    (3, 193, "2"),
    (4, 5, "4"),
    (4, 9, "3"),
    (4, 17, "2"),
    (4, 25, "2"),
    (4, 49, "2"),
    (4, 65, "2"),
    (4, 193, "2"),
    (6, 9, "3"),
    (6, 17, "2"),
    (6, 25, "2"),
    (6, 49, "2"),
    (6, 65, "2"),
    (6, 193, "2"),
    (8, 9, "4"),
    (8, 17, "2, 3"),
    (8, 25, "2"),
    (8, 49, "2"),
    (8, 65, "2"),
    (8, 193, "2"),
    (12, 17, "3"),
    (12, 25, "2"),
    (12, 49, "2"),
    (12, 65, "2"),
    (12, 193, "2"),
    (16, 17, "4, 5"),
    (16, 25, "3"),
    (16, 49, "2"),
    (16, 65, "2"),
    (16, 193, "2"),
    (24, 25, "5"),
    (24, 49, "2"),
    (24, 65, "2"),
    (24, 193, "2"),
    (32, 49, "3"),
    (32, 65, "2"),
    (32, 193, "2"),
];

/// The remaining Table 1 cells (rows k ≥ 48), kept separate only because
/// Rust const arrays need explicit lengths.
pub const PAPER_CELLS_TAIL: [(usize, usize, &str); 8] = [
    (48, 49, "5"),
    (48, 65, "3"),
    (48, 193, "2"),
    (64, 65, "5"),
    (64, 193, "2"),
    (96, 193, "2"),
    (128, 193, "2"),
    (192, 193, "5, 6"),
];

/// Iterates over every `(k, d, paper_value)` cell of Table 1.
pub fn paper_cells() -> impl Iterator<Item = (usize, usize, &'static str)> {
    PAPER_CELLS.iter().chain(PAPER_CELLS_TAIL.iter()).copied()
}

/// Looks up the paper's published value for a cell.
pub fn paper_value(k: usize, d: usize) -> Option<&'static str> {
    paper_cells()
        .find(|&(pk, pd, _)| pk == k && pd == d)
        .map(|(_, _, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cells_satisfy_grid_rule() {
        for (k, d, _) in paper_cells() {
            assert!(
                k < d || (k == 1 && d == 1),
                "({k},{d}) violates the k<d rule"
            );
            assert!(K_VALUES.contains(&k), "unknown k={k}");
            assert!(D_VALUES.contains(&d), "unknown d={d}");
        }
    }

    #[test]
    fn cell_count_matches_paper() {
        // Count cells implied by the grid rule.
        let mut expected = 0;
        for &k in &K_VALUES {
            for &d in &D_VALUES {
                if k < d || (k == 1 && d == 1) {
                    expected += 1;
                }
            }
        }
        assert_eq!(paper_cells().count(), expected);
    }

    #[test]
    fn no_duplicate_cells() {
        let mut seen = std::collections::HashSet::new();
        for (k, d, _) in paper_cells() {
            assert!(seen.insert((k, d)), "duplicate cell ({k},{d})");
        }
    }

    #[test]
    fn lookups_work() {
        assert_eq!(paper_value(1, 2), Some("3, 4"));
        assert_eq!(paper_value(192, 193), Some("5, 6"));
        assert_eq!(paper_value(2, 2), None);
    }

    #[test]
    fn k_divides_table1_n() {
        for &k in &K_VALUES {
            assert_eq!(
                crate::TABLE1_N % k,
                0,
                "paper chose k values dividing n; k={k} does not"
            );
        }
    }
}
