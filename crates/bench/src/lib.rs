//! Shared infrastructure for the benchmark harness.
//!
//! Every table and figure of the paper has a `harness = false` bench target
//! in `benches/` that regenerates it (run them all with `cargo bench`, or a
//! single one with `cargo bench --bench table1`). This library hosts what
//! they share: the paper's Table 1 grid definition with the published
//! values, a fixed-width table renderer, an ASCII plotter for the figures,
//! and the `KD_FAST` switch that shrinks workloads for CI.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod plot;
pub mod svg;
pub mod table;
pub mod table1_data;

/// Whether the harness should run in fast/CI mode (`KD_FAST=1`).
///
/// Fast mode shrinks `n` and the trial counts so that the full bench suite
/// finishes in seconds; the printed tables note the substitution.
pub fn fast_mode() -> bool {
    std::env::var("KD_FAST")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

/// The paper's Table 1 bin count, `n = 3·2¹⁶ = 196608`.
pub const TABLE1_N: usize = 3 * (1 << 16);

/// The paper's Table 1 trial count per cell.
pub const TABLE1_TRIALS: usize = 10;

/// Prints the standard experiment header (name, mode, parameters line).
pub fn print_header(name: &str, params: &str) {
    println!("================================================================");
    println!("{name}");
    if fast_mode() {
        println!("mode: FAST (KD_FAST=1) — reduced n/trials, shapes only");
    } else {
        println!("mode: full");
    }
    println!("{params}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    #[test]
    fn fast_mode_reads_env() {
        // Cannot mutate env safely in parallel tests; just check it returns.
        let _ = super::fast_mode();
    }
}
