//! A minimal fixed-width ASCII table renderer for the bench outputs.

/// A fixed-width text table: headers plus string rows, auto-sized columns.
///
/// ```
/// use kdchoice_bench::table::Table;
///
/// let mut t = Table::new(vec!["k".into(), "d".into(), "max".into()]);
/// t.row(vec!["1".into(), "2".into(), "3, 4".into()]);
/// let s = t.render();
/// assert!(s.contains("k"));
/// assert!(s.contains("3, 4"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// extend the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header separator.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let consider = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        consider(&mut widths, &self.headers);
        for r in &self.rows {
            consider(&mut widths, r);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut out = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                out.push_str(&format!("{cell:>w$}", w = w));
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            out.push('\n');
            out
        };
        let mut out = fmt_row(&self.headers, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.row(vec!["100".into(), "2".into()]);
        t.row(vec!["1".into(), "22222".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, separator, 2 rows
                                    // All lines the same width.
        let w = lines[0].chars().count();
        for l in &lines[1..] {
            assert_eq!(l.chars().count(), w, "misaligned: {l:?}");
        }
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(vec!["x".into()]);
        t.row(vec!["1".into(), "extra".into()]);
        t.row(vec![]);
        let s = t.render();
        assert!(s.contains("extra"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(vec!["only".into()]);
        let s = t.render();
        assert!(s.contains("only"));
        assert_eq!(s.lines().count(), 2);
    }
}
