//! Criterion micro-benchmarks: allocation throughput (ns/ball) of
//! (k,d)-choice and the baselines, plus the application kernels.
//!
//! These are implementation benchmarks (not paper artifacts): they document
//! that the simulator is fast enough to regenerate the paper's tables at
//! full scale, and catch performance regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kdchoice_baselines::{AdaptiveProbing, DChoice, SingleChoice};
use kdchoice_core::{run_once, BallsIntoBins, KdChoice, RoundPolicy, RunConfig};
use kdchoice_scheduler::{simulate, ClusterConfig, PlacementStrategy};
use kdchoice_storage::{run_workload, PlacementPolicy, WorkloadConfig};

const N: usize = 1 << 14;

fn bench_processes(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    type Factory = Box<dyn Fn() -> Box<dyn BallsIntoBins>>;
    let mut cases: Vec<(String, Factory)> = vec![
        (
            "single-choice".into(),
            Box::new(|| Box::new(SingleChoice::new())),
        ),
        (
            "greedy2".into(),
            Box::new(|| Box::new(DChoice::new(2).expect("valid"))),
        ),
        (
            "adaptive".into(),
            Box::new(|| Box::new(AdaptiveProbing::new(1, 32).expect("valid"))),
        ),
    ];
    for (k, d) in [(1usize, 2usize), (2, 3), (16, 17), (16, 32), (192, 193)] {
        cases.push((
            format!("kd_{k}_{d}"),
            Box::new(move || Box::new(KdChoice::new(k, d).expect("valid"))),
        ));
    }
    cases.push((
        "kd_16_32_unrestricted".into(),
        Box::new(|| {
            Box::new(
                KdChoice::new(16, 32)
                    .expect("valid")
                    .with_policy(RoundPolicy::Unrestricted),
            )
        }),
    ));
    for (name, factory) in cases {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut p = factory();
                run_once(&mut *p, &RunConfig::new(N, 42)).max_load
            })
        });
    }
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    let cfg = ClusterConfig::new(128, 4, 2000, 9).with_utilization(0.8);
    group.bench_function("batch_sampling_2000_jobs", |b| {
        b.iter(|| {
            simulate(
                &cfg,
                PlacementStrategy::BatchSampling { probes_per_task: 2 },
            )
        })
    });
    group.bench_function("kd_choice_2000_jobs", |b| {
        b.iter(|| simulate(&cfg, PlacementStrategy::KdChoice { d: 8 }))
    });
    group.finish();
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    group.sample_size(10);
    let cfg = WorkloadConfig::new(200, 4, PlacementPolicy::KdChoice { d: 8 }).with_seed(5);
    group.bench_function("workload_2000_files", |b| b.iter(|| run_workload(&cfg)));
    group.finish();
}

criterion_group!(benches, bench_processes, bench_scheduler, bench_storage);
criterion_main!(benches);
