//! Verifies **Theorem 2** (heavily loaded case): for `d ≥ 2k` and `m > n`
//! balls into `n` bins, the excess over the average
//! `M(k,d,m,n) − m/n` stays within
//! `[lnln n/ln(d−k+1) − O(1), lnln n/ln⌊d/k⌋ + O(1)]`
//! — in particular it does **not grow with m**, unlike single choice whose
//! gap grows like √(m/n · ln n).

use kdchoice_baselines::SingleChoice;
use kdchoice_bench::table::Table;
use kdchoice_bench::{fast_mode, print_header};
use kdchoice_core::{run_trials, KdChoice, RunConfig};
use kdchoice_theory::bounds::theorem2_gap_band;

fn main() {
    let (n, trials, ratios): (usize, usize, Vec<u64>) = if fast_mode() {
        (1 << 10, 3, vec![1, 4, 16])
    } else {
        (1 << 14, 8, vec![1, 2, 4, 8, 16, 32, 64])
    };
    print_header(
        "Theorem 2: heavy case gap (max load − m/n) for d ≥ 2k",
        &format!("n = {n}, trials = {trials}, m/n in {ratios:?}, slack = 2"),
    );

    let configs: [(usize, usize); 4] = [(1, 2), (2, 4), (4, 8), (2, 5)];
    let mut t = Table::new(
        std::iter::once("process".to_string())
            .chain(ratios.iter().map(|r| format!("m/n={r}")))
            .chain(std::iter::once("band".to_string()))
            .collect(),
    );

    for &(k, d) in &configs {
        let band = theorem2_gap_band(k, d, n, 2.0);
        let mut row = vec![format!("({k},{d})-choice")];
        let mut gaps = Vec::new();
        for &r in &ratios {
            let set = run_trials(
                move |_| Box::new(KdChoice::new(k, d).expect("valid")),
                &RunConfig::new(n, 8000 + (k * 31 + d) as u64 + r).with_balls(r * n as u64),
                trials,
            );
            let gap = set.mean_gap();
            gaps.push(gap);
            row.push(format!("{gap:.2}"));
        }
        row.push(format!("[{:.1},{:.1}]", band.lo, band.hi));
        t.row(row);
        // Shape assertions: the gap is bounded (within slack) and flat in m.
        for (i, &g) in gaps.iter().enumerate() {
            assert!(
                g <= band.hi + 1.0,
                "({k},{d}) at m/n={}: gap {g} above band {}",
                ratios[i],
                band.hi
            );
        }
        let first = gaps.first().copied().unwrap_or(0.0);
        let last = gaps.last().copied().unwrap_or(0.0);
        assert!(
            last <= first + 2.0,
            "({k},{d}): gap grew with m ({first:.2} -> {last:.2}); Theorem 2 says it must not"
        );
    }

    // Contrast: single choice's gap must grow visibly with m.
    let mut row = vec!["single-choice".to_string()];
    let mut sc_gaps = Vec::new();
    for &r in &ratios {
        let set = run_trials(
            |_| Box::new(SingleChoice::new()),
            &RunConfig::new(n, 8900 + r).with_balls(r * n as u64),
            trials,
        );
        sc_gaps.push(set.mean_gap());
        row.push(format!("{:.2}", set.mean_gap()));
    }
    row.push("Θ(√(m/n·ln n))".to_string());
    t.row(row);
    t.print();

    let sc_first = sc_gaps.first().copied().unwrap_or(0.0);
    let sc_last = sc_gaps.last().copied().unwrap_or(0.0);
    assert!(
        sc_last > sc_first * 1.5,
        "single-choice gap should grow with m ({sc_first:.2} -> {sc_last:.2})"
    );
    println!("\n(k,d)-choice gaps stay flat in m; single-choice grows: shape confirmed");
}
