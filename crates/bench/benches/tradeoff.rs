//! Regenerates the paper's §1.1 **load/message tradeoff** claims:
//!
//! * `d = 2k` with `k = Θ(ln² n)`: **constant maximum load at 2n messages**
//!   (no previously known non-adaptive scheme achieves this at O(n) cost);
//! * `k = Θ(ln² n)`, `d − k = Θ(ln n)`: `o(lnln n)` load at `(1+o(1))·n`
//!   messages;
//! * the spectrum from single choice (1 msg/ball) to d-choice (d msg/ball),
//!   with the adaptive Czumaj–Stemann-style scheme and (1+β)-choice as the
//!   non-(k,d) comparison points.

use kdchoice_baselines::{AdaptiveProbing, DChoice, OnePlusBeta, SingleChoice};
use kdchoice_bench::table::Table;
use kdchoice_bench::{fast_mode, print_header};
use kdchoice_core::{run_trials, BallsIntoBins, KdChoice, RunConfig};
use kdchoice_theory::cost::{constant_load_params, near_minimal_message_params};

fn main() {
    let (n, trials) = if fast_mode() {
        (1 << 12, 3)
    } else {
        (1 << 18, 8)
    };
    print_header(
        "§1.1 tradeoff frontier: max load vs messages per ball",
        &format!("n = {n}, trials = {trials}"),
    );
    let lnln = (n as f64).ln().ln();
    println!("lnln n = {lnln:.2}\n");

    let (k_const, d_const) = constant_load_params(n);
    let (k_min, d_min) = near_minimal_message_params(n);

    type Factory = Box<dyn Fn() -> Box<dyn BallsIntoBins> + Sync>;
    let mut entries: Vec<(String, Factory)> = vec![(
        "single-choice".into(),
        Box::new(|| Box::new(SingleChoice::new())),
    )];
    entries.push((
        "greedy[2]".into(),
        Box::new(|| Box::new(DChoice::new(2).expect("valid"))),
    ));
    entries.push((
        "(1+0.5)-choice".into(),
        Box::new(|| Box::new(OnePlusBeta::new(0.5).expect("valid"))),
    ));
    entries.push((
        "adaptive[+1,cap 32]".into(),
        Box::new(|| Box::new(AdaptiveProbing::new(1, 32).expect("valid"))),
    ));
    let kd_params: Vec<(usize, usize, &str)> = vec![
        (k_const, d_const, "constant load @ 2 msg/ball"),
        (k_min, d_min, "o(lnln n) load @ ~1 msg/ball"),
        (16, 17, "(k,k+1): half of two-choice cost"),
        (16, 32, "dk=2 mid-scale"),
    ];
    for &(k, d, _) in &kd_params {
        entries.push((
            format!("({k},{d})-choice"),
            Box::new(move || Box::new(KdChoice::new(k, d).expect("valid"))),
        ));
    }

    let mut t = Table::new(vec![
        "process".into(),
        "mean max load".into(),
        "max loads seen".into(),
        "msgs/ball".into(),
        "note".into(),
    ]);
    let mut results = Vec::new();
    for (i, (name, factory)) in entries.iter().enumerate() {
        let set = run_trials(|_| factory(), &RunConfig::new(n, 11_000 + i as u64), trials);
        let mpb: f64 = set
            .results
            .iter()
            .map(|r| r.messages_per_ball())
            .sum::<f64>()
            / set.results.len() as f64;
        let note = kd_params
            .iter()
            .find(|&&(k, d, _)| format!("({k},{d})-choice") == *name)
            .map(|&(_, _, note)| note)
            .unwrap_or("");
        t.row(vec![
            name.clone(),
            format!("{:.2}", set.mean_max_load()),
            set.max_load_set_string(),
            format!("{mpb:.3}"),
            note.to_string(),
        ]);
        results.push((name.clone(), set.mean_max_load(), mpb));
    }
    t.print();

    // Headline assertions.
    let get = |needle: &str| {
        results
            .iter()
            .find(|(name, ..)| name.contains(needle))
            .expect("entry exists")
            .clone()
    };
    let (_, const_load, const_mpb) = get(&format!("({k_const},{d_const})"));
    assert!(
        const_load <= 3.0,
        "d=2k with k=ln^2 n should give a tiny constant max load, got {const_load}"
    );
    // d = 2k costs 2 messages per ball, up to the truncated final round
    // when k does not divide n.
    assert!((const_mpb - 2.0).abs() < 0.05, "msgs/ball {const_mpb}");
    let (_, min_load, min_mpb) = get(&format!("({k_min},{d_min})"));
    assert!(
        min_mpb < 1.15,
        "near-minimal config should use ~1 msg/ball, got {min_mpb}"
    );
    // "o(lnln n) load at (1+o(1))n messages" is asymptotic; at finite n the
    // executable check is Theorem 1's point prediction plus O(1) slack,
    // and two-choice-grade load at roughly half of two-choice's cost.
    let (_, two_load, two_mpb) = get("greedy[2]");
    let predicted = kdchoice_theory::bounds::theorem1_prediction(k_min, d_min, n).total();
    assert!(
        min_load <= predicted + 1.5,
        "near-minimal config load {min_load} vs Theorem 1 prediction {predicted:.2}"
    );
    assert!(
        min_load <= two_load + 1.0 && min_mpb < 0.6 * two_mpb,
        "near-minimal config should match two-choice-grade load at ~half its \
         cost: load {min_load} vs {two_load}, {min_mpb:.2} vs {two_mpb:.2} msg/ball"
    );
    let (_, single_load, _) = get("single-choice");
    assert!(min_load < single_load, "must beat single choice");
    println!("\ntradeoff headline checks passed");
}
