//! Regenerates **Table 1** of the paper: "The maximum bin load for
//! (k,d)-choice with n = 3·2¹⁶ and varying k and d values" — every cell is
//! the set of maximum loads observed over 10 independent runs.
//!
//! Run with `cargo bench --bench table1` (full, the paper's exact n and
//! trial count) or `KD_FAST=1 cargo bench --bench table1` (reduced).

use kdchoice_bench::table::Table;
use kdchoice_bench::table1_data::{paper_cells, D_VALUES, K_VALUES};
use kdchoice_bench::{fast_mode, print_header, TABLE1_N, TABLE1_TRIALS};
use kdchoice_core::{run_trials, KdChoice, RunConfig};

fn main() {
    let (n, trials) = if fast_mode() {
        (3 * (1 << 12), 3)
    } else {
        (TABLE1_N, TABLE1_TRIALS)
    };
    print_header(
        "Table 1: max bin load of (k,d)-choice",
        &format!("n = {n}, trials per cell = {trials}, seed = 20110601"),
    );

    // Measure every paper cell.
    let mut measured: Vec<(usize, usize, String, &'static str)> = Vec::new();
    for (k, d, paper) in paper_cells() {
        let cfg = RunConfig::new(n, 20_110_601 + (k * 1000 + d) as u64);
        let set = run_trials(
            move |_| Box::new(KdChoice::new(k, d).expect("valid cell")),
            &cfg,
            trials,
        );
        measured.push((k, d, set.max_load_set_string(), paper));
    }

    // Render in the paper's grid layout (measured values).
    let mut grid = Table::new(
        std::iter::once("k \\ d".to_string())
            .chain(D_VALUES.iter().map(|d| format!("d={d}")))
            .collect(),
    );
    for &k in &K_VALUES {
        let mut row = vec![format!("k={k}")];
        for &d in &D_VALUES {
            let cell = measured
                .iter()
                .find(|&&(mk, md, ..)| mk == k && md == d)
                .map(|(_, _, m, _)| m.clone())
                .unwrap_or_else(|| "-".to_string());
            row.push(cell);
        }
        grid.row(row);
    }
    println!("\nMeasured grid (sets of max loads over {trials} runs):\n");
    grid.print();

    // Side-by-side comparison with the published values.
    let mut cmp = Table::new(vec![
        "k".into(),
        "d".into(),
        "paper".into(),
        "measured".into(),
        "overlap".into(),
    ]);
    let mut agree = 0usize;
    let mut total = 0usize;
    for (k, d, m, paper) in &measured {
        let paper_set: Vec<&str> = paper.split(", ").collect();
        let measured_set: Vec<&str> = m.split(", ").collect();
        let overlap = measured_set.iter().any(|v| paper_set.contains(v));
        total += 1;
        if overlap {
            agree += 1;
        }
        cmp.row(vec![
            k.to_string(),
            d.to_string(),
            paper.to_string(),
            m.clone(),
            if overlap { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("\nPaper vs measured:\n");
    cmp.print();
    println!(
        "\ncells with overlapping observed sets: {agree}/{total}{}",
        if fast_mode() {
            "  (fast mode: smaller n shifts small-d cells)"
        } else {
            ""
        }
    );

    // The §1.2 headline observations.
    let find = |k: usize, d: usize| -> &String {
        &measured
            .iter()
            .find(|&&(mk, md, ..)| mk == k && md == d)
            .expect("cell exists")
            .2
    };
    println!("\n§1.2 observations:");
    println!(
        "  (8,9)-choice = {} vs two-choice (1,2) = {}",
        find(8, 9),
        find(1, 2)
    );
    println!(
        "  (128,193)-choice = {} vs (1,193)-choice = {} vs two-choice = {}",
        find(128, 193),
        find(1, 193),
        find(1, 2)
    );
    println!(
        "  (64,65)-choice = {} vs single-choice (1,1) = {}",
        find(64, 65),
        find(1, 1)
    );
}
