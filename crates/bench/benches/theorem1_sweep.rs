//! Verifies the **Theorem 1** scaling (and Corollary 1) empirically:
//! the measured maximum load is swept across `n` for parameter families in
//! each regime and compared against the predicted bands.
//!
//! * dk = O(1) family `(k, 2k)`: M = lnln n / ln(k+1) ± O(1) — flat in n
//!   once k is moderate, matching Theorem 1(i);
//! * diverging-dk family `(k, k+1)`: M = lnln n / ln 2 + (1±o(1))·ln dk/lnln dk,
//!   matching Theorem 1(ii);
//! * `(1, d)`: the classical d-choice regression check.

use kdchoice_bench::table::Table;
use kdchoice_bench::{fast_mode, print_header};
use kdchoice_core::{run_trials, KdChoice, RunConfig};
use kdchoice_theory::bounds::{theorem1_band, theorem1_prediction};
use kdchoice_theory::dk_ratio;

fn main() {
    let (sizes, trials): (Vec<usize>, usize) = if fast_mode() {
        (vec![1 << 12, 1 << 14], 3)
    } else {
        (vec![1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20], 10)
    };
    print_header(
        "Theorem 1 sweep: measured max load vs predicted band",
        &format!("n in {sizes:?}, trials = {trials}, slack = 3"),
    );

    let families: Vec<(&str, usize, usize)> = vec![
        ("d-choice (1,2)", 1, 2),
        ("d-choice (1,4)", 1, 4),
        ("dk=2 (2,4)", 2, 4),
        ("dk=2 (8,16)", 8, 16),
        ("dk=2 (64,128)", 64, 128),
        ("dk→∞ (4,5)", 4, 5),
        ("dk→∞ (16,17)", 16, 17),
        ("dk→∞ (64,65)", 64, 65),
    ];

    let mut t = Table::new(vec![
        "family".into(),
        "n".into(),
        "dk".into(),
        "regime".into(),
        "prediction".into(),
        "band".into(),
        "measured mean".into(),
        "in band".into(),
    ]);
    let slack = 3.0;
    let mut violations = 0usize;
    for &(label, k, d) in &families {
        for &n in &sizes {
            let set = run_trials(
                move |_| Box::new(KdChoice::new(k, d).expect("valid")),
                &RunConfig::new(n, 6000 + (k * 7 + d) as u64),
                trials,
            );
            let mean = set.mean_max_load();
            let p = theorem1_prediction(k, d, n);
            let band = theorem1_band(k, d, n, slack);
            let ok = band.contains(mean);
            if !ok {
                violations += 1;
            }
            t.row(vec![
                label.to_string(),
                n.to_string(),
                format!("{:.2}", dk_ratio(k, d)),
                format!("{:?}", p.regime),
                format!("{:.2}", p.total()),
                format!("[{:.1},{:.1}]", band.lo, band.hi),
                format!("{mean:.2}"),
                if ok { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.print();

    // Monotonicity shape: within the (k,k+1) family at fixed n, the max
    // load grows with k (the dk term takes over) — Corollary 1's direction.
    let n = *sizes.last().expect("non-empty");
    let mut prev = 0.0;
    println!("\nCorollary 1 direction at n = {n} (family (k,k+1), mean max):");
    for &k in &[4usize, 16, 64] {
        let set = run_trials(
            move |_| Box::new(KdChoice::new(k, k + 1).expect("valid")),
            &RunConfig::new(n, 7000 + k as u64),
            trials,
        );
        let mean = set.mean_max_load();
        println!("  k={k:<4} mean max = {mean:.2}");
        assert!(
            mean + 0.75 >= prev,
            "max load should not decrease as k -> d (got {mean} after {prev})"
        );
        prev = mean;
    }

    println!("\nband violations: {violations} (0 expected)");
    assert_eq!(violations, 0, "some measurements fell outside the band");
}
