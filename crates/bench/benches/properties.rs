//! Empirically checks the **Properties of (k,d)-choice** from §3:
//!
//! (i)   Aσ(k,d) ≡ A(k,d) for any serialization schedule σ
//!       (two-sample tests on max-load distributions);
//! (ii)  A(k,d+α) ≤mj A(k,d) — more probes flatten the vector;
//! (iii) A(k−α,d) ≤mj A(k,d) — fewer balls per round flatten it;
//! (iv)  A(αk,αd) ≤mj A(k,d) — scaled-up rounds flatten it;
//! (v)   A(k,d) ≤mj A(k+α,d+α) — diagonal moves toward single choice.
//!
//! Majorization is checked on trial-averaged prefix sums of the sorted load
//! vectors (`E[B_{≤x}]`, a consequence of Definition 2(ii) by linearity),
//! reporting the worst relative violation over all prefixes.

use kdchoice_bench::table::Table;
use kdchoice_bench::{fast_mode, print_header};
use kdchoice_core::{run_trials, KdChoice, RunConfig, SerializedKdChoice, SigmaSchedule};
use kdchoice_stats::order::empirical_majorization;
use kdchoice_stats::tests::mann_whitney_u;

fn main() {
    let (n, trials) = if fast_mode() {
        (1 << 10, 20)
    } else {
        (1 << 13, 60)
    };
    print_header(
        "Properties (i)-(v) of (k,d)-choice (§3)",
        &format!("n = {n}, trials = {trials}"),
    );

    // ---- Property (i): serialization equivalence ----
    println!("\nProperty (i): Aσ(k,d) ≡ A(k,d) — Mann-Whitney on max loads\n");
    let mut t = Table::new(vec![
        "(k,d)".into(),
        "schedule".into(),
        "mean max (A)".into(),
        "mean max (Aσ)".into(),
        "p-value".into(),
        "equivalent".into(),
    ]);
    for &(k, d) in &[(2usize, 3usize), (3, 5), (8, 12)] {
        let base = run_trials(
            move |_| Box::new(KdChoice::new(k, d).expect("valid")),
            &RunConfig::new(n, 9100 + (k * 13 + d) as u64),
            trials,
        );
        for schedule in [
            SigmaSchedule::Identity,
            SigmaSchedule::Reverse,
            SigmaSchedule::UniformRandom,
        ] {
            let ser = run_trials(
                move |_| Box::new(SerializedKdChoice::new(k, d, schedule).expect("valid")),
                &RunConfig::new(n, 9500 + (k * 17 + d) as u64),
                trials,
            );
            let test = mann_whitney_u(&base.max_loads_f64(), &ser.max_loads_f64());
            let equivalent = test.p_value > 0.01;
            t.row(vec![
                format!("({k},{d})"),
                schedule.label().to_string(),
                format!("{:.2}", base.mean_max_load()),
                format!("{:.2}", ser.mean_max_load()),
                format!("{:.3}", test.p_value),
                if equivalent { "yes" } else { "NO" }.to_string(),
            ]);
            assert!(
                equivalent,
                "({k},{d}) schedule {}: distributions differ (p = {})",
                schedule.label(),
                test.p_value
            );
        }
    }
    t.print();

    // ---- Properties (ii)-(v): majorization ----
    println!("\nProperties (ii)-(v): A1 ≤mj A2 via mean prefix sums\n");
    let mut t = Table::new(vec![
        "property".into(),
        "A1".into(),
        "A2".into(),
        "max rel violation".into(),
        "holds".into(),
    ]);
    // (property, (k1,d1) ≤mj (k2,d2))
    type Case = (&'static str, (usize, usize), (usize, usize));
    let cases: Vec<Case> = vec![
        ("(ii) more probes", (2, 6), (2, 4)),
        ("(ii) more probes", (4, 12), (4, 6)),
        ("(iii) fewer balls", (1, 4), (3, 4)),
        ("(iii) fewer balls", (2, 8), (6, 8)),
        ("(iv) scaled rounds", (4, 8), (2, 4)),
        ("(iv) scaled rounds", (9, 12), (3, 4)),
        ("(v) diagonal", (1, 2), (3, 4)),
        ("(v) diagonal", (2, 4), (6, 8)),
        ("(v) diagonal", (4, 5), (16, 17)),
    ];
    // Sampling noise on mean prefix sums is O(1/sqrt(trials)) relative.
    let tolerance = 2.5 / (trials as f64).sqrt() * 0.05 + 0.004;
    for (label, (k1, d1), (k2, d2)) in cases {
        let a = run_trials(
            move |_| Box::new(KdChoice::new(k1, d1).expect("valid")),
            &RunConfig::new(n, 9900 + (k1 * 19 + d1) as u64),
            trials,
        );
        let b = run_trials(
            move |_| Box::new(KdChoice::new(k2, d2).expect("valid")),
            &RunConfig::new(n, 9950 + (k2 * 23 + d2) as u64),
            trials,
        );
        let report = empirical_majorization(&a.sorted_load_vectors(), &b.sorted_load_vectors());
        let holds = report.max_relative_violation <= tolerance;
        t.row(vec![
            label.to_string(),
            format!("({k1},{d1})"),
            format!("({k2},{d2})"),
            format!("{:.5}", report.max_relative_violation),
            if holds { "yes" } else { "NO" }.to_string(),
        ]);
        assert!(
            holds,
            "{label}: ({k1},{d1}) ≤mj ({k2},{d2}) violated by {} at prefix {}",
            report.max_relative_violation, report.argmax_prefix
        );
    }
    t.print();
    println!("\nall §3 property checks passed (tolerance {tolerance:.5})");
}
