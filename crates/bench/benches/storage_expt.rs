//! Regenerates the §1.3 **distributed storage** claims:
//!
//! * (k,d)-choice stores k replicas/chunks on the k least loaded of d
//!   sampled servers — balance close to per-chunk two-choice;
//! * with `d = k+1` the placement costs about **half** the messages of
//!   per-chunk two-choice, and file retrieval costs `k+1` vs `2k`;
//! * failure recovery re-replicates onto lightly loaded servers, keeping
//!   imbalance bounded.

use kdchoice_bench::table::Table;
use kdchoice_bench::{fast_mode, print_header};
use kdchoice_storage::{run_workload, PlacementPolicy, WorkloadConfig};

fn main() {
    let (servers, files_per_server) = if fast_mode() { (100, 10) } else { (1000, 40) };
    let k = 4usize;
    print_header(
        "§1.3 storage: placement balance, message cost, failure recovery",
        &format!(
            "servers = {servers}, k = {k} chunks/file, files = {}",
            servers * files_per_server
        ),
    );

    let policies = [
        PlacementPolicy::Random,
        PlacementPolicy::PerChunkTwoChoice,
        PlacementPolicy::KdChoice { d: k + 1 },
        PlacementPolicy::KdChoice { d: 2 * k },
    ];
    let mut t = Table::new(vec![
        "policy".into(),
        "max load".into(),
        "mean load".into(),
        "imbalance".into(),
        "p99 load".into(),
        "probes/file".into(),
        "read msgs/op".into(),
    ]);
    let mut reports = Vec::new();
    for policy in policies {
        let mut cfg = WorkloadConfig::new(servers, k, policy).with_seed(77);
        cfg.files = servers * files_per_server;
        cfg.reads = servers * 20;
        let r = run_workload(&cfg);
        t.row(vec![
            r.policy.clone(),
            r.stats.max_load.to_string(),
            format!("{:.1}", r.stats.mean_load),
            format!("{:.3}", r.stats.imbalance),
            format!("{:.0}", r.load_percentiles[2]),
            format!("{:.1}", r.create_cost_per_file),
            format!("{:.1}", r.read_cost_per_op),
        ]);
        reports.push(r);
    }
    println!("\nPlacement balance (no failures):\n");
    t.print();

    let random = &reports[0];
    let two = &reports[1];
    let kd_small = &reports[2];
    let kd_big = &reports[3];
    assert!(
        kd_small.stats.max_load <= random.stats.max_load,
        "(k,k+1) must not lose to random"
    );
    assert!(
        kd_big.stats.max_load <= two.stats.max_load + 1,
        "(k,2k) should be competitive with per-chunk two-choice"
    );
    // §1.3 message claims: placement k+1 vs 2k probes, reads k+1 vs 2k.
    assert!((kd_small.create_cost_per_file - (k + 1) as f64).abs() < 1e-9);
    assert!((two.create_cost_per_file - (2 * k) as f64).abs() < 1e-9);
    assert!((kd_small.read_cost_per_op - (k + 1) as f64).abs() < 1e-9);
    assert!((two.read_cost_per_op - (2 * k) as f64).abs() < 1e-9);

    // Failure recovery.
    let failures = servers / 10;
    let mut t = Table::new(vec![
        "policy".into(),
        "alive".into(),
        "max load".into(),
        "imbalance".into(),
        "recovered chunks".into(),
        "recovery msgs".into(),
    ]);
    println!("\nFailure recovery ({failures} failures mid-workload):\n");
    for policy in [
        PlacementPolicy::Random,
        PlacementPolicy::KdChoice { d: 2 * k },
    ] {
        let mut cfg = WorkloadConfig::new(servers, k, policy)
            .with_seed(78)
            .with_failures(failures);
        cfg.files = servers * files_per_server;
        cfg.reads = 0;
        let r = run_workload(&cfg);
        t.row(vec![
            r.policy.clone(),
            r.stats.alive_servers.to_string(),
            r.stats.max_load.to_string(),
            format!("{:.3}", r.stats.imbalance),
            r.stats.recovered_chunks.to_string(),
            r.stats.recovery_messages.to_string(),
        ]);
        if let PlacementPolicy::KdChoice { .. } = policy {
            assert!(
                r.stats.imbalance < 1.5,
                "kd recovery should keep imbalance tight, got {}",
                r.stats.imbalance
            );
        }
    }
    t.print();
    println!("\nstorage claims confirmed");
}
