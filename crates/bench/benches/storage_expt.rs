//! Regenerates the §1.3 **distributed storage** claims:
//!
//! * (k,d)-choice stores k replicas/chunks on the k least loaded of d
//!   sampled servers — balance close to per-chunk two-choice;
//! * with `d = k+1` the placement costs about **half** the messages of
//!   per-chunk two-choice, and file retrieval costs `k+1` vs `2k`;
//! * failure recovery re-replicates onto lightly loaded servers, keeping
//!   imbalance bounded.
//!
//! All cells run in parallel through the shared `kdchoice-expt` sweep
//! runner; the tables are the workspace-standard report format.

use kdchoice_bench::{fast_mode, print_header};
use kdchoice_expt::{SweepReport, SweepRunner};
use kdchoice_storage::{PlacementPolicy, StorageScenario, WorkloadConfig};

fn main() {
    let (servers, files_per_server) = if fast_mode() { (100, 10) } else { (1000, 40) };
    let k = 4usize;
    print_header(
        "§1.3 storage: placement balance, message cost, failure recovery",
        &format!(
            "servers = {servers}, k = {k} chunks/file, files = {}",
            servers * files_per_server
        ),
    );

    let runner = SweepRunner::new();
    let configs: Vec<WorkloadConfig> = [
        PlacementPolicy::Random,
        PlacementPolicy::PerChunkTwoChoice,
        PlacementPolicy::KdChoice { d: k + 1 },
        PlacementPolicy::KdChoice { d: 2 * k },
    ]
    .into_iter()
    .map(|policy| {
        let mut cfg = WorkloadConfig::new(servers, k, policy).with_seed(77);
        cfg.files = servers * files_per_server;
        cfg.reads = servers * 20;
        cfg
    })
    .collect();

    // One parallel sweep: all four policies place concurrently.
    let cells = runner.run_scenario(&StorageScenario, &configs, 1);
    println!("\nPlacement balance (no failures):\n");
    print!(
        "{}",
        SweepReport::from_cells(&StorageScenario, &configs, &cells).to_table()
    );

    let record = |i: usize| &cells[i].runs[0].record;
    let (random, two, kd_small, kd_big) = (record(0), record(1), record(2), record(3));
    assert!(
        kd_small.stats.max_load <= random.stats.max_load,
        "(k,k+1) must not lose to random"
    );
    assert!(
        kd_big.stats.max_load <= two.stats.max_load + 1,
        "(k,2k) should be competitive with per-chunk two-choice"
    );
    // §1.3 message claims: placement k+1 vs 2k probes, reads k+1 vs 2k.
    assert!((kd_small.create_cost_per_file - (k + 1) as f64).abs() < 1e-9);
    assert!((two.create_cost_per_file - (2 * k) as f64).abs() < 1e-9);
    assert!((kd_small.read_cost_per_op - (k + 1) as f64).abs() < 1e-9);
    assert!((two.read_cost_per_op - (2 * k) as f64).abs() < 1e-9);

    // Failure recovery.
    let failures = servers / 10;
    println!("\nFailure recovery ({failures} failures mid-workload):\n");
    let recovery_configs: Vec<WorkloadConfig> = [
        PlacementPolicy::Random,
        PlacementPolicy::KdChoice { d: 2 * k },
    ]
    .into_iter()
    .map(|policy| {
        let mut cfg = WorkloadConfig::new(servers, k, policy)
            .with_seed(78)
            .with_failures(failures);
        cfg.files = servers * files_per_server;
        cfg.reads = 0;
        cfg
    })
    .collect();
    let recovery_cells = runner.run_scenario(&StorageScenario, &recovery_configs, 1);
    print!(
        "{}",
        SweepReport::from_cells(&StorageScenario, &recovery_configs, &recovery_cells).to_table()
    );
    let kd_recovery = &recovery_cells[1].runs[0].record;
    assert!(
        kd_recovery.stats.imbalance < 1.5,
        "kd recovery should keep imbalance tight, got {}",
        kd_recovery.stats.imbalance
    );
    println!("\nstorage claims confirmed");
}
