//! Regenerates **Figure 2** of the paper: the sorted bin load vector of
//! (k,d)-choice annotated with the lower-bound decomposition of §5 —
//! the markers γ* = 4n/dk (Theorem 6 bounds B_{γ*} from below) and
//! γ₀ = n/d (Theorem 7 bounds B₁ − B_{γ₀} from below).
//!
//! The figure applies to the dk → ∞ regime (k close to d), so the
//! configurations here are (k, k+1) families.

use kdchoice_bench::plot::sorted_load_plot;
use kdchoice_bench::table::Table;
use kdchoice_bench::{fast_mode, print_header};
use kdchoice_core::{run_once_with_state, KdChoice, RunConfig};
use kdchoice_theory::dk_ratio;
use kdchoice_theory::sequences::{gamma0, gamma_sequence, gamma_star};

fn main() {
    let n: usize = if fast_mode() { 1 << 14 } else { 1 << 18 };
    print_header(
        "Figure 2: sorted load vector with lower-bound markers (γ*, γ₀)",
        &format!("n = {n}, one run per configuration, seed = 4002"),
    );

    let configs: [(usize, usize); 3] = [(16, 17), (64, 65), (128, 129)];
    let mut summary = Table::new(vec![
        "(k,d)".into(),
        "dk".into(),
        "gamma*".into(),
        "B_gamma* (measured)".into(),
        "ln dk/lnln dk".into(),
        "gamma0".into(),
        "B1-B_gamma0".into(),
        "gamma i*".into(),
    ]);

    for (i, &(k, d)) in configs.iter().enumerate() {
        let mut p = KdChoice::new(k, d).expect("valid");
        let (result, state) = run_once_with_state(&mut p, &RunConfig::new(n, 5001 + i as u64));
        let sorted = state.sorted_descending();
        let dk = dk_ratio(k, d);
        let gs = gamma_star(n, k, d).round() as usize;
        let g0 = gamma0(n, d).round() as usize;
        let b_gs = sorted[(gs - 1).min(n - 1)];
        let b_g0 = sorted[(g0 - 1).min(n - 1)];
        let dk_term = if dk.ln() > 1.0 {
            dk.ln() / dk.ln().ln()
        } else {
            0.0
        };
        let seq = gamma_sequence(n, k, d);
        println!("\n--- ({k},{d})-choice: dk = {dk:.1} ---");
        println!(
            "{}",
            sorted_load_plot(
                &sorted,
                &[
                    (gs, "gamma* = 4n/dk".to_string()),
                    (g0, "gamma0 = n/d".to_string()),
                ],
                72
            )
        );
        summary.row(vec![
            format!("({k},{d})"),
            format!("{dk:.1}"),
            gs.to_string(),
            b_gs.to_string(),
            format!("{dk_term:.2}"),
            g0.to_string(),
            (result.max_load - b_g0).to_string(),
            seq.i_star.to_string(),
        ]);

        // Theorem 6 shape: B_{γ*} >= (1-o(1)) ln dk/lnln dk; allow a
        // generous constant-factor slack at finite n.
        assert!(
            f64::from(b_gs) >= 0.5 * dk_term - 1.0,
            "({k},{d}): B_gamma* = {b_gs} too small vs ln dk/lnln dk = {dk_term:.2}"
        );
    }

    println!("\nLower-bound decomposition summary (Theorem 6 + Theorem 7):\n");
    summary.print();
    println!("\nall decomposition checks passed");
}
