//! Regenerates **Figure 1** of the paper: the sorted bin load vector of
//! (k,d)-choice annotated with the upper-bound decomposition of §4 —
//! the split bin β₀ = n/(6·dk), the level y₀ bounding B_{β₀} (Theorem 3),
//! and the layered-induction budget i* bounding B₁ − B_{β₀} (Theorem 4).
//!
//! The paper's Figure 1 is a schematic; this bench draws the *measured*
//! vector and overlays the analysis quantities, verifying that
//! B_{β₀} ≤ y₀ and B₁ − B_{β₀} ≤ i* + 2 hold on real runs.

use kdchoice_bench::plot::sorted_load_plot;
use kdchoice_bench::table::Table;
use kdchoice_bench::{fast_mode, print_header};
use kdchoice_core::{run_once_with_state, KdChoice, RunConfig};
use kdchoice_theory::dk_ratio;
use kdchoice_theory::sequences::{beta0, beta_sequence, y1_from_dk};

fn main() {
    let n: usize = if fast_mode() { 1 << 14 } else { 1 << 18 };
    print_header(
        "Figure 1: sorted load vector with upper-bound markers (β₀, y₀, i*)",
        &format!("n = {n}, one run per configuration, seed = 4001"),
    );

    let configs: [(usize, usize); 3] = [(2, 3), (16, 17), (32, 48)];
    let mut summary = Table::new(vec![
        "(k,d)".into(),
        "dk".into(),
        "beta0".into(),
        "B_beta0".into(),
        "y0=y1+1".into(),
        "B1 (max)".into(),
        "B1-B_beta0".into(),
        "i* budget".into(),
    ]);

    for (i, &(k, d)) in configs.iter().enumerate() {
        let mut p = KdChoice::new(k, d).expect("valid");
        let (result, state) = run_once_with_state(&mut p, &RunConfig::new(n, 4001 + i as u64));
        let sorted = state.sorted_descending();
        let b0 = beta0(n, k, d).round() as usize;
        let b_beta0 = sorted[(b0 - 1).min(n - 1)];
        let y0 = y1_from_dk(dk_ratio(k, d)) + 1;
        let seq = beta_sequence(n, k, d);
        println!("\n--- ({k},{d})-choice: dk = {:.2} ---", dk_ratio(k, d));
        println!(
            "{}",
            sorted_load_plot(&sorted, &[(b0, "beta0 = n/(6 dk)".to_string())], 72)
        );
        println!(
            "beta sequence (nu_{{y0+i}} <= beta_i): {:?}, i* = {}",
            seq.values.iter().map(|v| v.round()).collect::<Vec<_>>(),
            seq.i_star
        );
        summary.row(vec![
            format!("({k},{d})"),
            format!("{:.2}", dk_ratio(k, d)),
            b0.to_string(),
            b_beta0.to_string(),
            y0.to_string(),
            result.max_load.to_string(),
            (result.max_load - b_beta0).to_string(),
            format!("{} (+2 slack)", seq.i_star),
        ]);

        // The Theorem 3 / Theorem 4 shape checks.
        assert!(
            b_beta0 <= y0 + 2,
            "({k},{d}): B_beta0 = {b_beta0} exceeds y0 = {y0} beyond slack"
        );
        assert!(
            u64::from(result.max_load - b_beta0) <= seq.i_star as u64 + 3,
            "({k},{d}): load difference {} exceeds i* = {} beyond slack",
            result.max_load - b_beta0,
            seq.i_star
        );
    }

    println!("\nUpper-bound decomposition summary (Theorem 3 + Theorem 4):\n");
    summary.print();
    println!("\nall decomposition checks passed");
}
