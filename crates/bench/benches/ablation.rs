//! Ablation for the paper's §7 conjecture: relaxing the multiplicity rule
//! ("the less-loaded candidate bins can receive more balls regardless of how
//! many times those bins are sampled") should **reduce the maximum load even
//! when k ≈ d**, possibly to a constant.
//!
//! Compares [`RoundPolicy::Multiplicity`] (the analyzed policy) against
//! [`RoundPolicy::Unrestricted`] (greedy water-filling over distinct sampled
//! bins) across the (k,k+1) family where the dk term hurts the most.

use kdchoice_bench::table::Table;
use kdchoice_bench::{fast_mode, print_header};
use kdchoice_core::{run_trials, DynamicKChoice, KdChoice, RoundPolicy, RunConfig};

fn main() {
    let (n, trials) = if fast_mode() {
        (3 * (1 << 10), 3)
    } else {
        (3 * (1 << 14), 10)
    };
    print_header(
        "§7 ablation: multiplicity rule vs unrestricted water-filling",
        &format!("n = {n}, trials = {trials}"),
    );

    let configs: [(usize, usize); 6] = [(2, 3), (4, 5), (16, 17), (48, 49), (192, 193), (16, 32)];
    let mut t = Table::new(vec![
        "(k,d)".into(),
        "multiplicity max".into(),
        "unrestricted max".into(),
        "improvement".into(),
    ]);
    for (i, &(k, d)) in configs.iter().enumerate() {
        let std = run_trials(
            move |_| Box::new(KdChoice::new(k, d).expect("valid")),
            &RunConfig::new(n, 12_000 + i as u64),
            trials,
        );
        let relaxed = run_trials(
            move |_| {
                Box::new(
                    KdChoice::new(k, d)
                        .expect("valid")
                        .with_policy(RoundPolicy::Unrestricted),
                )
            },
            &RunConfig::new(n, 12_100 + i as u64),
            trials,
        );
        t.row(vec![
            format!("({k},{d})"),
            std.max_load_set_string(),
            relaxed.max_load_set_string(),
            format!("{:+.2}", std.mean_max_load() - relaxed.mean_max_load()),
        ]);
        // The relaxation can only help (it dominates the standard policy).
        assert!(
            relaxed.mean_max_load() <= std.mean_max_load() + 0.35,
            "({k},{d}): unrestricted {} worse than multiplicity {}",
            relaxed.mean_max_load(),
            std.mean_max_load()
        );
    }
    t.print();

    // The §7 conjecture's sharpest form: for k ≈ d large, water-filling
    // keeps the max load tiny where the multiplicity rule pays ln dk/lnln dk.
    let k = 192;
    let std = run_trials(
        move |_| Box::new(KdChoice::new(k, k + 1).expect("valid")),
        &RunConfig::new(n, 12_200),
        trials,
    );
    let relaxed = run_trials(
        move |_| {
            Box::new(
                KdChoice::new(k, k + 1)
                    .expect("valid")
                    .with_policy(RoundPolicy::Unrestricted),
            )
        },
        &RunConfig::new(n, 12_201),
        trials,
    );
    println!(
        "\n(192,193): multiplicity mean max = {:.2}, unrestricted mean max = {:.2}",
        std.mean_max_load(),
        relaxed.mean_max_load()
    );
    assert!(
        relaxed.mean_max_load() + 1.0 < std.mean_max_load(),
        "water-filling should clearly beat the multiplicity rule at k≈d"
    );
    println!("§7 conjecture direction confirmed");

    // The other §7 direction: dynamic k per round at fixed probe budget d.
    println!("\n§7 dynamic-k variant (probe budget d, adaptive round size):\n");
    let mut t = Table::new(vec![
        "process".into(),
        "max loads".into(),
        "mean max".into(),
        "msgs/ball".into(),
    ]);
    for d in [4usize, 8, 16] {
        let fixed = run_trials(
            move |_| Box::new(KdChoice::new(d / 2, d).expect("valid")),
            &RunConfig::new(n, 12_300 + d as u64),
            trials,
        );
        let dynamic = run_trials(
            move |_| Box::new(DynamicKChoice::new(d, 0).expect("valid")),
            &RunConfig::new(n, 12_400 + d as u64),
            trials,
        );
        let mpb = |set: &kdchoice_core::TrialSet| -> f64 {
            set.results
                .iter()
                .map(|r| r.messages_per_ball())
                .sum::<f64>()
                / set.results.len() as f64
        };
        t.row(vec![
            format!("fixed ({},{})", d / 2, d),
            fixed.max_load_set_string(),
            format!("{:.2}", fixed.mean_max_load()),
            format!("{:.2}", mpb(&fixed)),
        ]);
        t.row(vec![
            format!("dynamic-k({d},+0)"),
            dynamic.max_load_set_string(),
            format!("{:.2}", dynamic.mean_max_load()),
            format!("{:.2}", mpb(&dynamic)),
        ]);
        assert!(
            dynamic.mean_max_load() <= fixed.mean_max_load() + 0.25,
            "dynamic k should not lose to fixed k at d = {d}"
        );
    }
    t.print();
    println!("\ndynamic-k matches or beats fixed-k max load (at higher message cost)");
}
