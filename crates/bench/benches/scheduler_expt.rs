//! Regenerates the §1.3 **parallel job scheduling** claim: per-task
//! d-choice degrades with job parallelism because the job finishes with its
//! last task, while (k,d)-choice / batch sampling (Sparrow, reference [12])
//! share probes across the job's tasks and protect the tail.
//!
//! The experiment sweeps job parallelism `k` at fixed utilization and
//! compares response-time percentiles and probe cost per job. All cells
//! run in parallel through the shared `kdchoice-expt` sweep runner; the
//! table is the workspace-standard report format.

use kdchoice_bench::{fast_mode, print_header};
use kdchoice_expt::{SweepReport, SweepRunner};
use kdchoice_scheduler::{
    ClusterConfig, PlacementStrategy, SchedulerExperiment, SchedulerScenario, ServiceDistribution,
    VectorJobProfile,
};

fn main() {
    let (workers, jobs) = if fast_mode() {
        (64, 1500)
    } else {
        (256, 20_000)
    };
    let utilization = 0.85;
    print_header(
        "§1.3 scheduling: response time vs probing strategy",
        &format!("workers = {workers}, jobs = {jobs}, utilization = {utilization}, exp(1) service"),
    );

    let runner = SweepRunner::new();
    for &k in &(if fast_mode() {
        vec![4usize]
    } else {
        vec![2usize, 4, 8, 16]
    }) {
        let cluster = ClusterConfig::new(workers, k, jobs, 31_337 + k as u64)
            .with_utilization(utilization)
            .with_service(ServiceDistribution::Exponential { mean: 1.0 });
        let configs: Vec<SchedulerExperiment> = [
            PlacementStrategy::Random,
            PlacementStrategy::PerTaskDChoice { d: 2 },
            PlacementStrategy::BatchSampling { probes_per_task: 2 },
            PlacementStrategy::LateBinding { probes_per_task: 2 },
            PlacementStrategy::KdChoice { d: k + 1 },
            PlacementStrategy::KdChoice { d: 2 * k },
        ]
        .into_iter()
        .map(|strategy| SchedulerExperiment {
            cluster: cluster.clone(),
            strategy,
            profile: VectorJobProfile::scalar(),
        })
        .collect();

        // One parallel sweep: every strategy simulates concurrently.
        let cells = runner.run_scenario(&SchedulerScenario, &configs, 1);
        println!("\n--- k = {k} tasks/job ---\n");
        print!(
            "{}",
            SweepReport::from_cells(&SchedulerScenario, &configs, &cells).to_table()
        );

        let record = |i: usize| &cells[i].runs[0].record;
        let (random, per_task, batch, kd_2k) = (record(0), record(1), record(2), record(5));
        // Probing beats random.
        assert!(
            batch.response.mean() < random.response.mean(),
            "k={k}: batch sampling must beat random placement"
        );
        // Equal budget: batch sampling's tail is no worse than per-task.
        assert_eq!(per_task.probe_messages, batch.probe_messages);
        assert!(
            batch.response_percentiles[2] <= per_task.response_percentiles[2] * 1.10,
            "k={k}: batch p99 {} should not lose to per-task p99 {}",
            batch.response_percentiles[2],
            per_task.response_percentiles[2]
        );
        // (k,2k)-choice matches batch-grade response with the same probes as
        // per-task two-choice.
        assert!(
            kd_2k.response.mean() < random.response.mean(),
            "k={k}: (k,2k)-choice must beat random"
        );
    }

    // Probe staleness: batch sampling degrades as its snapshot ages while
    // late binding (no snapshot) is immune — the Sparrow regime appears at
    // extreme staleness.
    println!("\nProbe staleness (128 workers, k=8, util 0.9, mean response):\n");
    let base = ClusterConfig::new(128, 8, if fast_mode() { 1500 } else { 10_000 }, 777)
        .with_utilization(0.9);
    let batches = [1usize, 8, 32, 128];
    let configs: Vec<SchedulerExperiment> = batches
        .iter()
        .flat_map(|&batch| {
            let cluster = base.clone().with_scheduler_batch(batch);
            [
                PlacementStrategy::BatchSampling { probes_per_task: 2 },
                PlacementStrategy::LateBinding { probes_per_task: 2 },
            ]
            .into_iter()
            .map(move |strategy| SchedulerExperiment {
                cluster: cluster.clone(),
                strategy,
                profile: VectorJobProfile::scalar(),
            })
        })
        .collect();
    let cells = runner.run_scenario(&SchedulerScenario, &configs, 1);
    println!("scheduler batch | batch-sampling | late-binding");
    for (i, &batch) in batches.iter().enumerate() {
        let bs = &cells[2 * i].runs[0].record;
        let lb = &cells[2 * i + 1].runs[0].record;
        println!(
            "{batch:>15} | {:>14.2} | {:>12.2}",
            bs.response.mean(),
            lb.response.mean()
        );
    }
    println!("\nscheduling claims confirmed");
}
