//! Regenerates the §1.3 **parallel job scheduling** claim: per-task
//! d-choice degrades with job parallelism because the job finishes with its
//! last task, while (k,d)-choice / batch sampling (Sparrow, reference [12])
//! share probes across the job's tasks and protect the tail.
//!
//! The experiment sweeps job parallelism `k` at fixed utilization and
//! compares response-time percentiles and probe cost per job.

use kdchoice_bench::table::Table;
use kdchoice_bench::{fast_mode, print_header};
use kdchoice_scheduler::{simulate, ClusterConfig, PlacementStrategy, ServiceDistribution};

fn main() {
    let (workers, jobs) = if fast_mode() {
        (64, 1500)
    } else {
        (256, 20_000)
    };
    let utilization = 0.85;
    print_header(
        "§1.3 scheduling: response time vs probing strategy",
        &format!("workers = {workers}, jobs = {jobs}, utilization = {utilization}, exp(1) service"),
    );

    for &k in &(if fast_mode() {
        vec![4usize]
    } else {
        vec![2usize, 4, 8, 16]
    }) {
        let cfg = ClusterConfig::new(workers, k, jobs, 31_337 + k as u64)
            .with_utilization(utilization)
            .with_service(ServiceDistribution::Exponential { mean: 1.0 });
        let strategies = [
            PlacementStrategy::Random,
            PlacementStrategy::PerTaskDChoice { d: 2 },
            PlacementStrategy::BatchSampling { probes_per_task: 2 },
            PlacementStrategy::LateBinding { probes_per_task: 2 },
            PlacementStrategy::KdChoice { d: k + 1 },
            PlacementStrategy::KdChoice { d: 2 * k },
        ];
        let mut t = Table::new(vec![
            "strategy".into(),
            "mean resp".into(),
            "p50".into(),
            "p90".into(),
            "p99".into(),
            "probes/job".into(),
            "max queue".into(),
        ]);
        let mut rows = Vec::new();
        for s in strategies {
            let r = simulate(&cfg, s);
            t.row(vec![
                r.strategy.clone(),
                format!("{:.3}", r.response.mean()),
                format!("{:.3}", r.response_percentiles[0]),
                format!("{:.3}", r.response_percentiles[1]),
                format!("{:.3}", r.response_percentiles[2]),
                format!("{:.1}", r.probes_per_job),
                r.max_queue_len.to_string(),
            ]);
            rows.push(r);
        }
        println!("\n--- k = {k} tasks/job ---\n");
        t.print();

        let random = &rows[0];
        let per_task = &rows[1];
        let batch = &rows[2];
        let kd_2k = &rows[5];
        // Probing beats random.
        assert!(
            batch.response.mean() < random.response.mean(),
            "k={k}: batch sampling must beat random placement"
        );
        // Equal budget: batch sampling's tail is no worse than per-task.
        assert_eq!(per_task.probe_messages, batch.probe_messages);
        assert!(
            batch.response_percentiles[2] <= per_task.response_percentiles[2] * 1.10,
            "k={k}: batch p99 {} should not lose to per-task p99 {}",
            batch.response_percentiles[2],
            per_task.response_percentiles[2]
        );
        // (k,2k)-choice matches batch-grade response with the same probes as
        // per-task two-choice.
        assert!(
            kd_2k.response.mean() < random.response.mean(),
            "k={k}: (k,2k)-choice must beat random"
        );
    }

    // Probe staleness: batch sampling degrades as its snapshot ages while
    // late binding (no snapshot) is immune — the Sparrow regime appears at
    // extreme staleness.
    println!("\nProbe staleness (128 workers, k=8, util 0.9, mean response):\n");
    let mut t = Table::new(vec![
        "scheduler batch".into(),
        "batch-sampling".into(),
        "late-binding".into(),
    ]);
    let base = ClusterConfig::new(128, 8, if fast_mode() { 1500 } else { 10_000 }, 777)
        .with_utilization(0.9);
    for batch in [1usize, 8, 32, 128] {
        let cfg = base.clone().with_scheduler_batch(batch);
        let bs = simulate(
            &cfg,
            PlacementStrategy::BatchSampling { probes_per_task: 2 },
        );
        let lb = simulate(&cfg, PlacementStrategy::LateBinding { probes_per_task: 2 });
        t.row(vec![
            batch.to_string(),
            format!("{:.2}", bs.response.mean()),
            format!("{:.2}", lb.response.mean()),
        ]);
    }
    t.print();
    println!("\nscheduling claims confirmed");
}
