//! Executable forms of Theorem 1, Corollary 1, Theorem 2, and the classical
//! baselines' maximum-load predictions.

use crate::{classify, dk_ratio, Regime};

/// A maximum-load prediction decomposed into the two terms of Theorem 1.
///
/// Theorem 1 (paper, §1.1): with probability 1 − o(1),
///
/// * if `dk = O(1)`:
///   `M(k,d,n) = lnln n / ln(d−k+1) ± O(1)`;
/// * if `dk → ∞`:
///   `M(k,d,n) = lnln n / ln(d−k+1) + (1 ± o(1)) · ln dk / lnln dk`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// The layered-induction term `lnln n / ln(d−k+1)` (upper-bound analysis
    /// of Theorem 4, matching lower bound via `A(1, d−k+1) ≤mj A(k,d)`).
    pub layered_term: f64,
    /// The `ln dk / lnln dk` term (Theorems 3 and 6); zero in the
    /// `dk = O(1)` regime.
    pub dk_term: f64,
    /// The regime used to combine the terms.
    pub regime: Regime,
}

impl Prediction {
    /// The predicted maximum load up to the theorem's `O(1)` additive slack.
    pub fn total(&self) -> f64 {
        self.layered_term + self.dk_term
    }
}

/// The term `lnln n / ln(d−k+1)` for `k < d`.
///
/// For `d − k + 1 = 2` (e.g. `d = k+1`) this is `log₂ ln n`, the familiar
/// two-choice bound.
pub fn layered_term(k: usize, d: usize, n: usize) -> f64 {
    assert!(k < d, "layered term requires k < d");
    let lnln = (n as f64).ln().ln().max(0.0);
    lnln / ((d - k + 1) as f64).ln()
}

/// The term `ln dk / lnln dk`, clamped to 0 when `dk ≤ e` (where the
/// double log is non-positive and the asymptotic expression is meaningless).
pub fn dk_term(k: usize, d: usize) -> f64 {
    let dk = dk_ratio(k, d);
    if !dk.is_finite() {
        return f64::INFINITY;
    }
    let ln_dk = dk.ln();
    if ln_dk <= 1.0 {
        return 0.0;
    }
    ln_dk / ln_dk.ln()
}

/// The Theorem 1 point prediction for `M(k,d,n)` (no slack applied).
///
/// # Panics
///
/// Panics unless `1 ≤ k ≤ d` and `n ≥ 4`. For `k = d` the process is
/// classical single choice and the prediction is
/// [`single_choice_prediction`].
///
/// ```
/// use kdchoice_theory::bounds::theorem1_prediction;
///
/// // Two-choice: lnln n / ln 2 and no dk term.
/// let p = theorem1_prediction(1, 2, 1 << 20);
/// assert!(p.dk_term == 0.0);
/// assert!(p.layered_term > 3.0 && p.layered_term < 5.0);
/// ```
pub fn theorem1_prediction(k: usize, d: usize, n: usize) -> Prediction {
    assert!(1 <= k && k <= d, "need 1 <= k <= d");
    assert!(n >= 4, "need n >= 4");
    let regime = classify(k, d, n);
    match regime {
        Regime::SingleChoice => Prediction {
            layered_term: 0.0,
            dk_term: single_choice_prediction(n),
            regime,
        },
        Regime::ConstantDk => Prediction {
            layered_term: layered_term(k, d, n),
            dk_term: 0.0,
            regime,
        },
        Regime::DivergingDk | Regime::HugeDk => Prediction {
            layered_term: layered_term(k, d, n),
            dk_term: dk_term(k, d),
            regime,
        },
    }
}

/// A two-sided band `[lo, hi]` for a maximum load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Lower edge of the band.
    pub lo: f64,
    /// Upper edge of the band.
    pub hi: f64,
}

impl Band {
    /// Whether the measured value `x` falls inside the band.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }
}

/// The Theorem 1 band with an explicit additive slack standing in for the
/// theorem's `O(1)` terms (the paper does not pin the constants down).
///
/// ```
/// use kdchoice_theory::bounds::theorem1_band;
///
/// let band = theorem1_band(1, 2, 1 << 16, 3.0);
/// assert!(band.contains(4.0)); // observed two-choice max load at this n
/// ```
pub fn theorem1_band(k: usize, d: usize, n: usize, slack: f64) -> Band {
    let p = theorem1_prediction(k, d, n);
    Band {
        lo: (p.total() - slack).max(1.0),
        hi: p.total() + slack,
    }
}

/// Theorem 2: heavily loaded case, `m > n` balls into `n` bins, `d ≥ 2k`.
/// The *excess over the average* `M − m/n` lies in
/// `[lnln n / ln(d−k+1) − O(1), lnln n / ln ⌊d/k⌋ + O(1)]`
/// with probability `1 − o(1/n)`.
///
/// Returns the band for the **gap** `M(k,d,m,n) − m/n`, with `slack` in
/// place of the `O(1)` terms.
///
/// # Panics
///
/// Panics unless `d ≥ 2k` (the theorem's hypothesis) and `k ≥ 1`.
///
/// ```
/// use kdchoice_theory::bounds::theorem2_gap_band;
///
/// let band = theorem2_gap_band(2, 4, 1 << 16, 2.0);
/// assert!(band.lo < band.hi);
/// ```
pub fn theorem2_gap_band(k: usize, d: usize, n: usize, slack: f64) -> Band {
    assert!(k >= 1 && d >= 2 * k, "Theorem 2 requires d >= 2k");
    let lnln = (n as f64).ln().ln().max(0.0);
    let lo = lnln / ((d - k + 1) as f64).ln() - slack;
    let floor_ratio = (d / k) as f64;
    let hi = lnln / floor_ratio.ln() + slack;
    Band {
        lo: lo.max(0.0),
        hi,
    }
}

/// The Theorem 2 gap envelope extended to D-dimensional demand vectors
/// with per-ball per-dimension demand in `1..=max_demand`.
///
/// Theorem 2 bounds the gap for unit balls; with bounded demands each
/// committed ball moves a dimension's load by at most `max_demand`, so
/// the scalar upper edge scales by `max_demand` while the lower edge
/// degenerates to 0 (a dimension a ball never stresses can sit exactly
/// at its average). This is the empirical envelope the vector-load
/// regressions assert per dimension; it is a scaling heuristic around
/// the paper's scalar theorem, not a claim the paper proves.
///
/// # Panics
///
/// Panics unless `d ≥ 2k`, `k ≥ 1`, and `max_demand ≥ 1`.
///
/// ```
/// use kdchoice_theory::bounds::{theorem2_gap_band, vector_gap_band};
///
/// let scalar = theorem2_gap_band(2, 4, 1 << 16, 2.0);
/// let vector = vector_gap_band(2, 4, 1 << 16, 4, 2.0);
/// assert_eq!(vector.lo, 0.0);
/// assert!(vector.hi > scalar.hi);
/// ```
pub fn vector_gap_band(k: usize, d: usize, n: usize, max_demand: u32, slack: f64) -> Band {
    assert!(k >= 1 && d >= 2 * k, "Theorem 2 requires d >= 2k");
    assert!(max_demand >= 1, "need max_demand >= 1");
    let lnln = (n as f64).ln().ln().max(0.0);
    let floor_ratio = (d / k) as f64;
    Band {
        lo: 0.0,
        hi: f64::from(max_demand) * lnln / floor_ratio.ln() + slack,
    }
}

/// The classical single-choice maximum load `(1 + o(1)) · ln n / lnln n`
/// (Raab & Steger), evaluated without the o(1).
///
/// ```
/// use kdchoice_theory::bounds::single_choice_prediction;
/// let p = single_choice_prediction(3 * (1 << 16));
/// assert!(p > 4.5 && p < 6.0); // observed max is 7-9 at this n (constant factors)
/// ```
pub fn single_choice_prediction(n: usize) -> f64 {
    let ln_n = (n as f64).ln();
    ln_n / ln_n.ln()
}

/// The classical d-choice (Greedy\[d\]) maximum load `lnln n / ln d + Θ(1)`
/// (Azar, Broder, Karlin & Upfal), evaluated without the Θ(1).
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn d_choice_prediction(n: usize, d: usize) -> f64 {
    assert!(d >= 2, "d-choice prediction needs d >= 2");
    (n as f64).ln().ln().max(0.0) / (d as f64).ln()
}

/// Corollary 1: when `dk ≥ e^{(lnln n)³}`, the max load is
/// `(1 ± o(1)) · ln dk / lnln dk`. Returns that central value.
///
/// # Panics
///
/// Panics if the parameters are not in the Corollary 1 regime.
pub fn corollary1_prediction(k: usize, d: usize, n: usize) -> f64 {
    assert_eq!(
        classify(k, d, n),
        Regime::HugeDk,
        "corollary 1 requires dk >= e^((lnln n)^3)"
    );
    dk_term(k, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 3 * (1 << 16); // the paper's Table 1 size

    #[test]
    fn layered_term_matches_two_choice() {
        // (k, k+1): d-k+1 = 2 -> log2 lnln n.
        let t = layered_term(1, 2, N);
        let want = (N as f64).ln().ln() / 2f64.ln();
        assert!((t - want).abs() < 1e-12);
    }

    #[test]
    fn layered_term_decreases_in_d() {
        let mut prev = f64::INFINITY;
        for d in 2..40 {
            let t = layered_term(1, d, N);
            assert!(t < prev);
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "k < d")]
    fn layered_term_rejects_k_equal_d() {
        let _ = layered_term(3, 3, N);
    }

    #[test]
    fn dk_term_clamps_small_dk() {
        assert_eq!(dk_term(1, 2), 0.0); // dk = 2, ln 2 < 1
        assert_eq!(dk_term(1, 100), 0.0); // dk ≈ 1
    }

    #[test]
    fn dk_term_grows_with_k_near_d() {
        // (k, k+1): dk = k+1, so term grows in k.
        let t64 = dk_term(64, 65);
        let t192 = dk_term(192, 193);
        assert!(t192 > t64);
        assert!(t64 > 2.0);
    }

    #[test]
    fn dk_term_infinite_when_k_equals_d() {
        assert_eq!(dk_term(5, 5), f64::INFINITY);
    }

    #[test]
    fn theorem1_prediction_regimes_compose() {
        let p = theorem1_prediction(4, 8, N);
        assert_eq!(p.regime, Regime::ConstantDk);
        assert_eq!(p.dk_term, 0.0);
        assert!(p.total() > 0.0);

        let p = theorem1_prediction(192, 193, N);
        assert!(p.dk_term > 0.0);
        assert!(p.total() > p.layered_term);
    }

    #[test]
    fn theorem1_prediction_single_choice_degenerate() {
        let p = theorem1_prediction(4, 4, N);
        assert_eq!(p.regime, Regime::SingleChoice);
        assert_eq!(p.layered_term, 0.0);
        assert!((p.dk_term - single_choice_prediction(N)).abs() < 1e-12);
    }

    #[test]
    fn theorem1_band_contains_table1_observations() {
        // Paper Table 1 observations at n = 3*2^16 with slack 3:
        for (k, d, observed) in [
            (1usize, 2usize, 4.0f64),
            (1, 3, 3.0),
            (2, 3, 4.0),
            (1, 9, 2.0),
            (8, 9, 4.0),
            (64, 65, 5.0),
            (192, 193, 6.0),
            (128, 193, 2.0),
        ] {
            let band = theorem1_band(k, d, N, 3.0);
            assert!(
                band.contains(observed),
                "({k},{d}): band [{}, {}] misses {observed}",
                band.lo,
                band.hi
            );
        }
    }

    #[test]
    fn theorem2_band_is_ordered() {
        for (k, d) in [(1usize, 2usize), (2, 4), (4, 8), (2, 5)] {
            let b = theorem2_gap_band(k, d, N, 2.0);
            assert!(b.lo <= b.hi, "({k},{d})");
        }
    }

    #[test]
    #[should_panic(expected = "d >= 2k")]
    fn theorem2_rejects_small_d() {
        let _ = theorem2_gap_band(3, 5, N, 1.0);
    }

    #[test]
    fn vector_band_scales_scalar_upper_edge() {
        let scalar = theorem2_gap_band(2, 4, N, 1.5);
        for max_demand in [1u32, 2, 4, 8] {
            let v = vector_gap_band(2, 4, N, max_demand, 1.5);
            assert_eq!(v.lo, 0.0);
            let want = f64::from(max_demand) * (scalar.hi - 1.5) + 1.5;
            assert!((v.hi - want).abs() < 1e-12, "max_demand={max_demand}");
        }
    }

    #[test]
    fn vector_band_at_unit_demand_contains_scalar_band() {
        let scalar = theorem2_gap_band(1, 2, N, 2.0);
        let v = vector_gap_band(1, 2, N, 1, 2.0);
        assert!(v.lo <= scalar.lo && (v.hi - scalar.hi).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "d >= 2k")]
    fn vector_band_rejects_small_d() {
        let _ = vector_gap_band(3, 5, N, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "max_demand >= 1")]
    fn vector_band_rejects_zero_demand() {
        let _ = vector_gap_band(1, 2, N, 0, 1.0);
    }

    #[test]
    fn single_choice_prediction_grows() {
        assert!(single_choice_prediction(1 << 20) > single_choice_prediction(1 << 10));
    }

    #[test]
    fn d_choice_prediction_shrinks_in_d() {
        assert!(d_choice_prediction(N, 2) > d_choice_prediction(N, 4));
        assert!(d_choice_prediction(N, 4) > d_choice_prediction(N, 16));
    }

    #[test]
    fn corollary1_prediction_in_regime() {
        // (192,193) at small n is in the HugeDk regime.
        let v = corollary1_prediction(192, 193, 256);
        assert!(v > 2.0 && v < 10.0);
    }

    #[test]
    #[should_panic(expected = "corollary 1")]
    fn corollary1_rejects_wrong_regime() {
        let _ = corollary1_prediction(1, 2, N);
    }

    #[test]
    fn band_contains_inclusive() {
        let b = Band { lo: 1.0, hi: 2.0 };
        assert!(b.contains(1.0) && b.contains(2.0));
        assert!(!b.contains(0.5) && !b.contains(2.5));
    }
}
