//! Theoretical bound calculators for the (k,d)-choice process.
//!
//! This crate turns the paper's theorems into executable predictions that the
//! benchmark harness compares against simulation:
//!
//! * [`bounds`] — Theorem 1 (tight max-load bounds), Corollary 1 (huge
//!   `dk = d/(d−k)` regime), Theorem 2 (heavily loaded case `m > n`,
//!   `d ≥ 2k`), and the classical single-choice / d-choice predictions used
//!   as baselines.
//! * [`sequences`] — the layered-induction machinery behind the proofs: the
//!   β-sequence of Theorem 4 with its cut-off `i*`, the γ-sequence of
//!   Theorem 7, the Stirling inversion `y₁! ≤ 48·dk` of Theorem 3, and the
//!   boundary markers β₀, γ*, γ₀ drawn in Figures 1 and 2.
//! * [`cost`] — the message-cost model (`d` probes per round of `k` balls).
//!
//! All bounds carry explicit `O(1)`-style slack terms that the callers
//! choose; the experiments verify the *shape* of the bounds (who wins, where
//! crossovers fall), not unknowable constants.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod cost;
pub mod sequences;

/// The ratio `dk = d/(d−k)` from the paper (∞ when `k = d`).
///
/// Small `dk` (i.e. `d` much larger than `k`) means (k,d)-choice behaves like
/// the standard d-choice; diverging `dk` (i.e. `k ≈ d`) pushes it toward the
/// classical single-choice process.
///
/// # Panics
///
/// Panics unless `1 ≤ k ≤ d`.
///
/// ```
/// use kdchoice_theory::dk_ratio;
/// assert_eq!(dk_ratio(1, 2), 2.0);
/// assert_eq!(dk_ratio(99, 100), 100.0);
/// assert_eq!(dk_ratio(2, 2), f64::INFINITY);
/// ```
pub fn dk_ratio(k: usize, d: usize) -> f64 {
    assert!(1 <= k && k <= d, "need 1 <= k <= d, got k={k}, d={d}");
    if k == d {
        f64::INFINITY
    } else {
        d as f64 / (d - k) as f64
    }
}

/// The `δ(n) = lnlnln n / lnln n` quantity used throughout the paper's
/// threshold `dk ≤ n^{1−δ}`.
///
/// Defined for `n ≥ 16` (below that the triple log is not positive);
/// returns 0 for smaller `n` so that thresholds degrade gracefully in tests.
pub fn delta(n: usize) -> f64 {
    let lnln = (n as f64).ln().ln();
    if lnln <= 1.0 {
        return 0.0;
    }
    let lnlnln = lnln.ln();
    if lnlnln <= 0.0 {
        0.0
    } else {
        lnlnln / lnln
    }
}

/// Regime classification of a parameter pair `(k, d)` at a given `n`,
/// following the case analysis of Theorem 1 and Corollary 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// `k = d`: the process degenerates to classical single choice SA(k,k).
    SingleChoice,
    /// `dk = O(1)` (operationally: `dk ≤ e²`): Theorem 1(i) applies and the
    /// max load is `lnln n / ln(d−k+1) ± O(1)` — d-choice-like behavior.
    ConstantDk,
    /// `dk` diverging but below the Corollary 1 threshold: Theorem 1(ii),
    /// both the layered term and the `ln dk/lnln dk` term matter.
    DivergingDk,
    /// `dk ≥ e^{(lnln n)³}`: Corollary 1, the `ln dk/lnln dk` term dominates
    /// and the process is single-choice-like.
    HugeDk,
}

/// Classifies `(k, d)` at `n` into a [`Regime`].
///
/// The `dk = O(1)` vs `dk → ∞` distinction is asymptotic; for concrete
/// parameters we use the operational cut `dk ≤ e²` (the paper's examples with
/// "constant dk" all satisfy `dk ≤ 2`, e.g. `d = 2k`).
///
/// ```
/// use kdchoice_theory::{classify, Regime};
/// assert_eq!(classify(1, 2, 1 << 16), Regime::ConstantDk);
/// assert_eq!(classify(4, 8, 1 << 16), Regime::ConstantDk);
/// assert_eq!(classify(4, 4, 1 << 16), Regime::SingleChoice);
/// ```
pub fn classify(k: usize, d: usize, n: usize) -> Regime {
    if k == d {
        return Regime::SingleChoice;
    }
    let dk = dk_ratio(k, d);
    if dk <= std::f64::consts::E * std::f64::consts::E {
        return Regime::ConstantDk;
    }
    let lnln = (n as f64).ln().ln().max(0.0);
    let corollary_threshold = (lnln.powi(3)).exp();
    if dk >= corollary_threshold {
        Regime::HugeDk
    } else {
        Regime::DivergingDk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dk_ratio_examples() {
        assert_eq!(dk_ratio(1, 3), 1.5);
        assert_eq!(dk_ratio(2, 3), 3.0);
        assert_eq!(dk_ratio(128, 193), 193.0 / 65.0);
    }

    #[test]
    #[should_panic(expected = "1 <= k <= d")]
    fn dk_ratio_rejects_k_above_d() {
        let _ = dk_ratio(3, 2);
    }

    #[test]
    #[should_panic(expected = "1 <= k <= d")]
    fn dk_ratio_rejects_zero_k() {
        let _ = dk_ratio(0, 2);
    }

    #[test]
    fn delta_is_small_and_eventually_decreasing() {
        // δ(n) = lnlnln n / lnln n peaks near lnln n = e (n ≈ 4·10^6) and
        // decays to 0 beyond it.
        let values: Vec<f64> = [10u32, 20, 30, 40, 60]
            .iter()
            .map(|&b| delta(1usize << b.min(62)))
            .collect();
        for &v in &values {
            assert!(v > 0.0 && v < 0.5, "delta out of range: {v}");
        }
        // Decreasing past the peak.
        assert!(delta(1 << 30) > delta(1usize << 62));
    }

    #[test]
    fn delta_small_n_is_zero() {
        assert_eq!(delta(2), 0.0);
        assert_eq!(delta(4), 0.0);
    }

    #[test]
    fn classify_regimes() {
        let n = 3 * (1 << 16);
        assert_eq!(classify(1, 1, n), Regime::SingleChoice);
        assert_eq!(classify(1, 2, n), Regime::ConstantDk);
        assert_eq!(classify(16, 32, n), Regime::ConstantDk);
        // dk = 193 exceeds e^((lnln 256)^3) ≈ 152 -> Corollary 1 regime.
        assert_eq!(classify(192, 193, 256), Regime::HugeDk);
        // In between: diverging but not huge.
        assert_eq!(classify(24, 25, n), Regime::DivergingDk);
    }

    #[test]
    fn classify_threshold_monotone_in_n() {
        // With growing n the Corollary 1 threshold rises, so a fixed (k,d)
        // can only move from HugeDk toward DivergingDk.
        let k = 192;
        let d = 193;
        let small = classify(k, d, 1 << 8);
        let large = classify(k, d, 1 << 24);
        assert_eq!(small, Regime::HugeDk);
        assert_eq!(large, Regime::DivergingDk);
    }
}
