//! The message-cost model of the paper (§1, footnote 1; §1.1; §1.3).
//!
//! The message cost of an allocation scheme is the number of bins probed.
//! (k,d)-choice probes `d` bins per round of `k` balls, so placing `m` balls
//! costs `(m/k)·d` messages — `d/k` per ball. The paper's headline tradeoffs:
//!
//! * `d = 2k`: constant maximum load at `2n` messages;
//! * `k = Θ(ln² n)`, `d − k = Θ(ln n)`: `o(lnln n)` load at `(1+o(1))·n`
//!   messages;
//! * `d = k+1`, `k = Θ(ln n)`: two-choice-grade load at about *half* the
//!   two-choice message cost (§1.3, storage application).

/// Total probe messages for placing `m` balls with (k,d)-choice.
///
/// # Panics
///
/// Panics if `k == 0` or `m` is not a multiple of `k` (the paper assumes
/// `k | n`).
///
/// ```
/// use kdchoice_theory::cost::total_messages;
/// // Two-choice: d/k = 2 messages per ball.
/// assert_eq!(total_messages(1, 2, 1000), 2000);
/// // (k, k+1)-choice: barely more than 1 message per ball.
/// assert_eq!(total_messages(100, 101, 1000), 1010);
/// ```
pub fn total_messages(k: usize, d: usize, m: u64) -> u64 {
    assert!(k >= 1, "k must be at least 1");
    assert!(
        m.is_multiple_of(k as u64),
        "m = {m} must be a multiple of k = {k}"
    );
    (m / k as u64) * d as u64
}

/// Messages per ball, `d/k`.
///
/// ```
/// use kdchoice_theory::cost::messages_per_ball;
/// assert_eq!(messages_per_ball(1, 2), 2.0);
/// assert!((messages_per_ball(128, 193) - 1.5078125).abs() < 1e-9);
/// ```
pub fn messages_per_ball(k: usize, d: usize) -> f64 {
    assert!(k >= 1, "k must be at least 1");
    d as f64 / k as f64
}

/// The §1.3 storage search cost for retrieving all `k` chunks of a file:
/// `k + 1` for (k,d)-choice (one directory round-trip plus `k` fetches).
pub fn kd_search_cost(k: usize) -> u64 {
    k as u64 + 1
}

/// The §1.3 comparison point: per-chunk two-choice stores each chunk at one
/// of 2 candidate locations, so retrieving `k` chunks probes `2k` bins.
pub fn two_choice_search_cost(k: usize) -> u64 {
    2 * k as u64
}

/// Suggested (k,d) for the "constant load, O(n) messages" corner of the
/// tradeoff (Theorem 1(i) with `d − k + 1 ≥ Ω(ln n)` and `dk = O(1)`):
/// `k = ⌈ln² n⌉` rounded to a divisor-friendly value, `d = 2k`.
pub fn constant_load_params(n: usize) -> (usize, usize) {
    let ln_n = (n as f64).ln();
    let k = (ln_n * ln_n).ceil() as usize;
    let k = k.max(1);
    (k, 2 * k)
}

/// Suggested (k,d) for the "o(lnln n) load, (1+o(1))·n messages" corner
/// (§1.1: `k ≥ Θ(ln² n)`, `d − k = Θ(ln n)`).
pub fn near_minimal_message_params(n: usize) -> (usize, usize) {
    let ln_n = (n as f64).ln();
    let k = (ln_n * ln_n).ceil() as usize;
    let k = k.max(2);
    let spread = ln_n.ceil() as usize;
    (k, k + spread.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_messages_examples() {
        assert_eq!(total_messages(2, 3, 10), 15);
        assert_eq!(total_messages(1, 1, 7), 7);
        // d = 2k -> exactly 2 per ball.
        assert_eq!(total_messages(50, 100, 1000), 2000);
    }

    #[test]
    #[should_panic(expected = "multiple of k")]
    fn total_messages_rejects_non_divisible() {
        let _ = total_messages(3, 5, 10);
    }

    #[test]
    fn messages_per_ball_interpolates_single_and_double() {
        assert_eq!(messages_per_ball(1, 1), 1.0);
        assert_eq!(messages_per_ball(1, 2), 2.0);
        let near_one = messages_per_ball(192, 193);
        assert!(near_one > 1.0 && near_one < 1.01);
    }

    #[test]
    fn search_costs_match_section_1_3() {
        // "the search operation costs k+1, ... approximately half of the
        // search cost for two-choice".
        for k in [2usize, 8, 64, 1000] {
            let kd = kd_search_cost(k) as f64;
            let two = two_choice_search_cost(k) as f64;
            assert!(kd < two);
            let ratio = kd / two;
            assert!((ratio - 0.5).abs() < 0.26, "k={k}: ratio {ratio}");
        }
    }

    #[test]
    fn constant_load_params_cost_two_per_ball() {
        let n = 1 << 16;
        let (k, d) = constant_load_params(n);
        assert_eq!(d, 2 * k);
        assert_eq!(messages_per_ball(k, d), 2.0);
        // k = Θ(ln² n) is polylog: small relative to n.
        assert!(k < n / 100);
    }

    #[test]
    fn near_minimal_params_approach_one_message_per_ball() {
        let n = 1 << 20;
        let (k, d) = near_minimal_message_params(n);
        assert!(k < d);
        let mpb = messages_per_ball(k, d);
        assert!(mpb > 1.0 && mpb < 1.2, "messages per ball {mpb}");
    }
}
