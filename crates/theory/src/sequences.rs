//! The layered-induction machinery from the paper's proofs, made executable.
//!
//! * Theorem 3 bounds the load of bin β₀ = n/(6·dk) by inverting
//!   `y₁! ≤ 48·dk` (Stirling inversion, [`y1_from_dk`]).
//! * Theorem 4 controls the load *difference* B₁ − B_{β₀} through the
//!   recursive sequence β₀ = n/(6·dk),
//!   `β_{i+1} = 6·(n/k)·C(d, d−k+1)·(β_i/n)^{d−k+1}`, stopping at
//!   `i* = max{ i : β_i ≥ 6 ln n }` ([`beta_sequence`]).
//! * Theorem 7 mirrors this for the lower bound with γ₀ = n/d and
//!   `γ_{i+1} = 2^{−(i+6)}·(n/k)·C(d, d−k+1)·(γ_i/n)^{d−k+1}`
//!   ([`gamma_sequence`]).
//!
//! The sequences are exactly the quantities marked on the paper's Figures 1
//! and 2 (the sorted-load-vector schematics), so the `figure1`/`figure2`
//! bench targets overlay them on measured load vectors.

use kdchoice_stats::special::{ln_binomial, ln_factorial};

use crate::dk_ratio;

/// The bin index β₀ = n/(6·dk) that splits the upper-bound analysis
/// (Figure 1). Clamped to at least 1.
///
/// ```
/// use kdchoice_theory::sequences::beta0;
/// assert_eq!(beta0(60_000, 1, 2), 5_000.0);
/// ```
pub fn beta0(n: usize, k: usize, d: usize) -> f64 {
    (n as f64 / (6.0 * dk_ratio(k, d))).max(1.0)
}

/// The bin index γ* = 4·n/dk used by the lower bound on B_{γ*}
/// (Theorem 6, Figure 2). Clamped to at most n.
pub fn gamma_star(n: usize, k: usize, d: usize) -> f64 {
    (4.0 * n as f64 / dk_ratio(k, d)).min(n as f64)
}

/// The bin index γ₀ = n/d that starts the lower-bound layered induction
/// (Theorem 7, Figure 2).
pub fn gamma0(n: usize, d: usize) -> f64 {
    n as f64 / d as f64
}

/// The smallest `y` with `y! > c` (so `y − 1` is the largest with
/// `(y−1)! ≤ c`). Works in log space, so `c` may be astronomically large.
///
/// ```
/// use kdchoice_theory::sequences::factorial_inversion;
/// assert_eq!(factorial_inversion(0.5), 0);   // 0! = 1 > 0.5
/// assert_eq!(factorial_inversion(1.0), 2);   // 2! = 2 > 1 = 0! = 1!
/// assert_eq!(factorial_inversion(24.0), 5);  // 5! = 120 > 24 >= 4!
/// assert_eq!(factorial_inversion(120.0), 6);
/// ```
pub fn factorial_inversion(c: f64) -> u32 {
    assert!(c.is_finite() && c >= 0.0, "need finite c >= 0");
    let ln_c = if c <= 0.0 { f64::NEG_INFINITY } else { c.ln() };
    // Tiny epsilon so that exact hits (c = y!) resolve to "not greater",
    // matching the strict inequality, despite ln/ln_gamma round-off.
    let eps = 1e-9;
    let mut y = 0u32;
    loop {
        if ln_factorial(u64::from(y)) > ln_c + eps {
            return y;
        }
        y += 1;
        assert!(y < 1_000_000, "factorial inversion diverged");
    }
}

/// Theorem 3's `y₁`: the largest `y` with `y! ≤ 48·dk`, i.e. the predicted
/// number of "dense" load levels below bin β₀. The theorem concludes
/// `B_{β₀} ≤ y₀ = y₁ + 1` w.h.p.
///
/// ```
/// use kdchoice_theory::sequences::y1_from_dk;
/// // dk = 2 -> 48*2 = 96; 4! = 24 <= 96 < 120 = 5! -> y1 = 4.
/// assert_eq!(y1_from_dk(2.0), 4);
/// ```
pub fn y1_from_dk(dk: f64) -> u32 {
    assert!(dk.is_finite() && dk >= 1.0, "dk must be finite and >= 1");
    factorial_inversion(48.0 * dk) - 1
}

/// One step of either layered-induction recurrence, in log space:
/// returns `ln β_{i+1}` given `ln β_i` and the multiplier `ln A` where
/// `β_{i+1} = A · n · (β_i/n)^{d−k+1}`.
fn step(ln_prev: f64, ln_n: f64, ln_mult: f64, exponent: f64) -> f64 {
    ln_mult + ln_n + exponent * (ln_prev - ln_n)
}

/// The result of running a layered-induction sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredSequence {
    /// The values β₀, β₁, …, β_{i*} (or γ's), all ≥ the stopping threshold.
    pub values: Vec<f64>,
    /// The stopping threshold (6·ln n for β, 9·ln n for γ).
    pub threshold: f64,
    /// `i*`: the index of the last value ≥ threshold (= `values.len() − 1`).
    pub i_star: usize,
}

/// The β-sequence of Theorem 4 down to its cut-off `i* = max{i : β_i ≥ 6 ln n}`.
///
/// The theorem proves `ν_{y₀+i} ≤ β_i` w.h.p. and
/// `i* ≤ lnln n / ln(d−k+1)`, which yields the layered term of Theorem 1.
///
/// # Panics
///
/// Panics unless `1 ≤ k < d ≤ n` and `n ≥ 16`.
///
/// ```
/// use kdchoice_theory::sequences::beta_sequence;
///
/// let n = 1 << 16;
/// let seq = beta_sequence(n, 1, 2);
/// // i* is at most lnln n / ln 2 + O(1).
/// let bound = (n as f64).ln().ln() / 2f64.ln();
/// assert!(seq.i_star as f64 <= bound + 2.0);
/// ```
pub fn beta_sequence(n: usize, k: usize, d: usize) -> LayeredSequence {
    assert!(1 <= k && k < d && d <= n, "need 1 <= k < d <= n");
    assert!(n >= 16, "need n >= 16");
    let ln_n = (n as f64).ln();
    let threshold = 6.0 * ln_n;
    let exponent = (d - k + 1) as f64;
    // Multiplier A = 6/k * C(d, d-k+1) per the recurrence (16).
    let ln_mult = 6f64.ln() - (k as f64).ln() + ln_binomial(d as u64, (d - k + 1) as u64);
    let mut values = vec![beta0(n, k, d)];
    let mut ln_prev = values[0].ln();
    loop {
        let ln_next = step(ln_prev, ln_n, ln_mult, exponent);
        if ln_next < threshold.ln() || values.len() > 200 {
            break;
        }
        values.push(ln_next.exp());
        ln_prev = ln_next;
    }
    let i_star = values.len() - 1;
    LayeredSequence {
        values,
        threshold,
        i_star,
    }
}

/// The γ-sequence of Theorem 7 down to its cut-off (γ_i ≥ 9 ln n).
///
/// The theorem proves `ν_{y₀+i}(R_i) ≥ γ_i` w.h.p., giving the matching
/// lower bound on the load difference B₁ − B_{γ₀}.
///
/// # Panics
///
/// Panics unless `1 ≤ k < d ≤ n` and `n ≥ 16`.
pub fn gamma_sequence(n: usize, k: usize, d: usize) -> LayeredSequence {
    assert!(1 <= k && k < d && d <= n, "need 1 <= k < d <= n");
    assert!(n >= 16, "need n >= 16");
    let ln_n = (n as f64).ln();
    let threshold = 9.0 * ln_n;
    let exponent = (d - k + 1) as f64;
    let ln_base_mult = -(k as f64).ln() + ln_binomial(d as u64, (d - k + 1) as u64);
    let mut values = vec![gamma0(n, d)];
    let mut ln_prev = values[0].ln();
    let mut i = 0usize;
    loop {
        // γ_{i+1} = 2^{-(i+6)} · (n/k) · C(d,d-k+1) · (γ_i/n)^{d-k+1}.
        let ln_mult = ln_base_mult - ((i + 6) as f64) * 2f64.ln();
        let ln_next = step(ln_prev, ln_n, ln_mult, exponent);
        if ln_next < threshold.ln() || values.len() > 200 {
            break;
        }
        values.push(ln_next.exp());
        ln_prev = ln_next;
        i += 1;
    }
    let i_star = values.len() - 1;
    LayeredSequence {
        values,
        threshold,
        i_star,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 3 * (1 << 16);

    #[test]
    fn beta0_and_markers() {
        assert!((beta0(N, 1, 2) - N as f64 / 12.0).abs() < 1e-9);
        assert!((gamma0(N, 4) - N as f64 / 4.0).abs() < 1e-9);
        assert!((gamma_star(N, 1, 2) - 2.0 * N as f64).min(N as f64) <= N as f64);
        // gamma_star clamps at n.
        assert_eq!(gamma_star(100, 1, 2), 100.0);
        // (192,193): dk = 193, gamma* = 4n/193.
        assert!((gamma_star(N, 192, 193) - 4.0 * N as f64 / 193.0).abs() < 1e-6);
    }

    #[test]
    fn factorial_inversion_small_cases() {
        assert_eq!(factorial_inversion(0.0), 0); // 0! = 1 > 0
        assert_eq!(factorial_inversion(0.5), 0);
        assert_eq!(factorial_inversion(2.0), 3); // 3! = 6 > 2
        assert_eq!(factorial_inversion(6.0), 4);
        assert_eq!(factorial_inversion(719.0), 6); // 6! = 720
        assert_eq!(factorial_inversion(720.0), 7);
    }

    #[test]
    fn factorial_inversion_large_value() {
        // 20! ≈ 2.43e18.
        let y = factorial_inversion(2.5e18);
        assert_eq!(y, 21);
    }

    #[test]
    fn y1_grows_slowly_with_dk() {
        let a = y1_from_dk(2.0);
        let b = y1_from_dk(200.0);
        let c = y1_from_dk(2e6);
        assert!(a <= b && b <= c);
        assert!(c < 15, "y1 should be tiny even for huge dk: {c}");
    }

    #[test]
    fn y1_matches_theorem3_shape() {
        // y1 ~ ln dk / lnln dk for large dk (within a small factor).
        let dk = 1e9f64;
        let y1 = y1_from_dk(dk) as f64;
        let predicted = dk.ln() / dk.ln().ln();
        assert!(
            y1 > 0.5 * predicted && y1 < 3.0 * predicted,
            "y1={y1} predicted={predicted}"
        );
    }

    #[test]
    fn beta_sequence_two_choice_length() {
        let seq = beta_sequence(N, 1, 2);
        // i* ≤ lnln n / ln(d-k+1) = lnln n / ln 2 ≈ 3.6... plus slack.
        let bound = (N as f64).ln().ln() / 2f64.ln();
        assert!(
            (seq.i_star as f64) <= bound + 2.0,
            "i* = {} vs bound {bound}",
            seq.i_star
        );
        // The sequence decreases doubly exponentially.
        for w in seq.values.windows(2) {
            assert!(w[1] < w[0], "beta must decrease: {w:?}");
        }
        // All values ≥ threshold by construction.
        for &v in &seq.values {
            assert!(v >= seq.threshold || seq.values.len() == 1);
        }
    }

    #[test]
    fn beta_sequence_large_spread_is_short() {
        // d - k + 1 large -> extremely fast decay -> tiny i*.
        let seq = beta_sequence(N, 1, 65);
        assert!(seq.i_star <= 2, "i* = {}", seq.i_star);
    }

    #[test]
    fn beta_sequence_i_star_bound_across_params() {
        for (k, d) in [(1usize, 2usize), (2, 3), (8, 9), (4, 8), (16, 32), (3, 5)] {
            let seq = beta_sequence(N, k, d);
            let bound = (N as f64).ln().ln() / ((d - k + 1) as f64).ln();
            assert!(
                (seq.i_star as f64) <= bound + 2.0,
                "({k},{d}): i*={} bound={bound}",
                seq.i_star
            );
        }
    }

    #[test]
    fn gamma_sequence_decreases_and_respects_threshold() {
        let seq = gamma_sequence(N, 1, 2);
        for w in seq.values.windows(2) {
            assert!(w[1] < w[0]);
        }
        assert!(seq.values[0] == N as f64 / 2.0);
        assert!(seq.i_star >= 1, "two-choice gamma sequence should iterate");
    }

    #[test]
    fn gamma_i_star_is_at_most_beta_i_star_plus_slack() {
        // Lower-bound induction must not run longer than the upper-bound one
        // by more than a constant (they sandwich the same quantity).
        for (k, d) in [(1usize, 2usize), (2, 3), (8, 9)] {
            let b = beta_sequence(N, k, d);
            let g = gamma_sequence(N, k, d);
            assert!(
                (g.i_star as i64 - b.i_star as i64).abs() <= 3,
                "({k},{d}): gamma i*={} beta i*={}",
                g.i_star,
                b.i_star
            );
        }
    }

    #[test]
    #[should_panic(expected = "1 <= k < d")]
    fn beta_sequence_rejects_k_equal_d() {
        let _ = beta_sequence(N, 2, 2);
    }
}
