//! Property-based tests of the theory crate's numerics.

use kdchoice_theory::bounds::{
    d_choice_prediction, single_choice_prediction, theorem1_band, theorem1_prediction,
    theorem2_gap_band,
};
use kdchoice_theory::cost::{messages_per_ball, total_messages};
use kdchoice_theory::sequences::{
    beta0, beta_sequence, factorial_inversion, gamma0, gamma_sequence, gamma_star, y1_from_dk,
};
use kdchoice_theory::{classify, dk_ratio, Regime};
use proptest::prelude::*;

fn kd_strict() -> impl Strategy<Value = (usize, usize)> {
    (2usize..=256).prop_flat_map(|d| (1usize..d, Just(d)))
}

proptest! {
    /// dk ≥ 1 always; equals d when k = d−1 (hmm: d/(d−k) = d when k=d−1).
    #[test]
    fn dk_ratio_bounds((k, d) in kd_strict()) {
        let dk = dk_ratio(k, d);
        prop_assert!(dk >= 1.0);
        prop_assert!(dk <= d as f64 + 1e-9);
        if k == d - 1 {
            prop_assert!((dk - d as f64).abs() < 1e-9);
        }
    }

    /// dk is monotone increasing in k at fixed d.
    #[test]
    fn dk_monotone_in_k(d in 3usize..200) {
        let mut prev = 0.0;
        for k in 1..d {
            let dk = dk_ratio(k, d);
            prop_assert!(dk >= prev);
            prev = dk;
        }
    }

    /// Theorem 1 predictions are positive, finite, and the band brackets
    /// the point prediction.
    #[test]
    fn theorem1_prediction_sane((k, d) in kd_strict(), n_exp in 4u32..24) {
        let n = 1usize << n_exp;
        let p = theorem1_prediction(k, d, n);
        prop_assert!(p.total().is_finite());
        prop_assert!(p.total() >= 0.0);
        let band = theorem1_band(k, d, n, 2.0);
        prop_assert!(band.lo <= band.hi);
        prop_assert!(band.contains(p.total().max(band.lo)));
    }

    /// The layered term decreases in d and increases with n.
    #[test]
    fn layered_term_monotonicity(k in 1usize..50, n_exp in 4u32..24) {
        let n = 1usize << n_exp;
        let p1 = theorem1_prediction(k, k + 1, n);
        let p2 = theorem1_prediction(k, k + 8, n);
        prop_assert!(p2.layered_term <= p1.layered_term + 1e-9);
        let big = theorem1_prediction(k, k + 1, n * 16);
        prop_assert!(big.layered_term >= p1.layered_term - 1e-9);
    }

    /// Theorem 2 bands are ordered and lower edge clamps at zero.
    #[test]
    fn theorem2_band_sane(k in 1usize..40, mult in 2usize..6, n_exp in 4u32..24) {
        let d = k * mult;
        let n = 1usize << n_exp;
        let b = theorem2_gap_band(k, d, n, 2.0);
        prop_assert!(b.lo >= 0.0);
        prop_assert!(b.lo <= b.hi);
    }

    /// Regime classification is total and consistent with dk.
    #[test]
    fn classification_is_consistent((k, d) in kd_strict(), n_exp in 4u32..24) {
        let n = 1usize << n_exp;
        let regime = classify(k, d, n);
        let dk = dk_ratio(k, d);
        match regime {
            Regime::SingleChoice => prop_assert_eq!(k, d),
            Regime::ConstantDk => prop_assert!(dk <= 7.4),
            Regime::DivergingDk | Regime::HugeDk => prop_assert!(dk > 7.38),
        }
    }

    /// factorial_inversion is the exact inverse of the factorial on u64
    /// range: (y-1)! <= c < y! for the returned y... stated as y! > c and
    /// (y−1)! ≤ c.
    #[test]
    fn factorial_inversion_is_inverse(c in 0f64..1e15) {
        let y = factorial_inversion(c);
        let fact = |m: u32| -> f64 { (1..=u64::from(m)).map(|i| i as f64).product() };
        prop_assert!(fact(y) > c);
        if y > 0 {
            prop_assert!(fact(y - 1) <= c * (1.0 + 1e-9) + 1.0);
        }
    }

    /// y1 is nondecreasing in dk.
    #[test]
    fn y1_monotone(dk in 1.0f64..1e9) {
        let y_small = y1_from_dk(dk);
        let y_big = y1_from_dk(dk * 10.0);
        prop_assert!(y_big >= y_small);
    }

    /// β/γ sequences decrease and respect their thresholds.
    #[test]
    fn sequences_decrease((k, d) in (1usize..30).prop_flat_map(|k| (Just(k), k+1..=k+30)), n_exp in 6u32..20) {
        let n = 1usize << n_exp;
        prop_assume!(d <= n);
        let b = beta_sequence(n, k, d);
        for w in b.values.windows(2) {
            prop_assert!(w[1] < w[0]);
        }
        prop_assert_eq!(b.i_star, b.values.len() - 1);
        let g = gamma_sequence(n, k, d);
        for w in g.values.windows(2) {
            prop_assert!(w[1] < w[0]);
        }
        // Markers are within (0, n].
        prop_assert!(beta0(n, k, d) >= 1.0 && beta0(n, k, d) <= n as f64);
        prop_assert!(gamma_star(n, k, d) >= 1.0 && gamma_star(n, k, d) <= n as f64);
        prop_assert!(gamma0(n, d) > 0.0 && gamma0(n, d) <= n as f64);
    }

    /// i* respects the Theorem 4 bound lnln n / ln(d−k+1) + O(1).
    #[test]
    fn i_star_respects_theorem4((k, d) in (1usize..20).prop_flat_map(|k| (Just(k), k+1..=k+20)), n_exp in 8u32..20) {
        let n = 1usize << n_exp;
        let seq = beta_sequence(n, k, d);
        let bound = (n as f64).ln().ln() / ((d - k + 1) as f64).ln();
        prop_assert!(
            (seq.i_star as f64) <= bound + 2.0,
            "i* = {} vs bound {} for ({},{}) at n = {}", seq.i_star, bound, k, d, n
        );
    }

    /// Cost model: messages_per_ball * m == total_messages when k | m.
    #[test]
    fn cost_model_consistency((k, d) in kd_strict(), rounds in 1u64..1000) {
        let m = rounds * k as u64;
        let total = total_messages(k, d, m);
        let per_ball = messages_per_ball(k, d);
        prop_assert!((total as f64 - per_ball * m as f64).abs() < 1e-6 * total as f64 + 1e-9);
    }

    /// Baseline predictions are monotone in n.
    #[test]
    fn baseline_predictions_monotone(n_exp in 4u32..30) {
        let n = 1usize << n_exp;
        prop_assert!(single_choice_prediction(n * 2) >= single_choice_prediction(n) - 1e-9);
        prop_assert!(d_choice_prediction(n * 2, 2) >= d_choice_prediction(n, 2) - 1e-9);
    }
}
