//! The one report format every scenario shares: flat rows rendered as
//! JSON lines, CSV, or a human-readable table, plus per-config
//! aggregation through the mergeable accumulators.

use std::fmt::Write as _;

use crate::accum::{Merge, MetricAccumulator};
use crate::grid::GridError;
use crate::runner::SweepCell;
use crate::scenario::{Fields, Scenario};
use crate::value::{write_json_string, Value};

/// One output row: the scenario name, the config fields, the trial
/// coordinates, and the record fields, flattened in order.
#[derive(Debug, Clone)]
pub struct Row {
    /// Ordered `(key, value)` cells.
    pub fields: Fields,
}

/// Output syntax for a [`SweepReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportFormat {
    /// One JSON object per row, newline separated.
    #[default]
    JsonLines,
    /// RFC-4180-style CSV with a header row.
    Csv,
    /// Fixed-width human-readable table.
    Table,
}

impl std::str::FromStr for ReportFormat {
    type Err = GridError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" | "json" => Ok(ReportFormat::JsonLines),
            "csv" => Ok(ReportFormat::Csv),
            "table" => Ok(ReportFormat::Table),
            other => Err(GridError::BadValue {
                axis: "format".to_string(),
                value: other.to_string(),
                expected: "jsonl | csv | table".to_string(),
            }),
        }
    }
}

/// The materialized result of one sweep: uniform rows, renderable in
/// every supported format.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The scenario the sweep ran.
    pub scenario: &'static str,
    /// One row per (config, trial) cell, grid order.
    pub rows: Vec<Row>,
    /// Number of configs in the sweep (rows = configs × trials).
    pub configs: usize,
    /// Trials per config.
    pub trials: usize,
}

impl SweepReport {
    /// Builds the report from a scenario's sweep cells.
    pub fn from_cells<S: Scenario>(
        scenario: &S,
        configs: &[S::Config],
        cells: &[SweepCell<S::Record>],
    ) -> Self {
        let trials = cells.first().map(|c| c.runs.len()).unwrap_or(0);
        let mut rows = Vec::with_capacity(configs.len() * trials);
        for cell in cells {
            let config = &configs[cell.config_index];
            let config_fields = scenario.config_fields(config);
            for run in &cell.runs {
                let record_fields = scenario.record_fields(&run.record);
                let mut fields: Fields =
                    Vec::with_capacity(config_fields.len() + record_fields.len() + 3);
                fields.push(("scenario", Value::Str(scenario.name().into())));
                fields.extend(config_fields.iter().cloned());
                fields.push(("trial", Value::U64(run.trial as u64)));
                fields.push(("seed", Value::U64(run.seed)));
                fields.extend(record_fields);
                rows.push(Row { fields });
            }
        }
        Self {
            scenario: scenario.name(),
            rows,
            configs: configs.len(),
            trials,
        }
    }

    /// Renders in the requested format.
    pub fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::JsonLines => self.to_jsonl(),
            ReportFormat::Csv => self.to_csv(),
            ReportFormat::Table => self.to_table(),
        }
    }

    /// One JSON object per row, newline separated.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push('{');
            for (i, (key, value)) in row.fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_json_string(key, &mut out);
                out.push_str(": ");
                value.write_json(&mut out);
            }
            out.push_str("}\n");
        }
        out
    }

    /// CSV with a header row; all rows must share the header's keys.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let Some(first) = self.rows.first() else {
            return out;
        };
        for (i, (key, _)) in first.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_csv_cell(key, &mut out);
        }
        out.push('\n');
        for row in &self.rows {
            debug_assert!(
                row.fields
                    .iter()
                    .map(|(k, _)| *k)
                    .eq(first.fields.iter().map(|(k, _)| *k)),
                "all rows of a sweep share one schema"
            );
            for (i, (_, value)) in row.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_csv_cell(&value.to_string(), &mut out);
            }
            out.push('\n');
        }
        out
    }

    /// A fixed-width table with one line per row.
    pub fn to_table(&self) -> String {
        let Some(first) = self.rows.first() else {
            return String::new();
        };
        let keys: Vec<&str> = first.fields.iter().map(|(k, _)| *k).collect();
        let mut widths: Vec<usize> = keys.iter().map(|k| k.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.fields
                    .iter()
                    .map(|(_, v)| v.to_string())
                    .collect::<Vec<_>>()
            })
            .collect();
        for row in &cells {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (key, w) in keys.iter().zip(&widths) {
            let _ = write!(out, "{key:>w$}  ");
        }
        out.push('\n');
        for (key, w) in keys.iter().zip(&widths) {
            let _ = write!(out, "{:>w$}  ", "-".repeat(key.len().min(*w)));
        }
        out.push('\n');
        for row in &cells {
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(out, "{cell:>w$}  ");
            }
            out.push('\n');
        }
        out
    }

    /// Aggregates every numeric field across all rows into a mergeable
    /// [`MetricAccumulator`], in first-seen field order.
    ///
    /// Aggregation is built per config cell and then merged — exercising
    /// the associative-merge contract the parallel runner relies on.
    pub fn aggregate(&self) -> Vec<(&'static str, MetricAccumulator)> {
        let mut acc: Vec<(&'static str, MetricAccumulator)> = Vec::new();
        let trials = self.trials.max(1);
        for chunk in self.rows.chunks(trials) {
            // Per-cell partial aggregate...
            let mut partial: Vec<(&'static str, MetricAccumulator)> = Vec::new();
            for row in chunk {
                for (key, value) in &row.fields {
                    let Some(x) = value.as_f64() else { continue };
                    match partial.iter_mut().find(|(k, _)| k == key) {
                        Some((_, m)) => m.push(x),
                        None => {
                            let mut m = MetricAccumulator::new();
                            m.push(x);
                            partial.push((key, m));
                        }
                    }
                }
            }
            // ...merged into the running total.
            for (key, m) in partial {
                match acc.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, total)) => total.merge_from(&m),
                    None => acc.push((key, m)),
                }
            }
        }
        acc
    }
}

/// Appends a CSV cell, quoting when the value contains a comma, quote, or
/// newline (quotes doubled per RFC 4180).
fn push_csv_cell(cell: &str, out: &mut String) {
    if cell.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for c in cell.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(cell);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::validate_json;

    fn sample_report() -> SweepReport {
        let mk = |a: u64, t: u64, y: f64, label: &'static str| Row {
            fields: vec![
                ("scenario", Value::Str("toy".into())),
                ("a", Value::U64(a)),
                ("trial", Value::U64(t)),
                ("seed", Value::U64(100 + t)),
                ("label", Value::Str(label.into())),
                ("y", Value::F64(y)),
            ],
        };
        SweepReport {
            scenario: "toy",
            rows: vec![
                mk(1, 0, 0.5, "plain"),
                mk(1, 1, 1.5, "with,comma"),
                mk(2, 0, 2.5, "with\"quote"),
                mk(2, 1, 3.5, "plain"),
            ],
            configs: 2,
            trials: 2,
        }
    }

    #[test]
    fn jsonl_lines_validate() {
        let report = sample_report();
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in lines {
            validate_json(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert!(line.contains("\"scenario\": \"toy\""));
        }
    }

    #[test]
    fn csv_has_header_and_quoting() {
        let report = sample_report();
        let csv = report.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("scenario,a,trial,seed,label,y"));
        let row1 = lines.next().unwrap();
        assert!(row1.starts_with("toy,1,0,100,plain,0.5"));
        let row2 = lines.next().unwrap();
        assert!(row2.contains("\"with,comma\""), "{row2}");
        let row3 = lines.next().unwrap();
        assert!(row3.contains("\"with\"\"quote\""), "{row3}");
    }

    #[test]
    fn table_is_aligned() {
        let report = sample_report();
        let table = report.to_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2 + 4);
        assert!(lines[0].contains("scenario"));
        let width = lines[0].len();
        for l in &lines[2..] {
            assert_eq!(l.len(), width, "misaligned row: {l:?}");
        }
    }

    #[test]
    fn empty_report_renders_empty() {
        let report = SweepReport {
            scenario: "toy",
            rows: vec![],
            configs: 0,
            trials: 0,
        };
        assert_eq!(report.to_jsonl(), "");
        assert_eq!(report.to_csv(), "");
        assert_eq!(report.to_table(), "");
        assert!(report.aggregate().is_empty());
    }

    #[test]
    fn aggregate_covers_numeric_fields_only() {
        let report = sample_report();
        let agg = report.aggregate();
        let keys: Vec<&str> = agg.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["a", "trial", "seed", "y"]);
        let y = &agg.iter().find(|(k, _)| *k == "y").unwrap().1;
        assert_eq!(y.count(), 4);
        assert_eq!(y.mean(), 2.0);
        assert_eq!(y.min(), Some(0.5));
        assert_eq!(y.max(), Some(3.5));
    }

    #[test]
    fn format_from_str() {
        assert_eq!("jsonl".parse::<ReportFormat>(), Ok(ReportFormat::JsonLines));
        assert_eq!("csv".parse::<ReportFormat>(), Ok(ReportFormat::Csv));
        assert_eq!("table".parse::<ReportFormat>(), Ok(ReportFormat::Table));
        assert!("yaml".parse::<ReportFormat>().is_err());
    }
}
