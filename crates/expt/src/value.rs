//! Scalar report values and their JSON rendering.
//!
//! The workspace is intentionally dependency-free (the vendored crates
//! stand in for `rand`/`proptest`/`criterion`), so there is no serde.
//! Experiment records are flat `(key, Value)` lists instead; [`Value`]
//! covers every scalar the reports need and knows how to render itself as
//! a JSON literal. [`validate_json`] is the matching minimal parser used
//! by the smoke harness to reject malformed reporter output.

use std::borrow::Cow;
use std::fmt;

/// One scalar cell of an experiment report.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (counts, ids, seeds).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float. Non-finite values render as JSON `null`.
    F64(f64),
    /// A string; `&'static str` labels avoid allocating per row.
    Str(Cow<'static, str>),
}

impl Value {
    /// Renders the value as a JSON literal into `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => {
                let mut buf = itoa_buffer();
                out.push_str(write_u64(&mut buf, *v));
            }
            Value::I64(v) => {
                if *v < 0 {
                    out.push('-');
                    let mut buf = itoa_buffer();
                    out.push_str(write_u64(&mut buf, v.unsigned_abs()));
                } else {
                    let mut buf = itoa_buffer();
                    out.push_str(write_u64(&mut buf, *v as u64));
                }
            }
            Value::F64(v) => {
                if v.is_finite() {
                    // `{}` on f64 prints the shortest representation that
                    // round-trips, which is valid JSON except for integral
                    // values (e.g. "3") — still valid JSON numbers.
                    let s = format!("{v}");
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
        }
    }

    /// The value as an `f64`, if it is numeric (used by aggregation).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Bool(_) | Value::Str(_) => None,
        }
    }
}

/// Writes `s` as a JSON string literal (quoted, escaped) into `out`.
pub(crate) fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn itoa_buffer() -> [u8; 20] {
    [0u8; 20]
}

fn write_u64(buf: &mut [u8; 20], mut v: u64) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ascii")
}

impl fmt::Display for Value {
    /// Human rendering for the table reporter: floats get a compact fixed
    /// precision, everything else its natural form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => {
                if !v.is_finite() {
                    write!(f, "{v}")
                } else if *v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{v:.0}")
                } else {
                    write!(f, "{v:.4}")
                }
            }
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(Cow::Borrowed(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Cow::Owned(v))
    }
}
impl From<Cow<'static, str>> for Value {
    fn from(v: Cow<'static, str>) -> Self {
        Value::Str(v)
    }
}

/// Checks that `input` is one well-formed JSON value (object, array, or
/// scalar) with nothing but whitespace after it.
///
/// This is the validator behind `kdchoice-bench smoke`: every JSONL line a
/// reporter emits must pass it, so malformed output fails CI rather than
/// corrupting downstream analysis.
///
/// ```
/// use kdchoice_expt::validate_json;
///
/// assert!(validate_json(r#"{"k": 2, "name": "(2,3)-choice"}"#).is_ok());
/// assert!(validate_json(r#"{"k": }"#).is_err());
/// assert!(validate_json(r#"{} trailing"#).is_err());
/// ```
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!("bad \\u escape at byte {pos}", pos = *pos))
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("expected digits at byte {pos}", pos = *pos));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!(
                "expected fraction digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!(
                "expected exponent digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    debug_assert!(*pos > start);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json_of(v: Value) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(json_of(Value::Bool(true)), "true");
        assert_eq!(json_of(Value::U64(0)), "0");
        assert_eq!(json_of(Value::U64(u64::MAX)), u64::MAX.to_string());
        assert_eq!(json_of(Value::I64(-42)), "-42");
        assert_eq!(json_of(Value::I64(i64::MIN)), i64::MIN.to_string());
        assert_eq!(json_of(Value::F64(1.5)), "1.5");
        assert_eq!(json_of(Value::F64(f64::NAN)), "null");
        assert_eq!(json_of(Value::F64(f64::INFINITY)), "null");
        assert_eq!(json_of(Value::Str("a\"b\\c\nd".into())), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn rendered_values_validate() {
        for v in [
            Value::Bool(false),
            Value::U64(123),
            Value::I64(-7),
            Value::F64(0.1),
            Value::F64(1e300),
            Value::F64(f64::NAN),
            Value::Str("control\u{1}char and unicode é".into()),
        ] {
            let s = json_of(v);
            validate_json(&s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn as_f64_covers_numerics_only() {
        assert_eq!(Value::U64(3).as_f64(), Some(3.0));
        assert_eq!(Value::I64(-3).as_f64(), Some(-3.0));
        assert_eq!(Value::F64(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Bool(true).as_f64(), None);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::F64(3.0).to_string(), "3");
        assert_eq!(Value::F64(0.123456).to_string(), "0.1235");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
    }

    #[test]
    fn validator_accepts_wellformed() {
        for s in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a": [1, 2.5, "x", null, true], "b": {"c": []}}"#,
            "  {\"k\":\t1}\n",
        ] {
            validate_json(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed() {
        for s in [
            "",
            "{",
            "{]",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "01x",
            "1.",
            "1e",
            "\"unterminated",
            "{} {}",
            "nul",
            "{'a': 1}",
        ] {
            assert!(validate_json(s).is_err(), "accepted malformed: {s}");
        }
    }
}
