//! The scenario registry: every experiment family, runnable by name with
//! a parameter grid — the object-safe face of [`Scenario`] that the
//! `kdchoice-bench` CLI drives.

use crate::grid::{Axis, GridError, GridSpec};
use crate::report::SweepReport;
use crate::runner::SweepRunner;
use crate::scenario::{configs_from_grid, Scenario};

/// An erased, registry-storable scenario. Every [`Scenario`] implements
/// it through the blanket impl; harnesses hold `Box<dyn RunnableScenario>`.
pub trait RunnableScenario: Sync {
    /// The registry name.
    fn name(&self) -> &'static str;

    /// One-line description.
    fn description(&self) -> &'static str;

    /// Axes accepted by `--grid` (for validation and help text).
    fn axes(&self) -> &'static [Axis];

    /// The tiny CI smoke grid.
    fn smoke_grid(&self) -> GridSpec;

    /// Parses the grid, runs the (config × trial) sweep in parallel on
    /// `runner`, and returns the uniform report.
    fn run_grid(
        &self,
        grid: &GridSpec,
        trials: usize,
        base_seed: u64,
        runner: &SweepRunner,
    ) -> Result<SweepReport, GridError>;
}

impl<S: Scenario> RunnableScenario for S {
    fn name(&self) -> &'static str {
        Scenario::name(self)
    }

    fn description(&self) -> &'static str {
        Scenario::description(self)
    }

    fn axes(&self) -> &'static [Axis] {
        Scenario::axes(self)
    }

    fn smoke_grid(&self) -> GridSpec {
        Scenario::smoke_grid(self)
    }

    fn run_grid(
        &self,
        grid: &GridSpec,
        trials: usize,
        base_seed: u64,
        runner: &SweepRunner,
    ) -> Result<SweepReport, GridError> {
        let configs = configs_from_grid(self, grid, base_seed)?;
        let cells = runner.run_scenario(self, &configs, trials);
        Ok(SweepReport::from_cells(self, &configs, &cells))
    }
}

/// A by-name collection of scenarios.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Box<dyn RunnableScenario>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a scenario (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken — scenario names are CLI
    /// identifiers and must be unique.
    #[must_use]
    pub fn with(mut self, scenario: Box<dyn RunnableScenario>) -> Self {
        assert!(
            self.get(scenario.name()).is_none(),
            "duplicate scenario name `{}`",
            scenario.name()
        );
        self.entries.push(scenario);
        self
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&dyn RunnableScenario> {
        self.entries
            .iter()
            .find(|s| s.name() == name)
            .map(|b| b.as_ref())
    }

    /// Like [`Registry::get`], but with a `GridError` naming the culprit.
    pub fn require(&self, name: &str) -> Result<&dyn RunnableScenario, GridError> {
        self.get(name)
            .ok_or_else(|| GridError::UnknownScenario(name.to_string()))
    }

    /// All registered scenarios, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn RunnableScenario> {
        self.entries.iter().map(|b| b.as_ref())
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|s| s.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Params;
    use crate::scenario::Fields;
    use crate::value::Value;

    struct Fib;

    #[derive(Clone)]
    struct FibConfig {
        n: u64,
        seed: u64,
    }

    impl Scenario for Fib {
        type Config = FibConfig;
        type Record = u64;

        fn name(&self) -> &'static str {
            "fib"
        }
        fn description(&self) -> &'static str {
            "toy"
        }
        fn run(&self, config: &Self::Config, _seed: u64) -> u64 {
            let (mut a, mut b) = (0u64, 1u64);
            for _ in 0..config.n {
                (a, b) = (b, a + b);
            }
            a
        }
        fn base_seed(&self, config: &Self::Config) -> u64 {
            config.seed
        }
        fn config_fields(&self, config: &Self::Config) -> Fields {
            vec![("n", Value::U64(config.n))]
        }
        fn record_fields(&self, record: &Self::Record) -> Fields {
            vec![("fib", Value::U64(*record))]
        }
        fn axes(&self) -> &'static [Axis] {
            const AXES: &[Axis] = &[Axis::new("n", "index"), Axis::new("seed", "seed")];
            AXES
        }
        fn config_from_params(&self, params: &Params) -> Result<Self::Config, GridError> {
            Ok(FibConfig {
                n: params.get_u64("n", 1)?,
                seed: params.get_u64("seed", 0)?,
            })
        }
        fn smoke_grid(&self) -> GridSpec {
            GridSpec::parse_str("n=3").expect("static grid")
        }
    }

    #[test]
    fn registry_runs_by_name() {
        let registry = Registry::new().with(Box::new(Fib));
        assert_eq!(registry.names(), vec!["fib"]);
        let s = registry.require("fib").unwrap();
        let grid = GridSpec::parse_str("n=1,2,10").unwrap();
        let report = s.run_grid(&grid, 2, 7, &SweepRunner::new()).unwrap();
        assert_eq!(report.rows.len(), 6);
        assert_eq!(report.configs, 3);
        // n=10 → fib 55 in the last rows.
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains("\"fib\": 55"));
        assert!(registry.require("nope").is_err());
    }

    #[test]
    fn unknown_axis_is_rejected() {
        let registry = Registry::new().with(Box::new(Fib));
        let s = registry.require("fib").unwrap();
        let grid = GridSpec::parse_str("zap=1").unwrap();
        let err = s.run_grid(&grid, 1, 0, &SweepRunner::new()).unwrap_err();
        assert!(matches!(err, GridError::UnknownAxis { .. }));
    }

    #[test]
    #[should_panic(expected = "duplicate scenario name")]
    fn duplicate_names_panic() {
        let _ = Registry::new().with(Box::new(Fib)).with(Box::new(Fib));
    }

    #[test]
    fn smoke_grids_run() {
        let registry = Registry::new().with(Box::new(Fib));
        for s in registry.iter() {
            let report = s
                .run_grid(&s.smoke_grid(), 1, 0, &SweepRunner::new())
                .unwrap();
            assert!(!report.rows.is_empty());
            for line in report.to_jsonl().lines() {
                crate::value::validate_json(line).unwrap();
            }
        }
    }
}
