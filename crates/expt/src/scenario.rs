//! The [`Scenario`] trait: one experiment family, pluggable into the
//! shared [`crate::SweepRunner`] and the registry-driven CLI.

use crate::grid::{Axis, GridError, GridSpec, Params};
use crate::value::Value;

/// Flat `(key, value)` pairs describing a config or a record; keys are
/// `&'static str` so building a row allocates nothing for the names.
pub type Fields = Vec<(&'static str, Value)>;

/// One experiment family: how to build a run from a config and a seed,
/// and how to report it.
///
/// Every experiment in the workspace — static (k,d)-choice trials, the
/// dynamic-k variant, the cluster-scheduling simulation, the storage
/// workload — implements this trait once, and gets the parallel sweep
/// runner, the JSONL/CSV/table reporters, and the CLI grid syntax for
/// free.
///
/// # Determinism contract
///
/// `run(config, seed)` must be a **pure function** of `(config, seed)`.
/// The runner derives the per-trial seed as
/// `derive_seed(base_seed(config), trial)`, exactly like
/// `kdchoice_core::run_trials`, so any cell of any grid is reproducible
/// in isolation and results do not depend on thread count or scheduling.
pub trait Scenario: Sync {
    /// One point of the parameter grid.
    type Config: Clone + Send + Sync;
    /// The result of one run.
    type Record: Send;

    /// The registry name, e.g. `"static"` or `"scheduler"`.
    fn name(&self) -> &'static str;

    /// One-line description for `bench list`.
    fn description(&self) -> &'static str;

    /// Executes one run. Must be deterministic in `(config, seed)`.
    fn run(&self, config: &Self::Config, seed: u64) -> Self::Record;

    /// The master seed embedded in `config`; trial `t` of this config runs
    /// with `derive_seed(base_seed(config), t)`.
    fn base_seed(&self, config: &Self::Config) -> u64;

    /// The config as flat report fields (become JSONL keys / CSV columns).
    fn config_fields(&self, config: &Self::Config) -> Fields;

    /// The record as flat report fields.
    fn record_fields(&self, record: &Self::Record) -> Fields;

    /// The grid axes this scenario accepts (for validation and help).
    fn axes(&self) -> &'static [Axis];

    /// Builds one config from a grid assignment. Absent axes take the
    /// scenario's defaults; semantic violations (e.g. `k > d`) are
    /// reported as [`GridError::BadValue`].
    fn config_from_params(&self, params: &Params) -> Result<Self::Config, GridError>;

    /// A tiny grid that finishes in well under a second — the CI smoke
    /// workload driven by `kdchoice-bench smoke`.
    fn smoke_grid(&self) -> GridSpec;

    /// The unit reported by the throughput harness (e.g. `"jobs/sec"`).
    fn throughput_unit(&self) -> &'static str {
        "runs/sec"
    }
}

/// The largest sweep `configs_from_grid` will materialize. Grids above
/// this are almost certainly typos (`k=1,2,...` pasted wrong), and
/// expanding them would exhaust memory before the sweep even starts.
pub const MAX_GRID_CELLS: usize = 1 << 22;

/// Builds the configs for a grid: validates axis names against
/// [`Scenario::axes`], defaults the `seed` axis to `base_seed`, and maps
/// every assignment through [`Scenario::config_from_params`].
pub fn configs_from_grid<S: Scenario>(
    scenario: &S,
    grid: &GridSpec,
    base_seed: u64,
) -> Result<Vec<S::Config>, GridError> {
    for name in grid.axis_names() {
        if !scenario.axes().iter().any(|a| a.name == name) {
            return Err(GridError::UnknownAxis {
                axis: name.to_string(),
                scenario: scenario.name(),
            });
        }
    }
    if grid.len() > MAX_GRID_CELLS {
        return Err(GridError::TooLarge {
            cells: grid.len(),
            cap: MAX_GRID_CELLS,
        });
    }
    let mut grid = grid.clone();
    grid.set_default("seed", base_seed.to_string());
    grid.assignments()
        .iter()
        .map(|p| scenario.config_from_params(p))
        .collect()
}

/// A `Value` helper: quantile triple fields (`p50`/`p90`/`p99`) from a
/// 3-element percentile array, shared by the scheduler and storage
/// records.
pub fn percentile_fields(
    prefix_p50: &'static str,
    prefix_p90: &'static str,
    prefix_p99: &'static str,
    pct: [f64; 3],
) -> Fields {
    vec![
        (prefix_p50, Value::F64(pct[0])),
        (prefix_p90, Value::F64(pct[1])),
        (prefix_p99, Value::F64(pct[2])),
    ]
}
