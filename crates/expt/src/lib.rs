//! Experiment orchestration for the `kdchoice` workspace.
//!
//! The paper's value is not just the static (k,d)-choice bound but its
//! §1.3 applications — cluster job scheduling and distributed storage —
//! and the comparisons against (1+β)-style baselines. Each of those is an
//! *experiment family*: a config type, a deterministic `run(config, seed)`
//! function, and a set of reported observables. This crate owns everything
//! those families share:
//!
//! * [`Scenario`] — the one trait an experiment family implements.
//! * [`SweepRunner`] — a work-stealing parallel executor over a
//!   (config × seed) grid; results are deterministic regardless of thread
//!   count because every trial's seed is derived from its grid coordinates
//!   (`derive_seed(base_seed, trial)`, the same scheme as
//!   `kdchoice_core::run_trials`).
//! * [`MetricAccumulator`] / [`WeightedMean`] / [`Merge`] — mergeable
//!   aggregates over cells produced in parallel, built on the
//!   `kdchoice-stats` substrate.
//! * [`SweepReport`] — one uniform row format, rendered as JSON lines,
//!   CSV, or a human table; [`validate_json`] rejects malformed output.
//! * [`GridSpec`] / [`Params`] — the CLI grid syntax
//!   (`k=2,3 n=2^16 rho=0.7,0.9`) and its cartesian expansion.
//! * [`Registry`] / [`RunnableScenario`] — scenarios runnable by name,
//!   the registry the `kdchoice-bench` CLI drives.
//!
//! The crate sits *below* `kdchoice-core`: the core crate's `run_sweep`
//! is a thin adapter over [`SweepRunner`], and the scheduler and storage
//! crates implement [`Scenario`] for their simulations.
//!
//! ```
//! use kdchoice_expt::SweepRunner;
//!
//! // The runner is generic: any (config × trial) job grid runs on all
//! // cores with deterministic slot placement.
//! let cells = SweepRunner::new().run_grid(&[2u64, 3], 4, |&c, _cfg, t| c * 10 + t as u64);
//! assert_eq!(cells, vec![vec![20, 21, 22, 23], vec![30, 31, 32, 33]]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accum;
mod grid;
mod registry;
mod report;
mod runner;
mod scenario;
mod value;

pub use accum::{Merge, MetricAccumulator, WeightedMean};
pub use grid::{Axis, GridError, GridSpec, Params};
pub use registry::{Registry, RunnableScenario};
pub use report::{ReportFormat, Row, SweepReport};
pub use runner::{SweepCell, SweepRunner, TrialRun};
pub use scenario::{configs_from_grid, percentile_fields, Fields, Scenario, MAX_GRID_CELLS};
pub use value::{validate_json, Value};
