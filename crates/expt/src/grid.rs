//! Parameter grids: `k=2,3 n=1024,4096` → the cartesian product of
//! per-axis value lists, each assignment handed to a scenario as a
//! [`Params`] map.

use std::fmt;

/// An axis a scenario accepts in its grid, for validation and `--help`.
#[derive(Debug, Clone, Copy)]
pub struct Axis {
    /// The grid key, e.g. `"k"`.
    pub name: &'static str,
    /// One-line description shown by `bench list`.
    pub help: &'static str,
}

impl Axis {
    /// A new axis spec.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self { name, help }
    }
}

/// Errors from grid parsing or scenario configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// A token was not of the form `key=v1,v2,...`.
    Malformed(String),
    /// The same axis appeared twice.
    DuplicateAxis(String),
    /// The scenario does not accept this axis.
    UnknownAxis {
        /// The offending key.
        axis: String,
        /// The scenario that rejected it.
        scenario: &'static str,
    },
    /// A value failed to parse or violated a scenario constraint.
    BadValue {
        /// The axis the value came from.
        axis: String,
        /// The offending value.
        value: String,
        /// What the scenario expected.
        expected: String,
    },
    /// An unknown scenario name was requested.
    UnknownScenario(String),
    /// The cartesian product is too large to materialize.
    TooLarge {
        /// Number of assignments the grid expands to (saturating).
        cells: usize,
        /// The largest sweep the expansion layer accepts.
        cap: usize,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Malformed(tok) => {
                write!(f, "malformed grid token `{tok}` (expected key=v1,v2,...)")
            }
            GridError::DuplicateAxis(axis) => write!(f, "axis `{axis}` given twice"),
            GridError::UnknownAxis { axis, scenario } => {
                write!(f, "scenario `{scenario}` has no axis `{axis}`")
            }
            GridError::BadValue {
                axis,
                value,
                expected,
            } => write!(
                f,
                "bad value `{value}` for axis `{axis}`: expected {expected}"
            ),
            GridError::UnknownScenario(name) => write!(f, "unknown scenario `{name}`"),
            GridError::TooLarge { cells, cap } => write!(
                f,
                "grid expands to {cells} assignments, more than the {cap} the sweep layer accepts"
            ),
        }
    }
}

impl std::error::Error for GridError {}

/// An ordered list of axes, each with one or more values; the sweep runs
/// the cartesian product (later axes vary fastest).
///
/// ```
/// use kdchoice_expt::GridSpec;
///
/// let grid = GridSpec::parse(&["k=2,3", "n=64"]).unwrap();
/// let cells = grid.assignments();
/// assert_eq!(cells.len(), 2);
/// assert_eq!(cells[0].get_raw("k"), Some("2"));
/// assert_eq!(cells[1].get_raw("k"), Some("3"));
/// assert_eq!(cells[1].get_raw("n"), Some("64"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GridSpec {
    axes: Vec<(String, Vec<String>)>,
}

impl GridSpec {
    /// An empty grid (a single assignment with no keys).
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses `key=v1,v2,...` tokens.
    pub fn parse<S: AsRef<str>>(tokens: &[S]) -> Result<Self, GridError> {
        let mut grid = Self::new();
        for tok in tokens {
            let tok = tok.as_ref();
            let (key, values) = tok
                .split_once('=')
                .ok_or_else(|| GridError::Malformed(tok.to_string()))?;
            let key = key.trim();
            let values: Vec<String> = values
                .split(',')
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty())
                .collect();
            if key.is_empty() || values.is_empty() {
                return Err(GridError::Malformed(tok.to_string()));
            }
            grid.push_axis(key, values)?;
        }
        Ok(grid)
    }

    /// Parses a whitespace-separated grid string, e.g. `"k=2,3 n=64"`.
    pub fn parse_str(spec: &str) -> Result<Self, GridError> {
        let tokens: Vec<&str> = spec.split_whitespace().collect();
        Self::parse(&tokens)
    }

    fn push_axis(&mut self, key: &str, values: Vec<String>) -> Result<(), GridError> {
        if self.axes.iter().any(|(k, _)| k == key) {
            return Err(GridError::DuplicateAxis(key.to_string()));
        }
        self.axes.push((key.to_string(), values));
        Ok(())
    }

    /// Adds an axis if it is not already present (used for defaults such
    /// as the CLI-level seed).
    pub fn set_default(&mut self, key: &str, value: String) {
        if !self.axes.iter().any(|(k, _)| k == key) {
            self.axes.push((key.to_string(), vec![value]));
        }
    }

    /// The axis names present in the grid.
    pub fn axis_names(&self) -> impl Iterator<Item = &str> {
        self.axes.iter().map(|(k, _)| k.as_str())
    }

    /// Number of assignments in the cartesian product. Saturates at
    /// `usize::MAX` instead of overflowing on absurd user grids — the
    /// caller sees an impossibly large (but well-defined) sweep size
    /// rather than a wrapped-around small one or a debug-build panic.
    pub fn len(&self) -> usize {
        self.axes
            .iter()
            .map(|(_, vs)| vs.len())
            .fold(1usize, usize::saturating_mul)
    }

    /// Whether the grid has no axes.
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// The cartesian product, in row-major order (later axes fastest).
    pub fn assignments(&self) -> Vec<Params> {
        let total = self.len();
        let mut out = Vec::with_capacity(total);
        for mut idx in 0..total {
            let mut pairs = Vec::with_capacity(self.axes.len());
            // Later axes vary fastest: walk axes from the back.
            let mut rev: Vec<(String, String)> = Vec::with_capacity(self.axes.len());
            for (key, values) in self.axes.iter().rev() {
                let v = &values[idx % values.len()];
                idx /= values.len();
                rev.push((key.clone(), v.clone()));
            }
            pairs.extend(rev.into_iter().rev());
            out.push(Params { pairs });
        }
        out
    }
}

/// One concrete assignment of grid axes to values, with typed getters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Params {
    pairs: Vec<(String, String)>,
}

impl Params {
    /// Builds a params map directly from `(key, value)` pairs (tests).
    pub fn from_pairs<K: Into<String>, V: Into<String>>(pairs: Vec<(K, V)>) -> Self {
        Self {
            pairs: pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        }
    }

    /// The raw string value of an axis, if present.
    pub fn get_raw(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn parse_with<T, F>(&self, key: &str, default: T, expected: &str, f: F) -> Result<T, GridError>
    where
        F: FnOnce(&str) -> Option<T>,
    {
        match self.get_raw(key) {
            None => Ok(default),
            Some(raw) => f(raw).ok_or_else(|| GridError::BadValue {
                axis: key.to_string(),
                value: raw.to_string(),
                expected: expected.to_string(),
            }),
        }
    }

    /// The axis as `usize`, or `default` when absent. Accepts `2^20`-style
    /// powers of two alongside plain integers.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, GridError> {
        self.parse_with(key, default, "a non-negative integer (or 2^k)", |raw| {
            parse_u64(raw).and_then(|v| usize::try_from(v).ok())
        })
    }

    /// The axis as `u64`, or `default` when absent.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, GridError> {
        self.parse_with(key, default, "a non-negative integer (or 2^k)", parse_u64)
    }

    /// The axis as `f64`, or `default` when absent.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, GridError> {
        self.parse_with(key, default, "a number", |raw| raw.parse::<f64>().ok())
    }

    /// The axis as `u32`, or `default` when absent.
    pub fn get_u32(&self, key: &str, default: u32) -> Result<u32, GridError> {
        self.parse_with(key, default, "a non-negative integer", |raw| {
            parse_u64(raw).and_then(|v| u32::try_from(v).ok())
        })
    }

    /// A `BadValue` error for `key` (scenario-level semantic rejects).
    pub fn bad_value(&self, key: &str, expected: &str) -> GridError {
        GridError::BadValue {
            axis: key.to_string(),
            value: self.get_raw(key).unwrap_or("<absent>").to_string(),
            expected: expected.to_string(),
        }
    }
}

/// Parses a u64, allowing `2^k` shorthand for powers of two.
fn parse_u64(raw: &str) -> Option<u64> {
    if let Some((base, exp)) = raw.split_once('^') {
        let base: u64 = base.parse().ok()?;
        let exp: u32 = exp.parse().ok()?;
        base.checked_pow(exp)
    } else {
        raw.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_product_order() {
        let g = GridSpec::parse(&["a=1,2", "b=x,y,z"]).unwrap();
        assert_eq!(g.len(), 6);
        let cells = g.assignments();
        // Later axis (b) varies fastest.
        let pairs: Vec<(String, String)> = cells
            .iter()
            .map(|p| {
                (
                    p.get_raw("a").unwrap().to_string(),
                    p.get_raw("b").unwrap().to_string(),
                )
            })
            .collect();
        assert_eq!(
            pairs,
            vec![
                ("1".into(), "x".into()),
                ("1".into(), "y".into()),
                ("1".into(), "z".into()),
                ("2".into(), "x".into()),
                ("2".into(), "y".into()),
                ("2".into(), "z".into()),
            ]
        );
    }

    #[test]
    fn empty_grid_has_one_assignment() {
        let g = GridSpec::new();
        assert_eq!(g.len(), 1);
        assert_eq!(g.assignments().len(), 1);
    }

    #[test]
    fn malformed_tokens_rejected() {
        assert!(matches!(
            GridSpec::parse(&["k"]),
            Err(GridError::Malformed(_))
        ));
        assert!(matches!(
            GridSpec::parse(&["=2"]),
            Err(GridError::Malformed(_))
        ));
        assert!(matches!(
            GridSpec::parse(&["k="]),
            Err(GridError::Malformed(_))
        ));
        assert!(matches!(
            GridSpec::parse(&["k=1", "k=2"]),
            Err(GridError::DuplicateAxis(_))
        ));
    }

    #[test]
    fn typed_getters_and_defaults() {
        let p = Params::from_pairs(vec![("n", "2^10"), ("rho", "0.85"), ("k", "4")]);
        assert_eq!(p.get_usize("n", 0).unwrap(), 1024);
        assert_eq!(p.get_u64("seed", 7).unwrap(), 7);
        assert!((p.get_f64("rho", 0.0).unwrap() - 0.85).abs() < 1e-12);
        assert_eq!(p.get_u32("k", 0).unwrap(), 4);
        let err = p.get_usize("rho", 0).unwrap_err();
        assert!(matches!(err, GridError::BadValue { .. }));
        assert!(err.to_string().contains("rho"));
    }

    #[test]
    fn set_default_does_not_override() {
        let mut g = GridSpec::parse(&["seed=5"]).unwrap();
        g.set_default("seed", "9".to_string());
        g.set_default("extra", "1".to_string());
        let cells = g.assignments();
        assert_eq!(cells[0].get_raw("seed"), Some("5"));
        assert_eq!(cells[0].get_raw("extra"), Some("1"));
    }

    #[test]
    fn len_saturates_instead_of_overflowing() {
        // 8 axes x 2^16 values each = 2^128 assignments: len() must pin
        // to usize::MAX, not wrap to something small (or panic in debug).
        let values: Vec<String> = (0..1 << 16).map(|v| v.to_string()).collect();
        let mut g = GridSpec::new();
        for axis in ["a", "b", "c", "d", "e", "f", "g", "h"] {
            g.push_axis(axis, values.clone()).unwrap();
        }
        assert_eq!(g.len(), usize::MAX);
    }

    #[test]
    fn power_shorthand() {
        assert_eq!(parse_u64("2^20"), Some(1 << 20));
        assert_eq!(parse_u64("10"), Some(10));
        assert_eq!(parse_u64("2^99"), None); // overflow guarded
        assert_eq!(parse_u64("x^2"), None);
    }

    #[test]
    fn errors_display() {
        let e = GridError::UnknownAxis {
            axis: "q".into(),
            scenario: "static",
        };
        assert!(e.to_string().contains("static"));
        assert!(GridError::UnknownScenario("zap".into())
            .to_string()
            .contains("zap"));
    }
}
