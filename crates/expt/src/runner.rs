//! The parallel (config × trial) sweep runner.
//!
//! One work-stealing executor for every experiment family in the
//! workspace. Jobs are cells of the `configs × trials` grid, distributed
//! through an atomic queue so heterogeneous configs (a 2¹⁰-bin run next
//! to a 2²⁰-bin run, or a 100-job cluster next to a 20 000-job one) keep
//! all cores busy; results land in their grid slot, so output order —
//! and, through derived per-trial seeds, every result — is independent
//! of thread count and scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use kdchoice_prng::derive_seed;

use crate::scenario::Scenario;

/// The outcome of one trial: its grid coordinates, derived seed, and
/// record.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRun<R> {
    /// Index of the trial within its config cell.
    pub trial: usize,
    /// The derived seed the run used.
    pub seed: u64,
    /// The scenario's record.
    pub record: R,
}

/// All trials of one config, in trial order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell<R> {
    /// Index of the config in the sweep's config list.
    pub config_index: usize,
    /// The per-trial runs, ordered by trial index.
    pub runs: Vec<TrialRun<R>>,
}

/// A deterministic parallel executor over a (config × trial) grid.
///
/// ```
/// use kdchoice_expt::SweepRunner;
///
/// let configs = [10u64, 20, 30];
/// let cells = SweepRunner::new().run_grid(&configs, 2, |&c, _i, t| c + t as u64);
/// assert_eq!(cells.len(), 3);
/// assert_eq!(cells[2], vec![30, 31]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepRunner {
    threads: Option<usize>,
}

impl SweepRunner {
    /// A runner using all available cores.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the worker count (`0` means "use all cores").
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = (threads > 0).then_some(threads);
        self
    }

    /// The number of workers the runner would launch for `jobs` jobs.
    fn worker_count(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        self.threads.unwrap_or(hw).min(jobs).max(1)
    }

    /// Runs `job(&configs[c], c, t)` for every cell of the grid in
    /// parallel, returning results grouped per config, in `(c, t)` order.
    ///
    /// The job function must be deterministic in its arguments; the
    /// output is then independent of thread count.
    pub fn run_grid<C, R, F>(&self, configs: &[C], trials: usize, job: F) -> Vec<Vec<R>>
    where
        C: Sync,
        R: Send,
        F: Fn(&C, usize, usize) -> R + Sync,
    {
        let total = configs.len() * trials;
        if total == 0 {
            return configs.iter().map(|_| Vec::new()).collect();
        }
        let workers = self.worker_count(total);
        let next_job = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..total).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job = &job;
                let next_job = &next_job;
                let results = &results;
                scope.spawn(move || loop {
                    let slot = next_job.fetch_add(1, Ordering::Relaxed);
                    if slot >= total {
                        break;
                    }
                    let config_idx = slot / trials;
                    let trial = slot % trials;
                    let out = job(&configs[config_idx], config_idx, trial);
                    results.lock().expect("no poisoned sweeps")[slot] = Some(out);
                });
            }
        });
        let mut flat = results
            .into_inner()
            .expect("no poisoned sweeps")
            .into_iter()
            .map(|r| r.expect("all sweep jobs completed"));
        configs
            .iter()
            .map(|_| flat.by_ref().take(trials).collect())
            .collect()
    }

    /// Runs `trials` trials of every config of `scenario` in parallel.
    ///
    /// Trial `t` of config `c` uses the derived seed
    /// `derive_seed(scenario.base_seed(&configs[c]), t)` — the same
    /// scheme as `kdchoice_core::run_trials`, so every cell reproduces a
    /// standalone serial loop bit for bit.
    pub fn run_scenario<S: Scenario>(
        &self,
        scenario: &S,
        configs: &[S::Config],
        trials: usize,
    ) -> Vec<SweepCell<S::Record>> {
        let cells = self.run_grid(configs, trials, |config, _c, trial| {
            let seed = derive_seed(scenario.base_seed(config), trial as u64);
            TrialRun {
                trial,
                seed,
                record: scenario.run(config, seed),
            }
        });
        cells
            .into_iter()
            .enumerate()
            .map(|(config_index, runs)| SweepCell { config_index, runs })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Axis, GridError, GridSpec, Params};
    use crate::scenario::Fields;
    use crate::value::Value;

    /// A toy deterministic scenario for runner tests.
    struct Doubler;

    #[derive(Clone, Debug)]
    struct DoublerConfig {
        x: u64,
        seed: u64,
    }

    impl Scenario for Doubler {
        type Config = DoublerConfig;
        type Record = u64;

        fn name(&self) -> &'static str {
            "doubler"
        }
        fn description(&self) -> &'static str {
            "doubles x and mixes the seed"
        }
        fn run(&self, config: &Self::Config, seed: u64) -> u64 {
            config.x * 2 + seed % 7
        }
        fn base_seed(&self, config: &Self::Config) -> u64 {
            config.seed
        }
        fn config_fields(&self, config: &Self::Config) -> Fields {
            vec![("x", Value::U64(config.x))]
        }
        fn record_fields(&self, record: &Self::Record) -> Fields {
            vec![("y", Value::U64(*record))]
        }
        fn axes(&self) -> &'static [Axis] {
            const AXES: &[Axis] = &[Axis::new("x", "input"), Axis::new("seed", "master seed")];
            AXES
        }
        fn config_from_params(&self, params: &Params) -> Result<Self::Config, GridError> {
            Ok(DoublerConfig {
                x: params.get_u64("x", 1)?,
                seed: params.get_u64("seed", 0)?,
            })
        }
        fn smoke_grid(&self) -> GridSpec {
            GridSpec::parse_str("x=1,2").expect("static grid")
        }
    }

    #[test]
    fn grid_results_are_ordered_and_complete() {
        let configs: Vec<u32> = (0..5).collect();
        let cells = SweepRunner::new().run_grid(&configs, 3, |&c, ci, t| {
            assert_eq!(c as usize, ci);
            (c, t)
        });
        assert_eq!(cells.len(), 5);
        for (c, cell) in cells.iter().enumerate() {
            assert_eq!(cell.len(), 3);
            for (t, &(rc, rt)) in cell.iter().enumerate() {
                assert_eq!((rc as usize, rt), (c, t));
            }
        }
    }

    #[test]
    fn zero_trials_and_zero_configs() {
        let cells = SweepRunner::new().run_grid(&[1, 2], 0, |&c: &i32, _, _| c);
        assert_eq!(cells, vec![Vec::<i32>::new(), Vec::new()]);
        let none = SweepRunner::new().run_grid(&[] as &[i32], 4, |&c, _, _| c);
        assert!(none.is_empty());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let configs: Vec<u64> = (0..7).collect();
        let wide = SweepRunner::new().run_grid(&configs, 5, |&c, _, t| c * 100 + t as u64);
        let narrow = SweepRunner::new()
            .with_threads(1)
            .run_grid(&configs, 5, |&c, _, t| c * 100 + t as u64);
        assert_eq!(wide, narrow);
    }

    #[test]
    fn scenario_seeds_match_serial_derivation() {
        let configs = vec![
            DoublerConfig { x: 3, seed: 11 },
            DoublerConfig { x: 4, seed: 12 },
        ];
        let cells = SweepRunner::new().run_scenario(&Doubler, &configs, 4);
        assert_eq!(cells.len(), 2);
        for (c, cell) in cells.iter().enumerate() {
            assert_eq!(cell.config_index, c);
            for (t, run) in cell.runs.iter().enumerate() {
                assert_eq!(run.trial, t);
                let expect_seed = derive_seed(configs[c].seed, t as u64);
                assert_eq!(run.seed, expect_seed);
                assert_eq!(run.record, Doubler.run(&configs[c], expect_seed));
            }
        }
    }

    #[test]
    fn oversized_grids_are_rejected_before_expansion() {
        use crate::scenario::{configs_from_grid, MAX_GRID_CELLS};
        let vals: Vec<String> = (0..4096).map(|v| v.to_string()).collect();
        let tokens = [
            format!("x={}", vals.join(",")),
            format!("seed={}", vals.join(",")),
        ];
        let grid = GridSpec::parse(&tokens).unwrap();
        assert!(grid.len() > MAX_GRID_CELLS);
        let err = configs_from_grid(&Doubler, &grid, 0).unwrap_err();
        assert!(matches!(err, GridError::TooLarge { .. }), "{err}");
        assert!(err.to_string().contains("assignments"));
    }

    #[test]
    fn with_threads_zero_means_all_cores() {
        let r = SweepRunner::new().with_threads(0);
        assert!(r.worker_count(8) >= 1);
    }
}
