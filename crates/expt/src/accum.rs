//! Mergeable per-scenario accumulators.
//!
//! Sweep cells are produced in parallel; anything aggregated across them
//! must merge associatively. This module adapts the `kdchoice-stats`
//! substrate (Welford summaries, dense histograms, order statistics) into
//! a single [`Merge`] vocabulary, plus a weighted mean for time-weighted
//! observables.

use kdchoice_stats::quantile::quantiles;
use kdchoice_stats::{Histogram, Summary};

/// Associative merge of two partial aggregates.
pub trait Merge {
    /// Folds `other` into `self`.
    fn merge_from(&mut self, other: &Self);
}

impl Merge for Summary {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}

impl Merge for Histogram {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}

/// A metric accumulator that supports both moments (streaming Welford
/// summary) and order statistics (retained samples), merging cheaply.
///
/// ```
/// use kdchoice_expt::{Merge, MetricAccumulator};
///
/// let mut a = MetricAccumulator::new();
/// a.push(1.0);
/// a.push(3.0);
/// let mut b = MetricAccumulator::new();
/// b.push(2.0);
/// a.merge_from(&b);
/// assert_eq!(a.count(), 3);
/// assert_eq!(a.mean(), 2.0);
/// assert_eq!(a.quantile(0.5), Some(2.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricAccumulator {
    summary: Summary,
    samples: Vec<f64>,
}

impl MetricAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        self.summary.push(x);
        self.samples.push(x);
    }

    /// The streaming summary (count/mean/variance/min/max).
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// Minimum observation.
    pub fn min(&self) -> Option<f64> {
        self.summary.min()
    }

    /// Maximum observation.
    pub fn max(&self) -> Option<f64> {
        self.summary.max()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the observations, or `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let qs = quantiles(&self.samples, &[q]);
        qs.first().copied()
    }

    /// All retained samples (unordered).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl Merge for MetricAccumulator {
    fn merge_from(&mut self, other: &Self) {
        self.summary.merge(&other.summary);
        self.samples.extend_from_slice(&other.samples);
    }
}

/// A mergeable weighted mean, the cross-trial aggregate for time-weighted
/// observables (each trial contributes its mean weighted by observed
/// span, so merging trials equals one long observation).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WeightedMean {
    weight: f64,
    weighted_sum: f64,
}

impl WeightedMean {
    /// An empty weighted mean.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `value` carrying `weight` (e.g. a trial mean weighted by
    /// its simulated duration).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn push(&mut self, value: f64, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weights must be finite and non-negative"
        );
        self.weight += weight;
        self.weighted_sum += value * weight;
    }

    /// Total weight recorded.
    pub fn total_weight(&self) -> f64 {
        self.weight
    }

    /// The weighted mean (0 when no weight has been recorded).
    pub fn mean(&self) -> f64 {
        if self.weight > 0.0 {
            self.weighted_sum / self.weight
        } else {
            0.0
        }
    }
}

impl Merge for WeightedMean {
    fn merge_from(&mut self, other: &Self) {
        self.weight += other.weight;
        self.weighted_sum += other.weighted_sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_merge_matches_sequential() {
        let mut a = MetricAccumulator::new();
        let mut b = MetricAccumulator::new();
        let mut all = MetricAccumulator::new();
        for i in 0..50 {
            let x = (i as f64).sin();
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            all.push(x);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        // Quantiles over the merged sample set match a single-set build.
        assert_eq!(a.quantile(0.9), all.quantile(0.9));
    }

    #[test]
    fn empty_metric_quantile_is_none() {
        assert_eq!(MetricAccumulator::new().quantile(0.5), None);
        assert_eq!(MetricAccumulator::new().count(), 0);
    }

    #[test]
    fn weighted_mean_merges() {
        let mut a = WeightedMean::new();
        a.push(2.0, 1.0);
        let mut b = WeightedMean::new();
        b.push(4.0, 3.0);
        a.merge_from(&b);
        assert!((a.mean() - 3.5).abs() < 1e-12);
        assert_eq!(a.total_weight(), 4.0);
        assert_eq!(WeightedMean::new().mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn weighted_mean_rejects_negative_weight() {
        WeightedMean::new().push(1.0, -1.0);
    }

    #[test]
    fn histogram_and_summary_merge_adapters() {
        let mut h = Histogram::from_pairs([(1, 2)]);
        Merge::merge_from(&mut h, &Histogram::from_pairs([(1, 1), (3, 4)]));
        assert_eq!(h.count(1), 3);
        assert_eq!(h.count(3), 4);

        let mut s = Summary::from_iter([1.0]);
        Merge::merge_from(&mut s, &Summary::from_iter([3.0]));
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }
}
