//! Ball-demand vector distributions for the multidimensional extension.
//!
//! The Narang–Dutta generalization gives every ball a D-dimensional
//! resource demand (cpu/mem/net). The shapes that matter empirically are
//! the ones that stress different placement objectives:
//!
//! * [`DemandDistribution::Unit`] — every ball demands 1 in every
//!   dimension. Consumes **zero** generator outputs, so the scalar
//!   (`dims=1`) path draws the identical stream as a run with no demand
//!   sampling at all — the hinge of every dims=1 bit-identity lock.
//! * [`DemandDistribution::Uniform`] — each dimension i.i.d. uniform in
//!   `1..=max` (independent resources).
//! * [`DemandDistribution::Correlated`] — one shared magnitude in
//!   `1..=max` copied to every dimension (big jobs are big everywhere).
//! * [`DemandDistribution::AntiCorrelated`] — one uniformly chosen "hot"
//!   dimension demands `max`, the rest demand 1 (cpu-bound vs
//!   memory-bound jobs), the adversarial shape for scalar objectives.

use rand::RngCore;

use crate::dist::ParamError;
use crate::sample::UniformBin;

/// A distribution over per-ball demand vectors `(δ₁, …, δ_D)` with every
/// `δ_j ≥ 1`.
///
/// Construct through the checked constructors (or [`DemandDistribution::parse`]);
/// the `max` parameter is validated once so sampling is panic-free.
///
/// ```
/// use kdchoice_prng::{demand::DemandDistribution, Xoshiro256PlusPlus};
///
/// # fn main() -> Result<(), kdchoice_prng::dist::ParamError> {
/// let dist = DemandDistribution::uniform(4)?;
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// let mut demand = Vec::new();
/// dist.sample_into(&mut rng, 3, &mut demand);
/// assert_eq!(demand.len(), 3);
/// assert!(demand.iter().all(|&x| (1..=4).contains(&x)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandDistribution {
    /// Every dimension demands exactly 1 (the scalar process). Samples
    /// consume no generator outputs.
    Unit,
    /// Each dimension i.i.d. uniform in `1..=max`.
    Uniform {
        /// Inclusive per-dimension maximum demand (≥ 1).
        max: u32,
    },
    /// One shared magnitude in `1..=max` across all dimensions.
    Correlated {
        /// Inclusive maximum of the shared magnitude (≥ 1).
        max: u32,
    },
    /// A uniformly chosen hot dimension demands `max`; every other
    /// dimension demands 1.
    AntiCorrelated {
        /// Demand of the hot dimension (≥ 1).
        max: u32,
    },
}

impl DemandDistribution {
    /// The i.i.d. per-dimension uniform distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `max == 0`.
    pub fn uniform(max: u32) -> Result<Self, ParamError> {
        if max == 0 {
            return Err(ParamError::new("demand max must be >= 1"));
        }
        Ok(Self::Uniform { max })
    }

    /// The shared-magnitude correlated distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `max == 0`.
    pub fn correlated(max: u32) -> Result<Self, ParamError> {
        if max == 0 {
            return Err(ParamError::new("demand max must be >= 1"));
        }
        Ok(Self::Correlated { max })
    }

    /// The hot-dimension anti-correlated distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `max == 0`.
    pub fn anti_correlated(max: u32) -> Result<Self, ParamError> {
        if max == 0 {
            return Err(ParamError::new("demand max must be >= 1"));
        }
        Ok(Self::AntiCorrelated { max })
    }

    /// Parses a grid-axis value (`unit | uniform | correlated | anti`)
    /// with the given `max` parameter (ignored by `unit`).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for an unknown name or `max == 0` on the
    /// parameterized shapes.
    pub fn parse(name: &str, max: u32) -> Result<Self, ParamError> {
        match name {
            "unit" => Ok(Self::Unit),
            "uniform" => Self::uniform(max),
            "correlated" => Self::correlated(max),
            "anti" | "anti_correlated" => Self::anti_correlated(max),
            _ => Err(ParamError::new(
                "demand must be one of unit|uniform|correlated|anti",
            )),
        }
    }

    /// The grid-axis name of this shape.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Unit => "unit",
            Self::Uniform { .. } => "uniform",
            Self::Correlated { .. } => "correlated",
            Self::AntiCorrelated { .. } => "anti",
        }
    }

    /// The largest demand any single dimension can report — the `Δ` in the
    /// demand-scaled per-dimension gap envelope.
    pub fn max_demand(&self) -> u32 {
        match *self {
            Self::Unit => 1,
            Self::Uniform { max } | Self::Correlated { max } | Self::AntiCorrelated { max } => max,
        }
    }

    /// The expected demand of one dimension (each dimension is
    /// exchangeable under every shape here).
    pub fn mean_demand(&self, dims: usize) -> f64 {
        match *self {
            Self::Unit => 1.0,
            Self::Uniform { max } | Self::Correlated { max } => (1.0 + f64::from(max)) / 2.0,
            Self::AntiCorrelated { max } => {
                // One of `dims` dimensions holds `max`, the rest hold 1.
                (f64::from(max) + (dims as f64 - 1.0)) / dims as f64
            }
        }
    }

    /// Samples one demand vector of length `dims` into `out` (cleared
    /// first; capacity reused across calls).
    ///
    /// Generator consumption is part of the determinism contract:
    /// `Unit` draws nothing, `Correlated` and `AntiCorrelated` draw
    /// exactly one output, `Uniform` draws one output per dimension
    /// (Lemire-mapped, like every bin draw in this workspace).
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn sample_into<R: RngCore + ?Sized>(&self, rng: &mut R, dims: usize, out: &mut Vec<u32>) {
        assert!(dims > 0, "demand vectors need at least one dimension");
        out.clear();
        match *self {
            Self::Unit => out.resize(dims, 1),
            Self::Uniform { max } => {
                let levels = UniformBin::new(max as usize);
                for _ in 0..dims {
                    out.push(1 + levels.sample(rng) as u32);
                }
            }
            Self::Correlated { max } => {
                let magnitude = 1 + UniformBin::new(max as usize).sample(rng) as u32;
                out.resize(dims, magnitude);
            }
            Self::AntiCorrelated { max } => {
                let hot = UniformBin::new(dims).sample(rng);
                out.resize(dims, 1);
                out[hot] = max;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn unit_draws_nothing_from_the_generator() {
        let mut a = Xoshiro256PlusPlus::from_u64(42);
        let b = Xoshiro256PlusPlus::from_u64(42);
        let mut out = Vec::new();
        DemandDistribution::Unit.sample_into(&mut a, 4, &mut out);
        assert_eq!(out, vec![1, 1, 1, 1]);
        assert_eq!(a, b, "unit demand must not consume the generator");
    }

    #[test]
    fn uniform_stays_in_range_and_varies() {
        let dist = DemandDistribution::uniform(5).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(7);
        let mut out = Vec::new();
        let mut seen = [false; 6];
        for _ in 0..2000 {
            dist.sample_into(&mut rng, 3, &mut out);
            assert_eq!(out.len(), 3);
            for &x in &out {
                assert!((1..=5).contains(&x));
                seen[x as usize] = true;
            }
        }
        assert!(seen[1..].iter().all(|&s| s), "all levels should appear");
    }

    #[test]
    fn correlated_copies_one_magnitude() {
        let dist = DemandDistribution::correlated(8).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(9);
        let mut out = Vec::new();
        for _ in 0..500 {
            dist.sample_into(&mut rng, 4, &mut out);
            assert!(out.windows(2).all(|w| w[0] == w[1]), "{out:?}");
            assert!((1..=8).contains(&out[0]));
        }
    }

    #[test]
    fn anti_correlated_has_one_hot_dimension() {
        let dist = DemandDistribution::anti_correlated(6).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(11);
        let mut out = Vec::new();
        let mut hot_counts = [0u32; 4];
        for _ in 0..4000 {
            dist.sample_into(&mut rng, 4, &mut out);
            let hot: Vec<usize> = (0..4).filter(|&j| out[j] == 6).collect();
            assert_eq!(hot.len(), 1, "{out:?}");
            assert!(out.iter().filter(|&&x| x == 1).count() == 3);
            hot_counts[hot[0]] += 1;
        }
        for &c in &hot_counts {
            let f = f64::from(c) / 4000.0;
            assert!((f - 0.25).abs() < 0.05, "hot-dim frequency {f}");
        }
    }

    #[test]
    fn parse_round_trips_names_and_rejects_garbage() {
        for name in ["unit", "uniform", "correlated", "anti"] {
            let d = DemandDistribution::parse(name, 3).unwrap();
            assert_eq!(d.name(), name);
        }
        assert_eq!(
            DemandDistribution::parse("anti_correlated", 3).unwrap(),
            DemandDistribution::AntiCorrelated { max: 3 }
        );
        assert!(DemandDistribution::parse("gaussian", 3).is_err());
        assert!(DemandDistribution::parse("uniform", 0).is_err());
        assert!(DemandDistribution::parse("correlated", 0).is_err());
        assert!(DemandDistribution::parse("anti", 0).is_err());
        // unit ignores max entirely.
        assert!(DemandDistribution::parse("unit", 0).is_ok());
    }

    #[test]
    fn max_and_mean_demand() {
        assert_eq!(DemandDistribution::Unit.max_demand(), 1);
        assert_eq!(DemandDistribution::uniform(4).unwrap().max_demand(), 4);
        assert_eq!(DemandDistribution::Unit.mean_demand(3), 1.0);
        assert_eq!(DemandDistribution::uniform(3).unwrap().mean_demand(2), 2.0);
        // anti(4) over 2 dims: (4 + 1) / 2.
        let anti = DemandDistribution::anti_correlated(4).unwrap();
        assert_eq!(anti.mean_demand(2), 2.5);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dims_rejected() {
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        let mut out = Vec::new();
        DemandDistribution::Unit.sample_into(&mut rng, 0, &mut out);
    }

    #[test]
    fn sampling_is_deterministic() {
        let dist = DemandDistribution::uniform(7).unwrap();
        let mut a = Xoshiro256PlusPlus::from_u64(123);
        let mut b = Xoshiro256PlusPlus::from_u64(123);
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        for _ in 0..100 {
            dist.sample_into(&mut a, 5, &mut oa);
            dist.sample_into(&mut b, 5, &mut ob);
            assert_eq!(oa, ob);
        }
    }
}
