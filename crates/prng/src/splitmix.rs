//! SplitMix64: a tiny 64-bit generator used for seeding larger generators.

use rand::{Error, RngCore, SeedableRng};

/// The SplitMix64 generator (Steele, Lea & Flood, "Fast Splittable
/// Pseudorandom Number Generators", OOPSLA 2014).
///
/// It has a period of 2^64 and passes BigCrush; its main role here is to
/// expand a single `u64` seed into the larger state of
/// [`Xoshiro256PlusPlus`](crate::Xoshiro256PlusPlus), as recommended by the
/// xoshiro authors.
///
/// ```
/// use kdchoice_prng::SplitMix64;
///
/// let mut a = SplitMix64::new(123);
/// let mut b = SplitMix64::new(123);
/// assert_eq!(a.next(), b.next());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[allow(clippy::should_implement_trait)] // established generator API, not an Iterator
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

/// Fills `dest` with the little-endian bytes of successive `next_u64` calls.
pub(crate) fn fill_bytes_via_u64<R: RngCore>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for seed 1234567, from the public-domain C
    /// implementation by Sebastiano Vigna.
    #[test]
    fn matches_reference_vectors() {
        let mut sm = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(sm.next(), e);
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next();
        let b = sm.next();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut sm = SplitMix64::new(9);
        let mut buf = [0u8; 13];
        sm.fill_bytes(&mut buf);
        // First 8 bytes must equal the LE encoding of the first output of a
        // fresh generator with the same seed.
        let mut sm2 = SplitMix64::new(9);
        assert_eq!(&buf[..8], &sm2.next().to_le_bytes());
    }

    #[test]
    fn seedable_rng_roundtrip() {
        let a = SplitMix64::seed_from_u64(77).next_u64();
        let b = SplitMix64::from_seed(77u64.to_le_bytes()).next_u64();
        assert_eq!(a, b);
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }
}
