//! Xoshiro256++: the workspace's main pseudo-random generator.

use rand::{Error, RngCore, SeedableRng};

use crate::splitmix::{fill_bytes_via_u64, SplitMix64};

/// The xoshiro256++ generator (Blackman & Vigna, "Scrambled Linear
/// Pseudorandom Number Generators", ACM TOMS 2021).
///
/// Period 2^256 − 1, passes BigCrush, and roughly one nanosecond per output —
/// the balls-into-bins simulations in this workspace draw billions of values,
/// so generator speed matters for the benchmark harness.
///
/// The generator supports `jump()`, which advances the state by 2^128 steps;
/// [`Xoshiro256PlusPlus::stream`] uses it to hand out provably
/// non-overlapping sub-streams to parallel simulation components.
///
/// ```
/// use kdchoice_prng::Xoshiro256PlusPlus;
/// use rand::Rng;
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(42);
/// let x: u64 = rng.gen_range(0..100);
/// assert!(x < 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator by expanding a 64-bit seed through
    /// [`SplitMix64`], as recommended by the xoshiro reference
    /// implementation. All seeds, including 0, are valid.
    pub fn from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next(), sm.next(), sm.next(), sm.next()];
        // SplitMix64 output is equidistributed; the probability of an
        // all-zero state is 2^-256 and the expansion of any u64 seed can in
        // fact never produce it, but keep the guard for from_seed paths.
        debug_assert!(s.iter().any(|&w| w != 0));
        Self { s }
    }

    /// Returns the next 64-bit output.
    #[allow(clippy::should_implement_trait)] // established generator API, not an Iterator
    #[inline]
    pub fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Advances the state by 2^128 calls to [`next`](Self::next).
    ///
    /// Repeated jumps generate up to 2^128 non-overlapping sub-streams of
    /// length 2^128 each.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180ec6d33cfd0aba,
            0xd5a61266f0c9392c,
            0xa9582618e03fc9aa,
            0x39abdc4529b1661c,
        ];
        let mut s = [0u64; 4];
        for &word in &JUMP {
            for b in 0..64 {
                if (word & (1u64 << b)) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                let _ = self.next();
            }
        }
        self.s = s;
    }

    /// Creates the `index`-th non-overlapping sub-stream of the generator
    /// seeded with `seed`.
    ///
    /// Stream 0 is the base stream; stream `i` is the base stream jumped
    /// ahead `i · 2^128` steps. Use this to give each parallel worker its own
    /// independent generator.
    ///
    /// ```
    /// use kdchoice_prng::Xoshiro256PlusPlus;
    ///
    /// let mut s0 = Xoshiro256PlusPlus::stream(9, 0);
    /// let mut s1 = Xoshiro256PlusPlus::stream(9, 1);
    /// assert_ne!(s0.next(), s1.next());
    /// ```
    pub fn stream(seed: u64, index: u32) -> Self {
        let mut rng = Self::from_u64(seed);
        for _ in 0..index {
            rng.jump();
        }
        rng
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
        }
        if s.iter().all(|&w| w == 0) {
            // The all-zero state is the one fixed point of the linear engine;
            // remap it to a valid state deterministically.
            return Self::from_u64(0);
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::from_u64(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Outputs cross-checked against an independent implementation of the
    /// published xoshiro256++ algorithm, with state seeded by splitmix64(1).
    #[test]
    fn matches_reference_vectors() {
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        // State after splitmix expansion of seed=1:
        //   s = [0x910A2DEC89025CC1, 0xBEEB8DA1658EEC67,
        //        0xF893A2EEFB32555E, 0x71C18690EE42C90B]
        let expected: [u64; 4] = [
            0xCFC5D07F6F03C29B,
            0xBF424132963FE08D,
            0x19A37D5757AAF520,
            0xBF08119F05CD56D6,
        ];
        for &e in &expected {
            assert_eq!(rng.next(), e);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256PlusPlus::from_u64(99);
            (0..64).map(|_| r.next()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256PlusPlus::from_u64(99);
            (0..64).map(|_| r.next()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn jump_changes_state() {
        let mut a = Xoshiro256PlusPlus::from_u64(3);
        let b = a.clone();
        a.jump();
        assert_ne!(a, b);
    }

    #[test]
    fn streams_disagree() {
        let mut outs = Vec::new();
        for i in 0..4 {
            let mut r = Xoshiro256PlusPlus::stream(5, i);
            outs.push(r.next());
        }
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len());
    }

    #[test]
    fn all_zero_seed_is_remapped() {
        let rng = Xoshiro256PlusPlus::from_seed([0u8; 32]);
        let mut rng2 = rng.clone();
        assert_ne!(rng2.next(), 0, "degenerate all-zero state must not leak");
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = Xoshiro256PlusPlus::from_u64(8);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(0..997);
            assert!(v < 997);
        }
    }

    #[test]
    fn uniformity_coarse_chi_square() {
        // 16 buckets, 160k draws: chi-square with 15 dof; 99.9% quantile ≈ 37.7.
        let mut rng = Xoshiro256PlusPlus::from_u64(2024);
        let mut buckets = [0u64; 16];
        let draws = 160_000;
        for _ in 0..draws {
            let v: usize = rng.gen_range(0..16);
            buckets[v] += 1;
        }
        let expected = draws as f64 / 16.0;
        let chi2: f64 = buckets
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 37.7, "chi-square too large: {chi2}");
    }
}
