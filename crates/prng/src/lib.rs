//! Deterministic pseudo-random number generation and sampling utilities.
//!
//! The paper's simulation (§1.2) only says "a pseudo random number generator
//! is used to sample d random bins in each round"; for a reproducible
//! open-source release we pin the generator down completely:
//!
//! * [`SplitMix64`] — a tiny, statistically solid 64-bit generator used for
//!   seeding (Steele, Lea & Flood 2014).
//! * [`Xoshiro256PlusPlus`] — the main generator (Blackman & Vigna 2019),
//!   with the standard `jump()` polynomial so that parallel components can
//!   draw from provably non-overlapping streams.
//!
//! Both implement [`rand::RngCore`] and [`rand::SeedableRng`], so the whole
//! `rand` API (`gen_range`, `shuffle`, …) works on top of them while every
//! bit of output remains a pure function of the seed, independent of the
//! `rand` crate's own generator choices.
//!
//! The [`sample`] module implements the sampling primitives the (k,d)-choice
//! process needs (i.u.r. with replacement, distinct sampling, permutations),
//! and [`dist`] implements the workload distributions used by the scheduler
//! and storage applications (exponential, Poisson, bounded Pareto, Zipf, and
//! Walker/Vose alias tables).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod demand;
pub mod dist;
pub mod sample;
mod splitmix;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256PlusPlus;

/// Derives a 64-bit sub-seed from a master seed and a stream index.
///
/// This is how the workspace derives per-trial seeds: mixing through
/// [`SplitMix64`] guarantees that nearby `(seed, index)` pairs produce
/// unrelated generator states.
///
/// ```
/// let a = kdchoice_prng::derive_seed(42, 0);
/// let b = kdchoice_prng::derive_seed(42, 1);
/// assert_ne!(a, b);
/// // Deterministic:
/// assert_eq!(a, kdchoice_prng::derive_seed(42, 0));
/// ```
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut sm = SplitMix64::new(master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Burn one output so that index-0 does not coincide with the raw master
    // stream, then take the next.
    let _ = sm.next();
    sm.next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
    }

    #[test]
    fn derive_seed_separates_indices() {
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(7, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "collision in derived seeds");
    }

    #[test]
    fn derive_seed_separates_masters() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }
}
