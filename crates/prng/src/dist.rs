//! Workload distributions for the scheduler and storage applications.
//!
//! The paper's applications (§1.3) are a cluster job scheduler and a
//! distributed storage system. Their simulations need inter-arrival times
//! (exponential), batch sizes (Poisson), heavy-tailed service times and file
//! sizes (bounded Pareto), popularity skew (Zipf), and general weighted
//! choices (Walker/Vose alias tables). All of these are implemented here from
//! scratch so that the workspace's output is a pure function of the seed.

use std::error::Error;
use std::fmt;

use rand::{Rng, RngCore};

/// Error returned when a distribution is constructed with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    what: &'static str,
}

impl ParamError {
    /// Creates a parameter error with a static description — public so
    /// downstream distribution adapters (e.g. the probe-distribution
    /// seam in `kdchoice-core`) report constructor misuse uniformly.
    pub fn new(what: &'static str) -> Self {
        Self { what }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl Error for ParamError {}

/// Draws a uniform value in the open interval (0, 1).
///
/// Open at 0 so that `ln(u)` is always finite.
#[inline]
fn open_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            return u;
        }
    }
}

/// Exponential distribution with rate `λ` (mean `1/λ`).
///
/// ```
/// use kdchoice_prng::{dist::Exponential, Xoshiro256PlusPlus};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let exp = Exponential::new(2.0)?;
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// let x = exp.sample(&mut rng);
/// assert!(x >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `rate` is not finite and positive.
    pub fn new(rate: f64) -> Result<Self, ParamError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ParamError::new("exponential rate must be finite and > 0"));
        }
        Ok(Self { rate })
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws one sample by inversion.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -open_unit(rng).ln() / self.rate
    }
}

/// Poisson distribution with mean `λ`.
///
/// Uses Knuth's product method for `λ ≤ 30` and a normal approximation with
/// continuity correction (clamped at 0) for larger means, which is accurate
/// to well under a percent in that regime and fast enough for workload
/// generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(ParamError::new("poisson mean must be finite and > 0"));
        }
        Ok(Self { lambda })
    }

    /// The mean `λ`.
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Draws one sample.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda <= 30.0 {
            // Knuth: count multiplications until the product drops below e^-λ.
            let limit = (-self.lambda).exp();
            let mut product = open_unit(rng);
            let mut count = 0u64;
            while product > limit {
                product *= open_unit(rng);
                count += 1;
            }
            count
        } else {
            // Normal approximation N(λ, λ) with continuity correction.
            let z = standard_normal(rng);
            let x = self.lambda + self.lambda.sqrt() * z + 0.5;
            if x < 0.0 {
                0
            } else {
                x.floor() as u64
            }
        }
    }
}

/// Draws a standard normal via the Box–Muller transform (one of the pair).
#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = open_unit(rng);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Bounded Pareto distribution on `[lo, hi]` with shape `alpha`.
///
/// The classic heavy-tailed service-time / file-size model: most mass near
/// `lo`, rare values near `hi`. Sampling is by inversion of the truncated
/// CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `0 < lo < hi` and `alpha > 0`, all finite.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Result<Self, ParamError> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(ParamError::new("pareto shape must be finite and > 0"));
        }
        if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi) {
            return Err(ParamError::new("pareto bounds must satisfy 0 < lo < hi"));
        }
        Ok(Self { alpha, lo, hi })
    }

    /// Draws one sample in `[lo, hi]`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        // Inverse of F(x) = (1 - (lo/x)^α) / (1 - (lo/hi)^α).
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha);
        x.clamp(self.lo, self.hi)
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s`
/// (`P(rank = i) ∝ 1/(i+1)^s`).
///
/// Uses a precomputed CDF table with binary search: `O(n)` memory, `O(log n)`
/// per sample, exact. Fine for the catalogue sizes (≤ millions) used in the
/// storage workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates the distribution over `0..n`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `n == 0` or `s` is not finite and ≥ 0.
    pub fn new(n: usize, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::new("zipf support must be non-empty"));
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(ParamError::new("zipf exponent must be finite and >= 0"));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point: the last entry must be exactly 1.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Ok(Self { cdf })
    }

    /// The size of the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Weighted discrete distribution using the Walker/Vose alias method:
/// `O(n)` construction, `O(1)` per sample.
///
/// ```
/// use kdchoice_prng::{dist::AliasTable, Xoshiro256PlusPlus};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let table = AliasTable::new(&[1.0, 0.0, 3.0])?;
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// for _ in 0..100 {
///     assert_ne!(table.sample(&mut rng), 1, "zero-weight index drawn");
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError::new("alias table needs at least one weight"));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(ParamError::new(
                "alias weights must be finite and non-negative",
            ));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ParamError::new("alias weights must not all be zero"));
        }
        let n = weights.len();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0usize; n];
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &l in &large {
            prob[l] = 1.0;
        }
        for &s in &small {
            // Only reachable through floating-point round-off.
            prob[s] = 1.0;
        }
        Ok(Self { prob, alias })
    }

    /// The number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index with probability proportional to its weight.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        let u: f64 = rng.gen();
        if u < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn exponential_mean_matches() {
        let exp = Exponential::new(0.5).unwrap();
        assert_eq!(exp.rate(), 0.5);
        assert_eq!(exp.mean(), 2.0);
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        let samples: Vec<f64> = (0..50_000).map(|_| exp.sample(&mut rng)).collect();
        let m = mean_of(&samples);
        assert!((m - 2.0).abs() < 0.05, "empirical mean {m}");
        assert!(samples.iter().all(|&x| x >= 0.0 && x.is_finite()));
    }

    #[test]
    fn poisson_rejects_bad_mean() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }

    #[test]
    fn poisson_small_lambda_mean_and_variance() {
        let p = Poisson::new(4.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        let samples: Vec<f64> = (0..50_000).map(|_| p.sample(&mut rng) as f64).collect();
        let m = mean_of(&samples);
        let v = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / samples.len() as f64;
        assert!((m - 4.0).abs() < 0.08, "empirical mean {m}");
        assert!((v - 4.0).abs() < 0.25, "empirical variance {v}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approx_sanely() {
        let p = Poisson::new(400.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let samples: Vec<f64> = (0..20_000).map(|_| p.sample(&mut rng) as f64).collect();
        let m = mean_of(&samples);
        assert!((m - 400.0).abs() < 2.0, "empirical mean {m}");
    }

    #[test]
    fn bounded_pareto_rejects_bad_params() {
        assert!(BoundedPareto::new(0.0, 1.0, 2.0).is_err());
        assert!(BoundedPareto::new(1.0, 2.0, 1.0).is_err());
        assert!(BoundedPareto::new(1.0, 0.0, 1.0).is_err());
        assert!(BoundedPareto::new(1.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let bp = BoundedPareto::new(1.2, 1.0, 1000.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        for _ in 0..20_000 {
            let x = bp.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        // Median should be near lo; a visible fraction should exceed 10*lo.
        let bp = BoundedPareto::new(1.0, 1.0, 10_000.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let mut samples: Vec<f64> = (0..20_000).map(|_| bp.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!(median < 3.0, "median {median}");
        let tail = samples.iter().filter(|&&x| x > 10.0).count() as f64 / samples.len() as f64;
        assert!(tail > 0.05, "tail mass {tail}");
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(5, -1.0).is_err());
        assert!(Zipf::new(5, f64::NAN).is_err());
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        assert_eq!(z.len(), 4);
        let mut rng = Xoshiro256PlusPlus::from_u64(6);
        let mut counts = [0u32; 4];
        let trials = 40_000;
        for _ in 0..trials {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / trials as f64;
            assert!((f - 0.25).abs() < 0.02, "frequency {f}");
        }
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(100, 1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(7);
        let trials = 30_000;
        let zero_hits = (0..trials).filter(|_| z.sample(&mut rng) == 0).count();
        // P(0) = 1/H_100 ≈ 0.193.
        let f = zero_hits as f64 / trials as f64;
        assert!((f - 0.193).abs() < 0.02, "rank-0 frequency {f}");
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(10, 2.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(8);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn alias_rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[1.0, -0.5]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn alias_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights).unwrap();
        assert_eq!(table.len(), 4);
        let mut rng = Xoshiro256PlusPlus::from_u64(9);
        let mut counts = [0u32; 4];
        let trials = 100_000;
        for _ in 0..trials {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let f = c as f64 / trials as f64;
            let want = weights[i] / 10.0;
            assert!((f - want).abs() < 0.01, "index {i}: {f} vs {want}");
        }
    }

    #[test]
    fn alias_single_category_always_drawn() {
        let table = AliasTable::new(&[0.7]).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(10);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn param_error_displays() {
        let e = Exponential::new(-1.0).unwrap_err();
        assert!(e.to_string().contains("invalid distribution parameter"));
    }
}
