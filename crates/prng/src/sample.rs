//! Sampling primitives used by the allocation processes.
//!
//! The (k,d)-choice process samples `d` bins **independently and uniformly at
//! random with replacement** each round; the serialized process additionally
//! needs random permutations (the σᵣ of Definition 1); Vöcking's always-go-left
//! baseline needs one uniform choice per group; and Floyd's algorithm is
//! provided for the (rare) places that need distinct samples.

use rand::{Rng, RngCore};

/// Size of the raw-u64 blocks pulled by the batched samplers.
const BLOCK: usize = 32;

/// A precomputed uniform sampler over `0..n`, using Lemire's
/// nearly-divisionless widening multiply (ACM TOMS 2019).
///
/// Each draw costs one generator output plus a 64×64→128-bit multiply; a
/// modulo is computed only when the low half of the product lands below `n`
/// (probability `n / 2^64`), so the per-probe division of naive
/// `x % n` sampling disappears from the hot path entirely.
///
/// ```
/// use kdchoice_prng::{sample::UniformBin, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// let bins = UniformBin::new(10);
/// for _ in 0..100 {
///     assert!(bins.sample(&mut rng) < 10);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformBin {
    span: u64,
}

impl UniformBin {
    /// Creates a sampler over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "cannot sample from an empty range");
        Self { span: n as u64 }
    }

    /// The exclusive upper bound `n`.
    pub fn n(&self) -> usize {
        self.span as usize
    }

    /// Draws one index uniformly from `0..n`.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rand::lemire_u64(rng, self.span) as usize
    }

    /// Maps one raw generator output to an index, falling back to fresh
    /// draws from `rng` in the (probability `n / 2^64`) rejection band.
    ///
    /// This is the widening-multiply step the batched samplers apply to
    /// pre-pulled blocks of generator outputs.
    #[inline]
    pub fn map_raw<R: RngCore + ?Sized>(&self, raw: u64, rng: &mut R) -> usize {
        let m = u128::from(raw) * u128::from(self.span);
        let lo = m as u64;
        if lo >= self.span {
            return (m >> 64) as usize;
        }
        // Rare slow path (probability span / 2^64): compute the exact
        // rejection threshold. Accepting `raw` when lo ≥ threshold is
        // Lemire's exact-uniformity condition; on true rejection, delegate
        // to `lemire_u64`, whose fresh draws use the identical accept
        // region — one shared implementation of the rejection logic, and
        // the same stream a scalar retry loop would consume.
        let threshold = self.span.wrapping_neg() % self.span;
        if lo >= threshold {
            return (m >> 64) as usize;
        }
        rand::lemire_u64(rng, self.span) as usize
    }
}

/// Fills `out` with `count` indices drawn uniformly at random **with
/// replacement** from `0..n`.
///
/// `out` is cleared first; its capacity is reused across calls, which is the
/// hot path of every allocation round in this workspace. Internally the
/// generator outputs are pulled in blocks of 32 and mapped through the
/// widening multiply of [`UniformBin`], so the per-value work is one
/// multiply and no division; when `rng` is a concrete generator type the
/// whole block loop monomorphizes and inlines.
///
/// The emitted indices are identical to `count` successive
/// [`UniformBin::sample`] draws on the same generator state, except in the
/// astronomically rare rejection band (probability `n / 2^64` per value).
///
/// # Panics
///
/// Panics if `n == 0` and `count > 0`.
///
/// ```
/// use kdchoice_prng::{sample::fill_with_replacement, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// let mut out = Vec::new();
/// fill_with_replacement(&mut rng, 10, 5, &mut out);
/// assert_eq!(out.len(), 5);
/// assert!(out.iter().all(|&b| b < 10));
/// ```
pub fn fill_with_replacement<R: RngCore + ?Sized>(
    rng: &mut R,
    n: usize,
    count: usize,
    out: &mut Vec<usize>,
) {
    assert!(n > 0 || count == 0, "cannot sample from an empty range");
    out.clear();
    if count == 0 {
        return;
    }
    out.reserve(count);
    let bins = UniformBin::new(n);
    let mut raw = [0u64; BLOCK];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(BLOCK);
        // Block-pull raw outputs first (tight generator loop), then map.
        for slot in raw[..take].iter_mut() {
            *slot = rng.next_u64();
        }
        for &r in &raw[..take] {
            out.push(bins.map_raw(r, rng));
        }
        remaining -= take;
    }
}

/// Draws `count` **distinct** indices uniformly at random from `0..n` using
/// Robert Floyd's algorithm (Communications of the ACM, 1987).
///
/// Runs in `O(count²)` membership checks, which is optimal in allocations for
/// the small `count` values (≤ a few hundred) used here, and draws exactly
/// `count` random values.
///
/// # Panics
///
/// Panics if `count > n`.
///
/// ```
/// use kdchoice_prng::{sample::sample_distinct, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(2);
/// let s = sample_distinct(&mut rng, 100, 10);
/// let mut dedup = s.clone();
/// dedup.sort_unstable();
/// dedup.dedup();
/// assert_eq!(dedup.len(), 10);
/// ```
pub fn sample_distinct<R: RngCore + ?Sized>(rng: &mut R, n: usize, count: usize) -> Vec<usize> {
    assert!(
        count <= n,
        "cannot draw {count} distinct values from 0..{n}"
    );
    let mut chosen: Vec<usize> = Vec::with_capacity(count);
    for j in (n - count)..n {
        let t = rng.gen_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen
}

/// Shuffles `slice` in place with the Fisher–Yates algorithm.
///
/// ```
/// use kdchoice_prng::{sample::shuffle, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(3);
/// let mut v: Vec<u32> = (0..8).collect();
/// shuffle(&mut rng, &mut v);
/// let mut sorted = v.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..8).collect::<Vec<u32>>());
/// ```
pub fn shuffle<R: RngCore + ?Sized, T>(rng: &mut R, slice: &mut [T]) {
    for i in (1..slice.len()).rev() {
        let j = rng.gen_range(0..=i);
        slice.swap(i, j);
    }
}

/// Returns a uniformly random permutation of `0..k`.
///
/// Used to draw the per-round permutations σᵣ of the serialized (k,d)-choice
/// process (Definition 1 in the paper).
///
/// ```
/// use kdchoice_prng::{sample::random_permutation, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(4);
/// let p = random_permutation(&mut rng, 6);
/// let mut sorted = p.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
/// ```
pub fn random_permutation<R: RngCore + ?Sized>(rng: &mut R, k: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..k).collect();
    shuffle(rng, &mut p);
    p
}

/// Picks a uniformly random element index among the minimal elements of
/// `items` under the key function, i.e. an argmin with ties broken uniformly
/// at random (single pass, reservoir style).
///
/// Returns `None` on an empty slice. This is the primitive behind every
/// "least loaded bin, ties broken randomly" step in the workspace.
///
/// ```
/// use kdchoice_prng::{sample::random_argmin, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(5);
/// let loads = [3u32, 1, 1, 2];
/// let i = random_argmin(&mut rng, &loads, |&l| l).unwrap();
/// assert!(i == 1 || i == 2);
/// ```
pub fn random_argmin<R, T, K, F>(rng: &mut R, items: &[T], mut key: F) -> Option<usize>
where
    R: RngCore + ?Sized,
    K: Ord,
    F: FnMut(&T) -> K,
{
    let mut best: Option<(K, usize, u64)> = None;
    let mut ties: u64 = 0;
    for (i, item) in items.iter().enumerate() {
        let k = key(item);
        match &mut best {
            None => {
                ties = 1;
                best = Some((k, i, 1));
            }
            Some((bk, bi, _)) => {
                if k < *bk {
                    ties = 1;
                    *bk = k;
                    *bi = i;
                } else if k == *bk {
                    // Reservoir: replace the incumbent with probability 1/ties.
                    ties += 1;
                    if rng.gen_range(0..ties) == 0 {
                        *bi = i;
                    }
                }
            }
        }
    }
    best.map(|(_, i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn uniform_bin_matches_fill_with_replacement_stream() {
        // The batched fill and scalar UniformBin draws must consume the
        // generator identically (outside the ~2^-50 rejection band).
        let mut a = Xoshiro256PlusPlus::from_u64(99);
        let mut b = Xoshiro256PlusPlus::from_u64(99);
        let mut out = Vec::new();
        fill_with_replacement(&mut a, 12_345, 1000, &mut out);
        let bins = UniformBin::new(12_345);
        let scalar: Vec<usize> = (0..1000).map(|_| bins.sample(&mut b)).collect();
        assert_eq!(out, scalar);
        assert_eq!(a, b, "generator states must coincide after the batch");
    }

    #[test]
    fn uniform_bin_is_roughly_uniform() {
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let bins = UniformBin::new(8);
        assert_eq!(bins.n(), 8);
        let mut counts = [0u64; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[bins.sample(&mut rng)] += 1;
        }
        let expected = draws as f64 / 8.0;
        for &c in &counts {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "bucket off by {rel}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_bin_rejects_zero() {
        let _ = UniformBin::new(0);
    }

    #[test]
    fn with_replacement_is_in_range() {
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        let mut out = Vec::new();
        fill_with_replacement(&mut rng, 7, 1000, &mut out);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().all(|&b| b < 7));
    }

    #[test]
    fn with_replacement_zero_count_from_empty_is_ok() {
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        let mut out = vec![1, 2, 3];
        fill_with_replacement(&mut rng, 0, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn with_replacement_panics_on_empty_range() {
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        let mut out = Vec::new();
        fill_with_replacement(&mut rng, 0, 1, &mut out);
    }

    #[test]
    fn with_replacement_hits_every_bin_eventually() {
        let mut rng = Xoshiro256PlusPlus::from_u64(11);
        let mut out = Vec::new();
        fill_with_replacement(&mut rng, 16, 2000, &mut out);
        let mut seen = [false; 16];
        for &b in &out {
            seen[b] = true;
        }
        assert!(seen.iter().all(|&s| s), "coupon collector failure");
    }

    #[test]
    fn distinct_samples_are_distinct_and_in_range() {
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        for count in [0usize, 1, 5, 50, 100] {
            let s = sample_distinct(&mut rng, 100, count);
            assert_eq!(s.len(), count);
            assert!(s.iter().all(|&x| x < 100));
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), count);
        }
    }

    #[test]
    fn distinct_full_range_is_a_permutation() {
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let mut s = sample_distinct(&mut rng, 20, 20);
        s.sort_unstable();
        assert_eq!(s, (0..20).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn distinct_panics_when_count_exceeds_n() {
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let _ = sample_distinct(&mut rng, 3, 4);
    }

    #[test]
    fn shuffle_of_empty_and_singleton_is_noop() {
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        let mut empty: [u8; 0] = [];
        shuffle(&mut rng, &mut empty);
        let mut one = [42];
        shuffle(&mut rng, &mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn permutation_is_roughly_uniform() {
        // All 6 permutations of 0..3 should appear with frequency ~1/6.
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let mut counts = std::collections::HashMap::new();
        let trials = 6000;
        for _ in 0..trials {
            let p = random_permutation(&mut rng, 3);
            *counts.entry(p).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 6);
        for (_, &c) in counts.iter() {
            let f = c as f64 / trials as f64;
            assert!((f - 1.0 / 6.0).abs() < 0.03, "permutation frequency {f}");
        }
    }

    #[test]
    fn argmin_finds_unique_minimum() {
        let mut rng = Xoshiro256PlusPlus::from_u64(6);
        let v = [5, 4, 1, 9];
        assert_eq!(random_argmin(&mut rng, &v, |&x| x), Some(2));
    }

    #[test]
    fn argmin_empty_is_none() {
        let mut rng = Xoshiro256PlusPlus::from_u64(6);
        let v: [u8; 0] = [];
        assert_eq!(random_argmin(&mut rng, &v, |&x| x), None);
    }

    #[test]
    fn argmin_ties_are_uniform() {
        let mut rng = Xoshiro256PlusPlus::from_u64(7);
        let v = [1, 0, 0, 0];
        let mut counts = [0u32; 4];
        let trials = 9000;
        for _ in 0..trials {
            let i = random_argmin(&mut rng, &v, |&x| x).unwrap();
            counts[i] += 1;
        }
        assert_eq!(counts[0], 0);
        for &c in &counts[1..] {
            let f = c as f64 / trials as f64;
            assert!((f - 1.0 / 3.0).abs() < 0.03, "tie frequency {f}");
        }
    }
}
