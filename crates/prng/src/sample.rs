//! Sampling primitives used by the allocation processes.
//!
//! The (k,d)-choice process samples `d` bins **independently and uniformly at
//! random with replacement** each round; the serialized process additionally
//! needs random permutations (the σᵣ of Definition 1); Vöcking's always-go-left
//! baseline needs one uniform choice per group; and Floyd's algorithm is
//! provided for the (rare) places that need distinct samples.

use rand::{Rng, RngCore};

/// Size of the raw-u64 blocks pulled by the batched samplers.
const BLOCK: usize = 32;

/// A precomputed uniform sampler over `0..n`, using Lemire's
/// nearly-divisionless widening multiply (ACM TOMS 2019).
///
/// Each draw costs one generator output plus a 64×64→128-bit multiply; a
/// modulo is computed only when the low half of the product lands below `n`
/// (probability `n / 2^64`), so the per-probe division of naive
/// `x % n` sampling disappears from the hot path entirely.
///
/// ```
/// use kdchoice_prng::{sample::UniformBin, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// let bins = UniformBin::new(10);
/// for _ in 0..100 {
///     assert!(bins.sample(&mut rng) < 10);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformBin {
    span: u64,
}

impl UniformBin {
    /// Creates a sampler over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "cannot sample from an empty range");
        Self { span: n as u64 }
    }

    /// The exclusive upper bound `n`.
    pub fn n(&self) -> usize {
        self.span as usize
    }

    /// Draws one index uniformly from `0..n`.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rand::lemire_u64(rng, self.span) as usize
    }

    /// Maps one raw generator output to an index, falling back to fresh
    /// draws from `rng` in the (probability `n / 2^64`) rejection band.
    ///
    /// This is the widening-multiply step the batched samplers apply to
    /// pre-pulled blocks of generator outputs.
    #[inline]
    pub fn map_raw<R: RngCore + ?Sized>(&self, raw: u64, rng: &mut R) -> usize {
        let m = u128::from(raw) * u128::from(self.span);
        let lo = m as u64;
        if lo >= self.span {
            return (m >> 64) as usize;
        }
        // Rare slow path (probability span / 2^64): compute the exact
        // rejection threshold. Accepting `raw` when lo ≥ threshold is
        // Lemire's exact-uniformity condition; on true rejection, delegate
        // to `lemire_u64`, whose fresh draws use the identical accept
        // region — one shared implementation of the rejection logic, and
        // the same stream a scalar retry loop would consume.
        let threshold = self.span.wrapping_neg() % self.span;
        if lo >= threshold {
            return (m >> 64) as usize;
        }
        rand::lemire_u64(rng, self.span) as usize
    }

    /// Fills `out` with sequential draws — the **same generator stream**
    /// as calling [`UniformBin::sample`] once per slot, unlike the
    /// block-pulling [`fill_with_replacement`].
    ///
    /// This is the snapshot-read probe path of the shared-nothing
    /// service engine: probes land in a caller-owned scratch slice (no
    /// per-request allocation) while keeping bit-identical streams with
    /// the scalar per-request path, so cross-backend equivalence is an
    /// API guarantee rather than a coincidence.
    #[inline]
    pub fn fill_seq<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [usize]) {
        for slot in out.iter_mut() {
            *slot = self.sample(rng);
        }
    }
}

/// A precomputed **weighted** sampler over `0..n` — the non-uniform probe
/// distribution of the heterogeneous-bins extension — built on a
/// Walker/Vose alias table with integer thresholds: O(n) construction,
/// O(1) divisionless draws, one generator output per draw.
///
/// Each draw pulls a single `u64` and splits it with one widening
/// multiply: the high half selects the alias slot, the low half (the
/// fractional part of `raw · n / 2⁶⁴`) is the accept/alias coin compared
/// against a 32-bit threshold packed next to the alias index in **one**
/// table word. No division, no `f64` arithmetic, no second generator
/// output, one table load — the weighted draw costs the same generator
/// traffic as [`UniformBin`] plus a single cache-line access, which is
/// what keeps the batched round engine's inner loop shape intact under
/// weighted probing (raced in `BENCH_results.json`,
/// `weighted_sampling`).
///
/// **Exactness.** Reusing the low product half as the coin and
/// quantizing thresholds to 32 bits introduces a per-category bias of at
/// most `≈ 2⁻³² + n/2⁶⁴`, statistically invisible at any simulation
/// scale; the chi-square goodness-of-fit suite in
/// `tests/weighted_sampling.rs` bounds it empirically.
///
/// **Uniform degeneration.** When every weight is equal the constructor
/// degenerates to a [`UniformBin`] internally, so the draw stream is
/// **bit-identical** to `UniformBin` on the same generator state (locked
/// by test) — uniform experiments cannot drift by switching to the
/// weighted API.
///
/// ```
/// use kdchoice_prng::{sample::WeightedBin, Xoshiro256PlusPlus};
///
/// # fn main() -> Result<(), kdchoice_prng::dist::ParamError> {
/// let bins = WeightedBin::new(&[1.0, 0.0, 3.0])?;
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// for _ in 0..100 {
///     let b = bins.sample(&mut rng);
///     assert!(b < 3 && b != 1, "zero-weight bin drawn");
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedBin {
    kind: WeightedKind,
}

#[derive(Debug, Clone, PartialEq)]
enum WeightedKind {
    /// All weights equal: delegate to the uniform sampler (bit-identical
    /// stream to [`UniformBin`]).
    Uniform(UniformBin),
    /// Walker/Vose alias table, one packed `u64` per slot:
    /// `(accept threshold as u32) << 32 | alias index`. Packing keeps a
    /// draw to exactly **one** table load (one cache line), which is what
    /// the uniform/weighted throughput race in `BENCH_results.json`
    /// measures — at two separate arrays the second dependent load
    /// roughly doubles the miss cost at large `n`.
    Alias {
        /// `packed[i]`: accept slot `i` when the top 32 coin bits are
        /// `< packed[i] >> 32`, else jump to `packed[i] & 0xFFFF_FFFF`.
        /// Always-accept slots store threshold `u32::MAX` with a
        /// self-alias, so the `2⁻³²` miss resolves to the same slot.
        packed: Vec<u64>,
    },
}

impl WeightedBin {
    /// Builds the sampler from non-negative weights (not necessarily
    /// normalized): bin `i` is drawn with probability
    /// `weights[i] / Σ weights`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::dist::ParamError`] if `weights` is empty, longer
    /// than `u32::MAX`, contains a negative or non-finite value, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> Result<Self, crate::dist::ParamError> {
        use crate::dist::ParamError;
        if weights.is_empty() {
            return Err(ParamError::new(
                "weighted sampler needs at least one weight",
            ));
        }
        if weights.len() > u32::MAX as usize {
            return Err(ParamError::new(
                "weighted sampler supports at most 2^32 bins",
            ));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(ParamError::new(
                "weighted sampler weights must be finite and non-negative",
            ));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ParamError::new(
                "weighted sampler weights must not all be zero",
            ));
        }
        if weights.iter().all(|&w| w == weights[0]) {
            return Ok(Self {
                kind: WeightedKind::Uniform(UniformBin::new(weights.len())),
            });
        }
        let n = weights.len();
        // Walker/Vose: split slots into sub-unit ("small") and super-unit
        // ("large") scaled probabilities, then pair each small slot with a
        // large donor.
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut packed: Vec<u64> = (0..n as u64).map(pack_always_accept).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            packed[s] = (prob_to_u32(scaled[s]) << 32) | l as u64;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers hold probability 1 (up to round-off): they keep their
        // initial always-accept self-alias entry.
        Ok(Self {
            kind: WeightedKind::Alias { packed },
        })
    }

    /// A Zipf(s)-weighted sampler over `0..n`
    /// (`P(i) ∝ 1/(i+1)^s`; `s = 0` degenerates to uniform) — the skewed
    /// probe distribution of the heterogeneous scenarios, with O(1) draws
    /// instead of the O(log n) CDF search of [`crate::dist::Zipf`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::dist::ParamError`] if `n == 0` or `s` is not
    /// finite and ≥ 0.
    pub fn zipf(n: usize, s: f64) -> Result<Self, crate::dist::ParamError> {
        use crate::dist::ParamError;
        if n == 0 {
            return Err(ParamError::new(
                "weighted sampler support must be non-empty",
            ));
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(ParamError::new("zipf exponent must be finite and >= 0"));
        }
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        Self::new(&weights)
    }

    /// The exclusive upper bound `n` (the number of categories).
    pub fn n(&self) -> usize {
        match &self.kind {
            WeightedKind::Uniform(u) => u.n(),
            WeightedKind::Alias { packed } => packed.len(),
        }
    }

    /// Whether the weights were all equal, i.e. the sampler draws the
    /// exact [`UniformBin`] stream.
    pub fn is_uniform(&self) -> bool {
        matches!(self.kind, WeightedKind::Uniform(_))
    }

    /// Draws one index with probability proportional to its weight.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let raw = rng.next_u64();
        self.map_raw(raw, rng)
    }

    /// Maps one raw generator output to an index — the widening-multiply
    /// step the batched [`fill_weighted`] applies to pre-pulled blocks.
    ///
    /// In the uniform degeneration this is exactly
    /// [`UniformBin::map_raw`] (with its rare rejection fallback drawing
    /// from `rng`); in the alias case no fallback exists and `rng` is
    /// never touched.
    #[inline]
    pub fn map_raw<R: RngCore + ?Sized>(&self, raw: u64, rng: &mut R) -> usize {
        match &self.kind {
            WeightedKind::Uniform(u) => u.map_raw(raw, rng),
            WeightedKind::Alias { packed } => {
                let m = u128::from(raw) * (packed.len() as u128);
                let i = (m >> 64) as usize;
                // The low product half is the fractional part of
                // raw·n/2⁶⁴ scaled to u64; its top 32 bits are the
                // accept/alias coin.
                let coin = (m as u64) >> 32;
                let entry = packed[i];
                if coin < entry >> 32 {
                    i
                } else {
                    (entry & 0xFFFF_FFFF) as usize
                }
            }
        }
    }

    /// Fills `out` with sequential draws — the same generator stream as
    /// calling [`WeightedBin::sample`] once per slot, mirroring
    /// [`UniformBin::fill_seq`] for the snapshot-read probe path.
    #[inline]
    pub fn fill_seq<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [usize]) {
        for slot in out.iter_mut() {
            *slot = self.sample(rng);
        }
    }
}

/// The packed always-accept entry for slot `i`: threshold `u32::MAX`
/// with a self-alias (the `2⁻³²` coin miss resolves to the same slot).
#[inline]
fn pack_always_accept(i: u64) -> u64 {
    (u64::from(u32::MAX) << 32) | i
}

/// Scales an accept probability in `[0, 1)` to a 32-bit threshold in the
/// high half of a packed entry (Rust float→int casts saturate).
#[inline]
fn prob_to_u32(p: f64) -> u64 {
    (p * (u32::MAX as f64 + 1.0)) as u64 & 0xFFFF_FFFF
}

/// Fills `out` with `count` indices drawn **with replacement** from the
/// weighted distribution — the batch API mirroring
/// [`fill_with_replacement`], and the weighted hot path of the batched
/// round engine.
///
/// `out` is cleared first; its capacity is reused across calls. Generator
/// outputs are pulled in blocks of 32 and mapped through
/// [`WeightedBin::map_raw`], so the per-value work is one widening
/// multiply, one compare, and (on the alias branch) one table load — no
/// division and no branch on the block-pull loop.
///
/// The emitted indices are identical to `count` successive
/// [`WeightedBin::sample`] draws on the same generator state; with all
/// weights equal both are additionally bit-identical to
/// [`fill_with_replacement`] (outside its ~`n/2^64` rejection band).
///
/// ```
/// use kdchoice_prng::{sample::{fill_weighted, WeightedBin}, Xoshiro256PlusPlus};
///
/// # fn main() -> Result<(), kdchoice_prng::dist::ParamError> {
/// let bins = WeightedBin::new(&[1.0, 2.0, 3.0])?;
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// let mut out = Vec::new();
/// fill_weighted(&mut rng, &bins, 5, &mut out);
/// assert_eq!(out.len(), 5);
/// assert!(out.iter().all(|&b| b < 3));
/// # Ok(())
/// # }
/// ```
pub fn fill_weighted<R: RngCore + ?Sized>(
    rng: &mut R,
    bins: &WeightedBin,
    count: usize,
    out: &mut Vec<usize>,
) {
    // The uniform degeneration takes the exact uniform batch path
    // (bit-identical stream, see the struct docs).
    if let WeightedKind::Uniform(u) = &bins.kind {
        return fill_with_replacement(rng, u.n(), count, out);
    }
    out.clear();
    if count == 0 {
        return;
    }
    out.reserve(count);
    let WeightedKind::Alias { packed } = &bins.kind else {
        unreachable!("uniform handled above");
    };
    let n = packed.len() as u128;
    let mut raw = [0u64; BLOCK];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(BLOCK);
        for slot in raw[..take].iter_mut() {
            *slot = rng.next_u64();
        }
        // The branchless map of `WeightedBin::map_raw`, with the kind
        // dispatch hoisted out of the block loop: one widening multiply,
        // one table load, one cmov per value (`extend` over the exact-
        // size block iterator skips the per-value capacity check).
        out.extend(raw[..take].iter().map(|&r| {
            let m = u128::from(r) * n;
            let i = (m >> 64) as usize;
            let coin = (m as u64) >> 32;
            let entry = packed[i];
            if coin < entry >> 32 {
                i
            } else {
                (entry & 0xFFFF_FFFF) as usize
            }
        }));
        remaining -= take;
    }
}

/// Fills `out` with `count` indices drawn uniformly at random **with
/// replacement** from `0..n`.
///
/// `out` is cleared first; its capacity is reused across calls, which is the
/// hot path of every allocation round in this workspace. Internally the
/// generator outputs are pulled in blocks of 32 and mapped through the
/// widening multiply of [`UniformBin`], so the per-value work is one
/// multiply and no division; when `rng` is a concrete generator type the
/// whole block loop monomorphizes and inlines.
///
/// The emitted indices are identical to `count` successive
/// [`UniformBin::sample`] draws on the same generator state, except in the
/// astronomically rare rejection band (probability `n / 2^64` per value).
///
/// # Panics
///
/// Panics if `n == 0` and `count > 0`.
///
/// ```
/// use kdchoice_prng::{sample::fill_with_replacement, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// let mut out = Vec::new();
/// fill_with_replacement(&mut rng, 10, 5, &mut out);
/// assert_eq!(out.len(), 5);
/// assert!(out.iter().all(|&b| b < 10));
/// ```
pub fn fill_with_replacement<R: RngCore + ?Sized>(
    rng: &mut R,
    n: usize,
    count: usize,
    out: &mut Vec<usize>,
) {
    assert!(n > 0 || count == 0, "cannot sample from an empty range");
    out.clear();
    if count == 0 {
        return;
    }
    out.reserve(count);
    let bins = UniformBin::new(n);
    let mut raw = [0u64; BLOCK];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(BLOCK);
        // Block-pull raw outputs first (tight generator loop), then map.
        for slot in raw[..take].iter_mut() {
            *slot = rng.next_u64();
        }
        for &r in &raw[..take] {
            out.push(bins.map_raw(r, rng));
        }
        remaining -= take;
    }
}

/// Draws `count` **distinct** indices uniformly at random from `0..n` using
/// Robert Floyd's algorithm (Communications of the ACM, 1987).
///
/// Runs in `O(count²)` membership checks, which is optimal in allocations for
/// the small `count` values (≤ a few hundred) used here, and draws exactly
/// `count` random values.
///
/// # Panics
///
/// Panics if `count > n`.
///
/// ```
/// use kdchoice_prng::{sample::sample_distinct, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(2);
/// let s = sample_distinct(&mut rng, 100, 10);
/// let mut dedup = s.clone();
/// dedup.sort_unstable();
/// dedup.dedup();
/// assert_eq!(dedup.len(), 10);
/// ```
pub fn sample_distinct<R: RngCore + ?Sized>(rng: &mut R, n: usize, count: usize) -> Vec<usize> {
    assert!(
        count <= n,
        "cannot draw {count} distinct values from 0..{n}"
    );
    let mut chosen: Vec<usize> = Vec::with_capacity(count);
    for j in (n - count)..n {
        let t = rng.gen_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen
}

/// Shuffles `slice` in place with the Fisher–Yates algorithm.
///
/// ```
/// use kdchoice_prng::{sample::shuffle, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(3);
/// let mut v: Vec<u32> = (0..8).collect();
/// shuffle(&mut rng, &mut v);
/// let mut sorted = v.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..8).collect::<Vec<u32>>());
/// ```
pub fn shuffle<R: RngCore + ?Sized, T>(rng: &mut R, slice: &mut [T]) {
    for i in (1..slice.len()).rev() {
        let j = rng.gen_range(0..=i);
        slice.swap(i, j);
    }
}

/// Returns a uniformly random permutation of `0..k`.
///
/// Used to draw the per-round permutations σᵣ of the serialized (k,d)-choice
/// process (Definition 1 in the paper).
///
/// ```
/// use kdchoice_prng::{sample::random_permutation, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(4);
/// let p = random_permutation(&mut rng, 6);
/// let mut sorted = p.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
/// ```
pub fn random_permutation<R: RngCore + ?Sized>(rng: &mut R, k: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..k).collect();
    shuffle(rng, &mut p);
    p
}

/// Picks a uniformly random element index among the minimal elements of
/// `items` under the key function, i.e. an argmin with ties broken uniformly
/// at random (single pass, reservoir style).
///
/// Returns `None` on an empty slice. This is the primitive behind every
/// "least loaded bin, ties broken randomly" step in the workspace.
///
/// ```
/// use kdchoice_prng::{sample::random_argmin, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(5);
/// let loads = [3u32, 1, 1, 2];
/// let i = random_argmin(&mut rng, &loads, |&l| l).unwrap();
/// assert!(i == 1 || i == 2);
/// ```
pub fn random_argmin<R, T, K, F>(rng: &mut R, items: &[T], mut key: F) -> Option<usize>
where
    R: RngCore + ?Sized,
    K: Ord,
    F: FnMut(&T) -> K,
{
    let mut best: Option<(K, usize, u64)> = None;
    let mut ties: u64 = 0;
    for (i, item) in items.iter().enumerate() {
        let k = key(item);
        match &mut best {
            None => {
                ties = 1;
                best = Some((k, i, 1));
            }
            Some((bk, bi, _)) => {
                if k < *bk {
                    ties = 1;
                    *bk = k;
                    *bi = i;
                } else if k == *bk {
                    // Reservoir: replace the incumbent with probability 1/ties.
                    ties += 1;
                    if rng.gen_range(0..ties) == 0 {
                        *bi = i;
                    }
                }
            }
        }
    }
    best.map(|(_, i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn uniform_bin_matches_fill_with_replacement_stream() {
        // The batched fill and scalar UniformBin draws must consume the
        // generator identically (outside the ~2^-50 rejection band).
        let mut a = Xoshiro256PlusPlus::from_u64(99);
        let mut b = Xoshiro256PlusPlus::from_u64(99);
        let mut out = Vec::new();
        fill_with_replacement(&mut a, 12_345, 1000, &mut out);
        let bins = UniformBin::new(12_345);
        let scalar: Vec<usize> = (0..1000).map(|_| bins.sample(&mut b)).collect();
        assert_eq!(out, scalar);
        assert_eq!(a, b, "generator states must coincide after the batch");
    }

    #[test]
    fn fill_seq_matches_scalar_sample_stream() {
        // The sequential slice fill is *defined* as repeated sample();
        // lock the stream identity for both samplers so the snapshot-read
        // probe path cannot drift from the per-request path.
        let bins = UniformBin::new(509);
        let mut a = Xoshiro256PlusPlus::from_u64(0xF111);
        let mut b = Xoshiro256PlusPlus::from_u64(0xF111);
        let mut out = [0usize; 97];
        bins.fill_seq(&mut a, &mut out);
        let scalar: Vec<usize> = (0..97).map(|_| bins.sample(&mut b)).collect();
        assert_eq!(&out[..], &scalar[..]);
        assert_eq!(a, b);

        let weighted = WeightedBin::zipf(64, 1.1).unwrap();
        let mut a = Xoshiro256PlusPlus::from_u64(0xF112);
        let mut b = Xoshiro256PlusPlus::from_u64(0xF112);
        let mut out = [0usize; 97];
        weighted.fill_seq(&mut a, &mut out);
        let scalar: Vec<usize> = (0..97).map(|_| weighted.sample(&mut b)).collect();
        assert_eq!(&out[..], &scalar[..]);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_bin_is_roughly_uniform() {
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let bins = UniformBin::new(8);
        assert_eq!(bins.n(), 8);
        let mut counts = [0u64; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[bins.sample(&mut rng)] += 1;
        }
        let expected = draws as f64 / 8.0;
        for &c in &counts {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "bucket off by {rel}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_bin_rejects_zero() {
        let _ = UniformBin::new(0);
    }

    #[test]
    fn with_replacement_is_in_range() {
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        let mut out = Vec::new();
        fill_with_replacement(&mut rng, 7, 1000, &mut out);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().all(|&b| b < 7));
    }

    #[test]
    fn with_replacement_zero_count_from_empty_is_ok() {
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        let mut out = vec![1, 2, 3];
        fill_with_replacement(&mut rng, 0, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn with_replacement_panics_on_empty_range() {
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        let mut out = Vec::new();
        fill_with_replacement(&mut rng, 0, 1, &mut out);
    }

    #[test]
    fn with_replacement_hits_every_bin_eventually() {
        let mut rng = Xoshiro256PlusPlus::from_u64(11);
        let mut out = Vec::new();
        fill_with_replacement(&mut rng, 16, 2000, &mut out);
        let mut seen = [false; 16];
        for &b in &out {
            seen[b] = true;
        }
        assert!(seen.iter().all(|&s| s), "coupon collector failure");
    }

    #[test]
    fn distinct_samples_are_distinct_and_in_range() {
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        for count in [0usize, 1, 5, 50, 100] {
            let s = sample_distinct(&mut rng, 100, count);
            assert_eq!(s.len(), count);
            assert!(s.iter().all(|&x| x < 100));
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), count);
        }
    }

    #[test]
    fn distinct_full_range_is_a_permutation() {
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let mut s = sample_distinct(&mut rng, 20, 20);
        s.sort_unstable();
        assert_eq!(s, (0..20).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn distinct_panics_when_count_exceeds_n() {
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let _ = sample_distinct(&mut rng, 3, 4);
    }

    #[test]
    fn shuffle_of_empty_and_singleton_is_noop() {
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        let mut empty: [u8; 0] = [];
        shuffle(&mut rng, &mut empty);
        let mut one = [42];
        shuffle(&mut rng, &mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn permutation_is_roughly_uniform() {
        // All 6 permutations of 0..3 should appear with frequency ~1/6.
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let mut counts = std::collections::HashMap::new();
        let trials = 6000;
        for _ in 0..trials {
            let p = random_permutation(&mut rng, 3);
            *counts.entry(p).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 6);
        for (_, &c) in counts.iter() {
            let f = c as f64 / trials as f64;
            assert!((f - 1.0 / 6.0).abs() < 0.03, "permutation frequency {f}");
        }
    }

    #[test]
    fn weighted_bin_rejects_bad_weights() {
        assert!(WeightedBin::new(&[]).is_err());
        assert!(WeightedBin::new(&[1.0, -0.5]).is_err());
        assert!(WeightedBin::new(&[0.0, 0.0]).is_err());
        assert!(WeightedBin::new(&[f64::NAN]).is_err());
        assert!(WeightedBin::new(&[f64::INFINITY, 1.0]).is_err());
        assert!(WeightedBin::zipf(0, 1.0).is_err());
        assert!(WeightedBin::zipf(4, -1.0).is_err());
        assert!(WeightedBin::zipf(4, f64::NAN).is_err());
    }

    #[test]
    fn weighted_bin_equal_weights_degenerates_to_uniform() {
        for weights in [vec![1.0; 7], vec![0.25; 3], vec![42.0]] {
            let w = WeightedBin::new(&weights).unwrap();
            assert!(w.is_uniform(), "{weights:?}");
            assert_eq!(w.n(), weights.len());
        }
        assert!(WeightedBin::zipf(5, 0.0).unwrap().is_uniform());
        assert!(!WeightedBin::new(&[1.0, 2.0]).unwrap().is_uniform());
        assert!(!WeightedBin::zipf(5, 1.0).unwrap().is_uniform());
    }

    #[test]
    fn weighted_bin_equal_weights_matches_uniform_bin_stream() {
        // The uniform degeneration must consume and map the generator
        // exactly like UniformBin — the contract the engine-level
        // uniform/weighted equivalence rests on.
        let n = 12_345;
        let w = WeightedBin::new(&vec![3.0; n]).unwrap();
        let u = UniformBin::new(n);
        let mut a = Xoshiro256PlusPlus::from_u64(77);
        let mut b = Xoshiro256PlusPlus::from_u64(77);
        for _ in 0..2000 {
            assert_eq!(w.sample(&mut a), u.sample(&mut b));
        }
        assert_eq!(a, b, "generator states must coincide");
    }

    #[test]
    fn fill_weighted_matches_scalar_draws() {
        let w = WeightedBin::new(&[0.5, 1.5, 3.0, 0.0, 2.0]).unwrap();
        let mut a = Xoshiro256PlusPlus::from_u64(8);
        let mut b = Xoshiro256PlusPlus::from_u64(8);
        let mut out = Vec::new();
        fill_weighted(&mut a, &w, 500, &mut out);
        let scalar: Vec<usize> = (0..500).map(|_| w.sample(&mut b)).collect();
        assert_eq!(out, scalar);
        assert_eq!(a, b);
    }

    #[test]
    fn fill_weighted_zero_count_clears() {
        let w = WeightedBin::new(&[1.0, 2.0]).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(8);
        let mut out = vec![9, 9];
        fill_weighted(&mut rng, &w, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn weighted_bin_matches_weights_empirically() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let w = WeightedBin::new(&weights).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(21);
        let mut counts = [0u64; 4];
        let trials = 100_000;
        for _ in 0..trials {
            counts[w.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let f = c as f64 / trials as f64;
            let want = weights[i] / 10.0;
            assert!((f - want).abs() < 0.01, "index {i}: {f} vs {want}");
        }
    }

    #[test]
    fn weighted_bin_never_draws_zero_weight() {
        let w = WeightedBin::new(&[0.0, 1.0, 0.0, 2.0, 0.0]).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(22);
        let mut out = Vec::new();
        fill_weighted(&mut rng, &w, 50_000, &mut out);
        assert!(out.iter().all(|&b| b == 1 || b == 3));
    }

    #[test]
    fn weighted_bin_zipf_is_head_heavy() {
        let w = WeightedBin::zipf(100, 1.0).unwrap();
        assert_eq!(w.n(), 100);
        let mut rng = Xoshiro256PlusPlus::from_u64(23);
        let trials = 30_000;
        let zero_hits = (0..trials).filter(|_| w.sample(&mut rng) == 0).count();
        // P(0) = 1/H_100 ≈ 0.193.
        let f = zero_hits as f64 / trials as f64;
        assert!((f - 0.193).abs() < 0.02, "rank-0 frequency {f}");
    }

    #[test]
    fn argmin_finds_unique_minimum() {
        let mut rng = Xoshiro256PlusPlus::from_u64(6);
        let v = [5, 4, 1, 9];
        assert_eq!(random_argmin(&mut rng, &v, |&x| x), Some(2));
    }

    #[test]
    fn argmin_empty_is_none() {
        let mut rng = Xoshiro256PlusPlus::from_u64(6);
        let v: [u8; 0] = [];
        assert_eq!(random_argmin(&mut rng, &v, |&x| x), None);
    }

    #[test]
    fn argmin_ties_are_uniform() {
        let mut rng = Xoshiro256PlusPlus::from_u64(7);
        let v = [1, 0, 0, 0];
        let mut counts = [0u32; 4];
        let trials = 9000;
        for _ in 0..trials {
            let i = random_argmin(&mut rng, &v, |&x| x).unwrap();
            counts[i] += 1;
        }
        assert_eq!(counts[0], 0);
        for &c in &counts[1..] {
            let f = c as f64 / trials as f64;
            assert!((f - 1.0 / 3.0).abs() < 0.03, "tie frequency {f}");
        }
    }
}
