//! Property-based tests of the PRNG substrate.

use kdchoice_prng::dist::{AliasTable, BoundedPareto, Exponential, Poisson, Zipf};
use kdchoice_prng::sample::{
    fill_with_replacement, random_argmin, random_permutation, sample_distinct, shuffle,
};
use kdchoice_prng::{derive_seed, SplitMix64, Xoshiro256PlusPlus};
use proptest::prelude::*;
use rand::RngCore;

proptest! {
    /// Same seed, same stream — for both generators.
    #[test]
    fn generators_are_deterministic(seed in any::<u64>()) {
        let mut a = Xoshiro256PlusPlus::from_u64(seed);
        let mut b = Xoshiro256PlusPlus::from_u64(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Derived seeds are a pure function and rarely collide.
    #[test]
    fn derived_seeds_deterministic(master in any::<u64>(), idx in 0u64..10_000) {
        prop_assert_eq!(derive_seed(master, idx), derive_seed(master, idx));
    }

    /// fill_with_replacement stays in range and has the right length.
    #[test]
    fn replacement_sampling_in_range(n in 1usize..500, count in 0usize..200, seed in any::<u64>()) {
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        let mut out = Vec::new();
        fill_with_replacement(&mut rng, n, count, &mut out);
        prop_assert_eq!(out.len(), count);
        prop_assert!(out.iter().all(|&x| x < n));
    }

    /// Distinct sampling yields distinct in-range values.
    #[test]
    fn distinct_sampling_is_distinct(n in 1usize..200, seed in any::<u64>()) {
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        let count = n / 2;
        let s = sample_distinct(&mut rng, n, count);
        prop_assert_eq!(s.len(), count);
        prop_assert!(s.iter().all(|&x| x < n));
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        prop_assert_eq!(d.len(), count);
    }

    /// Shuffle is a permutation (multiset preserved).
    #[test]
    fn shuffle_preserves_multiset(mut v in prop::collection::vec(0u8..20, 0..50), seed in any::<u64>()) {
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        let mut original = v.clone();
        shuffle(&mut rng, &mut v);
        original.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(original, v);
    }

    /// random_permutation returns a permutation of 0..k.
    #[test]
    fn permutation_is_valid(k in 0usize..64, seed in any::<u64>()) {
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        let mut p = random_permutation(&mut rng, k);
        p.sort_unstable();
        prop_assert_eq!(p, (0..k).collect::<Vec<_>>());
    }

    /// random_argmin returns an index of a minimal element.
    #[test]
    fn argmin_returns_a_minimum(v in prop::collection::vec(0u32..100, 1..50), seed in any::<u64>()) {
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        let idx = random_argmin(&mut rng, &v, |&x| x).unwrap();
        let min = *v.iter().min().unwrap();
        prop_assert_eq!(v[idx], min);
    }

    /// Exponential samples are non-negative and finite.
    #[test]
    fn exponential_samples_valid(rate in 0.01f64..100.0, seed in any::<u64>()) {
        let e = Exponential::new(rate).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        for _ in 0..32 {
            let x = e.sample(&mut rng);
            prop_assert!(x >= 0.0 && x.is_finite());
        }
    }

    /// Poisson samples are finite counts.
    #[test]
    fn poisson_samples_valid(lambda in 0.1f64..200.0, seed in any::<u64>()) {
        let p = Poisson::new(lambda).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        for _ in 0..16 {
            let x = p.sample(&mut rng);
            prop_assert!((x as f64) < lambda * 20.0 + 100.0);
        }
    }

    /// Bounded Pareto stays within its bounds.
    #[test]
    fn pareto_in_bounds(alpha in 0.2f64..4.0, lo in 0.1f64..10.0, span in 1.1f64..100.0, seed in any::<u64>()) {
        let hi = lo * span;
        let bp = BoundedPareto::new(alpha, lo, hi).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        for _ in 0..32 {
            let x = bp.sample(&mut rng);
            prop_assert!(x >= lo && x <= hi);
        }
    }

    /// Zipf samples are in range for any exponent.
    #[test]
    fn zipf_in_range(n in 1usize..500, s in 0.0f64..4.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        for _ in 0..32 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Alias tables never emit zero-weight categories.
    #[test]
    fn alias_respects_zero_weights(
        weights in prop::collection::vec(0u32..10, 1..20),
        seed in any::<u64>(),
    ) {
        let total: u32 = weights.iter().sum();
        prop_assume!(total > 0);
        let w: Vec<f64> = weights.iter().map(|&x| f64::from(x)).collect();
        let table = AliasTable::new(&w).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        for _ in 0..64 {
            let i = table.sample(&mut rng);
            prop_assert!(w[i] > 0.0, "drew zero-weight category {}", i);
        }
    }

    /// Jump streams do not trivially collide on their first outputs.
    #[test]
    fn jump_streams_differ(seed in any::<u64>()) {
        let mut s0 = Xoshiro256PlusPlus::stream(seed, 0);
        let mut s1 = Xoshiro256PlusPlus::stream(seed, 1);
        prop_assert_ne!(s0.next_u64(), s1.next_u64());
    }
}
