//! Statistical and stream-equivalence locks on [`WeightedBin`]:
//!
//! * chi-square goodness-of-fit of the alias sampler against its target
//!   distribution, over proptest-generated random weight vectors (all
//!   seeded: the vendored proptest draws cases from a deterministic
//!   per-test stream, so these are regression tests, not flaky ones);
//! * the uniform degeneration pinned **bit-identical** to the existing
//!   [`UniformBin`] / [`fill_with_replacement`] stream — switching a
//!   uniform experiment onto the weighted API cannot perturb any result.

use kdchoice_prng::sample::{fill_weighted, fill_with_replacement, UniformBin, WeightedBin};
use kdchoice_prng::Xoshiro256PlusPlus;
use proptest::prelude::*;

/// Upper critical value of the chi-square distribution with `df` degrees
/// of freedom at `z` standard-normal quantiles, via the Wilson–Hilferty
/// cube approximation (accurate to a few percent for df ≥ 2, which is
/// plenty for a pass/fail gate set at z = 3.89 ⇒ p ≈ 5·10⁻⁵).
fn chi_square_critical(df: f64, z: f64) -> f64 {
    let a = 2.0 / (9.0 * df);
    df * (1.0 - a + z * a.sqrt()).powi(3)
}

/// The chi-square statistic of observed counts against expected
/// probabilities (categories with zero probability must have zero
/// observations and are excluded from the statistic). Returns
/// `(statistic, degrees_of_freedom)`.
fn chi_square(counts: &[u64], probs: &[f64], draws: u64) -> (f64, f64) {
    assert_eq!(counts.len(), probs.len());
    let mut stat = 0.0;
    let mut categories = 0usize;
    for (&c, &p) in counts.iter().zip(probs) {
        if p == 0.0 {
            assert_eq!(c, 0, "zero-probability category was drawn");
            continue;
        }
        let expected = p * draws as f64;
        let diff = c as f64 - expected;
        stat += diff * diff / expected;
        categories += 1;
    }
    (stat, (categories - 1) as f64)
}

fn goodness_of_fit(weights: &[f64], seed: u64, draws: u64) -> (f64, f64) {
    let total: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
    let sampler = WeightedBin::new(weights).expect("valid weights");
    let mut rng = Xoshiro256PlusPlus::from_u64(seed);
    let mut counts = vec![0u64; weights.len()];
    let mut out = Vec::new();
    fill_weighted(&mut rng, &sampler, draws as usize, &mut out);
    for &b in &out {
        counts[b] += 1;
    }
    chi_square(&counts, &probs, draws)
}

proptest! {
    /// Random positive weight vectors: the empirical distribution of the
    /// alias sampler fits the target at p ≈ 5e-5 per case.
    #[test]
    fn alias_sampler_fits_random_weights(
        weights in prop::collection::vec(0.05f64..20.0, 2..32),
        seed in any::<u64>(),
    ) {
        let (stat, df) = goodness_of_fit(&weights, seed, 20_000);
        let critical = chi_square_critical(df, 3.89);
        prop_assert!(
            stat < critical,
            "chi-square {stat:.1} >= critical {critical:.1} (df {df}) for {weights:?}"
        );
    }

    /// Weight vectors with hard zeros: zero-weight categories are never
    /// drawn and the fit over the support still holds.
    #[test]
    fn alias_sampler_fits_sparse_weights(
        mask in prop::collection::vec(0u8..3, 3..24),
        seed in any::<u64>(),
    ) {
        // Map the mask to weights {0, 1, 4}; skip all-zero vectors.
        let weights: Vec<f64> = mask.iter().map(|&m| match m {
            0 => 0.0,
            1 => 1.0,
            _ => 4.0,
        }).collect();
        prop_assume!(weights.iter().filter(|&&w| w > 0.0).count() >= 2);
        let (stat, df) = goodness_of_fit(&weights, seed, 20_000);
        let critical = chi_square_critical(df, 3.89);
        prop_assert!(
            stat < critical,
            "chi-square {stat:.1} >= critical {critical:.1} (df {df}) for {weights:?}"
        );
    }

    /// The equal-weights degeneration is bit-identical to UniformBin:
    /// same outputs *and* same generator state afterwards, for both the
    /// scalar and the batched API.
    #[test]
    fn equal_weights_are_bit_identical_to_uniform_bin(
        n in 1usize..5000,
        weight in 0.1f64..100.0,
        count in 1usize..300,
        seed in any::<u64>(),
    ) {
        let weighted = WeightedBin::new(&vec![weight; n]).expect("valid weights");
        prop_assert!(weighted.is_uniform());
        let uniform = UniformBin::new(n);

        // Scalar draws.
        let mut a = Xoshiro256PlusPlus::from_u64(seed);
        let mut b = Xoshiro256PlusPlus::from_u64(seed);
        for _ in 0..count {
            prop_assert_eq!(weighted.sample(&mut a), uniform.sample(&mut b));
        }
        prop_assert_eq!(&a, &b, "scalar draws must consume the stream identically");

        // Batched fills.
        let mut wa = Vec::new();
        let mut wb = Vec::new();
        let mut a = Xoshiro256PlusPlus::from_u64(seed);
        let mut b = Xoshiro256PlusPlus::from_u64(seed);
        fill_weighted(&mut a, &weighted, count, &mut wa);
        fill_with_replacement(&mut b, n, count, &mut wb);
        prop_assert_eq!(wa, wb);
        prop_assert_eq!(&a, &b, "batched fills must consume the stream identically");
    }
}

/// A fixed, seeded chi-square regression on the Zipf(1.0) construction —
/// the skew the `hetero` scenario ships by default.
#[test]
fn zipf_alias_sampler_fits_target() {
    let n = 64;
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let (stat, df) = goodness_of_fit(&weights, 0xC0FFEE, 200_000);
    let critical = chi_square_critical(df, 3.89);
    assert!(stat < critical, "chi-square {stat:.1} >= {critical:.1}");
    // Cross-check against WeightedBin::zipf: identical construction.
    let a = WeightedBin::zipf(n, 1.0).unwrap();
    let b = WeightedBin::new(&weights).unwrap();
    let mut ra = Xoshiro256PlusPlus::from_u64(5);
    let mut rb = Xoshiro256PlusPlus::from_u64(5);
    for _ in 0..1000 {
        assert_eq!(a.sample(&mut ra), b.sample(&mut rb));
    }
}
